"""Deeper property-based checks on the core algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CostModel,
    PolicyController,
    build_preference_matrix,
    find_blocking_pairs,
)
from repro.core.matching import MatchingResult
from repro.mapreduce import ShuffleFlow
from repro.topology import TreeConfig, build_tree, enumerate_paths

from ..conftest import make_taa


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    src=st.integers(0, 15),
    dst=st.integers(0, 15),
    rate=st.floats(0.1, 5.0, allow_nan=False),
)
def test_property_dp_optimal_under_random_congestion(seed, src, dst, rate):
    """Algorithm 1's DP equals brute-force minimisation over all shortest
    paths even with arbitrary background loads on every switch."""
    if src == dst:
        return
    topo = build_tree(TreeConfig(depth=2, fanout=4, redundancy=2))
    controller = PolicyController(
        topo, cost_model=CostModel(congestion_weight=1.0)
    )
    rng = np.random.default_rng(seed)
    for w in topo.switch_ids:
        controller.set_base_load(w, float(rng.uniform(0, 50)))
    path, cost = controller.optimal_path(src, dst, rate, enforce_capacity=False)
    brute = min(
        controller.path_cost(p, rate)
        for p in enumerate_paths(topo, src, dst, slack=0)
    )
    assert cost == pytest.approx(brute)
    assert path[0] == src and path[-1] == dst


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 9_999))
def test_property_preference_matrix_matches_direct_sum(seed):
    """Vectorised matrix entries equal the direct per-flow cost sum."""
    topo = build_tree(TreeConfig(depth=2, fanout=4, redundancy=2))
    taa, map_ids, reduce_ids = make_taa(topo, seed=seed)
    rng = np.random.default_rng(seed)
    for cid in map_ids + reduce_ids:
        servers = [s for s in taa.cluster.server_ids if taa.cluster.fits(cid, s)]
        taa.cluster.place(cid, int(rng.choice(servers)))
    taa.install_all_policies()
    pref = build_preference_matrix(taa)
    # Check one random (server, container) cell against a direct evaluation.
    cid = int(rng.choice(pref.container_ids))
    sid = int(rng.choice(pref.server_ids))
    direct = 0.0
    for flow in taa.flows_of_container(cid):
        other_cid = (
            flow.dst_container if flow.src_container == cid else flow.src_container
        )
        other = taa.cluster.container(other_cid).server_id
        if other is None:
            continue
        _, unit = taa.controller.optimal_path(
            sid, other, 1.0, enforce_capacity=False
        )
        direct += flow.rate * unit
    j = pref.container_ids.index(cid)
    i = pref.server_ids.index(sid)
    assert pref.cost[i, j] == pytest.approx(direct)


class TestBlockingPairDetector:
    """The stability checker must catch planted instabilities."""

    def test_detects_obviously_unstable_assignment(self):
        from repro.cluster import ClusterState, Container, Resources
        from repro.core.preference import PreferenceMatrix
        from repro.topology import Link, Server, Switch, Tier, Topology

        servers = [Server(0, "s0", (1.0,)), Server(1, "s1", (1.0,))]
        switch = Switch(2, "w", Tier.ACCESS, 10.0)
        topo = Topology(servers, [switch], [Link(0, 2, 1.0), Link(1, 2, 1.0)])
        cluster = ClusterState(topo)
        cluster.add_container(Container(0, Resources(1, 0)))
        cluster.add_container(Container(1, Resources(1, 0)))
        # Container 0 strongly prefers server 0; container 1 is indifferent.
        pref = PreferenceMatrix(
            server_ids=(0, 1),
            container_ids=(0, 1),
            cost=np.array([[1.0, 5.0], [9.0, 5.0]]),
            current_cost=np.array([9.0, 5.0]),
        )
        # Planted *unstable* assignment: 0 -> s1 (its worst), 1 -> s0.
        bad = MatchingResult(
            assignment={0: 1, 1: 0}, unmatched=[], proposals=0, evictions=0
        )
        blocking = find_blocking_pairs(bad, pref, cluster)
        assert (0, 0) in blocking

    def test_accepts_the_stable_counterpart(self):
        from repro.cluster import ClusterState, Container, Resources
        from repro.core.preference import PreferenceMatrix
        from repro.topology import Link, Server, Switch, Tier, Topology

        servers = [Server(0, "s0", (1.0,)), Server(1, "s1", (1.0,))]
        switch = Switch(2, "w", Tier.ACCESS, 10.0)
        topo = Topology(servers, [switch], [Link(0, 2, 1.0), Link(1, 2, 1.0)])
        cluster = ClusterState(topo)
        cluster.add_container(Container(0, Resources(1, 0)))
        cluster.add_container(Container(1, Resources(1, 0)))
        pref = PreferenceMatrix(
            server_ids=(0, 1),
            container_ids=(0, 1),
            cost=np.array([[1.0, 5.0], [9.0, 5.0]]),
            current_cost=np.array([9.0, 5.0]),
        )
        good = MatchingResult(
            assignment={0: 0, 1: 1}, unmatched=[], proposals=0, evictions=0
        )
        assert find_blocking_pairs(good, pref, cluster) == []


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 9_999),
    rate=st.floats(0.1, 3.0, allow_nan=False),
)
def test_property_policy_cost_linear_in_rate(seed, rate):
    """Without capacity binding, doubling a flow's rate doubles its cost."""
    topo = build_tree(TreeConfig(depth=2, fanout=4, redundancy=2))
    rng = np.random.default_rng(seed)
    src, dst = (int(x) for x in rng.choice(16, size=2, replace=False))
    controller = PolicyController(topo, cost_model=CostModel(congestion_weight=0.0))
    f1 = ShuffleFlow(0, 0, 0, 0, 100, 101, rate, rate)
    f2 = ShuffleFlow(1, 0, 0, 0, 100, 101, 2 * rate, 2 * rate)
    controller.route_flow(f1, src, dst)
    c1 = controller.policy_cost(f1)
    controller.clear()
    controller.route_flow(f2, src, dst)
    c2 = controller.policy_cost(f2)
    assert c2 == pytest.approx(2 * c1)
