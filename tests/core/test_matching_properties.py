"""Property-based tests for Algorithm 2 over randomized TAA instances.

Each instance draws a random hierarchical topology and a random workload
from a fixed per-case seed, grades it with the real preference pipeline
(Algorithm 1's pair-cost DP), runs the stable matching, and asserts the two
properties the paper proves:

* **stability** — the assignment admits no blocking pair (Theorem 2);
* **capacity feasibility** — applying the assignment never oversubscribes a
  server (Eq 3, fourth constraint).

The suite covers well over 200 distinct instances: 160 full
topology+workload draws plus 60 adversarial synthetic cost matrices with
tight capacities.
"""

import numpy as np
import pytest

from repro.cluster import ClusterState, Container, Resources, TaskKind, TaskRef
from repro.core import TAAInstance, build_preference_matrix, find_blocking_pairs, stable_match
from repro.core.preference import PreferenceMatrix
from repro.mapreduce import ShuffleFlow
from repro.obs import InvariantChecker
from repro.topology import TreeConfig, build_tree


def random_instance(seed: int) -> TAAInstance:
    """A random small TAA instance: topology shape, demands, flows all drawn
    from ``seed``."""
    rng = np.random.default_rng(seed)
    fanout = int(rng.integers(2, 5))
    redundancy = int(rng.integers(1, 3))
    slots = float(rng.integers(2, 4))
    topo = build_tree(
        TreeConfig(depth=2, fanout=fanout, redundancy=redundancy,
                   server_resources=(slots,))
    )
    num_maps = int(rng.integers(2, 6))
    num_reduces = int(rng.integers(1, 3))
    containers, flows = [], []
    map_ids, reduce_ids = [], []
    cid = 0
    for i in range(num_maps):
        containers.append(
            Container(cid, Resources(1.0, 0.0), TaskRef(0, TaskKind.MAP, i))
        )
        map_ids.append(cid)
        cid += 1
    for i in range(num_reduces):
        containers.append(
            Container(cid, Resources(1.0, 0.0), TaskRef(0, TaskKind.REDUCE, i))
        )
        reduce_ids.append(cid)
        cid += 1
    fid = 0
    for m in map_ids:
        for r in reduce_ids:
            size = float(rng.uniform(0.1, 2.0))
            flows.append(ShuffleFlow(fid, 0, 0, 0, m, r, size, size))
            fid += 1
    taa = TAAInstance(topo, containers, flows)
    # Random initial placement so current costs (and thereby server-side
    # utilities) are defined for a random subset of containers.
    for container in taa.cluster.containers():
        if rng.random() < 0.3:
            continue  # leave some containers unplaced
        candidates = [
            s for s in taa.cluster.server_ids
            if taa.cluster.fits(container.container_id, s)
        ]
        if candidates:
            taa.cluster.place(
                container.container_id,
                int(rng.choice(candidates)),
            )
    taa.install_all_policies()
    return taa


def assert_capacity_feasible(result, cluster: ClusterState) -> None:
    """Applying the assignment on fresh scratch state must fit every server."""
    used: dict[int, Resources] = {s: Resources.zero() for s in cluster.server_ids}
    in_matrix = set(result.assignment) | set(result.unmatched)
    for other in cluster.containers():
        if other.container_id in in_matrix or other.server_id is None:
            continue
        used[other.server_id] = used[other.server_id] + other.demand
    for cid, sid in result.assignment.items():
        used[sid] = used[sid] + cluster.container(cid).demand
    for sid in cluster.server_ids:
        assert used[sid].fits_in(cluster.capacity(sid)), (
            f"server {sid} oversubscribed: {used[sid]} > {cluster.capacity(sid)}"
        )


@pytest.mark.parametrize("seed", range(160))
def test_random_instances_stable_and_feasible(seed):
    taa = random_instance(seed)
    preferences = build_preference_matrix(taa)
    result = stable_match(preferences, taa.cluster)
    assert find_blocking_pairs(result, preferences, taa.cluster) == [], seed
    assert_capacity_feasible(result, taa.cluster)
    # The InvariantChecker's stability check must agree with the direct
    # blocking-pair enumeration.
    checker = InvariantChecker(mode="collect")
    checker.check_matching_stability(result, preferences, taa.cluster)
    assert checker.violations == []


def synthetic_case(seed: int, uniform_demand: bool):
    """Adversarial synthetic case: random costs, tight random capacities.

    With ``uniform_demand`` every container needs one slot (the paper's
    setting, where Algorithm 2's stability guarantee holds); otherwise
    demands are heterogeneous — stability can be unattainable then, but
    capacity feasibility must still hold.
    """
    rng = np.random.default_rng(10_000 + seed)
    m = int(rng.integers(2, 6))   # servers
    n = int(rng.integers(2, 9))   # containers
    from tests.core.test_matching import make_cluster

    caps = [float(rng.integers(1, 4)) for _ in range(m)]
    if uniform_demand:
        demands = [1.0] * n
    else:
        demands = [float(rng.integers(1, 3)) for _ in range(n)]
    cluster = make_cluster(caps, demands)
    cost = rng.uniform(0.0, 10.0, size=(m, n))
    # Some containers already have a (virtual) current cost, some don't.
    current = np.where(rng.random(n) < 0.5, rng.uniform(0.0, 12.0, n), np.inf)
    preferences = PreferenceMatrix(
        server_ids=tuple(range(m)),
        container_ids=tuple(range(n)),
        cost=cost,
        current_cost=current,
    )
    return preferences, cluster


@pytest.mark.parametrize("seed", range(60))
def test_synthetic_tight_capacity_instances(seed):
    preferences, cluster = synthetic_case(seed, uniform_demand=True)
    result = stable_match(preferences, cluster)
    assert find_blocking_pairs(result, preferences, cluster) == [], seed
    assert_capacity_feasible(result, cluster)


@pytest.mark.parametrize("seed", range(40))
def test_synthetic_heterogeneous_demand_feasibility(seed):
    """Heterogeneous demands: stability is not guaranteed by theory, but the
    matching must still never oversubscribe a server."""
    preferences, cluster = synthetic_case(seed, uniform_demand=False)
    result = stable_match(preferences, cluster)
    assert_capacity_feasible(result, cluster)


def test_matching_is_deterministic_across_repeats():
    """Same seed, same instance → byte-identical assignment (fixed seeds are
    only meaningful if the pipeline is deterministic)."""
    for seed in (3, 41, 97):
        taa1 = random_instance(seed)
        taa2 = random_instance(seed)
        r1 = stable_match(build_preference_matrix(taa1), taa1.cluster)
        r2 = stable_match(build_preference_matrix(taa2), taa2.cluster)
        assert r1.assignment == r2.assignment
        assert r1.unmatched == r2.unmatched
        assert r1.proposals == r2.proposals
