"""TAAInstance: objective, constraint verification, policy installation."""

import pytest

from repro.cluster import Container, Resources, TaskKind, TaskRef
from repro.core import CostModel, TAAInstance
from repro.mapreduce import ShuffleFlow

from ..conftest import make_job, make_taa


class TestInstallPolicies:
    def test_optimal_policies_cover_placed_flows(self, small_tree):
        taa, map_ids, reduce_ids = make_taa(small_tree)
        for i, cid in enumerate(map_ids + reduce_ids):
            taa.cluster.place(cid, small_tree.server_ids[i % 8])
        taa.install_all_policies()
        for flow in taa.flows:
            assert taa.controller.policy_of(flow.flow_id) is not None

    def test_skips_unplaced_endpoints(self, small_tree):
        taa, map_ids, reduce_ids = make_taa(small_tree)
        taa.cluster.place(map_ids[0], 0)
        # reduces unplaced: no flows routable
        taa.install_all_policies()
        assert taa.controller.policies() == {}

    def test_colocated_flow_zero_cost(self):
        from repro.topology import TreeConfig, build_tree

        roomy = build_tree(
            TreeConfig(depth=2, fanout=4, redundancy=2, server_resources=(8.0,))
        )
        taa, map_ids, reduce_ids = make_taa(roomy)
        for cid in map_ids + reduce_ids:
            taa.cluster.place(cid, 0)
        taa.install_all_policies()
        assert taa.total_shuffle_cost() == 0.0

    def test_static_policies_follow_shortest_path(self, small_tree):
        taa, map_ids, reduce_ids = make_taa(small_tree)
        for i, cid in enumerate(map_ids):
            taa.cluster.place(cid, i % 4)
        for cid in reduce_ids:
            taa.cluster.place(cid, 14 + (cid % 2))
        taa.install_static_policies()
        for flow in taa.flows:
            policy = taa.controller.policy_of(flow.flow_id)
            src = taa.cluster.container(flow.src_container).server_id
            dst = taa.cluster.container(flow.dst_container).server_id
            assert policy.path == small_tree.shortest_path(src, dst)

    def test_optimal_cost_never_worse_than_static(self, small_tree):
        taa, map_ids, reduce_ids = make_taa(small_tree)
        for i, cid in enumerate(map_ids + reduce_ids):
            taa.cluster.place(cid, small_tree.server_ids[(i * 3) % 16])
        taa.install_static_policies()
        static_cost = taa.total_shuffle_cost()
        taa.install_all_policies()
        assert taa.total_shuffle_cost() <= static_cost + 1e-9

    def test_flows_of_container_indexing(self, small_tree):
        taa, map_ids, reduce_ids = make_taa(small_tree)
        for mid in map_ids:
            incident = taa.flows_of_container(mid)
            assert all(f.src_container == mid for f in incident)
            assert len(incident) == len(reduce_ids)


class TestConstraints:
    def place_all(self, taa, tree):
        for i, c in enumerate(taa.cluster.containers()):
            taa.cluster.place(c.container_id, tree.server_ids[i % 8])

    def test_feasible_instance_passes(self, small_tree):
        taa, *_ = make_taa(small_tree)
        self.place_all(taa, small_tree)
        taa.install_all_policies()
        assert taa.verify_constraints() == []
        taa.assert_feasible()

    def test_unplaced_container_flagged(self, small_tree):
        taa, *_ = make_taa(small_tree)
        violations = taa.verify_constraints()
        assert any(v.constraint == "placement" for v in violations)

    def test_duplicate_task_flagged(self, small_tree):
        containers = [
            Container(0, Resources(1, 0), TaskRef(0, TaskKind.MAP, 0)),
            Container(1, Resources(1, 0), TaskRef(0, TaskKind.MAP, 0)),
        ]
        taa = TAAInstance(small_tree, containers, [])
        taa.cluster.place(0, 0)
        taa.cluster.place(1, 1)
        assert any(
            v.constraint == "task-hosting" for v in taa.verify_constraints()
        )

    def test_switch_overload_flagged(self, small_tree):
        taa, map_ids, reduce_ids = make_taa(
            small_tree, make_job(num_maps=1, num_reduces=1, input_size=1.0)
        )
        taa.cluster.place(map_ids[0], 0)
        taa.cluster.place(reduce_ids[0], 15)
        # Force a huge-rate flow through without capacity checking.
        taa.flows[0].rate = 1e6
        taa.install_all_policies(enforce_capacity=False)
        assert any(
            v.constraint == "switch-capacity" for v in taa.verify_constraints()
        )

    def test_assert_feasible_raises_with_summary(self, small_tree):
        taa, *_ = make_taa(small_tree)
        with pytest.raises(AssertionError, match="constraint violations"):
            taa.assert_feasible()

    def test_container_kind_selectors(self, small_tree):
        taa, map_ids, reduce_ids = make_taa(small_tree)
        assert [c.container_id for c in taa.map_containers()] == map_ids
        assert [c.container_id for c in taa.reduce_containers()] == reduce_ids

    def test_shared_cluster_wrapping(self, small_tree):
        """A planning instance over an existing cluster sees its containers."""
        taa1, map_ids, reduce_ids = make_taa(small_tree)
        self.place_all(taa1, small_tree)
        extra = Container(99, Resources(1, 0))
        planning = TAAInstance(
            small_tree, [extra], [], cluster=taa1.cluster
        )
        assert planning.cluster is taa1.cluster
        assert planning.cluster.container(99) is extra
        assert planning.num_containers == taa1.num_containers
