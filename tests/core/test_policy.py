"""PolicyController: Algorithm 1's DP, Eq 4 candidates, load accounting."""

import pytest

from repro.core import CostModel, NoFeasiblePathError, PolicyController
from repro.mapreduce import ShuffleFlow
from repro.topology import TreeConfig, Tier, build_tree, enumerate_paths


def flow(fid=0, src=100, dst=101, size=1.0, rate=1.0):
    return ShuffleFlow(fid, 0, 0, 0, src, dst, size, rate)


@pytest.fixture
def tree():
    return build_tree(TreeConfig(depth=2, fanout=4, redundancy=2))


@pytest.fixture
def controller(tree):
    return PolicyController(tree)


class TestOptimalPath:
    def test_same_server_trivial(self, controller):
        path, cost = controller.optimal_path(0, 0, 1.0)
        assert path == (0,)
        assert cost == 0.0

    def test_path_endpoints_and_validity(self, controller, tree):
        path, _ = controller.optimal_path(0, 15, 1.0)
        assert path[0] == 0 and path[-1] == 15
        for a, b in zip(path, path[1:]):
            assert tree.has_link(a, b)

    def test_dp_matches_brute_force(self, controller, tree):
        """The layered DP must equal exhaustive minimisation over all
        shortest paths (uniform load, so all shortest paths cost alike)."""
        path, cost = controller.optimal_path(0, 15, 2.0)
        brute = min(
            controller.path_cost(p, 2.0)
            for p in enumerate_paths(tree, 0, 15, slack=0)
        )
        assert cost == pytest.approx(brute)

    def test_dp_prefers_unloaded_switches(self, controller, tree):
        # Load one access replica of rack 0 heavily; DP must route around it.
        stage = [w for w in tree.switch_ids if tree.tier_of(w) == Tier.ACCESS][:2]
        loaded = stage[0]
        controller.set_base_load(loaded, 50.0)
        path, _ = controller.optimal_path(0, 1, 1.0)
        assert loaded not in path

    def test_capacity_pruning(self, tree):
        controller = PolicyController(tree)
        # Saturate both access replicas of server 0's rack except one unit.
        for w in tree.switch_ids:
            controller.set_base_load(w, tree.switch(w).capacity - 1.0)
        path, _ = controller.optimal_path(0, 15, 0.5)  # still fits
        with pytest.raises(NoFeasiblePathError):
            controller.optimal_path(0, 15, 5.0)

    def test_capacity_ignored_when_not_enforced(self, tree):
        controller = PolicyController(tree)
        for w in tree.switch_ids:
            controller.set_base_load(w, tree.switch(w).capacity)
        path, _ = controller.optimal_path(0, 15, 5.0, enforce_capacity=False)
        assert path[0] == 0 and path[-1] == 15

    def test_slack_fallback_finds_longer_path(self):
        # Build a line-ish fabric where the only shortest path is saturated
        # but a detour exists.
        tree = build_tree(TreeConfig(depth=2, fanout=2, redundancy=2))
        controller = PolicyController(tree, max_slack=2)
        # Saturate one access replica pair serving rack 0 partially: block
        # the shortest stage by loading *both* replicas at one stage beyond
        # capacity for rate 2 but leave a slack route... simplest: verify the
        # API returns a feasible path when shortest-stage candidates are all
        # full for the requested rate.
        for w in tree.switch_ids:
            if tree.tier_of(w) == Tier.CORE:
                controller.set_base_load(w, tree.switch(w).capacity - 1.0)
        # Rate 0.5 fits through the core.
        path, _ = controller.optimal_path(0, 3, 0.5)
        assert path[0] == 0 and path[-1] == 3


class TestLoadAccounting:
    def test_assign_charges_switches(self, controller, tree):
        f = flow(rate=2.0)
        policy = controller.route_flow(f, 0, 15)
        for w in policy.switch_list:
            assert controller.load(w) == pytest.approx(2.0)

    def test_release_refunds(self, controller):
        f = flow(rate=2.0)
        policy = controller.route_flow(f, 0, 15)
        controller.release(f.flow_id)
        for w in policy.switch_list:
            assert controller.load(w) == 0.0
        assert controller.policy_of(f.flow_id) is None

    def test_reroute_replaces_policy(self, controller):
        f = flow(rate=1.0)
        controller.route_flow(f, 0, 15)
        controller.route_flow(f, 0, 1)
        total_load = sum(controller.load(w) for w in controller.topology.switch_ids)
        policy = controller.policy_of(f.flow_id)
        assert total_load == pytest.approx(policy.length * 1.0)

    def test_release_unknown_is_noop(self, controller):
        controller.release(999)

    def test_clear(self, controller):
        controller.route_flow(flow(0), 0, 15)
        controller.route_flow(flow(1), 1, 14)
        controller.clear()
        assert controller.policies() == {}
        assert all(controller.load(w) == 0 for w in controller.topology.switch_ids)

    def test_base_load_included_in_residual(self, controller, tree):
        w = tree.switch_ids[0]
        cap = tree.switch(w).capacity
        controller.set_base_load(w, cap / 2)
        assert controller.residual(w) == pytest.approx(cap / 2)

    def test_base_loads_from_other_controller(self, tree):
        a = PolicyController(tree)
        a.route_flow(flow(rate=3.0), 0, 15)
        b = PolicyController(tree)
        b.base_loads_from(a)
        for w in tree.switch_ids:
            assert b.load(w) == pytest.approx(a.load(w))

    def test_negative_base_load_rejected(self, controller):
        with pytest.raises(ValueError):
            controller.set_base_load(controller.topology.switch_ids[0], -1.0)

    def test_assign_release_round_trip_is_exact(self, controller, tree):
        """Many assign→release cycles with drift-prone rates must leave
        ``load(w)`` *exactly* at the base load (bitwise, not approximately).

        Float subtraction does not invert float addition (e.g. summing ten
        0.1-rate flows and subtracting them back strands ~1e-17 on the
        switch); ``release`` therefore snaps a switch to zero tracked load
        when its last flow leaves.  The quiescence invariant and the
        simulator's end-of-run check both rely on this exactness.
        """
        base = {w: 0.25 for w in tree.switch_ids}
        for w, rate in base.items():
            controller.set_base_load(w, rate)
        for round_ in range(3):
            flows = [
                flow(fid=i, rate=0.1 + 0.1 * (i % 3)) for i in range(10)
            ]
            for i, f in enumerate(flows):
                controller.route_flow(f, i % 4, 15 - (i % 4))
            for f in flows:
                controller.release(f.flow_id)
            for w in tree.switch_ids:
                assert controller.load(w) == base[w], (round_, w)
                assert controller.capacitated_load(w) == base[w]
        assert controller.policies() == {}
        assert controller.recomputed_loads() == {
            w: 0.0 for w in tree.switch_ids
        }

    def test_clear_resets_to_exact_zero(self, controller, tree):
        for i in range(6):
            controller.route_flow(flow(fid=i, rate=0.3), i % 4, 15)
        controller.clear()
        for w in tree.switch_ids:
            assert controller.load(w) == 0.0
            assert controller.capacitated_load(w) == 0.0
        with pytest.raises(KeyError):
            controller.flow_rate(0)


class TestPolicyObjects:
    def test_policy_satisfied_by_construction(self, controller, tree):
        policy = controller.route_flow(flow(), 0, 15)
        assert policy.is_satisfied_by(tree)
        assert policy.length == len(policy.switch_list)

    def test_policy_cost_excludes_own_congestion(self, tree):
        model = CostModel(congestion_weight=1.0)
        controller = PolicyController(tree, cost_model=model)
        f = flow(rate=4.0)
        policy = controller.route_flow(f, 0, 1)
        # Cost should be priced at load-minus-own-rate = 0 on each switch.
        expected = f.rate * sum(
            model.switch_cost(tree, w, 0.0) for w in policy.switch_list
        )
        assert controller.policy_cost(f) == pytest.approx(expected)

    def test_policy_cost_requires_policy(self, controller):
        with pytest.raises(KeyError):
            controller.policy_cost(flow(fid=77))

    def test_candidate_switches_same_type_with_capacity(self, controller, tree):
        policy = controller.route_flow(flow(rate=1.0), 0, 15)
        for pos in range(policy.length):
            current = policy.switch_list[pos]
            for cand in controller.candidate_switches(policy, pos, 1.0):
                assert cand != current
                assert (
                    tree.switch(cand).switch_type
                    == tree.switch(current).switch_type
                )
                assert controller.residual(cand) >= 1.0

    def test_total_cost_sums_flows(self, controller):
        f1, f2 = flow(0, rate=1.0), flow(1, rate=2.0)
        controller.route_flow(f1, 0, 15)
        controller.route_flow(f2, 1, 14)
        total = controller.total_cost([f1, f2])
        assert total == pytest.approx(
            controller.policy_cost(f1) + controller.policy_cost(f2)
        )


class TestCostModel:
    def test_uniform_default(self, tree):
        model = CostModel(congestion_weight=0.0)
        for w in tree.switch_ids:
            assert model.switch_cost(tree, w, 0.0) == 1.0

    def test_tier_weights(self, tree):
        model = CostModel(
            tier_weights={Tier.ACCESS: 1.0, Tier.AGGREGATION: 2.0, Tier.CORE: 3.0},
            congestion_weight=0.0,
        )
        core = next(w for w in tree.switch_ids if tree.tier_of(w) == Tier.CORE)
        assert model.switch_cost(tree, core, 0.0) == 3.0

    def test_congestion_term_linear_in_load(self, tree):
        model = CostModel(congestion_weight=1.0)
        w = tree.switch_ids[0]
        cap = tree.switch(w).capacity
        assert model.switch_cost(tree, w, cap) == pytest.approx(2.0)
        assert model.switch_cost(tree, w, cap / 2) == pytest.approx(1.5)
