"""Utility functions: Eqs 5-7 and 10, and the additivity claims (Eqs 6, 11)."""

import numpy as np
import pytest

from repro.cluster import Container, Resources, TaskKind, TaskRef
from repro.core import (
    TAAInstance,
    container_cost,
    container_reschedule_utility,
    joint_switch_reschedule_utility,
    switch_reschedule_utility,
)
from repro.mapreduce import ShuffleFlow
from repro.topology import TreeConfig, build_tree

NEG_INF = float("-inf")


def build_instance(depth=2, fanout=4, redundancy=2, rate=1.0):
    topo = build_tree(TreeConfig(depth=depth, fanout=fanout, redundancy=redundancy))
    containers = [
        Container(0, Resources(1, 0), TaskRef(0, TaskKind.MAP, 0)),
        Container(1, Resources(1, 0), TaskRef(0, TaskKind.REDUCE, 0)),
    ]
    flows = [ShuffleFlow(0, 0, 0, 0, 0, 1, size=rate, rate=rate)]
    taa = TAAInstance(topo, containers, flows)
    taa.cluster.place(0, 0)
    taa.cluster.place(1, topo.server_ids[-1])
    taa.install_all_policies()
    return taa


class TestSwitchUtility:
    def test_same_switch_zero(self):
        taa = build_instance()
        f = taa.flows[0]
        policy = taa.controller.policy_of(0)
        assert (
            switch_reschedule_utility(taa.controller, f, 0, policy.switch_list[0])
            == 0.0
        )

    def test_feasible_replacement_has_finite_utility(self):
        taa = build_instance()
        f = taa.flows[0]
        policy = taa.controller.policy_of(0)
        candidates = taa.controller.candidate_switches(policy, 0, f.rate)
        connectable = [
            w
            for w in candidates
            if switch_reschedule_utility(taa.controller, f, 0, w) > NEG_INF
        ]
        assert connectable  # redundancy 2 guarantees an alternative

    def test_wrong_type_rejected(self):
        taa = build_instance(depth=2)
        f = taa.flows[0]
        topo = taa.topology
        from repro.topology import Tier

        core = next(w for w in topo.switch_ids if topo.tier_of(w) == Tier.CORE)
        # position 0 is an access switch; a core replacement violates type.
        assert (
            switch_reschedule_utility(taa.controller, f, 0, core) == NEG_INF
        )

    def test_overloaded_candidate_rejected(self):
        taa = build_instance()
        f = taa.flows[0]
        policy = taa.controller.policy_of(0)
        cand = taa.controller.candidate_switches(policy, 0, f.rate)
        target = cand[0]
        taa.controller.set_base_load(
            target, taa.topology.switch(target).capacity
        )
        assert switch_reschedule_utility(taa.controller, f, 0, target) == NEG_INF

    def test_loaded_current_switch_gives_positive_utility(self):
        taa = build_instance()
        f = taa.flows[0]
        policy = taa.controller.policy_of(0)
        current = policy.switch_list[0]
        # Make the current switch congested; moving away must gain utility.
        taa.controller.set_base_load(current, 6.0)
        alternatives = [
            w
            for w in taa.controller.candidate_switches(policy, 0, f.rate)
            if switch_reschedule_utility(taa.controller, f, 0, w) > NEG_INF
        ]
        assert any(
            switch_reschedule_utility(taa.controller, f, 0, w) > 0
            for w in alternatives
        )

    def test_out_of_range_position(self):
        taa = build_instance()
        with pytest.raises(IndexError):
            switch_reschedule_utility(taa.controller, taa.flows[0], 99, 0)

    def test_requires_installed_policy(self):
        taa = build_instance()
        stray = ShuffleFlow(42, 0, 0, 0, 0, 1, 1.0, 1.0)
        with pytest.raises(KeyError):
            switch_reschedule_utility(taa.controller, stray, 0, 0)


class TestAdditivity:
    def test_eq6_joint_equals_sum_of_singles(self):
        """U(w2->w2', w3->w3') == U(w2->w2') + U(w3->w3') (Eq 6)."""
        taa = build_instance(depth=3, fanout=2, redundancy=2)
        f = taa.flows[0]
        controller = taa.controller
        policy = controller.policy_of(0)
        # Pick two distinct positions with connectable alternatives.
        choices = {}
        for pos in range(policy.length):
            for cand in controller.candidate_switches(policy, pos, f.rate):
                if switch_reschedule_utility(controller, f, pos, cand) > NEG_INF:
                    choices[pos] = cand
                    break
            if len(choices) == 2:
                break
        assert len(choices) == 2, "fixture must offer two replaceable positions"
        joint = joint_switch_reschedule_utility(controller, f, choices)
        singles = sum(
            switch_reschedule_utility(controller, f, pos, cand)
            for pos, cand in choices.items()
        )
        assert joint == pytest.approx(singles)

    def test_joint_detects_collision(self):
        taa = build_instance()
        f = taa.flows[0]
        policy = taa.controller.policy_of(0)
        cand = next(
            w
            for w in taa.controller.candidate_switches(policy, 0, f.rate)
            if switch_reschedule_utility(taa.controller, f, 0, w) > NEG_INF
        )
        assert (
            joint_switch_reschedule_utility(taa.controller, f, {0: cand, 1: cand})
            == NEG_INF
        )

    def test_eq11_switch_and_container_moves_independent(self):
        """Separability (Eq 11): total cost change from moving the container
        equals the utility predicted before any policy rescheduling."""
        taa = build_instance()
        f = taa.flows[0]
        cluster, controller = taa.cluster, taa.controller
        target = taa.topology.server_ids[1]
        predicted = container_reschedule_utility(
            controller, cluster, 1, target, taa.flows
        )
        before = container_cost(controller, cluster, 1, cluster.container(1).server_id, taa.flows)
        after = container_cost(controller, cluster, 1, target, taa.flows)
        assert predicted == pytest.approx(before - after)


class TestContainerUtility:
    def test_cost_zero_when_colocated(self):
        taa = build_instance()
        cost = container_cost(
            taa.controller, taa.cluster, 1, 0, taa.flows
        )  # dst moved onto src's server
        assert cost == 0.0

    def test_cost_scales_with_rate(self):
        taa1 = build_instance(rate=1.0)
        taa2 = build_instance(rate=3.0)
        far = taa1.topology.server_ids[-1]
        c1 = container_cost(taa1.controller, taa1.cluster, 1, far, taa1.flows)
        c2 = container_cost(taa2.controller, taa2.cluster, 1, far, taa2.flows)
        assert c2 == pytest.approx(3 * c1, rel=0.2)

    def test_unplaced_other_endpoint_ignored(self):
        taa = build_instance()
        taa.cluster.unplace(0)
        assert container_cost(taa.controller, taa.cluster, 1, 3, taa.flows) == 0.0

    def test_utility_requires_placed_container(self):
        taa = build_instance()
        taa.cluster.unplace(1)
        with pytest.raises(ValueError):
            container_reschedule_utility(taa.controller, taa.cluster, 1, 0, taa.flows)

    def test_moving_closer_positive_utility(self):
        taa = build_instance()
        # Reduce currently on the far rack; moving next to the map gains.
        u = container_reschedule_utility(taa.controller, taa.cluster, 1, 0, taa.flows)
        assert u > 0
