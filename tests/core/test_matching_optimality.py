"""Proposer-optimality of the container-proposing deferred acceptance.

Classical theory: with strict preferences, the proposing side's deferred-
acceptance outcome is *proposer-optimal* — every container weakly prefers
its assigned server to its assignment in any other stable matching.  We
verify this on small instances by enumerating every capacity-feasible
assignment, filtering the stable ones with the independent blocking-pair
checker, and comparing.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import find_blocking_pairs, stable_match
from repro.core.matching import MatchingResult

from .test_matching import make_cluster, make_preferences


def enumerate_stable_matchings(pref, cluster, capacities):
    """All stable full matchings of a tiny instance (brute force)."""
    containers = list(pref.container_ids)
    servers = list(pref.server_ids)
    stable = []
    for assignment_tuple in itertools.product(servers, repeat=len(containers)):
        counts = {s: 0 for s in servers}
        for s in assignment_tuple:
            counts[s] += 1
        if any(counts[s] > capacities[i] for i, s in enumerate(servers)):
            continue
        result = MatchingResult(
            assignment=dict(zip(containers, assignment_tuple)),
            unmatched=[],
            proposals=0,
            evictions=0,
        )
        if not find_blocking_pairs(result, pref, cluster):
            stable.append(result.assignment)
    return stable


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5_000))
def test_property_container_optimal_among_stable_matchings(seed):
    rng = np.random.default_rng(seed)
    m, n = 3, 4
    caps = [2.0, 1.0, 1.0]
    cluster = make_cluster(caps, [1.0] * n)
    cost = rng.uniform(1, 10, size=(m, n))
    pref = make_preferences(cost, cluster, current=rng.uniform(5, 15, n))

    ours = stable_match(pref, cluster)
    if ours.unmatched:
        return  # capacity-tight corner; optimality statement needs full match
    all_stable = enumerate_stable_matchings(
        pref, cluster, [int(c) for c in caps]
    )
    assert ours.assignment in all_stable, "our matching must itself be stable"

    # Container-optimality: for every container, no stable matching gives it
    # a strictly cheaper server than ours does.
    for other in all_stable:
        for j, cid in enumerate(pref.container_ids):
            ours_cost = cost[pref.server_ids.index(ours.assignment[cid]), j]
            other_cost = cost[pref.server_ids.index(other[cid]), j]
            assert ours_cost <= other_cost + 1e-9, (
                f"container {cid}: stable matching {other} beats ours"
            )


def test_unique_stable_matching_found_exactly():
    """With aligned preferences there is one stable matching; we return it."""
    cluster = make_cluster([1.0, 1.0], [1.0, 1.0])
    # Both sides agree: container 0 with server 0, container 1 with server 1.
    pref = make_preferences(
        [[1.0, 8.0], [8.0, 1.0]], cluster, current=[9.0, 9.0]
    )
    ours = stable_match(pref, cluster)
    all_stable = enumerate_stable_matchings(pref, cluster, [1, 1])
    assert all_stable == [{0: 0, 1: 1}]
    assert ours.assignment == {0: 0, 1: 1}
