"""HitOptimizer: initial-wave and subsequent-wave strategies."""

import numpy as np
import pytest

from repro.cluster import Container, Resources, TaskKind, TaskRef
from repro.core import HitConfig, HitOptimizer, TAAInstance
from repro.mapreduce import ShuffleFlow

from ..conftest import make_job, make_taa


class TestRandomInitialPlacement:
    def test_places_everything(self, small_tree):
        taa, *_ = make_taa(small_tree)
        HitOptimizer(taa).random_initial_placement()
        assert taa.cluster.unplaced_containers() == []
        taa.cluster.validate()

    def test_subset_only(self, small_tree):
        taa, map_ids, reduce_ids = make_taa(small_tree)
        HitOptimizer(taa).random_initial_placement(container_ids=map_ids)
        placed = {c.container_id for c in taa.cluster.containers() if c.is_placed}
        assert placed == set(map_ids)

    def test_seeded_determinism(self, small_tree):
        taa1, *_ = make_taa(small_tree)
        taa2, *_ = make_taa(small_tree)
        HitOptimizer(taa1, HitConfig(seed=3)).random_initial_placement()
        HitOptimizer(taa2, HitConfig(seed=3)).random_initial_placement()
        assert taa1.cluster.placement_snapshot() == taa2.cluster.placement_snapshot()

    def test_raises_when_cluster_full(self, flat_tree):
        # flat_tree: 4 servers x 2 slots = 8; demand 9 containers.
        job = make_job(num_maps=6, num_reduces=3)
        taa, *_ = make_taa(flat_tree, job)
        with pytest.raises(RuntimeError, match="no server"):
            HitOptimizer(taa).random_initial_placement()


class TestInitialWave:
    def test_improves_over_random(self, small_tree):
        taa, *_ = make_taa(small_tree)
        result = HitOptimizer(taa, HitConfig(seed=1)).optimize_initial_wave()
        assert result.final_cost <= result.initial_cost + 1e-9
        assert result.improvement >= 0.0

    def test_substantial_improvement_on_spreadable_job(self, small_tree):
        job = make_job(num_maps=4, num_reduces=1, input_size=4.0)
        taa, *_ = make_taa(small_tree, job)
        result = HitOptimizer(taa, HitConfig(seed=42)).optimize_initial_wave()
        assert result.improvement > 0.3  # co-location is available

    def test_feasible_after_optimization(self, small_tree):
        taa, *_ = make_taa(small_tree)
        HitOptimizer(taa, HitConfig(seed=0)).optimize_initial_wave()
        assert taa.verify_constraints() == []

    def test_cost_trace_monotone_at_best(self, small_tree):
        taa, *_ = make_taa(small_tree)
        result = HitOptimizer(taa, HitConfig(seed=5)).optimize_initial_wave()
        assert result.final_cost == min(result.cost_trace)

    def test_subset_restriction_leaves_others_alone(self, small_tree):
        taa, map_ids, reduce_ids = make_taa(small_tree)
        for i, cid in enumerate(map_ids):
            taa.cluster.place(cid, i)
        before = {cid: taa.cluster.container(cid).server_id for cid in map_ids}
        HitOptimizer(taa, HitConfig(seed=0)).optimize_initial_wave(
            container_ids=reduce_ids
        )
        after = {cid: taa.cluster.container(cid).server_id for cid in map_ids}
        assert before == after

    def test_deterministic(self, small_tree):
        taa1, *_ = make_taa(small_tree)
        taa2, *_ = make_taa(small_tree)
        r1 = HitOptimizer(taa1, HitConfig(seed=9)).optimize_initial_wave()
        r2 = HitOptimizer(taa2, HitConfig(seed=9)).optimize_initial_wave()
        assert r1.placement == r2.placement
        # The vectorised kernels are deterministic bit-for-bit, so the whole
        # trace (not just the final cost) must coincide.
        assert r1.cost_trace == r2.cost_trace
        assert r1.final_cost == pytest.approx(r2.final_cost)

    def test_deterministic_with_shared_pair_cache_reuse(self, small_tree):
        """Re-running waves on one optimizer (shared, version-invalidated
        pair-cost cache) matches a fresh optimizer per wave."""
        taa1, map_ids1, _ = make_taa(small_tree)
        opt1 = HitOptimizer(taa1, HitConfig(seed=9))
        opt1.optimize_initial_wave()
        r1 = opt1.optimize_subsequent_wave(map_ids1)

        taa2, map_ids2, _ = make_taa(small_tree)
        HitOptimizer(taa2, HitConfig(seed=9)).optimize_initial_wave()
        r2 = HitOptimizer(taa2, HitConfig(seed=9)).optimize_subsequent_wave(
            map_ids2
        )
        assert r1.placement == r2.placement
        assert r1.cost_trace == r2.cost_trace

    def test_max_rounds_bounds_sweeps(self, small_tree):
        taa, *_ = make_taa(small_tree)
        result = HitOptimizer(
            taa, HitConfig(seed=1, max_rounds=1)
        ).optimize_initial_wave()
        # 1 round = at most 2 sweeps (reduce side + map side) + final restore.
        assert len(result.matchings) <= 2


class TestSubsequentWave:
    def test_places_maps_near_fixed_reduces(self, small_tree):
        job = make_job(num_maps=4, num_reduces=2)
        taa, map_ids, reduce_ids = make_taa(small_tree, job)
        # Pin reduces on rack 3 (servers 12-15).
        taa.cluster.place(reduce_ids[0], 12)
        taa.cluster.place(reduce_ids[1], 13)
        result = HitOptimizer(taa, HitConfig(seed=0)).optimize_subsequent_wave(
            map_ids
        )
        # All maps should land on the reduces' rack (servers 12..15).
        for cid in map_ids:
            assert taa.cluster.container(cid).server_id in {12, 13, 14, 15}

    def test_heaviest_map_gets_best_server(self, small_tree):
        job = make_job(num_maps=2, num_reduces=1, input_size=4.0)
        taa, map_ids, reduce_ids = make_taa(small_tree, job)
        # Manually skew flow rates: map 0 heavy, map 1 light.
        flows = list(taa.flows)
        flows[0].rate = 10.0
        flows[1].rate = 0.1
        taa.cluster.place(reduce_ids[0], 12)
        HitOptimizer(taa, HitConfig(seed=0)).optimize_subsequent_wave(map_ids)
        heavy_server = taa.cluster.container(map_ids[0]).server_id
        assert heavy_server == 12  # co-located with the reduce

    def test_respects_capacity(self, flat_tree):
        job = make_job(num_maps=4, num_reduces=2, input_size=4.0)
        taa, map_ids, reduce_ids = make_taa(flat_tree, job)
        taa.cluster.place(reduce_ids[0], 0)
        taa.cluster.place(reduce_ids[1], 0)  # server 0 now full (2 slots)
        HitOptimizer(taa, HitConfig(seed=0)).optimize_subsequent_wave(map_ids)
        taa.cluster.validate()
        for cid in map_ids:
            assert taa.cluster.container(cid).server_id != 0

    def test_policies_installed_afterwards(self, small_tree):
        job = make_job(num_maps=2, num_reduces=1)
        taa, map_ids, reduce_ids = make_taa(small_tree, job)
        taa.cluster.place(reduce_ids[0], 5)
        HitOptimizer(taa, HitConfig(seed=0)).optimize_subsequent_wave(map_ids)
        routed = [f for f in taa.flows if taa.controller.policy_of(f.flow_id)]
        assert len(routed) == len(taa.flows)
