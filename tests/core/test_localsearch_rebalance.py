"""Local search (hill climbing on Eq 5/10 utilities) and online rebalancing."""

import numpy as np
import pytest

from repro.cluster import Container, Resources, TaskKind, TaskRef
from repro.core import (
    HitConfig,
    HitOptimizer,
    LocalSearchConfig,
    LocalSearchOptimizer,
    RebalanceConfig,
    RebalanceReport,
    TAAInstance,
    rebalance_flows,
)
from repro.mapreduce import ShuffleFlow
from repro.topology import TreeConfig, build_tree

from ..conftest import make_job, make_taa


class TestLocalSearch:
    def make_placed(self, small_tree, seed=0):
        taa, *_ = make_taa(small_tree)
        HitOptimizer(taa, HitConfig(seed=seed)).random_initial_placement()
        taa.install_all_policies()
        return taa

    def test_requires_placement(self, small_tree):
        taa, *_ = make_taa(small_tree)
        with pytest.raises(ValueError, match="fully placed"):
            LocalSearchOptimizer(taa).optimize()

    def test_never_increases_cost(self, small_tree):
        taa = self.make_placed(small_tree)
        result = LocalSearchOptimizer(taa).optimize()
        assert result.final_cost <= result.initial_cost + 1e-9
        # Each recorded step is monotone non-increasing.
        for a, b in zip(result.move_trace, result.move_trace[1:]):
            assert b <= a + 1e-9

    def test_reaches_local_optimum(self, small_tree):
        taa = self.make_placed(small_tree)
        LocalSearchOptimizer(taa).optimize()
        # At termination no single move clears the threshold.
        opt = LocalSearchOptimizer(taa)
        assert opt.best_container_move() is None
        assert opt.best_switch_move() is None

    def test_instance_stays_feasible(self, small_tree):
        taa = self.make_placed(small_tree)
        LocalSearchOptimizer(taa).optimize()
        assert taa.verify_constraints() == []

    def test_move_budget_respected(self, small_tree):
        taa = self.make_placed(small_tree)
        result = LocalSearchOptimizer(
            taa, LocalSearchConfig(max_moves=2)
        ).optimize()
        assert result.moves_applied <= 2

    def test_container_moves_only(self, small_tree):
        taa = self.make_placed(small_tree)
        result = LocalSearchOptimizer(
            taa, LocalSearchConfig(switch_moves=False)
        ).optimize()
        assert result.switch_moves == 0

    def test_comparable_to_matching_on_small_instance(self, small_tree):
        """Hill climbing lands in the same cost neighbourhood as matching."""
        taa_ls = self.make_placed(small_tree, seed=3)
        ls = LocalSearchOptimizer(taa_ls).optimize()
        taa_m, *_ = make_taa(small_tree)
        m = HitOptimizer(taa_m, HitConfig(seed=3)).optimize_initial_wave()
        assert ls.final_cost <= 3 * max(m.final_cost, 1e-9)


def _congested_instance():
    """Two flows forced through the same rack with redundancy-2 switches:
    static routing piles both onto replica 0, rebalancing should split them."""
    topo = build_tree(
        TreeConfig(
            depth=2, fanout=2, redundancy=2,
            access_capacity=3.0, core_capacity=3.0,
            server_resources=(4.0,),
        )
    )
    containers = [
        Container(0, Resources(1, 0), TaskRef(0, TaskKind.MAP, 0)),
        Container(1, Resources(1, 0), TaskRef(0, TaskKind.MAP, 1)),
        Container(2, Resources(1, 0), TaskRef(0, TaskKind.REDUCE, 0)),
        Container(3, Resources(1, 0), TaskRef(0, TaskKind.REDUCE, 1)),
    ]
    flows = [
        ShuffleFlow(0, 0, 0, 0, 0, 2, size=2.0, rate=2.0),
        ShuffleFlow(1, 0, 1, 1, 1, 3, size=2.0, rate=2.0),
    ]
    taa = TAAInstance(topo, containers, flows)
    taa.cluster.place(0, 0)
    taa.cluster.place(1, 0)
    taa.cluster.place(2, 3)
    taa.cluster.place(3, 3)
    # Static single-path routing: both flows share the replica-0 switches.
    taa.install_static_policies()
    return taa


class TestRebalance:
    def test_migrates_off_shared_switches(self):
        taa = _congested_instance()
        flows = list(taa.flows)
        before = sum(taa.controller.policy_cost(f) for f in flows)
        report = rebalance_flows(taa.controller, flows)
        assert report.migrations >= 1
        assert report.cost_after < before
        assert report.gain > 0

    def test_hysteresis_blocks_marginal_moves(self):
        taa = _congested_instance()
        flows = list(taa.flows)
        report = rebalance_flows(
            taa.controller, flows, RebalanceConfig(min_relative_gain=0.99)
        )
        assert report.migrations == 0
        assert report.cost_after == pytest.approx(report.cost_before)

    def test_idempotent_after_convergence(self):
        taa = _congested_instance()
        flows = list(taa.flows)
        rebalance_flows(taa.controller, flows)
        second = rebalance_flows(taa.controller, flows)
        assert second.migrations == 0

    def test_policies_stay_satisfied(self):
        taa = _congested_instance()
        rebalance_flows(taa.controller, list(taa.flows))
        assert taa.verify_constraints() == []

    def test_migration_budget(self):
        taa = _congested_instance()
        report = rebalance_flows(
            taa.controller, list(taa.flows), RebalanceConfig(max_migrations=1)
        )
        assert report.migrations <= 1

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            RebalanceConfig(min_relative_gain=1.0)
        with pytest.raises(ValueError):
            RebalanceConfig(max_migrations=0)

    def test_flows_without_policies_skipped(self, small_tree):
        taa, *_ = make_taa(small_tree)
        report = rebalance_flows(taa.controller, list(taa.flows))
        assert report.flows_considered == 0
        assert report.migrations == 0
