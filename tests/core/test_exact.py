"""Brute-force exact solver and heuristic optimality gap."""

import numpy as np
import pytest

from repro.cluster import Container, Resources, TaskKind, TaskRef
from repro.core import (
    CostModel,
    HitConfig,
    HitOptimizer,
    TAAInstance,
    solve_exact,
)
from repro.mapreduce import ShuffleFlow
from repro.topology import TreeConfig, build_tree


def tiny_instance(num_maps=2, num_reduces=2, seed=0, congestion=0.0):
    """4 servers x 2 slots, one small job, optionally congestion-free."""
    topo = build_tree(
        TreeConfig(depth=2, fanout=2, redundancy=1, server_resources=(2.0,))
    )
    rng = np.random.default_rng(seed)
    containers, flows = [], []
    cid = 0
    map_ids, reduce_ids = [], []
    for i in range(num_maps):
        containers.append(Container(cid, Resources(1, 0), TaskRef(0, TaskKind.MAP, i)))
        map_ids.append(cid)
        cid += 1
    for i in range(num_reduces):
        containers.append(
            Container(cid, Resources(1, 0), TaskRef(0, TaskKind.REDUCE, i))
        )
        reduce_ids.append(cid)
        cid += 1
    fid = 0
    for m in map_ids:
        for r in reduce_ids:
            size = float(rng.uniform(0.5, 2.0))
            flows.append(ShuffleFlow(fid, 0, 0, 0, m, r, size, size))
            fid += 1
    taa = TAAInstance(
        topo, containers, flows, cost_model=CostModel(congestion_weight=congestion)
    )
    return taa


class TestExactSolver:
    def test_finds_optimal_on_obvious_instance(self):
        taa = tiny_instance(num_maps=1, num_reduces=1)
        result = solve_exact(taa)
        # Optimal: co-locate map and reduce -> zero cost.
        assert result.cost == 0.0
        assert result.assignment[0] == result.assignment[1]

    def test_respects_capacity(self):
        taa = tiny_instance(num_maps=4, num_reduces=4)
        result = solve_exact(taa)
        counts = {}
        for sid in result.assignment.values():
            counts[sid] = counts.get(sid, 0) + 1
        assert all(v <= 2 for v in counts.values())

    def test_search_statistics(self):
        taa = tiny_instance(num_maps=2, num_reduces=1)
        result = solve_exact(taa)
        assert result.complete_assignments > 0
        assert result.nodes_explored >= result.complete_assignments

    def test_guards_large_instances(self):
        taa = tiny_instance(num_maps=4, num_reduces=4)
        with pytest.raises(ValueError, match="exceed"):
            solve_exact(taa, max_containers=3)

    def test_restores_caller_state(self):
        taa = tiny_instance(num_maps=2, num_reduces=1)
        taa.cluster.place(0, 0)
        taa.cluster.place(1, 1)
        taa.cluster.place(2, 2)
        taa.install_all_policies()
        before_placement = taa.cluster.placement_snapshot()
        before_cost = taa.total_shuffle_cost()
        solve_exact(taa)
        assert taa.cluster.placement_snapshot() == before_placement
        assert taa.total_shuffle_cost() == pytest.approx(before_cost)


class TestHeuristicGap:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_stable_matching_near_optimal(self, seed):
        """On tiny congestion-free instances, the Hit heuristic's cost is
        within ~3x of the exact optimum (coordinate descent can stall in a
        local optimum; the ablation benchmark measures the typical gap)."""
        taa = tiny_instance(num_maps=2, num_reduces=2, seed=seed)
        exact = solve_exact(taa)
        heuristic = HitOptimizer(taa, HitConfig(seed=seed)).optimize_initial_wave()
        assert heuristic.final_cost >= exact.cost - 1e-9  # sanity: no magic
        assert heuristic.final_cost <= 3.2 * exact.cost + 1e-9

    def test_exact_never_worse_than_heuristic(self):
        for seed in range(5):
            taa = tiny_instance(num_maps=3, num_reduces=2, seed=seed)
            heuristic = HitOptimizer(
                taa, HitConfig(seed=seed)
            ).optimize_initial_wave()
            exact = solve_exact(taa)
            assert exact.cost <= heuristic.final_cost + 1e-9
