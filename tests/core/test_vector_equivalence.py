"""Equivalence of the vectorised hot-path kernels and the scalar originals.

The vectorised routing/preference kernels (stage-adjacency DP, batched
all-pairs unit-cost matrix, array-assembled preference columns) are required
to be *bit-compatible* with the scalar implementations they replaced: same
paths under the same deterministic tie-breaks, same costs, same matchings.
This suite checks that claim directly on randomized Tree / Fat-Tree / VL2
instances across 54 seeds (18 per fabric family), plus targeted cases for
capacity pruning and determinism of the new code path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Container, Resources, TaskKind, TaskRef
from repro.core import HitConfig, HitOptimizer, TAAInstance, stable_match
from repro.core.preference import PairCostCache, build_preference_matrix
from repro.core.scalar_ref import (
    ScalarPairCostCache,
    build_preference_matrix_scalar,
    dag_best_path_scalar,
    optimal_path_scalar,
)
from repro.mapreduce import ShuffleFlow
from repro.topology import (
    FatTreeConfig,
    TreeConfig,
    VL2Config,
    build_fattree,
    build_tree,
    build_vl2,
)

TOPOLOGIES = ("tree", "fattree", "vl2")
SEEDS_PER_TOPOLOGY = 18  # 3 x 18 = 54 randomized instances >= the 50 floor


def random_topology(kind: str, rng: np.random.Generator):
    if kind == "tree":
        return build_tree(
            TreeConfig(
                depth=2,
                fanout=int(rng.integers(2, 5)),
                redundancy=int(rng.integers(1, 3)),
                server_resources=(float(rng.integers(2, 4)),),
            )
        )
    if kind == "fattree":
        return build_fattree(FatTreeConfig(k=4))
    return build_vl2(
        VL2Config(
            num_intermediate=int(rng.integers(2, 4)),
            num_aggregation=int(rng.integers(2, 4)),
            num_tor=4,
            servers_per_tor=int(rng.integers(2, 4)),
        )
    )


def random_instance(kind: str, seed: int) -> TAAInstance:
    """Random topology + workload, some containers placed, policies routed."""
    rng = np.random.default_rng(seed)
    topo = random_topology(kind, rng)
    num_maps = int(rng.integers(2, 7))
    num_reduces = int(rng.integers(1, 4))
    containers, flows = [], []
    map_ids, reduce_ids = [], []
    cid = 0
    for i in range(num_maps):
        containers.append(
            Container(cid, Resources(1.0, 0.0), TaskRef(0, TaskKind.MAP, i))
        )
        map_ids.append(cid)
        cid += 1
    for i in range(num_reduces):
        containers.append(
            Container(cid, Resources(1.0, 0.0), TaskRef(0, TaskKind.REDUCE, i))
        )
        reduce_ids.append(cid)
        cid += 1
    fid = 0
    for m in map_ids:
        for r in reduce_ids:
            size = float(rng.uniform(0.1, 2.0))
            flows.append(ShuffleFlow(fid, 0, 0, 0, m, r, size, size))
            fid += 1
    taa = TAAInstance(topo, containers, flows)
    for container in taa.cluster.containers():
        if rng.random() < 0.3:
            continue  # leave some containers unplaced
        candidates = [
            s for s in taa.cluster.server_ids
            if taa.cluster.fits(container.container_id, s)
        ]
        if candidates:
            taa.cluster.place(container.container_id, int(rng.choice(candidates)))
    taa.install_all_policies()
    return taa


CASES = [
    (kind, seed)
    for kind in TOPOLOGIES
    for seed in range(SEEDS_PER_TOPOLOGY)
]


@pytest.mark.parametrize("kind,seed", CASES)
def test_kernels_match_scalar_reference(kind, seed):
    taa = random_instance(kind, seed)
    controller = taa.controller
    servers = taa.cluster.server_ids

    # 1. Routing: the vectorised stage DP must return the *identical* path
    #    (including tie-breaks) and cost as the scalar frontier DP, both with
    #    and without capacity enforcement.
    rng = np.random.default_rng(1000 + seed)
    pair_count = min(30, len(servers) * (len(servers) - 1))
    pairs = {
        (int(rng.choice(servers)), int(rng.choice(servers)))
        for _ in range(pair_count)
    }
    pairs.update([(servers[0], servers[-1]), (servers[0], servers[0])])
    for a, b in sorted(pairs):
        for enforce in (False, True):
            rate = float(rng.uniform(0.1, 3.0))
            scalar = optimal_path_scalar(controller, a, b, rate, enforce)
            vector = controller.optimal_path(a, b, rate, enforce)
            assert vector[0] == scalar[0], (kind, seed, a, b, enforce)
            assert vector[1] == scalar[1], (kind, seed, a, b, enforce)

    # 2. Pair costs: the all-pairs matrix equals the per-pair scalar DPs.
    cache = PairCostCache(taa)
    scalar_cache = ScalarPairCostCache(taa)
    for a in servers:
        for b in servers:
            assert cache.unit_cost(a, b) == pytest.approx(
                scalar_cache.unit_cost(a, b), abs=1e-9
            ), (kind, seed, a, b)

    # 3. Grading: vectorised and scalar preference matrices agree entry-wise
    #    (same infeasibility pattern, costs within 1e-9).
    vec = build_preference_matrix(taa)
    ref = build_preference_matrix_scalar(taa)
    assert vec.server_ids == ref.server_ids
    assert vec.container_ids == ref.container_ids
    assert np.array_equal(np.isfinite(vec.cost), np.isfinite(ref.cost))
    finite = np.isfinite(ref.cost)
    np.testing.assert_allclose(
        vec.cost[finite], ref.cost[finite], rtol=0, atol=1e-9
    )
    np.testing.assert_allclose(
        np.nan_to_num(vec.current_cost, posinf=-1.0),
        np.nan_to_num(ref.current_cost, posinf=-1.0),
        rtol=0,
        atol=1e-9,
    )

    # 4. Matching: both matrices induce the identical stable assignment.
    vec_match = stable_match(vec, taa.cluster)
    ref_match = stable_match(ref, taa.cluster)
    assert vec_match.assignment == ref_match.assignment, (kind, seed)
    assert vec_match.unmatched == ref_match.unmatched, (kind, seed)
    assert vec_match.proposals == ref_match.proposals, (kind, seed)


@pytest.mark.parametrize("kind", TOPOLOGIES)
def test_capacity_pruning_matches_scalar(kind):
    """Saturate switches so the DP mask actually prunes, then compare."""
    taa = random_instance(kind, seed=7)
    controller = taa.controller
    servers = taa.cluster.server_ids
    # Drive some switches close to capacity as background load.
    rng = np.random.default_rng(77)
    for w in taa.topology.switch_ids:
        if rng.random() < 0.5:
            capacity = taa.topology.switch(w).capacity
            controller.set_base_load(w, capacity * float(rng.uniform(0.8, 1.0)))
    for a in servers[: min(6, len(servers))]:
        for b in servers[-min(6, len(servers)):]:
            rate = 5.0
            try:
                scalar = optimal_path_scalar(controller, a, b, rate, True)
            except Exception as exc:
                with pytest.raises(type(exc)):
                    controller.optimal_path(a, b, rate, True)
                continue
            vector = controller.optimal_path(a, b, rate, True)
            assert vector == scalar, (kind, a, b)


@pytest.mark.parametrize("kind", TOPOLOGIES)
@pytest.mark.parametrize("seed", range(3))
def test_hit_optimizer_determinism_on_vector_path(kind, seed):
    """The end-to-end loop (vectorised kernels + shared pair cache) is
    deterministic: identical placements, cost traces and matchings across
    two fresh runs, and the result is feasible."""
    taa1 = random_instance(kind, 500 + seed)
    taa2 = random_instance(kind, 500 + seed)
    r1 = HitOptimizer(taa1, HitConfig(seed=seed)).optimize_initial_wave()
    r2 = HitOptimizer(taa2, HitConfig(seed=seed)).optimize_initial_wave()
    assert r1.placement == r2.placement
    assert r1.cost_trace == r2.cost_trace
    assert [m.assignment for m in r1.matchings] == [
        m.assignment for m in r2.matchings
    ]
    assert taa1.verify_constraints() == []
