"""Preference-matrix construction (Sections 5.2.1-5.2.2)."""

import numpy as np
import pytest

from repro.core import build_preference_matrix
from repro.core.preference import PairCostCache

from ..conftest import make_job, make_taa


@pytest.fixture
def placed_taa(small_tree):
    taa, map_ids, reduce_ids = make_taa(small_tree)
    for i, cid in enumerate(map_ids):
        taa.cluster.place(cid, i)  # maps on servers 0..3
    for i, cid in enumerate(reduce_ids):
        taa.cluster.place(cid, 12 + i)  # reduces on the far rack
    taa.install_all_policies()
    return taa, map_ids, reduce_ids


class TestPairCostCache:
    def test_symmetry(self, placed_taa):
        taa, *_ = placed_taa
        cache = PairCostCache(taa)
        assert len(cache) == 0  # columns are priced lazily
        # Costs are mathematically symmetric; the two orientations are priced
        # by different single-source passes, so equality holds up to float
        # summation order.
        assert cache.unit_cost(0, 15) == pytest.approx(
            cache.unit_cost(15, 0), abs=0, rel=1e-12
        )
        assert len(cache) == 2  # exactly the two requested columns priced
        matrix = cache.matrix
        assert len(cache) == 16  # .matrix forces every column
        assert np.allclose(matrix, matrix.T, rtol=1e-12, atol=0)
        assert np.all(np.diag(matrix) == 0.0)

    def test_zero_for_same_server(self, placed_taa):
        taa, *_ = placed_taa
        assert PairCostCache(taa).unit_cost(3, 3) == 0.0

    def test_matches_controller_dp(self, placed_taa):
        taa, *_ = placed_taa
        cache = PairCostCache(taa)
        _, expected = taa.controller.optimal_path(0, 15, 1.0, enforce_capacity=False)
        assert cache.unit_cost(0, 15) == pytest.approx(expected)


class TestMatrix:
    def test_shape_and_ids(self, placed_taa):
        taa, map_ids, reduce_ids = placed_taa
        pref = build_preference_matrix(taa)
        assert pref.cost.shape == (16, len(map_ids) + len(reduce_ids))
        assert pref.container_ids == tuple(map_ids + reduce_ids)

    def test_subset_columns(self, placed_taa):
        taa, map_ids, reduce_ids = placed_taa
        pref = build_preference_matrix(taa, container_ids=reduce_ids)
        assert pref.container_ids == tuple(reduce_ids)

    def test_current_cost_matches_column(self, placed_taa):
        taa, map_ids, _ = placed_taa
        pref = build_preference_matrix(taa)
        j = pref.container_ids.index(map_ids[0])
        current_server = taa.cluster.container(map_ids[0]).server_id
        i = pref.server_ids.index(current_server)
        assert pref.current_cost[j] == pytest.approx(pref.cost[i, j])

    def test_container_ranking_sorted_by_cost(self, placed_taa):
        taa, map_ids, _ = placed_taa
        pref = build_preference_matrix(taa)
        cid = map_ids[0]
        ranking = pref.container_ranking(cid)
        j = pref.container_ids.index(cid)
        costs = [pref.cost[pref.server_ids.index(s), j] for s in ranking]
        assert costs == sorted(costs)

    def test_best_server_for_reduce_is_near_maps(self, small_tree):
        # One map on server 0, one reduce far away: the reduce's cheapest
        # server must be server 0 itself (co-location).
        taa, map_ids, reduce_ids = make_taa(
            small_tree, make_job(num_maps=1, num_reduces=1)
        )
        taa.cluster.place(map_ids[0], 0)
        taa.cluster.place(reduce_ids[0], 15)
        taa.install_all_policies()
        pref = build_preference_matrix(taa, container_ids=reduce_ids)
        assert pref.container_ranking(reduce_ids[0])[0] == 0

    def test_utility_is_current_minus_target(self, placed_taa):
        taa, map_ids, _ = placed_taa
        pref = build_preference_matrix(taa)
        cid = map_ids[0]
        j = pref.container_ids.index(cid)
        for s in (0, 5, 15):
            i = pref.server_ids.index(s)
            assert pref.utility(s, cid) == pytest.approx(
                pref.current_cost[j] - pref.cost[i, j]
            )

    def test_grade_is_negated_cost(self, placed_taa):
        taa, map_ids, _ = placed_taa
        pref = build_preference_matrix(taa)
        cid = map_ids[0]
        j = pref.container_ids.index(cid)
        assert pref.grade(3, cid) == pytest.approx(-pref.cost[3, j])

    def test_server_ranking_by_utility(self, placed_taa):
        taa, *_ = placed_taa
        pref = build_preference_matrix(taa)
        s = pref.server_ids[0]
        ranking = pref.server_ranking(s)
        utilities = [pref.utility(s, c) for c in ranking]
        assert utilities == sorted(utilities, reverse=True)

    def test_server_rank_of_consistent(self, placed_taa):
        taa, *_ = placed_taa
        pref = build_preference_matrix(taa)
        s = pref.server_ids[0]
        rank = pref.server_rank_of(s)
        ranking = pref.server_ranking(s)
        assert [rank[c] for c in ranking] == list(range(len(ranking)))

    def test_flowless_containers_excluded_by_default(self, small_tree):
        from repro.cluster import Container, Resources
        from repro.core import TAAInstance

        taa, *_ = make_taa(small_tree)
        taa.cluster.add_container(Container(999, Resources(1, 0)))
        pref = build_preference_matrix(taa)
        assert 999 not in pref.container_ids
