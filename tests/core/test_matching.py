"""Algorithm 2: modified Gale-Shapley stable matching with capacities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterState, Container, Resources
from repro.core import find_blocking_pairs, stable_match
from repro.core.preference import PreferenceMatrix
from repro.topology import Link, Server, Switch, Tier, Topology


def make_cluster(server_caps, demands):
    """A trivial star topology with the given per-server capacities."""
    n = len(server_caps)
    servers = [
        Server(i, f"s{i}", resource_capacity=(cap,)) for i, cap in enumerate(server_caps)
    ]
    switch = Switch(n, "w", Tier.ACCESS, 100.0)
    links = [Link(i, n, 10.0) for i in range(n)]
    topo = Topology(servers, [switch], links)
    cluster = ClusterState(topo)
    for cid, demand in enumerate(demands):
        cluster.add_container(Container(cid, Resources(demand, 0.0)))
    return cluster


def make_preferences(cost_matrix, cluster, current=None):
    """PreferenceMatrix from an explicit server x container cost array."""
    cost = np.asarray(cost_matrix, dtype=np.float64)
    m, n = cost.shape
    current_cost = np.full(n, np.inf)
    if current is not None:
        current_cost = np.asarray(current, dtype=np.float64)
    return PreferenceMatrix(
        server_ids=tuple(range(m)),
        container_ids=tuple(range(n)),
        cost=cost,
        current_cost=current_cost,
    )


class TestBasicMatching:
    def test_everyone_gets_first_choice_when_room(self):
        cluster = make_cluster([2.0, 2.0], [1.0, 1.0])
        pref = make_preferences([[1.0, 5.0], [5.0, 1.0]], cluster)
        result = stable_match(pref, cluster)
        assert result.assignment == {0: 0, 1: 1}
        assert result.unmatched == []

    def test_capacity_forces_second_choice(self):
        # Both containers prefer server 0, which fits only one.
        cluster = make_cluster([1.0, 2.0], [1.0, 1.0])
        # Server prefers the container with higher utility = current - cost.
        pref = make_preferences(
            [[1.0, 1.0], [5.0, 5.0]], cluster, current=[10.0, 3.0]
        )
        result = stable_match(pref, cluster)
        # Container 0 has utility 9 on server 0; container 1 only 2.
        assert result.assignment[0] == 0
        assert result.assignment[1] == 1

    def test_eviction_cascades(self):
        # c1 arrives at s0 first, then c0 (preferred by s0) evicts it.
        cluster = make_cluster([1.0, 1.0], [1.0, 1.0])
        pref = make_preferences(
            [[1.0, 1.0], [2.0, 2.0]], cluster, current=[10.0, 1.5]
        )
        result = stable_match(pref, cluster)
        assert result.assignment == {0: 0, 1: 1}
        assert result.evictions >= 0

    def test_unmatched_when_nothing_fits(self):
        cluster = make_cluster([1.0], [1.0, 1.0])
        pref = make_preferences([[1.0, 1.0]], cluster, current=[5.0, 2.0])
        result = stable_match(pref, cluster)
        assert len(result.assignment) == 1
        assert len(result.unmatched) == 1

    def test_infinite_cost_servers_skipped(self):
        cluster = make_cluster([2.0, 2.0], [1.0])
        pref = make_preferences([[np.inf], [3.0]], cluster)
        result = stable_match(pref, cluster)
        assert result.assignment == {0: 1}

    def test_matching_does_not_mutate_cluster(self):
        cluster = make_cluster([2.0, 2.0], [1.0, 1.0])
        pref = make_preferences([[1.0, 2.0], [2.0, 1.0]], cluster)
        stable_match(pref, cluster)
        assert all(not c.is_placed for c in cluster.containers())

    def test_respects_fixed_containers_outside_matrix(self):
        # Container 1 is already placed on server 0 and not in the matrix;
        # its demand must count against server 0's capacity.
        cluster = make_cluster([1.0, 2.0], [1.0, 1.0])
        cluster.place(1, 0)
        pref = make_preferences(
            [[1.0], [5.0]], cluster, current=[np.inf]
        )
        # Matrix only covers container 0.
        pref = PreferenceMatrix(
            server_ids=(0, 1),
            container_ids=(0,),
            cost=np.array([[1.0], [5.0]]),
            current_cost=np.array([np.inf]),
        )
        result = stable_match(pref, cluster)
        assert result.assignment[0] == 1  # server 0 is effectively full

    def test_proposal_bound(self):
        """O(M x N): proposals never exceed servers x containers."""
        rng = np.random.default_rng(0)
        m, n = 6, 12
        cluster = make_cluster([2.0] * m, [1.0] * n)
        cost = rng.uniform(1, 10, size=(m, n))
        pref = make_preferences(cost, cluster, current=rng.uniform(5, 15, n))
        result = stable_match(pref, cluster)
        assert result.proposals <= m * n


class TestStability:
    def check_stable(self, m, n, seed, caps=2.0):
        rng = np.random.default_rng(seed)
        cluster = make_cluster([caps] * m, [1.0] * n)
        cost = rng.uniform(1, 10, size=(m, n))
        current = rng.uniform(1, 20, size=n)
        pref = make_preferences(cost, cluster, current=current)
        result = stable_match(pref, cluster)
        blocking = find_blocking_pairs(result, pref, cluster)
        assert blocking == [], f"blocking pairs found: {blocking}"
        return result

    def test_stable_small(self):
        self.check_stable(3, 5, seed=1)

    def test_stable_medium(self):
        self.check_stable(8, 20, seed=2)

    def test_stable_tight_capacity(self):
        self.check_stable(10, 10, seed=3, caps=1.0)

    @settings(max_examples=25, deadline=None)
    @given(
        m=st.integers(2, 8),
        n=st.integers(1, 16),
        seed=st.integers(0, 10_000),
    )
    def test_property_no_blocking_pairs(self, m, n, seed):
        """Uniform-demand random instances always yield a stable matching."""
        self.check_stable(m, n, seed)

    @settings(max_examples=15, deadline=None)
    @given(m=st.integers(2, 6), n=st.integers(1, 12), seed=st.integers(0, 9999))
    def test_property_capacity_never_violated(self, m, n, seed):
        rng = np.random.default_rng(seed)
        caps = rng.uniform(1.0, 3.0, size=m)
        demands = rng.uniform(0.3, 1.2, size=n)
        cluster = make_cluster(list(caps), list(demands))
        cost = rng.uniform(1, 10, size=(m, n))
        pref = make_preferences(cost, cluster, current=rng.uniform(1, 20, n))
        result = stable_match(pref, cluster)
        used = {s: 0.0 for s in range(m)}
        for c, s in result.assignment.items():
            used[s] += demands[c]
        for s in range(m):
            assert used[s] <= caps[s] + 1e-9

    def test_deterministic(self):
        r1 = self.check_stable(5, 10, seed=7)
        r2 = self.check_stable(5, 10, seed=7)
        assert r1.assignment == r2.assignment
