"""Differential tests for Algorithm 1 and the Hit pipeline.

Two oracles:

* **brute force** — `optimal_path`'s stage DP must return exactly the
  cheapest path that explicit enumeration over the equal-cost path set
  finds, on small Tree and FatTree fabrics, under random switch loads, with
  and without the capacity constraint;
* **baselines** — on identical seeds and workloads, the Hit placement can
  never produce a higher shuffle cost than the Random or ECMP baselines
  (the whole point of the optimisation).
"""

import numpy as np
import pytest

from repro.core.policy import CostModel, NoFeasiblePathError, PolicyController
from repro.experiments import build_static_workload, run_static_placement
from repro.experiments import configs
from repro.mapreduce import WorkloadGenerator
from repro.schedulers import make_scheduler
from repro.topology import (
    FatTreeConfig,
    TreeConfig,
    build_fattree,
    build_tree,
)
from repro.topology.routing import enumerate_paths


def brute_force_best(controller, src, dst, rate, enforce_capacity, slack_max):
    """Cheapest feasible path by explicit enumeration (slack-extended)."""
    best, best_cost = None, float("inf")
    for slack in range(slack_max + 1):
        for path in enumerate_paths(
            controller.topology, src, dst, slack=slack, limit=4096
        ):
            if enforce_capacity and not all(
                controller.residual(n) >= rate
                for n in path
                if controller.topology.is_switch(n)
            ):
                continue
            cost = controller.path_cost(path, rate)
            if cost < best_cost - 1e-12:
                best, best_cost = path, cost
        if best is not None:
            # Mirror the DP's semantics: shortest feasible length wins; only
            # extend the slack when everything shorter is pruned.
            return best, best_cost
    return best, best_cost


TOPOLOGIES = {
    "tree": lambda: build_tree(
        TreeConfig(depth=2, fanout=3, redundancy=2, server_resources=(2.0,))
    ),
    "fattree": lambda: build_fattree(FatTreeConfig(k=4, server_resources=(2.0,))),
}


@pytest.mark.parametrize("kind", sorted(TOPOLOGIES))
@pytest.mark.parametrize("seed", range(12))
def test_dp_matches_brute_force_under_random_load(kind, seed):
    topo = TOPOLOGIES[kind]()
    rng = np.random.default_rng(seed)
    controller = PolicyController(
        topo, cost_model=CostModel(congestion_weight=0.5)
    )
    # Random background load pattern, below capacity so paths stay feasible.
    for w in topo.switch_ids:
        cap = topo.switch(w).capacity
        controller.set_base_load(w, float(rng.uniform(0.0, 0.6 * cap)))
    servers = list(topo.server_ids)
    for _ in range(6):
        src, dst = rng.choice(servers, size=2, replace=False)
        src, dst = int(src), int(dst)
        rate = float(rng.uniform(0.1, 1.5))
        for enforce in (False, True):
            expected_path, expected_cost = brute_force_best(
                controller, src, dst, rate, enforce, controller.max_slack
            )
            try:
                path, cost = controller.optimal_path(
                    src, dst, rate, enforce_capacity=enforce
                )
            except NoFeasiblePathError:
                assert expected_path is None, (
                    f"DP failed but enumeration found {expected_path}"
                )
                continue
            assert expected_path is not None
            assert cost == pytest.approx(expected_cost), (
                f"{kind} seed={seed} {src}->{dst} enforce={enforce}: "
                f"DP {path} costs {cost}, brute force {expected_path} "
                f"costs {expected_cost}"
            )


@pytest.mark.parametrize("seed", range(8))
def test_dp_matches_brute_force_with_tight_capacity(seed):
    """Capacity pruning: load a random switch to the brim and re-compare."""
    topo = TOPOLOGIES["tree"]()
    rng = np.random.default_rng(100 + seed)
    controller = PolicyController(topo)
    # Saturate a random third of the switches.
    for w in topo.switch_ids:
        if rng.random() < 0.33:
            controller.set_base_load(w, topo.switch(w).capacity)
    servers = list(topo.server_ids)
    src, dst = (int(x) for x in rng.choice(servers, size=2, replace=False))
    rate = 0.5
    expected_path, expected_cost = brute_force_best(
        controller, src, dst, rate, True, controller.max_slack
    )
    try:
        _, cost = controller.optimal_path(src, dst, rate, enforce_capacity=True)
    except NoFeasiblePathError:
        assert expected_path is None
        return
    assert expected_path is not None
    assert cost == pytest.approx(expected_cost)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_hit_no_worse_than_random_and_ecmp(seed):
    """Same seed, same workload: Hit's static shuffle cost must not exceed
    the Random or ECMP baselines'."""
    generator = WorkloadGenerator(
        seed=seed, input_size_range=(4.0, 10.0), map_rate=8.0, reduce_rate=8.0
    )
    jobs = generator.make_workload(4)
    costs = {}
    for name in ("hit", "random", "capacity-ecmp"):
        topology = configs.testbed_tree()
        workload = build_static_workload(topology, jobs, seed=seed)
        result = run_static_placement(
            workload, make_scheduler(name, seed=seed), seed=seed
        )
        costs[name] = result.shuffle_cost
    assert costs["hit"] <= costs["random"] + 1e-9, costs
    assert costs["hit"] <= costs["capacity-ecmp"] + 1e-9, costs
