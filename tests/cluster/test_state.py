"""ClusterState placement bookkeeping and capacity enforcement."""

import pytest

from repro.cluster import ClusterState, Container, Resources, TaskKind, TaskRef
from repro.topology import TreeConfig, build_tree


@pytest.fixture
def cluster():
    topo = build_tree(TreeConfig(depth=2, fanout=2, redundancy=1, server_resources=(2.0,)))
    return ClusterState(topo)


def c(cid, mem=1.0):
    return Container(cid, Resources(mem, 0.0))


class TestContainers:
    def test_add_and_lookup(self, cluster):
        cluster.add_container(c(0))
        assert cluster.container(0).container_id == 0
        assert cluster.num_containers == 1

    def test_duplicate_id_rejected(self, cluster):
        cluster.add_container(c(0))
        with pytest.raises(ValueError, match="duplicate"):
            cluster.add_container(c(0))

    def test_add_preplaced_container(self, cluster):
        cluster.add_container(Container(0, Resources(1, 0), server_id=1))
        assert cluster.container(0).server_id == 1
        assert cluster.used(1) == Resources(1, 0)

    def test_unplaced_list(self, cluster):
        cluster.add_containers([c(0), c(1)])
        cluster.place(0, 0)
        assert [x.container_id for x in cluster.unplaced_containers()] == [1]

    def test_task_kind_helpers(self, cluster):
        m = Container(0, Resources(1, 0), TaskRef(0, TaskKind.MAP, 0))
        r = Container(1, Resources(1, 0), TaskRef(0, TaskKind.REDUCE, 0))
        idle = Container(2, Resources(1, 0))
        assert m.hosts_map and not m.hosts_reduce
        assert r.hosts_reduce and not r.hosts_map
        assert not idle.hosts_map and not idle.hosts_reduce


class TestPlacement:
    def test_place_updates_accounting(self, cluster):
        cluster.add_container(c(0))
        cluster.place(0, 2)
        assert cluster.container(0).server_id == 2
        assert cluster.used(2) == Resources(1, 0)
        assert cluster.residual(2) == Resources(1, 0)
        assert cluster.hosted_on(2) == (0,)

    def test_place_respects_capacity(self, cluster):
        cluster.add_containers([c(0, 2.0), c(1, 1.0)])
        cluster.place(0, 0)
        with pytest.raises(ValueError, match="capacity"):
            cluster.place(1, 0)

    def test_double_place_rejected(self, cluster):
        cluster.add_container(c(0))
        cluster.place(0, 0)
        with pytest.raises(ValueError, match="already placed"):
            cluster.place(0, 1)

    def test_unknown_server_rejected(self, cluster):
        cluster.add_container(c(0))
        with pytest.raises(KeyError):
            cluster.place(0, 999)

    def test_unplace_refunds(self, cluster):
        cluster.add_container(c(0))
        cluster.place(0, 1)
        cluster.unplace(0)
        assert cluster.container(0).server_id is None
        assert cluster.used(1).is_zero
        assert cluster.hosted_on(1) == ()

    def test_unplace_unplaced_rejected(self, cluster):
        cluster.add_container(c(0))
        with pytest.raises(ValueError, match="not placed"):
            cluster.unplace(0)

    def test_move(self, cluster):
        cluster.add_container(c(0))
        cluster.place(0, 0)
        cluster.move(0, 3)
        assert cluster.container(0).server_id == 3
        assert cluster.used(0).is_zero

    def test_move_to_same_server_noop(self, cluster):
        cluster.add_container(c(0))
        cluster.place(0, 0)
        cluster.move(0, 0)
        assert cluster.container(0).server_id == 0

    def test_move_rolls_back_on_failure(self, cluster):
        cluster.add_containers([c(0, 2.0), c(1, 2.0)])
        cluster.place(0, 0)
        cluster.place(1, 1)
        with pytest.raises(ValueError):
            cluster.move(1, 0)  # server 0 is full
        # rollback: container 1 still on server 1
        assert cluster.container(1).server_id == 1
        assert cluster.used(1) == Resources(2, 0)


class TestQueries:
    def test_fits(self, cluster):
        cluster.add_containers([c(0, 2.0), c(1, 1.0)])
        assert cluster.fits(0, 0)
        cluster.place(0, 0)
        assert not cluster.fits(1, 0)

    def test_candidate_servers_eq8(self, cluster):
        cluster.add_containers([c(0, 2.0), c(1, 2.0)])
        cluster.place(0, 0)
        # server 0 full; candidates for c1 exclude it.
        assert 0 not in cluster.candidate_servers(1)
        assert set(cluster.candidate_servers(1)) == {1, 2, 3}

    def test_current_server_always_candidate(self, cluster):
        cluster.add_container(c(0, 2.0))
        cluster.place(0, 0)
        assert 0 in cluster.candidate_servers(0)

    def test_snapshot(self, cluster):
        cluster.add_containers([c(0), c(1)])
        cluster.place(0, 2)
        assert cluster.placement_snapshot() == {0: 2, 1: None}

    def test_validate_passes_on_consistent_state(self, cluster):
        cluster.add_containers([c(0), c(1)])
        cluster.place(0, 0)
        cluster.place(1, 0)
        cluster.validate()

    def test_capacity_from_topology(self, cluster):
        for sid in cluster.server_ids:
            assert cluster.capacity(sid) == Resources(2.0, 0.0)
