"""Container and TaskRef semantics."""

import pytest

from repro.cluster import Container, Resources, TaskKind, TaskRef


class TestTaskRef:
    def test_string_form_matches_hadoop_style(self):
        assert str(TaskRef(3, TaskKind.MAP, 7)) == "j3.M7"
        assert str(TaskRef(0, TaskKind.REDUCE, 2)) == "j0.R2"

    def test_hashable_and_equal(self):
        a = TaskRef(1, TaskKind.MAP, 0)
        b = TaskRef(1, TaskKind.MAP, 0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != TaskRef(1, TaskKind.REDUCE, 0)

    def test_usable_as_dict_key(self):
        table = {TaskRef(0, TaskKind.MAP, 0): "s1"}
        assert table[TaskRef(0, TaskKind.MAP, 0)] == "s1"


class TestContainer:
    def test_unplaced_by_default(self):
        c = Container(0, Resources(1, 0))
        assert not c.is_placed
        assert c.server_id is None

    def test_kind_predicates(self):
        m = Container(0, Resources(1, 0), TaskRef(0, TaskKind.MAP, 0))
        r = Container(1, Resources(1, 0), TaskRef(0, TaskKind.REDUCE, 0))
        idle = Container(2, Resources(1, 0))
        assert m.hosts_map and not m.hosts_reduce
        assert r.hosts_reduce and not r.hosts_map
        assert not idle.hosts_map and not idle.hosts_reduce

    def test_repr_readable(self):
        c = Container(5, Resources(1, 0), TaskRef(2, TaskKind.MAP, 1), server_id=3)
        text = repr(c)
        assert "j2.M1" in text and "@s3" in text

    def test_repr_unplaced(self):
        assert "@?" in repr(Container(0, Resources(1, 0)))
