"""Resource-vector arithmetic and ordering, incl. property-based checks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import Resources

finite = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


class TestConstruction:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Resources(-1.0, 0.0)
        with pytest.raises(ValueError):
            Resources(0.0, -0.5)

    def test_zero(self):
        z = Resources.zero()
        assert z.is_zero
        assert z.memory == 0 and z.vcores == 0

    def test_from_tuple_pads_missing(self):
        r = Resources.from_tuple((3.0,))
        assert r == Resources(3.0, 0.0)

    def test_from_tuple_full(self):
        assert Resources.from_tuple((3.0, 2.0)) == Resources(3.0, 2.0)


class TestArithmetic:
    def test_add(self):
        assert Resources(1, 2) + Resources(3, 4) == Resources(4, 6)

    def test_sub(self):
        assert Resources(3, 4) - Resources(1, 2) == Resources(2, 2)

    def test_sub_below_zero_raises(self):
        with pytest.raises(ValueError):
            Resources(1, 1) - Resources(2, 0)

    def test_scalar_multiply(self):
        assert Resources(1, 2) * 3 == Resources(3, 6)
        assert 3 * Resources(1, 2) == Resources(3, 6)

    def test_iter_and_tuple(self):
        assert tuple(Resources(1, 2)) == (1, 2)
        assert Resources(1, 2).as_tuple() == (1, 2)


class TestOrdering:
    def test_fits_in(self):
        assert Resources(1, 1).fits_in(Resources(2, 2))
        assert Resources(2, 2).fits_in(Resources(2, 2))
        assert not Resources(3, 1).fits_in(Resources(2, 2))
        assert not Resources(1, 3).fits_in(Resources(2, 2))

    def test_dominates(self):
        assert Resources(2, 2).dominates(Resources(1, 2))
        assert not Resources(2, 2).dominates(Resources(3, 0))

    def test_partial_order_incomparable(self):
        a, b = Resources(2, 1), Resources(1, 2)
        assert not a.fits_in(b) and not b.fits_in(a)


@given(m1=finite, v1=finite, m2=finite, v2=finite)
def test_property_add_then_sub_roundtrips(m1, v1, m2, v2):
    a, b = Resources(m1, v1), Resources(m2, v2)
    back = (a + b) - b
    assert back.memory == pytest.approx(a.memory, abs=1e-6, rel=1e-9)
    assert back.vcores == pytest.approx(a.vcores, abs=1e-6, rel=1e-9)


@given(m1=finite, v1=finite, m2=finite, v2=finite)
def test_property_fits_in_consistent_with_sum(m1, v1, m2, v2):
    a, b = Resources(m1, v1), Resources(m2, v2)
    assert a.fits_in(a + b)


@given(m=finite, v=finite)
def test_property_zero_is_identity(m, v):
    r = Resources(m, v)
    assert r + Resources.zero() == r
    assert Resources.zero().fits_in(r)
