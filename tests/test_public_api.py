"""Public-API hygiene: __all__ consistency and import surface."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.topology",
    "repro.cluster",
    "repro.mapreduce",
    "repro.core",
    "repro.schedulers",
    "repro.yarnsim",
    "repro.simulator",
    "repro.experiments",
    "repro.analysis",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    """Every name a package exports in __all__ must actually exist."""
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} lacks __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_docstrings_present(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_scheduler_factory_covers_cli_choices():
    """Every scheduler the CLI offers must be constructible."""
    from repro.cli import SCHEDULER_CHOICES
    from repro.schedulers import make_scheduler

    for name in SCHEDULER_CHOICES:
        scheduler = make_scheduler(name, seed=0)
        assert scheduler is not None


def test_no_private_leaks_in_all():
    for name in PACKAGES:
        module = importlib.import_module(name)
        for symbol in module.__all__:
            if symbol.startswith("__") and symbol.endswith("__"):
                continue  # dunders like __version__ are fine
            assert not symbol.startswith("_"), f"{name} exports private {symbol}"
