"""Speculative execution through the discrete-event engine.

The contracts from ``ISSUE``/``docs/fault_model.md``:

* **no-fault byte identity** — with speculation enabled but no faults, the
  detector never fires and the run is bit-identical to speculation-off;
* **mitigation** — under scripted straggler slowdowns (factor >= 4 on ~10%
  of servers) speculation reduces mean JCT on the same shared timeline;
* **failure interplay** — losing the backup's server mid-race still commits
  the original; losing the original's server promotes the backup;
* **invariants** — one committed attempt per map, no flow from a killed
  attempt, checked in raise mode throughout.
"""

import dataclasses

import pytest

from repro.experiments import configs, fault_degradation, straggler_timeline
from repro.faults import FaultKind, FaultSpec
from repro.obs import InvariantChecker, observe
from repro.schedulers import make_scheduler
from repro.simulator import MapReduceSimulator
from repro.speculation import SpeculationConfig

NUM_JOBS = 8


def build_sim(seed=0, scheduler="hit", speculation=None, faults=(), retries=10):
    config = dataclasses.replace(
        configs.testbed_simulation_config(seed=seed),
        faults=tuple(faults),
        speculation=speculation,
        max_task_retries=retries,
    )
    return MapReduceSimulator(
        configs.testbed_tree(),
        make_scheduler(scheduler, seed=seed),
        list(configs.testbed_workload(seed=seed, num_jobs=NUM_JOBS)),
        config,
    )


def run_checked(sim):
    with observe(checker=InvariantChecker(mode="raise")):
        return sim.run()


def task_tuples(metrics):
    return sorted(
        (t.job_id, t.kind, t.index, t.start, t.finish) for t in metrics.tasks
    )


@pytest.fixture(scope="module")
def stragglers():
    return straggler_timeline(configs.testbed_tree(), fraction=0.1, factor=6.0)


class TestByteIdentity:
    @pytest.mark.parametrize("scheduler", ["hit", "capacity", "random"])
    def test_no_faults_means_no_behaviour_change(self, scheduler):
        plain = run_checked(build_sim(scheduler=scheduler))
        sim = build_sim(scheduler=scheduler, speculation=SpeculationConfig())
        spec = run_checked(sim)
        assert task_tuples(plain) == task_tuples(spec)
        assert plain.summary() == spec.summary()
        # The detector swept but never found a candidate.
        counters = sim.speculation.summary()
        assert counters.get("spec.sweeps", 0) > 0
        assert counters.get("spec.launched", 0) == 0

    def test_speculative_faulty_run_is_deterministic(self, stragglers):
        results = [
            task_tuples(
                run_checked(
                    build_sim(
                        speculation=SpeculationConfig(), faults=stragglers
                    )
                )
            )
            for _ in range(2)
        ]
        assert results[0] == results[1]


class TestMitigation:
    def test_speculation_reduces_mean_jct_under_stragglers(self, stragglers):
        result = fault_degradation(
            seed=0,
            timeline=stragglers,
            scheduler_names=("hit", "random"),
            speculation=SpeculationConfig(),
        )
        for name, run in result.runs.items():
            assert run.mitigated is not None
            assert run.mitigated.mean_jct() < run.faulty.mean_jct(), name
            assert run.spec_counters.get("spec.wins", 0) > 0, name
            assert run.mitigation_gain > 0.0, name

    def test_backups_fire_and_jobs_complete(self, stragglers):
        sim = build_sim(speculation=SpeculationConfig(), faults=stragglers)
        metrics = run_checked(sim)
        assert len(metrics.jobs) == NUM_JOBS
        counters = sim.speculation.summary()
        assert counters.get("spec.launched", 0) > 0
        # Every launched backup resolved: the pair ledger drained.
        assert not sim.speculation.backup_of
        assert not sim.speculation.primary_of


def first_backup_launch(stragglers):
    """Dry-run a speculative straggler scenario and report the first backup:
    (launch time, original's server, backup's server)."""
    sim = build_sim(speculation=SpeculationConfig(), faults=stragglers)
    launches = []
    real = sim._launch_backup

    def spy(now, job, cand):
        before = set(sim.speculation.primary_of)
        real(now, job, cand)
        for bcid in set(sim.speculation.primary_of) - before:
            launches.append(
                (
                    now,
                    sim.cluster.container(cand.cid).server_id,
                    sim.cluster.container(bcid).server_id,
                )
            )

    sim._launch_backup = spy
    run_checked(sim)
    assert launches, "scenario must actually speculate"
    return launches[0]


class TestFailureInterplay:
    def test_backup_server_failure_leaves_original_to_commit(self, stragglers):
        t_launch, _, backup_server = first_backup_launch(stragglers)
        timeline = stragglers + (
            FaultSpec(t_launch + 1e-3, FaultKind.SERVER_FAIL, backup_server),
        )
        sim = build_sim(speculation=SpeculationConfig(), faults=timeline)
        metrics = run_checked(sim)
        assert len(metrics.jobs) == NUM_JOBS
        assert sim.speculation.counters.get("spec.backups_lost", 0) >= 1

    def test_original_server_failure_promotes_backup(self, stragglers):
        t_launch, origin_server, _ = first_backup_launch(stragglers)
        timeline = stragglers + (
            FaultSpec(t_launch + 1e-3, FaultKind.SERVER_FAIL, origin_server),
        )
        sim = build_sim(speculation=SpeculationConfig(), faults=timeline)
        metrics = run_checked(sim)
        assert len(metrics.jobs) == NUM_JOBS
        assert sim.speculation.counters.get("spec.promoted", 0) >= 1


class TestBackupPlacement:
    def test_hit_ranks_backups_by_shuffle_cost(self, stragglers):
        """The Hit scheduler's hook must be consulted and return a full
        deterministic ranking of the candidate servers."""
        sim = build_sim(speculation=SpeculationConfig(), faults=stragglers)
        calls = []
        scheduler = sim.scheduler
        real = scheduler.rank_backup_servers

        def spy(ctx, job, flows, candidates):
            ranked = real(ctx, job, flows, candidates)
            calls.append((list(candidates), ranked))
            return ranked

        scheduler.rank_backup_servers = spy
        run_checked(sim)
        assert calls, "hit must be asked to rank backup candidates"
        for candidates, ranked in calls:
            assert ranked is not None
            assert sorted(ranked) == sorted(candidates)

    def test_baselines_fall_back_to_greedy(self, stragglers):
        """Topology-unaware schedulers return None and still speculate."""
        sim = build_sim(
            scheduler="capacity",
            speculation=SpeculationConfig(),
            faults=stragglers,
        )
        run_checked(sim)
        assert sim.speculation.counters.get("spec.launched", 0) > 0
