"""LATE detector unit tests: normalised rates, guards, ranking, quota."""

import pytest

from repro.speculation import (
    AttemptProgress,
    ProgressTracker,
    SpeculationConfig,
)


class TestSpeculationConfig:
    def test_defaults_valid(self):
        config = SpeculationConfig()
        assert 0.0 < config.quota <= 1.0
        assert 0.0 < config.threshold < 1.0

    @pytest.mark.parametrize("quota", [0.0, -0.1, 1.5])
    def test_rejects_bad_quota(self, quota):
        with pytest.raises(ValueError, match="quota"):
            SpeculationConfig(quota=quota)

    @pytest.mark.parametrize("threshold", [0.0, 1.0, -0.5])
    def test_rejects_bad_threshold(self, threshold):
        with pytest.raises(ValueError, match="threshold"):
            SpeculationConfig(threshold=threshold)

    def test_rejects_negative_min_age(self):
        with pytest.raises(ValueError, match="min_age"):
            SpeculationConfig(min_age=-0.1)

    def test_rejects_zero_check_interval(self):
        with pytest.raises(ValueError, match="check_interval"):
            SpeculationConfig(check_interval=0.0)

    def test_backups_allowed_floor_of_one(self):
        config = SpeculationConfig(quota=0.2)
        assert config.backups_allowed(1) == 1
        assert config.backups_allowed(4) == 1
        assert config.backups_allowed(10) == 2
        assert config.backups_allowed(16) == 3


class TestAttemptProgress:
    def test_normalised_rate(self):
        # Nominal duration 1.0 but expected to take 4.0: quarter speed.
        a = AttemptProgress(
            job_id=0, map_index=0, cid=1, start=0.0,
            duration=4.0, nominal_duration=1.0,
        )
        assert a.rate == pytest.approx(0.25)

    def test_healthy_rate_is_exactly_one(self):
        # Exact equality matters: rates derive from the duration floats, not
        # from timestamp differences (whose rounding would break this).
        a = AttemptProgress(
            job_id=0, map_index=0, cid=1, start=2.0,
            duration=0.37, nominal_duration=0.37,
        )
        assert a.rate == 1.0

    def test_remaining_and_age(self):
        a = AttemptProgress(
            job_id=0, map_index=0, cid=1, start=1.0,
            duration=2.0, nominal_duration=2.0,
        )
        assert a.expected_finish == pytest.approx(3.0)
        assert a.remaining(1.5) == pytest.approx(1.5)
        assert a.remaining(5.0) == 0.0
        assert a.age(1.5) == pytest.approx(0.5)


def start(tracker, cid, *, job=0, mi=None, t0=0.0, expected=1.0, nominal=1.0):
    tracker.note_start(job, cid if mi is None else mi, cid, t0, expected, nominal)


class TestProgressTracker:
    def test_healthy_job_never_produces_candidates(self):
        tracker = ProgressTracker()
        for cid in range(8):
            start(tracker, cid)
        config = SpeculationConfig(threshold=0.99, min_age=0.0)
        assert tracker.candidates(0.5, config) == []

    def test_straggler_detected_after_min_age(self):
        tracker = ProgressTracker()
        for cid in range(4):
            start(tracker, cid)
        # cid 4 runs at quarter speed: expected 4.0 for nominal 1.0.
        start(tracker, 4, expected=4.0)
        config = SpeculationConfig(threshold=0.7, min_age=0.2)
        assert tracker.candidates(0.1, config) == []  # too young
        found = tracker.candidates(0.3, config)
        assert [a.cid for a in found] == [4]

    def test_uniformly_degraded_job_is_not_speculated(self):
        tracker = ProgressTracker()
        for cid in range(4):
            start(tracker, cid, expected=4.0)  # every map equally slow
        config = SpeculationConfig(threshold=0.7, min_age=0.0)
        assert tracker.candidates(1.0, config) == []

    def test_excluded_cids_are_skipped(self):
        tracker = ProgressTracker()
        for cid in range(4):
            start(tracker, cid)
        start(tracker, 4, expected=4.0)
        config = SpeculationConfig(threshold=0.7, min_age=0.0)
        assert tracker.candidates(1.0, config, frozenset({4})) == []

    def test_ranking_longest_remaining_first(self):
        tracker = ProgressTracker()
        for cid in range(6):
            start(tracker, cid)
        start(tracker, 10, expected=4.0)
        start(tracker, 11, expected=8.0)
        config = SpeculationConfig(threshold=0.7, min_age=0.0)
        found = tracker.candidates(1.0, config)
        assert [a.cid for a in found] == [11, 10]

    def test_finished_attempts_keep_contributing_to_the_mean(self):
        tracker = ProgressTracker()
        for cid in range(4):
            start(tracker, cid)
            tracker.note_finish(cid)  # ran exactly at nominal
        start(tracker, 9, expected=4.0)
        config = SpeculationConfig(threshold=0.7, min_age=0.0)
        assert tracker.mean_rate(0) < 1.0
        assert [a.cid for a in tracker.candidates(1.0, config)] == [9]

    def test_killed_attempts_leave_no_statistical_trace(self):
        tracker = ProgressTracker()
        start(tracker, 0)
        start(tracker, 1, expected=4.0)
        tracker.note_kill(1)
        assert tracker.mean_rate(0) == 1.0
        config = SpeculationConfig(threshold=0.7, min_age=0.0)
        assert tracker.candidates(1.0, config) == []

    def test_jobs_evaluated_independently(self):
        tracker = ProgressTracker()
        for cid in range(4):
            start(tracker, cid, job=0)
        # Job 1 is uniformly slow: no straggler relative to itself.
        for cid in range(10, 14):
            start(tracker, cid, job=1, expected=4.0)
        config = SpeculationConfig(threshold=0.7, min_age=0.0)
        assert tracker.candidates(1.0, config) == []
