"""CLI surface of the chaos layer: ``repro chaos``, simulate fault knobs,
and the sweep's chaos arm."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestChaosCommand:
    def test_smoke_zero_violations(self, capsys):
        assert main([
            "chaos", "--trials", "8", "--seed", "0", "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "chaos: 8 trials" in out
        assert "0 contract violations" in out

    def test_report_file_is_canonical_json(self, tmp_path, capsys):
        out = tmp_path / "chaos.json"
        assert main([
            "chaos", "--trials", "4", "--jobs", "2", "--no-rerun",
            "--out", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        assert doc["summary"]["trials"] == 4
        assert doc["summary"]["violations"] == 0
        assert len(doc["trials"]) == 4

    def test_byte_identical_across_invocations(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path in (a, b):
            main([
                "chaos", "--trials", "4", "--seed", "3", "--jobs", "2",
                "--no-rerun", "--out", str(path),
            ])
        assert a.read_bytes() == b.read_bytes()

    def test_scheduler_and_topology_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--schedulers", "fifo"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--topologies", "torus"])


class TestSimulateFaultKnobs:
    def test_link_and_domain_flags_run_clean(self, capsys):
        assert main([
            "simulate", "--jobs", "2", "--scheduler", "capacity",
            "--seed", "4", "--check-invariants",
            "--link-mtbf", "6.0", "--link-mttr", "0.5",
            "--domain-mtbf", "8.0", "--domain-mttr", "0.5",
            "--domain-kind", "rack",
            "--max-task-retries", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "jobs completed" in out or "mean" in out.lower()

    def test_domain_kind_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "simulate", "--domain-mtbf", "5", "--domain-kind", "blast",
            ])


class TestSweepChaosArm:
    def test_sweep_accepts_chaos_arm(self, tmp_path, capsys):
        assert main([
            "sweep",
            "--seeds", "0",
            "--schedulers", "capacity",
            "--topologies", "mini",
            "--arms", "chaos",
            "--jobs", "2",
            "--interarrival", "0.25",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "report.json"),
        ]) == 0
        report = json.loads((tmp_path / "report.json").read_text())
        (cell,) = [
            row for row in report["cells"] if row["config"]["arm"] == "chaos"
        ]
        assert cell["result"]["summary"]["violations"] == 0.0
