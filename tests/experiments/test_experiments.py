"""Experiment harnesses at miniature scale (the benchmarks run full scale)."""

import pytest

from repro.experiments import (
    build_static_workload,
    configs,
    fig1_traffic_volume,
    fig3_case_study,
    run_static_placement,
)
from repro.experiments.static import evaluate_policy_cost
from repro.mapreduce import WorkloadGenerator
from repro.schedulers import make_scheduler
from repro.topology import TreeConfig, build_tree


@pytest.fixture(scope="module")
def mini_topo():
    return build_tree(
        TreeConfig(depth=2, fanout=4, redundancy=2, server_resources=(3.0,))
    )


@pytest.fixture(scope="module")
def mini_jobs():
    return WorkloadGenerator(seed=0, input_size_range=(2.0, 4.0)).make_workload(3)


class TestStaticWorkload:
    def test_build_materialises_everything(self, mini_topo, mini_jobs):
        wl = build_static_workload(mini_topo, mini_jobs, seed=0)
        total_tasks = sum(j.num_maps + j.num_reduces for j in mini_jobs)
        assert len(wl.containers) == total_tasks
        assert len(wl.job_containers) == 3
        assert wl.flows  # non-empty

    def test_flow_ids_unique(self, mini_topo, mini_jobs):
        wl = build_static_workload(mini_topo, mini_jobs, seed=0)
        ids = [f.flow_id for f in wl.flows]
        assert len(ids) == len(set(ids))

    def test_repeatable_placement(self, mini_topo, mini_jobs):
        """The same workload can be placed by several schedulers without
        cross-contamination (fresh containers per run)."""
        wl = build_static_workload(mini_topo, mini_jobs, seed=0)
        r1 = run_static_placement(wl, make_scheduler("capacity"), seed=0)
        r2 = run_static_placement(wl, make_scheduler("capacity"), seed=0)
        assert r1.shuffle_cost == pytest.approx(r2.shuffle_cost)
        # Original workload containers stay unplaced.
        assert all(c.server_id is None for c in wl.containers)

    def test_result_metrics_consistent(self, mini_topo, mini_jobs):
        wl = build_static_workload(mini_topo, mini_jobs, seed=0)
        res = run_static_placement(wl, make_scheduler("capacity"), seed=0)
        assert res.total_shuffle_volume == pytest.approx(
            sum(f.size for f in wl.flows)
        )
        assert res.avg_route_hops >= 0
        assert res.policy_cost >= 0

    def test_hit_beats_capacity(self, mini_topo, mini_jobs):
        wl = build_static_workload(mini_topo, mini_jobs, seed=0)
        cap = run_static_placement(wl, make_scheduler("capacity"), seed=0)
        hit = run_static_placement(wl, make_scheduler("hit", seed=0), seed=0)
        assert hit.shuffle_cost <= cap.shuffle_cost
        assert hit.cost_reduction_vs(cap) >= 0

    def test_evaluate_policy_cost_monotone_in_weight(self, mini_topo, mini_jobs):
        wl = build_static_workload(mini_topo, mini_jobs, seed=0)
        res = run_static_placement(wl, make_scheduler("capacity"), seed=0)
        low = evaluate_policy_cost(res.taa, congestion_weight=0.0)
        high = evaluate_policy_cost(res.taa, congestion_weight=2.0)
        assert high >= low


class TestFigureDrivers:
    def test_fig3_case_study_matches_paper_arithmetic(self):
        result = fig3_case_study()
        assert result.baseline_cost == pytest.approx(112.0)
        assert result.paper_optimised_cost == pytest.approx(64.0)
        assert result.hit_cost <= result.paper_optimised_cost + 1e-9
        assert result.improvement_vs_baseline >= 0.42  # the paper's 42%

    def test_fig1_shuffle_share_ordering(self):
        # jobs_per_class=4 fills the testbed enough to create the locality
        # misses (remote-Map traffic) the figure contrasts with shuffle.
        data = fig1_traffic_volume(jobs_per_class=4)
        share = {k: v["shuffle_share"] for k, v in data.items()}
        assert share["shuffle-heavy"] >= share["shuffle-medium"]
        assert share["shuffle-medium"] > share["shuffle-light"]
        assert data["shuffle-light"]["remote_map_volume"] > 0

    def test_configs_build(self):
        assert configs.testbed_tree().num_servers == 64
        assert configs.case_study_tree().num_servers == 4
        assert configs.large_tree(num_servers=64).num_servers == 64
        archs = configs.architectures_64()
        assert set(archs) == {"tree", "fat-tree", "vl2", "bcube"}

    def test_testbed_workload_table1_mix(self):
        jobs = configs.testbed_workload(seed=0, num_jobs=30)
        assert len(jobs) == 30
        classes = {j.shuffle_class.value for j in jobs}
        assert len(classes) >= 2

    def test_large_tree_rejects_other_sizes(self):
        with pytest.raises(ValueError):
            configs.large_tree(num_servers=100)
