"""The sweep's chaos arm: contract-clean cells, hash preservation."""

from __future__ import annotations

import json

import pytest

from repro.experiments.sweep import (
    DEFAULT_CHAOS,
    CellConfig,
    SweepSpec,
    run_cell,
)

from .conftest import mini_spec_dict


def chaos_cell(trials=3, **overrides) -> CellConfig:
    chaos = dict(DEFAULT_CHAOS, trials=trials, **overrides)
    return CellConfig.from_dict(
        {
            "seed": 0,
            "scheduler": "capacity",
            "topology": {"name": "mini"},
            "arm": "chaos",
            "workload": {"num_jobs": 2, "interarrival": 0.25},
            "chaos": chaos,
        }
    )


class TestHashPreservation:
    def test_non_chaos_cells_have_no_chaos_key(self):
        spec = SweepSpec.from_dict(mini_spec_dict())
        for cell in spec.cells():
            assert "chaos" not in cell.to_dict()

    def test_chaos_cells_carry_the_section(self):
        raw = mini_spec_dict()
        raw["arms"] = ["baseline", "chaos"]
        spec = SweepSpec.from_dict(raw)
        by_arm = {}
        for cell in spec.cells():
            by_arm.setdefault(cell.arm, cell.to_dict())
        assert "chaos" not in by_arm["baseline"]
        assert by_arm["chaos"]["chaos"]["trials"] == DEFAULT_CHAOS["trials"]

    def test_spec_roundtrip_keeps_chaos_knobs(self):
        raw = mini_spec_dict()
        raw["arms"] = ["chaos"]
        raw["chaos"] = dict(DEFAULT_CHAOS, trials=9)
        spec = SweepSpec.from_dict(raw)
        body = spec.to_dict()
        body.pop("format")  # to_dict stamps it; grid files omit it
        again = SweepSpec.from_dict(body)
        assert again.chaos["trials"] == 9
        assert again.to_dict() == spec.to_dict()


class TestChaosCell:
    def test_cell_is_contract_clean_and_plain_data(self):
        result = run_cell(chaos_cell())
        assert result["summary"]["violations"] == 0.0
        assert result["summary"]["trials"] == 3.0
        assert (
            result["summary"]["ok"] + result["summary"]["failed_accounted"]
            == 3.0
        )
        assert len(result["trials"]) == 3
        # Plain JSON data, round-trippable without loss.
        assert json.loads(json.dumps(result, sort_keys=True)) == result

    def test_cell_is_deterministic(self):
        a = run_cell(chaos_cell())
        b = run_cell(chaos_cell())
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_rerun_flag_checks_byte_identity(self):
        result = run_cell(chaos_cell(rerun=1))
        assert all(
            "nondeterministic rerun" not in v
            for row in result["trials"]
            for v in row.get("violations", ())
        )

    def test_chaos_section_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="chaos"):
            CellConfig.from_dict(
                {
                    "seed": 0,
                    "scheduler": "capacity",
                    "topology": {"name": "mini"},
                    "arm": "chaos",
                    "workload": {"num_jobs": 2, "interarrival": 0.25},
                    "chaos": {"trails": 3},
                }
            )
