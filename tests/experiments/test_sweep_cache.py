"""Resume correctness: cache hits skip, corruption is detected, never merged."""

from __future__ import annotations

import json

import pytest

from repro.experiments.sweep import (
    SweepSpec,
    cell_artifact_path,
    load_cell_artifact,
    merge_sweep,
    run_sweep,
)


@pytest.fixture
def warm_cache(mini_spec, tmp_path):
    """A fully populated cache plus the reference merged bytes."""
    first = run_sweep(mini_spec, tmp_path, workers=1)
    assert len(first.ran) == 4 and not first.cached and first.ok
    return tmp_path, merge_sweep(mini_spec, tmp_path)


class TestResumeRunsOnlyWhatIsMissing:
    def test_rerun_on_warm_cache_runs_nothing(self, mini_spec, warm_cache):
        cache, _ = warm_cache
        again = run_sweep(mini_spec, cache, workers=1)
        assert again.ran == []
        assert len(again.cached) == 4

    def test_deleted_artifact_reruns_exactly_that_cell(
        self, mini_spec, warm_cache
    ):
        cache, reference = warm_cache
        victim = mini_spec.cells()[1]
        cell_artifact_path(cache, victim).unlink()
        resumed = run_sweep(mini_spec, cache, workers=1)
        assert resumed.ran == [victim.config_hash()]
        assert len(resumed.cached) == 3
        assert merge_sweep(mini_spec, cache) == reference

    def test_force_recomputes_every_cell(self, mini_spec, warm_cache):
        cache, reference = warm_cache
        forced = run_sweep(mini_spec, cache, workers=1, force=True)
        assert len(forced.ran) == 4 and not forced.cached
        assert merge_sweep(mini_spec, cache) == reference


class TestCorruptionDetection:
    def test_tampered_result_fails_checksum_and_reruns(
        self, mini_spec, warm_cache
    ):
        """Flipping a metric without refreshing the checksum must not be
        merged — the cell recomputes instead."""
        cache, reference = warm_cache
        victim = mini_spec.cells()[0]
        path = cell_artifact_path(cache, victim)
        body = json.loads(path.read_text())
        body["result"]["summary"]["mean_jct"] += 1.0
        path.write_text(json.dumps(body))
        assert load_cell_artifact(cache, victim) is None
        resumed = run_sweep(mini_spec, cache, workers=1)
        assert resumed.ran == [victim.config_hash()]
        assert merge_sweep(mini_spec, cache) == reference

    def test_truncated_artifact_reruns(self, mini_spec, warm_cache):
        cache, reference = warm_cache
        victim = mini_spec.cells()[2]
        path = cell_artifact_path(cache, victim)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert load_cell_artifact(cache, victim) is None
        resumed = run_sweep(mini_spec, cache, workers=1)
        assert resumed.ran == [victim.config_hash()]
        assert merge_sweep(mini_spec, cache) == reference

    def test_wrong_format_version_reruns(self, mini_spec, warm_cache):
        """Artifacts from an incompatible sweep format are stale, not data."""
        cache, _ = warm_cache
        victim = mini_spec.cells()[3]
        path = cell_artifact_path(cache, victim)
        body = json.loads(path.read_text())
        body["format"] = "repro.sweep.v0"
        path.write_text(json.dumps(body))
        assert load_cell_artifact(cache, victim) is None
        resumed = run_sweep(mini_spec, cache, workers=1)
        assert resumed.ran == [victim.config_hash()]

    def test_hash_mismatch_reruns(self, mini_spec, tmp_path, warm_cache):
        """An artifact renamed over another cell's slot is rejected by the
        embedded config hash."""
        cache, _ = warm_cache
        cells = mini_spec.cells()
        a, b = cells[0], cells[1]
        path_b = cell_artifact_path(cache, b)
        path_b.write_text(cell_artifact_path(cache, a).read_text())
        assert load_cell_artifact(cache, b) is None
        resumed = run_sweep(mini_spec, cache, workers=1)
        assert resumed.ran == [b.config_hash()]


class TestFailureHandling:
    def test_failed_cell_recorded_and_retried_on_resume(
        self, mini_spec, tmp_path, monkeypatch
    ):
        """A raising cell is collected (not raised), writes no artifact, and
        is exactly what the next resume retries."""
        import repro.experiments.sweep as sweep_mod

        doomed = mini_spec.cells()[0].config_hash()
        real_run_cell = sweep_mod.run_cell

        def flaky(cell):
            if cell.config_hash() == doomed:
                raise RuntimeError("transient worker death")
            return real_run_cell(cell)

        monkeypatch.setattr(sweep_mod, "run_cell", flaky)
        first = run_sweep(mini_spec, tmp_path, workers=1)
        assert not first.ok
        assert list(first.failed) == [doomed]
        assert "transient worker death" in first.failed[doomed]
        assert len(first.ran) == 3
        with pytest.raises(FileNotFoundError):
            merge_sweep(mini_spec, tmp_path)

        monkeypatch.setattr(sweep_mod, "run_cell", real_run_cell)
        resumed = run_sweep(mini_spec, tmp_path, workers=1)
        assert resumed.ok
        assert resumed.ran == [doomed]
        assert len(resumed.cached) == 3

    def test_resume_on_empty_cache_runs_everything(self, mini_spec, tmp_path):
        result = run_sweep(mini_spec, tmp_path / "fresh", workers=1)
        assert result.ok and len(result.ran) == 4 and not result.cached


class TestArtifactLayout:
    def test_artifact_is_canonical_json_keyed_by_hash(
        self, mini_spec, warm_cache
    ):
        from repro.analysis.report import canonical_json

        cache, _ = warm_cache
        cell = mini_spec.cells()[0]
        path = cell_artifact_path(cache, cell)
        assert path.name == f"{cell.config_hash()}.json"
        text = path.read_text()
        body = json.loads(text)
        assert text == canonical_json(body) + "\n"
        assert body["config"] == cell.to_dict()
        assert set(body) == {"format", "hash", "config", "result", "checksum"}

    def test_no_temp_files_left_behind(self, warm_cache):
        cache, _ = warm_cache
        assert not list(cache.glob("*.tmp"))
