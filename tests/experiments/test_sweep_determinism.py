"""The sweep byte-identity contract and the config-hash properties.

Headline guarantees of :mod:`repro.experiments.sweep`:

* merged output is byte-identical across ``workers in {1, 2, 4}`` and
  across interrupt-then-resume histories;
* a cell's config hash is stable across process restarts, insensitive to
  dict key (and axis list) order, and sensitive to every semantic field.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.sweep import (
    CellConfig,
    SweepSpec,
    merge_sweep,
    run_sweep,
)

from .conftest import full_cell_dict, mini_spec_dict


# ------------------------------------------------------------- byte identity
class TestMergedByteIdentity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_sharded_equals_serial(self, mini_spec, tmp_path, workers):
        serial_dir = tmp_path / "serial"
        sharded_dir = tmp_path / f"sharded{workers}"
        assert run_sweep(mini_spec, serial_dir, workers=1).ok
        assert run_sweep(mini_spec, sharded_dir, workers=workers).ok
        serial = merge_sweep(mini_spec, serial_dir)
        sharded = merge_sweep(mini_spec, sharded_dir)
        assert serial.encode() == sharded.encode()

    def test_interrupted_then_resumed_equals_uninterrupted(
        self, mini_spec, tmp_path
    ):
        """A sweep killed mid-flight and resumed merges to the same bytes."""
        reference_dir = tmp_path / "reference"
        run_sweep(mini_spec, reference_dir, workers=1)
        reference = merge_sweep(mini_spec, reference_dir)

        # Simulate the interruption: a prior invocation only got through a
        # subset of the grid (one seed) before dying.
        partial = mini_spec_dict()
        partial["seeds"] = [0]
        resumed_dir = tmp_path / "resumed"
        first = run_sweep(SweepSpec.from_dict(partial), resumed_dir, workers=1)
        assert len(first.ran) == 2  # half the grid landed before the "crash"

        resumed = run_sweep(mini_spec, resumed_dir, workers=2)
        assert set(resumed.cached) == set(first.ran)
        assert len(resumed.ran) == 2  # only the missing cells ran
        assert merge_sweep(mini_spec, resumed_dir) == reference

    def test_spec_axis_order_is_irrelevant(self, tmp_path):
        """Permuting axis lists describes the same grid: same cells, same
        spec hash, hence the same merged bytes by construction."""
        raw = mini_spec_dict()
        shuffled = dict(reversed(list(raw.items())))
        shuffled["seeds"] = list(reversed(raw["seeds"]))
        shuffled["schedulers"] = list(reversed(raw["schedulers"]))
        a, b = SweepSpec.from_dict(raw), SweepSpec.from_dict(shuffled)
        assert a.spec_hash() == b.spec_hash()
        assert [c.config_hash() for c in a.cells()] == [
            c.config_hash() for c in b.cells()
        ]

    def test_merge_refuses_partial_cache(self, mini_spec, tmp_path):
        partial = mini_spec_dict()
        partial["seeds"] = [0]
        run_sweep(SweepSpec.from_dict(partial), tmp_path, workers=1)
        with pytest.raises(FileNotFoundError, match="missing or corrupt"):
            merge_sweep(mini_spec, tmp_path)


# ------------------------------------------------------------ hash stability
class TestConfigHashProperties:
    def test_stable_across_process_restarts(self):
        """Re-enumerating the same grid in a fresh interpreter yields the
        same hashes (no ``hash()``/``PYTHONHASHSEED`` dependence)."""
        spec = SweepSpec.from_dict(mini_spec_dict())
        in_process = [c.config_hash() for c in spec.cells()]
        src = Path(__file__).resolve().parents[2] / "src"
        script = (
            "import json, sys\n"
            "from repro.experiments.sweep import SweepSpec\n"
            "spec = SweepSpec.from_dict(json.loads(sys.argv[1]))\n"
            "print(json.dumps([c.config_hash() for c in spec.cells()]))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, json.dumps(mini_spec_dict())],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(src), "PYTHONHASHSEED": "12345"},
        )
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout) == in_process

    def test_insensitive_to_dict_key_order(self):
        raw = full_cell_dict()
        permuted = dict(reversed(list(raw.items())))
        permuted["workload"] = dict(reversed(list(raw["workload"].items())))
        permuted["fault"] = dict(reversed(list(raw["fault"].items())))
        permuted["topology"] = dict(reversed(list(raw["topology"].items())))
        a = CellConfig.from_dict(raw)
        b = CellConfig.from_dict(permuted)
        assert a.config_hash() == b.config_hash()

    def test_insensitive_to_numeric_json_roundtrip(self):
        """``8`` vs ``8.0`` for a float knob is the same cell."""
        raw = full_cell_dict()
        raw["fault"]["server_mtbf"] = 4
        raw["speculation"]["quota"] = 0.2
        assert (
            CellConfig.from_dict(raw).config_hash()
            == CellConfig.from_dict(full_cell_dict()).config_hash()
        )

    @pytest.mark.parametrize(
        "mutate",
        [
            pytest.param(lambda d: d.update(seed=4), id="seed"),
            pytest.param(lambda d: d.update(scheduler="pna"), id="scheduler"),
            pytest.param(lambda d: d.update(arm="faults"), id="arm"),
            pytest.param(
                lambda d: d["topology"].update(redundancy=1),
                id="topology-param",
            ),
            pytest.param(
                lambda d: d["workload"].update(num_jobs=3), id="num-jobs"
            ),
            pytest.param(
                lambda d: d["workload"].update(interarrival=0.5),
                id="interarrival",
            ),
            pytest.param(
                lambda d: d["fault"].update(server_mtbf=5.0), id="mtbf"
            ),
            pytest.param(
                lambda d: d["fault"].update(horizon=6.0), id="horizon"
            ),
            pytest.param(
                lambda d: d["speculation"].update(quota=0.3), id="quota"
            ),
            pytest.param(
                lambda d: d["speculation"].update(threshold=0.8),
                id="threshold",
            ),
        ],
    )
    def test_sensitive_to_every_semantic_field(self, mutate):
        base = CellConfig.from_dict(full_cell_dict()).config_hash()
        changed = full_cell_dict()
        mutate(changed)
        assert CellConfig.from_dict(changed).config_hash() != base

    def test_unknown_fields_rejected_not_ignored(self):
        """A typo'd knob must fail loudly: silently dropping it would make
        two different intents collide on one hash."""
        raw = full_cell_dict()
        raw["workload"]["num_job"] = 5
        with pytest.raises(ValueError, match="unknown workload field"):
            CellConfig.from_dict(raw)

    @settings(max_examples=25, deadline=None)
    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=1,
            max_size=4,
        ),
        num_jobs=st.integers(min_value=1, max_value=6),
        interarrival=st.floats(
            min_value=0.0, max_value=2.0, allow_nan=False, allow_infinity=False
        ),
        shuffle_seed=st.randoms(use_true_random=False),
    )
    def test_property_spec_normalisation_is_order_free(
        self, seeds, num_jobs, interarrival, shuffle_seed
    ):
        """For arbitrary axis values, shuffling list order and key order
        never changes the enumerated cell hashes."""
        raw = {
            "seeds": seeds,
            "schedulers": ["capacity", "hit"],
            "topologies": ["mini"],
            "arms": ["baseline"],
            "workload": {"num_jobs": num_jobs, "interarrival": interarrival},
        }
        shuffled_items = list(raw.items())
        shuffle_seed.shuffle(shuffled_items)
        shuffled = dict(shuffled_items)
        shuffled_seeds = list(seeds)
        shuffle_seed.shuffle(shuffled_seeds)
        shuffled["seeds"] = shuffled_seeds
        a, b = SweepSpec.from_dict(raw), SweepSpec.from_dict(shuffled)
        assert a.spec_hash() == b.spec_hash()
        assert [c.config_hash() for c in a.cells()] == [
            c.config_hash() for c in b.cells()
        ]
