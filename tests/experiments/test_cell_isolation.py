"""Determinism-leak audit: per-cell callables are pure in-process.

Parallelising the experiment harnesses is only sound if a cell's output
depends on nothing but its config — these regression tests pin that down
*before* trusting the sharded sweep: the static/fault/telemetry per-cell
callables must never touch global RNG state (``random`` or legacy
``numpy.random``) and never mutate shared module-level caches, so running
two cells in the same process in either order yields identical outputs.
"""

from __future__ import annotations

import pickle
import random

import numpy as np
import pytest

from repro.experiments.sweep import CellConfig, run_cell


def _cell(arm: str, seed: int = 0, scheduler: str = "hit") -> CellConfig:
    return CellConfig.from_dict(
        {
            "seed": seed,
            "scheduler": scheduler,
            "topology": "mini",
            "arm": arm,
            "workload": {"num_jobs": 2, "interarrival": 0.25},
            "fault": {"server_mtbf": 4.0, "horizon": 4.0},
        }
    )


def _global_rng_fingerprint() -> bytes:
    """Serialised state of both global RNGs a leaky cell could consume."""
    return pickle.dumps((random.getstate(), np.random.get_state()))


ARMS_UNDER_AUDIT = ["baseline", "faults", "faults+speculation", "static",
                    "telemetry"]


class TestNoGlobalRngLeaks:
    @pytest.mark.parametrize("arm", ARMS_UNDER_AUDIT)
    def test_cell_never_touches_global_rng(self, arm):
        random.seed(1234)
        np.random.seed(1234)
        before = _global_rng_fingerprint()
        run_cell(_cell(arm))
        assert _global_rng_fingerprint() == before, (
            f"{arm} cell consumed global RNG state — its output would "
            "depend on what ran before it in the same worker"
        )

    @pytest.mark.parametrize("arm", ARMS_UNDER_AUDIT)
    def test_cell_output_ignores_global_rng_state(self, arm):
        """Even a scrambled global RNG must not change a cell's result."""
        random.seed(1)
        np.random.seed(1)
        a = run_cell(_cell(arm))
        random.seed(999)
        np.random.seed(999)
        np.random.random(100)
        random.random()
        b = run_cell(_cell(arm))
        assert a == b


class TestOrderIndependence:
    @pytest.mark.parametrize("arm", ARMS_UNDER_AUDIT)
    def test_two_cells_same_process_both_orders(self, arm):
        """Cells A and B produce identical outputs whichever runs first —
        no hidden module-level cache carries state between them."""
        cell_a = _cell(arm, seed=0, scheduler="capacity")
        cell_b = _cell(arm, seed=1, scheduler="hit")
        a_first = run_cell(cell_a)
        b_second = run_cell(cell_b)
        b_first = run_cell(cell_b)
        a_second = run_cell(cell_a)
        assert a_first == a_second
        assert b_first == b_second

    def test_repeated_cell_is_bitwise_stable(self):
        """Same cell, same process, many times: exactly equal floats."""
        cell = _cell("faults")
        results = [run_cell(cell) for _ in range(3)]
        assert results[0] == results[1] == results[2]


class TestHarnessCallablesDirectly:
    """The refactored per-cell entry points of experiments.static and
    experiments.faults, audited without the sweep wrapper."""

    def _workload(self, seed=0):
        from repro.mapreduce import WorkloadGenerator

        return WorkloadGenerator(
            seed=seed, input_size_range=(2.0, 4.0), map_rate=8.0,
            reduce_rate=8.0,
        ).make_workload(2, interarrival=0.25)

    def _topology(self):
        from repro.topology import TreeConfig, build_tree

        return build_tree(
            TreeConfig(depth=2, fanout=4, redundancy=2,
                       server_resources=(3.0,))
        )

    def test_run_static_cell_is_pure(self):
        from repro.experiments import run_static_cell

        random.seed(7)
        np.random.seed(7)
        before = _global_rng_fingerprint()
        first = run_static_cell(self._topology(), self._workload(), "hit",
                                seed=0)
        assert _global_rng_fingerprint() == before
        second = run_static_cell(self._topology(), self._workload(), "hit",
                                 seed=0)
        assert first == second

    def test_run_fault_cell_is_pure(self):
        import dataclasses

        from repro.experiments import run_fault_cell
        from repro.faults import FaultKind, FaultSpec
        from repro.schedulers import make_scheduler
        from repro.simulator import SimulationConfig

        timeline = (FaultSpec(0.2, FaultKind.SERVER_FAIL, 1),
                    FaultSpec(0.8, FaultKind.SERVER_RECOVER, 1))
        config = SimulationConfig(seed=0)
        random.seed(7)
        np.random.seed(7)
        before = _global_rng_fingerprint()
        runs = []
        for _ in range(2):
            metrics, counters = run_fault_cell(
                self._topology(),
                make_scheduler("capacity", seed=0),
                self._workload(),
                config,
                timeline=timeline,
            )
            runs.append((metrics.summary(), counters))
        assert _global_rng_fingerprint() == before
        assert runs[0] == runs[1]
        # The shared config dataclass was not mutated by the fault overlay.
        assert config.faults == () and config.speculation is None
        assert dataclasses.replace(config) == SimulationConfig(seed=0)
