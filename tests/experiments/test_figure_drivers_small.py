"""Figure-9/10 drivers at miniature scale (shape smoke tests).

The benchmarks run these at the paper's 512-server scale; the tests only
check the drivers execute end-to-end and keep their defining orderings at
64 servers with a tiny workload.
"""

import pytest

from repro.experiments import fig9_bandwidth_sensitivity, fig10_job_numbers


@pytest.fixture(scope="module")
def fig9_small():
    return fig9_bandwidth_sensitivity(
        seed=0, bandwidths=(0.1, 1.0, 20.0), num_jobs=2, num_servers=64
    )


class TestFig9Driver:
    def test_improvement_decays_with_bandwidth(self, fig9_small):
        assert (
            fig9_small[0.1]["hit_improvement"]
            > fig9_small[1.0]["hit_improvement"]
            > fig9_small[20.0]["hit_improvement"]
        )

    def test_hit_at_least_pna(self, fig9_small):
        for bw, v in fig9_small.items():
            assert v["hit_improvement"] >= v["pna_improvement"] - 1e-9, bw

    def test_throughputs_positive(self, fig9_small):
        for v in fig9_small.values():
            for key in ("throughput_capacity", "throughput_pna", "throughput_hit"):
                assert v[key] > 0

    def test_rejects_unknown_scale(self):
        with pytest.raises(ValueError):
            fig9_bandwidth_sensitivity(num_servers=100)


class TestFig10Driver:
    def test_runs_and_orders(self):
        data = fig10_job_numbers(
            seed=0, job_counts=(2, 4), num_servers=64,
            input_size_range=(4.0, 8.0),
        )
        assert set(data) == {2, 4}
        for n, v in data.items():
            assert v["hit_reduction"] > v["pna_reduction"], n
            assert v["cost_hit"] < v["cost_capacity"]

    def test_congestion_weight_zero_still_works(self):
        data = fig10_job_numbers(
            seed=0, job_counts=(2,), num_servers=64,
            input_size_range=(4.0, 8.0), congestion_weight=0.0,
        )
        assert data[2]["hit_reduction"] > 0
