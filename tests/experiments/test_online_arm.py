"""Overload campaign harness and the sweep's online arm."""

from __future__ import annotations

import json

import pytest

from repro.experiments.online import (
    ONLINE_TOPOLOGIES,
    OnlineConfig,
    overload_campaign,
)
from repro.experiments.sweep import (
    DEFAULT_ONLINE,
    CellConfig,
    SweepSpec,
    run_cell,
)

from .conftest import mini_spec_dict

SMOKE = OnlineConfig(
    multipliers=(2.0,),
    schedulers=("hit",),
    topologies=("small",),
    queue_bound=2,
    duration=1.0,
    rerun=True,
)


def online_cell(**overrides) -> CellConfig:
    online = dict(DEFAULT_ONLINE, duration=1.0, **overrides)
    return CellConfig.from_dict(
        {
            "seed": 0,
            "scheduler": "capacity",
            "topology": {"name": "mini"},
            "arm": "online",
            "workload": {"num_jobs": 2, "interarrival": 0.25},
            "online": online,
        }
    )


class TestOnlineConfig:
    def test_topologies_shared_with_chaos(self):
        assert set(ONLINE_TOPOLOGIES) == {"small", "deep"}

    @pytest.mark.parametrize("bad", [
        dict(multipliers=()),
        dict(multipliers=(0.0,)),
        dict(schedulers=()),
        dict(topologies=("mega",)),
        dict(tenants=0),
        dict(profile="weibull"),
        dict(policy="fifo"),
    ])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            OnlineConfig(**bad)

    def test_to_dict_round_trips_to_json(self):
        body = SMOKE.to_dict()
        assert json.loads(json.dumps(body)) == body


class TestCampaign:
    def test_smoke_campaign_contract_clean(self):
        report = overload_campaign(SMOKE)
        assert len(report.cells) == 1
        (cell,) = report.cells
        assert cell.status == "ok", cell.reason
        assert cell.violations == ()
        assert report.violations == []
        # 2x saturation genuinely overloads: rejections must appear.
        assert cell.counters["admission.rejected"] > 0
        summary = report.summary()
        assert summary["submitted"] == cell.submitted > 0
        assert summary["completed"] + summary["rejected"] + summary[
            "queued"
        ] == summary["submitted"]
        assert summary["violations"] == 0

    def test_report_canonical_and_stable(self):
        a = overload_campaign(SMOKE)
        b = overload_campaign(SMOKE)
        assert a.canonical() == b.canonical()
        doc = json.loads(a.canonical())
        assert doc["summary"]["cells"] == 1
        assert doc["cells"][0]["fingerprint"] == a.cells[0].fingerprint


class TestSweepOnlineArm:
    def test_non_online_cells_have_no_online_key(self):
        spec = SweepSpec.from_dict(mini_spec_dict())
        for cell in spec.cells():
            assert "online" not in cell.to_dict()

    def test_online_cells_carry_the_section(self):
        raw = mini_spec_dict()
        raw["arms"] = ["baseline", "online"]
        spec = SweepSpec.from_dict(raw)
        by_arm = {}
        for cell in spec.cells():
            by_arm.setdefault(cell.arm, cell.to_dict())
        assert "online" not in by_arm["baseline"]
        assert by_arm["online"]["online"]["multiplier"] == (
            DEFAULT_ONLINE["multiplier"]
        )

    def test_spec_roundtrip_keeps_online_knobs(self):
        raw = mini_spec_dict()
        raw["arms"] = ["online"]
        raw["online"] = dict(DEFAULT_ONLINE, multiplier=2.5, policy="admit-all")
        spec = SweepSpec.from_dict(raw)
        body = spec.to_dict()
        body.pop("format")
        again = SweepSpec.from_dict(body)
        assert again.online["multiplier"] == 2.5
        assert again.online["policy"] == "admit-all"
        assert again.to_dict() == spec.to_dict()

    def test_online_section_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="online"):
            online_cell(quene_bound=3)

    def test_cell_runs_and_is_deterministic(self):
        a = run_cell(online_cell())
        b = run_cell(online_cell())
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert a["status"] == "ok", a["reason"]
        assert a["violations"] == []
        assert a["counters"]["admission.submitted"] > 0
        # Plain JSON data, round-trippable without loss.
        assert json.loads(json.dumps(a, sort_keys=True)) == a
