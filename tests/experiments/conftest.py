"""Shared sweep fixtures: a tiny grid every sweep test reuses.

The ``mini`` topology (16 servers) with 2 jobs keeps one cell in the
~10 ms range, so whole-grid byte-identity tests stay cheap.
"""

from __future__ import annotations

import copy

import pytest


def mini_spec_dict() -> dict:
    """A fresh 2 seeds x 2 schedulers x 1 topology x 1 arm grid spec."""
    return {
        "seeds": [0, 1],
        "schedulers": ["capacity", "hit"],
        "topologies": ["mini"],
        "arms": ["baseline"],
        "workload": {
            "num_jobs": 2,
            "interarrival": 0.25,
            "min_size": 2.0,
            "max_size": 4.0,
        },
    }


@pytest.fixture
def mini_spec():
    from repro.experiments.sweep import SweepSpec

    return SweepSpec.from_dict(mini_spec_dict())


def full_cell_dict() -> dict:
    """A cell on the mitigation arm: every config section is populated,
    so field-sensitivity tests can perturb any knob."""
    return copy.deepcopy(
        {
            "seed": 3,
            "scheduler": "hit",
            "topology": {"name": "mini", "redundancy": 2},
            "arm": "faults+speculation",
            "workload": {"num_jobs": 2, "interarrival": 0.25},
            "fault": {"server_mtbf": 4.0, "horizon": 4.0},
            "speculation": {"quota": 0.2, "threshold": 0.7},
        }
    )
