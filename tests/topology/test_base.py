"""Unit tests for the topology graph model."""

import numpy as np
import pytest

from repro.topology import (
    Link,
    Server,
    Switch,
    Tier,
    Topology,
    UNREACHABLE,
    build_tree,
)
from repro.topology.tree import TreeConfig


def line_topology():
    """s0 - w2 - w3 - s1: two servers joined by two switches in series."""
    servers = [Server(0, "s0"), Server(1, "s1")]
    switches = [
        Switch(2, "w2", Tier.ACCESS, capacity=10.0),
        Switch(3, "w3", Tier.ACCESS, capacity=10.0),
    ]
    links = [Link(0, 2, 5.0), Link(2, 3, 5.0), Link(3, 1, 5.0)]
    return Topology(servers, switches, links, name="line")


class TestSwitch:
    def test_requires_positive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            Switch(0, "w", Tier.ACCESS, capacity=0.0)

    def test_type_defaults_to_tier_label(self):
        assert Switch(0, "w", Tier.AGGREGATION, 1.0).switch_type == "aggregation"

    def test_explicit_type_preserved(self):
        w = Switch(0, "w", Tier.CORE, 1.0, switch_type="spine")
        assert w.switch_type == "spine"

    def test_tier_ordering(self):
        assert Tier.ACCESS < Tier.AGGREGATION < Tier.CORE


class TestServer:
    def test_rejects_negative_resources(self):
        with pytest.raises(ValueError, match="negative"):
            Server(0, "s", resource_capacity=(-1.0,))

    def test_default_capacity(self):
        assert Server(0, "s").resource_capacity == (1.0,)


class TestLink:
    def test_rejects_self_link(self):
        with pytest.raises(ValueError, match="self-link"):
            Link(1, 1, 1.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            Link(0, 1, 0.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError, match="latency"):
            Link(0, 1, 1.0, latency=-0.5)

    def test_key_is_canonical(self):
        assert Link(3, 1, 1.0).key == (1, 3)
        assert Link(1, 3, 1.0).key == (1, 3)


class TestTopologyConstruction:
    def test_rejects_overlapping_ids(self):
        with pytest.raises(ValueError, match="overlap"):
            Topology(
                [Server(0, "s0")],
                [Switch(0, "w0", Tier.ACCESS, 1.0)],
                [],
            )

    def test_rejects_non_contiguous_ids(self):
        with pytest.raises(ValueError, match="contiguous"):
            Topology([Server(0, "s0"), Server(5, "s5")], [], [])

    def test_rejects_duplicate_links(self):
        with pytest.raises(ValueError, match="duplicate"):
            Topology(
                [Server(0, "s0"), Server(1, "s1")],
                [],
                [Link(0, 1, 1.0), Link(1, 0, 1.0)],
            )

    def test_rejects_link_to_unknown_node(self):
        with pytest.raises(ValueError, match="unknown node"):
            Topology([Server(0, "s0"), Server(1, "s1")], [], [Link(0, 7, 1.0)])

    def test_counts(self):
        topo = line_topology()
        assert topo.num_nodes == 4
        assert topo.num_servers == 2
        assert topo.num_switches == 2
        assert len(topo.links) == 3

    def test_node_kind_queries(self):
        topo = line_topology()
        assert topo.is_server(0) and topo.is_server(1)
        assert topo.is_switch(2) and topo.is_switch(3)
        assert not topo.is_switch(0)

    def test_validate_detects_disconnected_server(self):
        topo = Topology(
            [Server(0, "s0"), Server(1, "s1")],
            [Switch(2, "w", Tier.ACCESS, 1.0)],
            [Link(0, 2, 1.0)],
        )
        with pytest.raises(ValueError, match="disconnected"):
            topo.validate()

    def test_validate_detects_stranded_server(self):
        topo = Topology(
            [Server(0, "s0"), Server(1, "s1"), Server(2, "s2")],
            [Switch(3, "wA", Tier.ACCESS, 1.0), Switch(4, "wB", Tier.ACCESS, 1.0)],
            [Link(0, 3, 1.0), Link(1, 3, 1.0), Link(2, 4, 1.0)],
        )
        with pytest.raises(ValueError, match="unreachable"):
            topo.validate()


class TestDistances:
    def test_hop_distances_basics(self):
        topo = line_topology()
        assert topo.hop_distance(0, 0) == 0
        assert topo.hop_distance(0, 2) == 1
        assert topo.hop_distance(0, 3) == 2
        assert topo.hop_distance(0, 1) == 3
        assert topo.hop_distance(1, 0) == 3  # symmetric

    def test_distances_cached_and_readonly(self):
        topo = line_topology()
        d1 = topo.hop_distances_from(0)
        d2 = topo.hop_distances_from(0)
        assert d1 is d2
        with pytest.raises(ValueError):
            d1[0] = 99

    def test_unreachable_marker(self):
        # Build a connected fabric, then query an isolated switch pair via a
        # topology that validate() would reject but construction allows.
        topo = Topology(
            [Server(0, "s0"), Server(1, "s1")],
            [Switch(2, "w", Tier.ACCESS, 1.0)],
            [Link(0, 2, 1.0)],
        )
        assert topo.hop_distance(0, 1) == UNREACHABLE

    def test_shortest_path_endpoints_and_adjacency(self):
        topo = build_tree(TreeConfig(depth=2, fanout=4, redundancy=2))
        path = topo.shortest_path(0, 15)
        assert path[0] == 0 and path[-1] == 15
        assert len(path) == topo.hop_distance(0, 15) + 1
        for a, b in zip(path, path[1:]):
            assert topo.has_link(a, b)

    def test_shortest_path_deterministic(self):
        topo = build_tree(TreeConfig(depth=2, fanout=4, redundancy=2))
        assert topo.shortest_path(0, 15) == topo.shortest_path(0, 15)

    def test_shortest_path_same_node(self):
        topo = line_topology()
        assert topo.shortest_path(1, 1) == (1,)

    def test_shortest_path_raises_when_disconnected(self):
        topo = Topology(
            [Server(0, "s0"), Server(1, "s1")],
            [Switch(2, "w", Tier.ACCESS, 1.0)],
            [Link(0, 2, 1.0)],
        )
        with pytest.raises(ValueError, match="no path"):
            topo.shortest_path(0, 1)


class TestPathHelpers:
    def test_switches_on_path(self):
        topo = line_topology()
        assert topo.switches_on_path((0, 2, 3, 1)) == (2, 3)

    def test_path_latency_sums_links(self):
        topo = line_topology()
        assert topo.path_latency((0, 2, 3, 1)) == pytest.approx(3.0)

    def test_path_links_directed(self):
        topo = line_topology()
        assert topo.path_links((0, 2, 3)) == ((0, 2), (2, 3))

    def test_min_bandwidth_on_path(self):
        servers = [Server(0, "s0"), Server(1, "s1")]
        switches = [Switch(2, "w", Tier.ACCESS, 10.0)]
        links = [Link(0, 2, 3.0), Link(2, 1, 7.0)]
        topo = Topology(servers, switches, links)
        assert topo.min_bandwidth_on_path((0, 2, 1)) == 3.0

    def test_link_lookup_is_undirected(self):
        topo = line_topology()
        assert topo.link(0, 2) is topo.link(2, 0)

    def test_switches_of_tier(self):
        topo = build_tree(TreeConfig(depth=2, fanout=2, redundancy=1))
        access = topo.switches_of_tier(Tier.ACCESS)
        core = topo.switches_of_tier(Tier.CORE)
        assert len(access) == 2
        assert len(core) == 1
        assert all(topo.tier_of(w) == Tier.ACCESS for w in access)
