"""Structural tests for the four fabric generators (Figure 8b's lineup)."""

import pytest

from repro.topology import (
    BCubeConfig,
    FatTreeConfig,
    Tier,
    TreeConfig,
    VL2Config,
    build_bcube,
    build_fattree,
    build_tree,
    build_vl2,
)


class TestTree:
    def test_server_count(self):
        assert build_tree(depth=2, fanout=4).num_servers == 16
        assert build_tree(depth=3, fanout=4).num_servers == 64

    def test_switch_count_scales_with_redundancy(self):
        plain = build_tree(depth=2, fanout=4, redundancy=1)
        doubled = build_tree(depth=2, fanout=4, redundancy=2)
        assert doubled.num_switches == 2 * plain.num_switches

    def test_depth2_tiers(self):
        topo = build_tree(depth=2, fanout=4)
        tiers = {topo.tier_of(w) for w in topo.switch_ids}
        assert tiers == {Tier.ACCESS, Tier.CORE}

    def test_depth3_has_aggregation(self):
        topo = build_tree(depth=3, fanout=2)
        tiers = {topo.tier_of(w) for w in topo.switch_ids}
        assert tiers == {Tier.ACCESS, Tier.AGGREGATION, Tier.CORE}

    def test_depth1_single_tier(self):
        topo = build_tree(depth=1, fanout=4)
        assert topo.num_servers == 4
        assert all(topo.tier_of(w) == Tier.ACCESS for w in topo.switch_ids)

    def test_same_rack_distance(self):
        topo = build_tree(depth=2, fanout=4, redundancy=1)
        # servers 0..3 share the rack
        assert topo.hop_distance(0, 3) == 2
        assert topo.hop_distance(0, 4) == 4  # cross-rack

    def test_redundancy_multiplies_shortest_paths(self):
        from repro.topology import count_shortest_paths

        r1 = build_tree(depth=2, fanout=4, redundancy=1)
        r2 = build_tree(depth=2, fanout=4, redundancy=2)
        assert count_shortest_paths(r1, 0, 15) == 1
        assert count_shortest_paths(r2, 0, 15) == 8  # 2 * 2 * 2 replicas

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            TreeConfig(depth=0)
        with pytest.raises(ValueError):
            TreeConfig(fanout=0)
        with pytest.raises(ValueError):
            TreeConfig(redundancy=0)

    def test_config_and_kwargs_mutually_exclusive(self):
        with pytest.raises(TypeError):
            build_tree(TreeConfig(), depth=2)

    def test_capacities_by_tier(self):
        cfg = TreeConfig(depth=3, fanout=2, access_capacity=5.0, core_capacity=50.0)
        topo = build_tree(cfg)
        for w in topo.switch_ids:
            if topo.tier_of(w) == Tier.ACCESS:
                assert topo.switch(w).capacity == 5.0
            elif topo.tier_of(w) == Tier.CORE:
                assert topo.switch(w).capacity == 50.0

    def test_validates_connected(self):
        topo = build_tree(depth=3, fanout=3, redundancy=2)
        dist = topo.hop_distances_from(0)
        assert (dist[list(topo.server_ids)] >= 0).all()


class TestFatTree:
    def test_server_count(self):
        assert build_fattree(k=4).num_servers == 16
        assert build_fattree(k=6).num_servers == 54

    def test_switch_counts(self):
        topo = build_fattree(k=4)
        # k=4: 8 edge + 8 agg + 4 core = 20
        assert topo.num_switches == 20
        assert len(topo.switches_of_tier(Tier.CORE)) == 4
        assert len(topo.switches_of_tier(Tier.ACCESS)) == 8

    def test_rejects_odd_k(self):
        with pytest.raises(ValueError, match="even"):
            build_fattree(k=3)

    def test_same_pod_distance(self):
        topo = build_fattree(k=4)
        # servers 0,1 share an edge switch: distance 2.
        assert topo.hop_distance(0, 1) == 2
        # servers 0,2 same pod, different edge: via aggregation, distance 4.
        assert topo.hop_distance(0, 2) == 4
        # cross-pod: via core, distance 6.
        assert topo.hop_distance(0, 8) == 6

    def test_cross_pod_multipath(self):
        from repro.topology import count_shortest_paths

        topo = build_fattree(k=4)
        # (k/2)^2 = 4 core paths between cross-pod servers.
        assert count_shortest_paths(topo, 0, 8) == 4

    def test_every_server_has_one_uplink(self):
        topo = build_fattree(k=4)
        for sid in topo.server_ids:
            assert topo.degree(sid) == 1


class TestVL2:
    def test_server_count(self):
        assert build_vl2().num_servers == 64
        assert build_vl2(num_tor=4, servers_per_tor=2).num_servers == 8

    def test_layer_sizes(self):
        topo = build_vl2(num_intermediate=3, num_aggregation=5, num_tor=6)
        assert len(topo.switches_of_tier(Tier.CORE)) == 3
        assert len(topo.switches_of_tier(Tier.AGGREGATION)) == 5
        assert len(topo.switches_of_tier(Tier.ACCESS)) == 6

    def test_aggregation_intermediate_complete_bipartite(self):
        topo = build_vl2(num_intermediate=3, num_aggregation=4, num_tor=4)
        aggs = topo.switches_of_tier(Tier.AGGREGATION)
        ints = topo.switches_of_tier(Tier.CORE)
        for a in aggs:
            for i in ints:
                assert topo.has_link(a, i)

    def test_tor_uplink_count(self):
        topo = build_vl2(num_tor=6, tor_uplinks=2)
        aggs = set(topo.switches_of_tier(Tier.AGGREGATION))
        for tor in topo.switches_of_tier(Tier.ACCESS):
            uplinks = [n for n in topo.neighbors(tor) if n in aggs]
            assert len(uplinks) == 2

    def test_rejects_bad_uplinks(self):
        with pytest.raises(ValueError):
            VL2Config(tor_uplinks=9, num_aggregation=4)


class TestBCube:
    def test_server_and_switch_counts(self):
        topo = build_bcube(n=4, k=1)
        assert topo.num_servers == 16
        assert topo.num_switches == 8  # 2 levels x 4 switches

    def test_bcube0_is_star(self):
        topo = build_bcube(n=4, k=0)
        assert topo.num_servers == 4
        assert topo.num_switches == 1
        assert topo.hop_distance(0, 3) == 2

    def test_server_degree_is_k_plus_1(self):
        topo = build_bcube(n=4, k=1)
        for sid in topo.server_ids:
            assert topo.degree(sid) == 2

    def test_switch_degree_is_n(self):
        topo = build_bcube(n=4, k=1)
        for w in topo.switch_ids:
            assert topo.degree(w) == 4

    def test_one_switch_distance_within_level0_group(self):
        topo = build_bcube(n=4, k=1)
        # servers 0..3 share the level-0 switch.
        assert topo.hop_distance(0, 1) == 2

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            BCubeConfig(n=1)
        with pytest.raises(ValueError):
            BCubeConfig(k=-1)
