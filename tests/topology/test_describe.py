"""Topology summaries and ASCII rendering."""

import pytest

from repro.topology import (
    TreeConfig,
    ascii_tree,
    build_fattree,
    build_tree,
    describe_topology,
)


class TestDescribe:
    def test_tree_summary(self):
        topo = build_tree(TreeConfig(depth=2, fanout=4, redundancy=2))
        summary = describe_topology(topo)
        assert summary.num_servers == 16
        assert summary.switches_per_tier == {"access": 8, "core": 2}
        assert summary.diameter_hops == 4
        assert 2.0 < summary.mean_server_distance <= 4.0
        assert summary.mean_path_diversity > 1.0  # redundancy 2

    def test_single_path_tree_diversity_one(self):
        topo = build_tree(TreeConfig(depth=2, fanout=4, redundancy=1))
        assert describe_topology(topo).mean_path_diversity == 1.0

    def test_oversubscription_reflects_bandwidths(self):
        thin = build_tree(TreeConfig(depth=2, fanout=4, redundancy=1,
                                     server_link_bandwidth=10.0,
                                     fabric_link_bandwidth=10.0))
        fat = build_tree(TreeConfig(depth=2, fanout=4, redundancy=1,
                                    server_link_bandwidth=10.0,
                                    fabric_link_bandwidth=40.0))
        assert describe_topology(thin).oversubscription > describe_topology(
            fat
        ).oversubscription

    def test_sampling_on_large_fabric(self):
        topo = build_fattree(k=6)  # 54 servers -> 1431 pairs, sampled
        summary = describe_topology(topo, sample_pairs=32, seed=1)
        assert summary.diameter_hops <= 6
        assert summary.mean_server_distance > 0

    def test_deterministic_given_seed(self):
        topo = build_fattree(k=6)
        a = describe_topology(topo, sample_pairs=16, seed=2)
        b = describe_topology(topo, sample_pairs=16, seed=2)
        assert a == b

    def test_rejects_single_server(self):
        topo = build_tree(TreeConfig(depth=1, fanout=1))
        with pytest.raises(ValueError):
            describe_topology(topo)


class TestAsciiTree:
    def test_renders_every_switch(self):
        topo = build_tree(TreeConfig(depth=2, fanout=2, redundancy=1))
        art = ascii_tree(topo)
        for w in topo.switch_ids:
            assert topo.switch(w).name in art

    def test_servers_listed_under_access(self):
        topo = build_tree(TreeConfig(depth=2, fanout=2, redundancy=1))
        art = ascii_tree(topo)
        assert "s0" in art and "s3" in art

    def test_tiers_top_down(self):
        topo = build_tree(TreeConfig(depth=2, fanout=2, redundancy=1))
        art = ascii_tree(topo)
        assert art.index("[core]") < art.index("[access]")

    def test_refuses_big_fabrics(self):
        topo = build_tree(TreeConfig(depth=3, fanout=4))
        with pytest.raises(ValueError, match="small fabrics"):
            ascii_tree(topo)
