"""Routing utilities: stage DAGs, path enumeration and their consistency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    bfs_layers,
    build_bcube,
    build_fattree,
    build_tree,
    count_shortest_paths,
    enumerate_paths,
    path_is_valid,
    shortest_path_stages,
    single_source_unit_costs,
    stage_adjacency,
)


@pytest.fixture(scope="module")
def tree():
    return build_tree(depth=2, fanout=4, redundancy=2)


class TestStages:
    def test_endpoints_are_singleton_stages(self, tree):
        stages = shortest_path_stages(tree, 0, 15)
        assert stages[0] == (0,)
        assert stages[-1] == (15,)

    def test_stage_count_matches_distance(self, tree):
        stages = shortest_path_stages(tree, 0, 15)
        assert len(stages) == tree.hop_distance(0, 15) + 1

    def test_same_node(self, tree):
        assert shortest_path_stages(tree, 3, 3) == [(3,)]

    def test_consecutive_stages_connected(self, tree):
        stages = shortest_path_stages(tree, 0, 15)
        for a_stage, b_stage in zip(stages, stages[1:]):
            assert any(
                tree.has_link(a, b) for a in a_stage for b in b_stage
            )

    def test_stage_nodes_lie_on_shortest_paths(self, tree):
        stages = shortest_path_stages(tree, 0, 15)
        total = tree.hop_distance(0, 15)
        for j, stage in enumerate(stages):
            for node in stage:
                assert tree.hop_distance(0, node) == j
                assert tree.hop_distance(node, 15) == total - j

    def test_redundant_switches_appear(self, tree):
        # Within-rack stage should offer both access replicas.
        stages = shortest_path_stages(tree, 0, 1)
        assert len(stages[1]) == 2

    def test_cached_identity(self, tree):
        assert shortest_path_stages(tree, 0, 15) is shortest_path_stages(tree, 0, 15)


class TestStageAdjacency:
    def test_matches_has_link(self, tree):
        stages, mats = stage_adjacency(tree, 0, 15)
        assert [tuple(int(n) for n in s) for s in stages] == [
            tuple(s) for s in shortest_path_stages(tree, 0, 15)
        ]
        for k, mat in enumerate(mats):
            for i, a in enumerate(stages[k]):
                for j, b in enumerate(stages[k + 1]):
                    assert mat[i, j] == tree.has_link(int(a), int(b))

    def test_cached_identity(self, tree):
        assert stage_adjacency(tree, 0, 15) is stage_adjacency(tree, 0, 15)

    def test_adjacency_matrix_symmetric(self, tree):
        matrix = tree.adjacency_matrix()
        assert np.array_equal(matrix, matrix.T)
        assert not matrix.diagonal().any()
        assert matrix.sum() == 2 * len(tree.links)


class TestSingleSourceUnitCosts:
    def test_layers_partition_reachable_nodes(self, tree):
        layers, mats = bfs_layers(tree, 0)
        seen = np.concatenate(layers)
        assert len(seen) == len(set(seen.tolist())) == tree.num_nodes
        dist = tree.hop_distances_from(0)
        for d, layer in enumerate(layers):
            assert all(dist[n] == d for n in layer)
        assert len(mats) == len(layers) - 1

    def test_unit_hop_costs_equal_switch_count(self, tree):
        """With unit node costs on switches, the solver returns the number
        of switches on a shortest path — the paper's default cost model."""
        costs = np.zeros(tree.num_nodes)
        for w in tree.switch_ids:
            costs[w] = 1.0
        best = single_source_unit_costs(tree, 0, costs)
        for dst in tree.server_ids:
            if dst == 0:
                assert best[dst] == 0.0
                continue
            path = tree.shortest_path(0, dst)
            assert best[dst] == len(tree.switches_on_path(path))

    def test_minimises_over_equal_length_paths(self, tree):
        """Skewed per-switch costs: the solver must pick the cheapest of the
        equal-length alternatives, matching brute-force enumeration."""
        rng = np.random.default_rng(3)
        costs = np.zeros(tree.num_nodes)
        for w in tree.switch_ids:
            costs[w] = float(rng.uniform(0.5, 2.0))
        best = single_source_unit_costs(tree, 0, costs)
        for dst in (1, 5, 15):
            brute = min(
                sum(costs[n] for n in path if tree.is_switch(n))
                for path in enumerate_paths(tree, 0, dst, slack=0)
            )
            assert best[dst] == pytest.approx(brute)


class TestEnumeration:
    def test_slack0_paths_all_shortest(self, tree):
        d = tree.hop_distance(0, 15)
        for path in enumerate_paths(tree, 0, 15, slack=0):
            assert len(path) == d + 1
            assert path_is_valid(tree, path)

    def test_count_matches_dp(self, tree):
        paths = enumerate_paths(tree, 0, 15, slack=0)
        assert len(paths) == count_shortest_paths(tree, 0, 15)

    def test_count_matches_dp_fattree(self):
        ft = build_fattree(k=4)
        assert len(enumerate_paths(ft, 0, 8, slack=0)) == count_shortest_paths(
            ft, 0, 8
        )

    def test_slack_extends_path_set(self, tree):
        shortest = enumerate_paths(tree, 0, 15, slack=0)
        extended = enumerate_paths(tree, 0, 15, slack=2)
        assert set(shortest) <= set(extended)
        assert len(extended) > len(shortest)

    def test_paths_are_simple(self, tree):
        for path in enumerate_paths(tree, 0, 15, slack=2):
            assert len(path) == len(set(path))

    def test_limit_respected(self, tree):
        assert len(enumerate_paths(tree, 0, 15, slack=2, limit=3)) == 3

    def test_negative_slack_rejected(self, tree):
        with pytest.raises(ValueError):
            enumerate_paths(tree, 0, 15, slack=-1)

    def test_same_node(self, tree):
        assert enumerate_paths(tree, 2, 2) == [(2,)]

    def test_deterministic_order(self, tree):
        assert enumerate_paths(tree, 0, 15, slack=1) == enumerate_paths(
            tree, 0, 15, slack=1
        )


class TestPathValidity:
    def test_valid_path(self, tree):
        assert path_is_valid(tree, tree.shortest_path(0, 15))

    def test_rejects_repeats(self, tree):
        p = tree.shortest_path(0, 15)
        assert not path_is_valid(tree, p + (p[-2],))

    def test_rejects_non_adjacent(self, tree):
        assert not path_is_valid(tree, (0, 15))


@settings(max_examples=30, deadline=None)
@given(
    src=st.integers(min_value=0, max_value=15),
    dst=st.integers(min_value=0, max_value=15),
)
def test_property_stage_dag_counts_all_enumerated_paths(src, dst):
    """For every server pair, DP path counting equals brute enumeration."""
    tree = build_tree(depth=2, fanout=4, redundancy=2)
    assert count_shortest_paths(tree, src, dst) == len(
        enumerate_paths(tree, src, dst, slack=0)
    )


@settings(max_examples=20, deadline=None)
@given(
    src=st.integers(min_value=0, max_value=15),
    dst=st.integers(min_value=0, max_value=15),
)
def test_property_bcube_paths_valid(src, dst):
    """BCube enumeration returns simple, physically connected paths."""
    topo = build_bcube(n=4, k=1)
    for path in enumerate_paths(topo, src, dst, slack=0, limit=64):
        assert path_is_valid(topo, path)
        assert path[0] == src and path[-1] == dst
