"""CLI surface of the online workload plane: ``repro online``."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

FAST = [
    "online", "--arrival-rate", "1.5", "--tenants", "2",
    "--duration", "1.0", "--seed", "0",
    "--scheduler", "hit", "--topology", "small",
]


class TestOnlineCommand:
    def test_smoke_prints_table_and_summary(self, capsys):
        assert main(FAST) == 0
        out = capsys.readouterr().out
        assert "tenant" in out and "max queue" in out
        assert "1.5x saturation" in out
        assert "completed=" in out and "rejected=" in out
        assert "fingerprint:" in out

    def test_report_file_accounts_every_job(self, tmp_path, capsys):
        report = tmp_path / "online.json"
        assert main(FAST + ["--out", str(report)]) == 0
        doc = json.loads(report.read_text())
        counters = doc["counters"]
        assert counters["admission.submitted"] == (
            counters["online.completed"]
            + counters["admission.rejected"]
            + counters["admission.queued"]
        )
        assert doc["fingerprint"]
        assert doc["summary"]["jobs"] == counters["online.completed"]

    def test_byte_identical_across_invocations(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path in (a, b):
            main(FAST + ["--out", str(path)])
        assert a.read_bytes() == b.read_bytes()

    def test_check_invariants_runs_clean(self, capsys):
        assert main(FAST + ["--check-invariants"]) == 0
        out = capsys.readouterr().out
        assert "invariant" in out.lower()

    def test_overload_rejects_with_bounded_queue(self, tmp_path, capsys):
        report = tmp_path / "hot.json"
        assert main([
            "online", "--arrival-rate", "3.0", "--tenants", "2",
            "--duration", "1.5", "--seed", "0",
            "--admission", "queue-bound", "--queue-bound", "2",
            "--scheduler", "capacity", "--topology", "small",
            "--out", str(report),
        ]) == 0
        doc = json.loads(report.read_text())
        assert doc["counters"]["admission.rejected"] > 0
        for tenant in (0, 1):
            key = f"admission.tenant.{tenant}.max_queue_len"
            assert doc["counters"][key] <= 2

    def test_choices_validated(self):
        for bad in (
            ["online", "--profile", "weibull"],
            ["online", "--admission", "fifo"],
            ["online", "--topology", "torus"],
            ["online", "--scheduler", "elevator"],
        ):
            with pytest.raises(SystemExit):
                build_parser().parse_args(bad)

    def test_defaults(self):
        args = build_parser().parse_args(["online"])
        assert args.arrival_rate == 1.5
        assert args.tenants == 2
        assert args.profile == "poisson"
        assert args.admission == "queue-bound"
        assert args.queue_bound == 8
        assert args.scheduler == "hit"
