"""Unit tests for the structured tracer."""

import io
import json

import pytest

from repro.obs import NULL_TRACER, NullTracer, TimerStat, Tracer


class TestNullTracer:
    def test_everything_is_a_noop(self):
        t = NullTracer()
        assert t.enabled is False
        t.count("x")
        t.event("x", a=1)
        with t.timeit("x"):
            pass
        with t.span("x", a=1):
            pass
        t.close()

    def test_singleton_shared(self):
        assert NULL_TRACER.enabled is False


class TestCountersAndTimers:
    def test_counters_accumulate(self):
        t = Tracer()
        t.count("a")
        t.count("a", 4)
        t.count("b")
        assert t.counters == {"a": 5, "b": 1}

    def test_timeit_aggregates_without_output(self):
        sink = io.StringIO()
        t = Tracer(sink=sink)
        for _ in range(3):
            with t.timeit("dp"):
                pass
        stat = t.timers["dp"]
        assert stat.calls == 3
        assert stat.total_ms >= 0.0
        assert stat.mean_ms == stat.total_ms / 3
        assert sink.getvalue() == ""  # hot-path timing never writes lines

    def test_timer_records_even_on_exception(self):
        t = Tracer()
        try:
            with t.timeit("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert t.timers["boom"].calls == 1

    def test_summary_shape(self):
        t = Tracer()
        t.count("c", 2)
        with t.timeit("t"):
            pass
        s = t.summary()
        assert s["counters"] == {"c": 2}
        assert s["timers"]["t"]["calls"] == 1
        assert {"calls", "total_ms", "mean_ms"} <= set(s["timers"]["t"])


class TestJsonLinesOutput:
    def test_event_and_span_lines(self):
        sink = io.StringIO()
        t = Tracer(sink=sink)
        t.event("alg2.match", proposals=7)
        with t.span("hit.sweep", round=0):
            pass
        lines = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert [l["ev"] for l in lines] == ["event", "span"]
        assert lines[0]["name"] == "alg2.match"
        assert lines[0]["proposals"] == 7
        assert "t_ms" in lines[0]
        assert lines[1]["name"] == "hit.sweep"
        assert lines[1]["round"] == 0
        assert lines[1]["dur_ms"] >= 0.0
        assert t.events_written == 2

    def test_no_sink_aggregates_only(self):
        t = Tracer()
        t.event("x")
        with t.span("y"):
            pass
        assert t.events_written == 0
        assert t.timers["y"].calls == 1  # span still aggregates

    def test_close_appends_summary_line(self):
        sink = io.StringIO()
        t = Tracer(sink=sink)
        t.count("n", 3)
        t.close()
        last = json.loads(sink.getvalue().splitlines()[-1])
        assert last["ev"] == "summary"
        assert last["counters"] == {"n": 3}

    def test_to_path_owns_and_closes_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        t = Tracer.to_path(str(path))
        t.event("e")
        t.close()
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert [r["ev"] for r in records] == ["event", "summary"]
        t.close()  # idempotent once the sink is gone


class TestRunReport:
    def _traced(self):
        tracer = Tracer()
        tracer.timers.setdefault("slow", TimerStat()).add(0.5)
        tracer.timers["slow"].add(0.5)
        tracer.timers.setdefault("fast", TimerStat()).add(0.001)
        tracer.timers.setdefault("tied", TimerStat()).add(0.001)
        tracer.count("events", 10)
        tracer.count("retries", 2)
        return tracer

    def test_top_timers_orders_by_total_then_name(self):
        tracer = self._traced()
        names = [name for name, _ in tracer.top_timers(3)]
        assert names == ["slow", "fast", "tied"]
        assert [n for n, _ in tracer.top_timers(1)] == ["slow"]
        with pytest.raises(ValueError):
            tracer.top_timers(0)

    def test_counter_deltas(self):
        tracer = self._traced()
        assert tracer.counter_deltas() == {"events": 10, "retries": 2}
        baseline = dict(tracer.counters)
        tracer.count("events", 5)
        tracer.count("new", 1)
        assert tracer.counter_deltas(baseline) == {"events": 5, "new": 1}

    def test_format_report_content(self):
        tracer = self._traced()
        report = tracer.format_report(top=2)
        assert "top 2 timers by cumulative time:" in report
        lines = report.splitlines()
        assert lines[1].lstrip().startswith("slow")
        assert "2 calls" in lines[1]
        assert "counters:" in report
        assert "events" in report

    def test_format_report_empty(self):
        report = Tracer().format_report()
        assert "no timers recorded" in report
        assert "no counters moved" in report

    def test_format_report_with_baseline_label(self):
        tracer = self._traced()
        baseline = dict(tracer.counters)
        tracer.count("events")
        assert "counter deltas:" in tracer.format_report(baseline=baseline)
