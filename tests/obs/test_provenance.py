"""Unit contract of the decision-provenance plane.

Covers the record schema round-trip, the closed reason-code vocabulary,
the memory bound (fixed ring + incremental JSONL spill at a 10k-decision
run), fingerprint determinism, and the explain/summarize queries.
"""

import json

import pytest

from repro.obs.provenance import (
    DECISION_KINDS,
    REASON_CODES,
    DecisionRecord,
    ProvenanceConfig,
    ProvenanceRecorder,
    decision_digest,
    explain_task,
    flow_label,
    format_record,
    load_decisions,
    summarize_decisions,
    task_label,
)


def test_labels():
    class Kind:
        name = "MAP"

    class RKind:
        name = "REDUCE"

    assert task_label(Kind, 3) == "m3"
    assert task_label(RKind, 1) == "r1"
    assert task_label("map", 0) == "m0"
    assert task_label("reduce", 7) == "r7"
    assert flow_label(3, 1) == "m3->r1"


def test_every_reason_documented():
    for code, doc in REASON_CODES.items():
        assert doc, f"reason {code!r} has no description"
    for kind, doc in DECISION_KINDS.items():
        assert doc, f"kind {kind!r} has no description"


def test_emit_rejects_unknown_vocabulary():
    recorder = ProvenanceRecorder("test")
    with pytest.raises(ValueError, match="unknown decision kind"):
        recorder.emit("telepathy", "accepted")
    with pytest.raises(ValueError, match="unknown reason code"):
        recorder.emit("placement", "because-i-felt-like-it")


def test_record_round_trip(tmp_path):
    path = tmp_path / "decisions.jsonl"
    recorder = ProvenanceRecorder("hit", ring_size=8, path=path)
    recorder.now = 1.25
    emitted = recorder.emit(
        "placement",
        "node-local",
        job=3,
        task="m7",
        attempt=0,
        chosen=11,
        candidates=(11, 49),
    )
    recorder.close()

    assert emitted.seq == 0
    assert emitted.t == 1.25
    assert emitted.detail == {"chosen": 11, "candidates": [11, 49]}
    loaded = load_decisions(path)
    assert loaded == [emitted]
    assert DecisionRecord.from_dict(emitted.to_dict()) == emitted


def test_ring_bound_and_spill_at_10k(tmp_path):
    path = tmp_path / "decisions.jsonl"
    recorder = ProvenanceRecorder("hit", ring_size=64, path=path)
    for i in range(10_000):
        recorder.now = i * 0.001
        recorder.emit("route", "static-shortest", job=i % 5, hops=4)
    recorder.close()

    # Memory stays bounded by the ring; the file has every record.
    assert recorder.emitted == 10_000
    assert len(recorder.records()) == 64
    assert [r.seq for r in recorder.records()] == list(range(9936, 10_000))
    lines = path.read_text().splitlines()
    assert len(lines) == 10_000
    assert json.loads(lines[0])["seq"] == 0
    assert recorder.counters() == {"route:static-shortest": 10_000}


def test_fingerprint_deterministic(tmp_path):
    def run(path=None):
        recorder = ProvenanceRecorder("hit", ring_size=4, path=path)
        for i in range(10):
            recorder.now = float(i)
            recorder.emit("admission", "accepted", job=i, occupancy=0.5)
        recorder.close()
        return recorder.fingerprint()

    # Identical streams hash identically, with or without a sink; the
    # fingerprint covers *all* records, not just the ring's tail.
    assert run() == run(tmp_path / "a.jsonl")
    other = ProvenanceRecorder("hit")
    other.now = 0.0
    other.emit("admission", "queue-full", job=0)
    assert other.fingerprint() != run()


def test_explain_task_matches_flows_and_job_level():
    recorder = ProvenanceRecorder("hit")
    recorder.now = 0.0
    recorder.emit("admission", "started", job=1)
    recorder.emit("placement", "node-local", job=1, task="m3")
    recorder.emit("route", "policy-optimal", job=1, task="m3->r0")
    recorder.emit("route", "policy-optimal", job=1, task="m2->r0")
    recorder.emit("placement", "node-local", job=2, task="m3")

    chain = explain_task(recorder.records(), job=1, task="m3")
    assert [r.seq for r in chain] == [0, 1, 2]
    r0 = explain_task(recorder.records(), job=1, task="r0")
    assert [r.task for r in r0 if r.task] == ["m3->r0", "m2->r0"]
    whole_job = explain_task(recorder.records(), job=1)
    assert len(whole_job) == 4
    assert explain_task(recorder.records(), job=9) == []


def test_summarize_decisions_groups_by_scheduler():
    a = ProvenanceRecorder("hit")
    b = ProvenanceRecorder("capacity")
    for recorder in (a, b):
        recorder.now = 0.0
        recorder.emit("route", "static-shortest", job=0)
    a.emit("placement", "alg2-stable-match", job=0, task="m0")
    summary = summarize_decisions(a.records() + b.records())
    assert summary == {
        "capacity": {"route:static-shortest": 1},
        "hit": {
            "placement:alg2-stable-match": 1,
            "route:static-shortest": 1,
        },
    }


def test_format_record_golden():
    record = DecisionRecord(
        seq=7,
        t=0.5,
        kind="placement",
        scheduler="hit",
        reason="node-local",
        job=3,
        task="m7",
        attempt=0,
        detail={"chosen": 11, "candidates": [11, 49]},
    )
    assert format_record(record) == (
        '#7 t=0.500000 placement node-local job=3 task=m7 attempt=0 '
        '{"candidates":[11,49],"chosen":11}'
    )
    bare = DecisionRecord(
        seq=0, t=0.0, kind="admission", scheduler="hit", reason="batch-fifo"
    )
    assert format_record(bare) == "#0 t=0.000000 admission batch-fifo"


def test_decision_digest():
    assert decision_digest(None) == {}
    recorder = ProvenanceRecorder("hit")
    recorder.now = 0.0
    recorder.emit("fault", "server-fail", server=2)
    digest = decision_digest(recorder)
    assert digest["decisions"] == 1
    assert digest["counters"] == {"fault:server-fail": 1}
    assert digest["fingerprint"] == recorder.fingerprint()


def test_from_config(tmp_path):
    config = ProvenanceConfig(
        path=str(tmp_path / "sub" / "d.jsonl"), ring_size=16
    )
    recorder = ProvenanceRecorder.from_config(config, "pna")
    recorder.now = 0.0
    recorder.emit("admission", "batch-fifo", job=0)
    recorder.close()
    # Parent directories are created; close is idempotent.
    recorder.close()
    assert len(load_decisions(tmp_path / "sub" / "d.jsonl")) == 1
