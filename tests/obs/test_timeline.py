"""TimelineRecorder unit behaviour: grid, gauges, queries, summaries."""

import json

import numpy as np
import pytest

from repro.mapreduce import WorkloadGenerator
from repro.obs import TimelineRecorder
from repro.schedulers import make_scheduler
from repro.simulator import MapReduceSimulator, SimulationConfig
from repro.topology import TreeConfig, build_tree


def _topology():
    return build_tree(
        TreeConfig(depth=2, fanout=4, redundancy=2, server_resources=(2.0,))
    )


def _recorded_sim(dt=0.1, num_jobs=3, seed=0):
    jobs = WorkloadGenerator(
        seed=seed, input_size_range=(4.0, 8.0), map_rate=8.0, reduce_rate=8.0
    ).make_workload(num_jobs, interarrival=0.3)
    sim = MapReduceSimulator(
        _topology(),
        make_scheduler("hit-online", seed=seed),
        jobs,
        SimulationConfig(seed=seed, timeline_dt=dt),
    )
    sim.run()
    return sim


def test_dt_must_be_positive():
    with pytest.raises(ValueError):
        TimelineRecorder(_topology(), dt=0.0)
    with pytest.raises(ValueError):
        TimelineRecorder(_topology(), dt=-1.0)


def test_recorder_off_by_default():
    jobs = WorkloadGenerator(seed=0).make_workload(1)
    sim = MapReduceSimulator(
        _topology(), make_scheduler("capacity", seed=0), jobs,
        SimulationConfig(),
    )
    assert sim.timeline is None


def test_samples_lie_on_the_grid():
    sim = _recorded_sim(dt=0.1)
    recorder = sim.timeline
    times = recorder.times()
    # All but the final drain sample sit exactly on multiples of dt.
    grid = times[:-1]
    assert np.allclose(grid, np.round(grid / 0.1) * 0.1)
    assert np.all(np.diff(times) >= 0)
    # The grid covers the whole run: one sample per step plus the drain.
    assert len(times) >= int(times[-1] / 0.1)


def test_sample_shapes_match_fabric():
    recorder = _recorded_sim().timeline
    sample = recorder.samples[0]
    assert sample.switch_util.shape == (len(recorder.switch_ids),)
    assert sample.server_occupancy.shape == (len(recorder.server_ids),)
    assert recorder.link_keys is not None
    assert sample.link_util.shape == (len(recorder.link_keys),)


def test_utilisation_bounded_and_active_at_some_point():
    recorder = _recorded_sim().timeline
    max_util = recorder.series("max_switch_util")
    assert np.all(max_util >= 0.0)
    assert np.all(max_util <= 1.0 + 1e-9)
    assert max_util.max() > 0.0, "no shuffle traffic ever observed"
    occupancy = recorder.series("mean_occupancy")
    assert occupancy.max() > 0.0, "no container ever occupied a server"


def test_series_queries():
    recorder = _recorded_sim().timeline
    n = len(recorder.samples)
    for name in (
        "max_switch_util", "max_link_util", "mean_link_util",
        "queue_depth", "active_flows", "parked_flows",
        "running_containers", "mean_occupancy",
    ):
        series = recorder.series(name)
        assert series.shape == (n,)
        assert np.all(np.isfinite(series))
    # Unknown names read as a flat-zero gauge (subsystem was off).
    assert np.all(recorder.series("failed_servers") == 0.0)
    sid = recorder.switch_ids[0]
    assert recorder.switch_series(sid).shape == (n,)


def test_summary_reports_peaks():
    recorder = _recorded_sim().timeline
    summary = recorder.summary()
    assert summary["samples"] == len(recorder.samples)
    assert summary["dt"] == recorder.dt
    assert summary["peak_switch_util"] == pytest.approx(
        max(s.max_switch_util for s in recorder.samples)
    )
    assert summary["peak_active_flows"] >= 1


def test_empty_recorder_summary():
    recorder = TimelineRecorder(_topology(), dt=0.5)
    assert recorder.summary() == {"samples": 0, "markers": 0}
    assert recorder.times().size == 0


def test_finish_is_idempotent():
    sim = _recorded_sim()
    recorder = sim.timeline
    n = len(recorder.samples)
    recorder.finish(sim, 99.0)  # engine already finished the recorder
    assert len(recorder.samples) == n


def _bounded_sim(max_samples, spill_path=None, dt=0.05, seed=0):
    jobs = WorkloadGenerator(
        seed=seed, input_size_range=(4.0, 8.0), map_rate=8.0, reduce_rate=8.0
    ).make_workload(3, interarrival=0.3)
    sim = MapReduceSimulator(
        _topology(),
        make_scheduler("hit-online", seed=seed),
        jobs,
        SimulationConfig(
            seed=seed,
            timeline_dt=dt,
            timeline_max_samples=max_samples,
            timeline_spill_path=None if spill_path is None else str(spill_path),
        ),
    )
    sim.run()
    return sim


def test_max_samples_must_be_positive():
    with pytest.raises(ValueError):
        TimelineRecorder(_topology(), max_samples=0)


def test_spill_bounds_memory_and_keeps_every_sample(tmp_path):
    spill = tmp_path / "timeline.jsonl"
    unbounded = _recorded_sim(dt=0.05).timeline
    total = len(unbounded.samples)
    assert total > 16, "scenario too small to exercise the bound"

    bounded = _bounded_sim(16, spill).timeline
    assert len(bounded.samples) < 16
    assert bounded.spilled_samples + len(bounded.samples) == total
    assert bounded.spill_events == bounded.spilled_samples // 16
    lines = [json.loads(l) for l in spill.read_text().splitlines()]
    assert len(lines) == bounded.spilled_samples
    # Spilled rows + the in-memory tail reproduce the unbounded grid.
    spilled_t = [row["t"] for row in lines]
    tail_t = [s.t for s in bounded.samples]
    assert spilled_t + tail_t == [s.t for s in unbounded.samples]
    assert set(lines[0]) >= {"t", "switch_util", "link_util",
                             "server_occupancy", "active_flows"}


def test_bounded_summary_matches_unbounded(tmp_path):
    unbounded = _recorded_sim(dt=0.05).timeline
    bounded = _bounded_sim(16, tmp_path / "tl.jsonl").timeline
    expect = unbounded.summary()
    got = bounded.summary()
    spilled = got.pop("spilled_samples")
    assert spilled == bounded.spilled_samples
    # Peaks and counts come from running aggregates, not the ring.
    assert got == pytest.approx(expect)


def test_spill_without_path_drops_but_counts(tmp_path):
    bounded = _bounded_sim(16, spill_path=None).timeline
    assert bounded.spill_path is None
    assert bounded.spilled_samples > 0
    assert len(bounded.samples) < 16
    assert bounded.summary()["spilled_samples"] == bounded.spilled_samples
