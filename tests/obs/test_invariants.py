"""Each invariant check must accept honest state and catch seeded corruption.

The corruption cases reach into private attributes on purpose: the point of
the checker is to detect exactly the states no public API should produce.
"""

import numpy as np
import pytest

from repro.cluster import Resources
from repro.core.matching import MatchingResult
from repro.core.policy import Policy, PolicyController
from repro.core.preference import PreferenceMatrix
from repro.mapreduce import ShuffleFlow
from repro.obs import InvariantChecker, InvariantError
from repro.simulator.network import FlowNetwork
from repro.topology import TreeConfig, build_tree

from tests.core.test_matching import make_cluster


@pytest.fixture
def tree():
    return build_tree(
        TreeConfig(depth=2, fanout=4, redundancy=2, server_resources=(2.0,))
    )


@pytest.fixture
def controller(tree):
    return PolicyController(tree)


def collect() -> InvariantChecker:
    return InvariantChecker(mode="collect")


def flow(fid=0, rate=1.0):
    return ShuffleFlow(fid, 0, 0, 0, 100, 101, rate, rate)


def invariants_of(violations):
    return {v.invariant for v in violations}


class TestModes:
    def test_raise_mode_raises_with_violations_attached(self, controller):
        controller.route_flow(flow(), 0, 15)
        w = controller.policy_of(0).switch_list[0]
        controller._cap_load[w] = controller.topology.switch(w).capacity + 5
        checker = InvariantChecker(mode="raise")
        with pytest.raises(InvariantError) as exc:
            checker.check_switch_capacity(controller)
        assert invariants_of(exc.value.violations) == {"switch-capacity"}
        assert checker.violations  # raise mode still records

    def test_collect_mode_accumulates_and_resets(self, controller):
        checker = collect()
        checker.check_switch_capacity(controller)
        assert checker.violations == []
        assert checker.checks_run == 1
        controller._cap_load[controller.topology.switch_ids[0]] = 1e9
        checker.check_switch_capacity(controller)
        assert len(checker.violations) == 1
        summary = checker.summary()
        assert summary["violations"] == 1
        assert summary["by_invariant"] == {"switch-capacity": 1}
        checker.reset()
        assert checker.violations == [] and checker.checks_run == 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            InvariantChecker(mode="warn")


class TestServerCapacity:
    def test_honest_cluster_passes(self):
        cluster = make_cluster([2.0, 2.0], [1.0, 1.0, 1.0])
        cluster.place(0, 0)
        cluster.place(1, 0)
        cluster.place(2, 1)
        assert collect().check_server_capacity(cluster) == []

    def test_oversubscription_detected(self):
        cluster = make_cluster([1.0], [1.0, 1.0])
        cluster.place(0, 0)
        # Force a second container past capacity behind place()'s back.
        cluster.container(1).server_id = 0
        cluster._hosted[0].add(1)
        cluster._used[0] = Resources(2.0, 0.0)
        found = collect().check_server_capacity(cluster)
        assert "server-capacity" in invariants_of(found)

    def test_stale_usage_cache_detected(self):
        cluster = make_cluster([2.0], [1.0])
        cluster.place(0, 0)
        cluster._used[0] = Resources(0.5, 0.0)  # cache no longer honest
        found = collect().check_server_capacity(cluster)
        assert "server-capacity" in invariants_of(found)


class TestSwitchCapacity:
    def test_honest_controller_passes(self, controller):
        controller.route_flow(flow(), 0, 15)
        assert collect().check_switch_capacity(controller) == []

    def test_overload_detected_and_scoped_scan_works(self, controller):
        controller.route_flow(flow(), 0, 15)
        w = controller.policy_of(0).switch_list[0]
        controller._cap_load[w] = controller.topology.switch(w).capacity + 1
        checker = collect()
        assert checker.check_switch_capacity(controller, switches=[w])
        other = [x for x in controller.topology.switch_ids if x != w]
        checker.reset()
        assert checker.check_switch_capacity(controller, switches=other) == []

    def test_uncapacitated_installs_are_exempt(self, controller, tree):
        # A baseline-style install may exceed Eq 4 without tripping the check.
        w = tree.switch_ids[0]
        huge = flow(rate=tree.switch(w).capacity * 10)
        controller.route_flow(huge, 0, 15, enforce_capacity=False)
        assert collect().check_switch_capacity(controller) == []
        # ...but the raw load accounting still sees the traffic.
        assert any(
            controller.load(x) > tree.switch(x).capacity
            for x in tree.switch_ids
        )


class TestSwitchLoadConsistency:
    def test_honest_controller_passes(self, controller):
        controller.route_flow(flow(0), 0, 15)
        controller.route_flow(flow(1, rate=0.5), 1, 14)
        assert collect().check_switch_load_consistency(controller) == []

    def test_drift_detected(self, controller):
        controller.route_flow(flow(), 0, 15)
        w = controller.policy_of(0).switch_list[0]
        controller._load[w] += 0.25
        found = collect().check_switch_load_consistency(controller)
        assert "switch-load-consistency" in invariants_of(found)

    def test_negative_load_detected(self, controller):
        w = controller.topology.switch_ids[0]
        controller._load[w] = -0.5
        found = collect().check_switch_load_consistency(controller)
        assert "switch-load-consistency" in invariants_of(found)


class TestPolicySatisfaction:
    def test_honest_policies_pass(self, controller):
        controller.route_flow(flow(), 0, 15)
        assert collect().check_policy_satisfaction(controller) == []

    def test_corrupted_switch_list_detected(self, controller):
        policy = controller.route_flow(flow(), 0, 15)
        controller._policies[0] = Policy(
            flow_id=0,
            path=policy.path,
            switch_list=policy.switch_list[:-1],  # drop the last hop
            types=policy.types[:-1],
        )
        found = collect().check_policy_satisfaction(controller)
        assert "policy-satisfaction" in invariants_of(found)

    def test_nonphysical_hop_detected(self, controller, tree):
        policy = controller.route_flow(flow(), 0, 15)
        fake_path = (policy.path[0], policy.path[-1])  # server->server, no link
        controller._policies[0] = Policy(
            flow_id=0, path=fake_path, switch_list=(), types=()
        )
        found = collect().check_policy_satisfaction(controller)
        assert "policy-satisfaction" in invariants_of(found)


class TestMatchingStability:
    def test_stable_assignment_passes(self):
        cluster = make_cluster([1.0], [1.0, 1.0])
        preferences = PreferenceMatrix(
            server_ids=(0,),
            container_ids=(0, 1),
            cost=np.array([[1.0, 5.0]]),
            current_cost=np.array([np.inf, np.inf]),
        )
        result = MatchingResult(assignment={0: 0}, unmatched=[1], proposals=2, evictions=0)
        assert collect().check_matching_stability(
            result, preferences, cluster
        ) == []

    def test_blocking_pair_detected(self):
        cluster = make_cluster([1.0], [1.0, 1.0])
        preferences = PreferenceMatrix(
            server_ids=(0,),
            container_ids=(0, 1),
            cost=np.array([[1.0, 5.0]]),
            current_cost=np.array([np.inf, np.inf]),
        )
        # The worse container holds the slot: (0, server 0) blocks.
        result = MatchingResult(assignment={1: 0}, unmatched=[0], proposals=2, evictions=0)
        found = collect().check_matching_stability(result, preferences, cluster)
        assert invariants_of(found) == {"matching-stability"}


class TestFlowConservation:
    def test_honest_network_passes(self, tree):
        network = FlowNetwork(tree)
        path = tree.shortest_path(tree.server_ids[0], tree.server_ids[-1])
        network.add_flow(0, path, size=4.0)
        network.add_flow(1, path, size=2.0)
        assert collect().check_flow_conservation(network) == []

    def test_negative_remaining_detected(self, tree):
        network = FlowNetwork(tree)
        path = tree.shortest_path(tree.server_ids[0], tree.server_ids[1])
        network.add_flow(0, path, size=4.0)
        network.ensure_rates()
        network._flows[0].remaining = -1.0
        found = collect().check_flow_conservation(network)
        assert "flow-conservation" in invariants_of(found)

    def test_wrong_switch_count_detected(self, tree):
        network = FlowNetwork(tree)
        path = tree.shortest_path(tree.server_ids[0], tree.server_ids[-1])
        network.add_flow(0, path, size=4.0)
        network.ensure_rates()
        network._flows[0].num_switches += 1
        found = collect().check_flow_conservation(network)
        assert "flow-conservation" in invariants_of(found)


class TestQuiescence:
    def test_drained_controller_passes(self, controller):
        f = flow()
        controller.route_flow(f, 0, 15)
        controller.release(f.flow_id)
        assert collect().check_quiescent(controller) == []

    def test_exactness_catches_float_dust(self, controller):
        # Even 1e-17 of leftover load is a failure: release() must snap to 0.
        controller._load[controller.topology.switch_ids[0]] = 1e-17
        found = collect().check_quiescent(controller)
        assert "quiescence" in invariants_of(found)

    def test_leftover_policy_detected(self, controller):
        controller.route_flow(flow(), 0, 15)
        found = collect().check_quiescent(controller)
        assert "quiescence" in invariants_of(found)

    def test_active_flow_detected(self, controller, tree):
        network = FlowNetwork(tree)
        path = tree.shortest_path(tree.server_ids[0], tree.server_ids[1])
        network.add_flow(0, path, size=4.0)
        found = collect().check_quiescent(controller, network)
        assert "quiescence" in invariants_of(found)
