"""End-to-end wiring: hooks, CLI flags, and env-var activation.

The headline property: with a raise-mode checker installed, every scheduler
in the zoo completes a full simulation without tripping a single invariant.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.mapreduce import WorkloadGenerator
from repro.obs import InvariantChecker, Tracer, observe
from repro.obs.runtime import STATE, install, uninstall
from repro.schedulers import make_scheduler
from repro.simulator import SimulationConfig, run_simulation
from repro.topology import TreeConfig, build_tree

ZOO = (
    "capacity", "capacity-ecmp", "pna", "hit", "hit-online", "random",
    "rackpack",
)


def small_run(scheduler_name: str):
    topology = build_tree(
        TreeConfig(depth=2, fanout=4, redundancy=2, server_resources=(2.0,))
    )
    jobs = WorkloadGenerator(
        seed=3, input_size_range=(4.0, 8.0), map_rate=8.0, reduce_rate=8.0
    ).make_workload(3, interarrival=0.5)
    return run_simulation(
        topology,
        make_scheduler(scheduler_name, seed=3),
        jobs,
        SimulationConfig(seed=3),
    )


@pytest.fixture(autouse=True)
def clean_state():
    """Never leak observability state between tests."""
    yield
    uninstall()


@pytest.mark.parametrize("scheduler_name", ZOO)
def test_full_run_holds_all_invariants(scheduler_name):
    checker = InvariantChecker(mode="raise")
    with observe(checker=checker):
        small_run(scheduler_name)
    assert checker.violations == []
    assert checker.checks_run > 0  # the hooks actually fired


def test_tracer_counters_cover_all_subsystems():
    tracer = Tracer()
    with observe(tracer=tracer):
        small_run("hit")
    counters = tracer.counters
    assert counters.get("alg1.optimal_path", 0) > 0
    assert counters.get("alg2.proposals", 0) > 0
    assert counters.get("alg2.match", 0) > 0
    assert any(name.startswith("sim.event.") for name in counters)
    assert tracer.timers["sim.dispatch"].calls > 0
    assert tracer.timers["alg1.optimal_path"].calls > 0


def test_disabled_state_runs_untracked():
    assert STATE.enabled is False
    metrics = small_run("hit")
    assert metrics.jobs  # ran fine with the hooks compiled out


def test_observe_restores_previous_state():
    outer = InvariantChecker(mode="collect")
    install(checker=outer)
    inner = InvariantChecker(mode="raise")
    with observe(checker=inner):
        assert STATE.checker is inner
    assert STATE.checker is outer
    uninstall()
    assert STATE.enabled is False


def test_observation_does_not_change_results():
    baseline = small_run("hit").summary()
    with observe(checker=InvariantChecker(mode="raise"), tracer=Tracer()):
        observed = small_run("hit").summary()
    assert observed == baseline


class TestCli:
    def test_check_invariants_flag_reports_none(self, capsys):
        assert main([
            "simulate", "--jobs", "2", "--scheduler", "hit", "random",
            "--check-invariants",
        ]) == 0
        assert "invariant violations: none" in capsys.readouterr().out

    def test_optimize_check_invariants(self, capsys):
        assert main([
            "optimize", "--jobs", "2", "--scheduler", "hit",
            "--check-invariants",
        ]) == 0
        assert "invariant violations: none" in capsys.readouterr().out

    def test_trace_flag_writes_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main([
            "simulate", "--jobs", "2", "--scheduler", "hit",
            "--trace", str(trace),
        ]) == 0
        assert "trace written" in capsys.readouterr().out
        records = [
            json.loads(l) for l in trace.read_text().splitlines() if l.strip()
        ]
        kinds = {r["ev"] for r in records}
        assert {"event", "span", "summary"} <= kinds
        summary = [r for r in records if r["ev"] == "summary"][-1]
        assert summary["counters"].get("alg1.optimal_path", 0) > 0


def test_env_var_activation(tmp_path):
    """The env switches install at import AND survive the CLI's own
    ``observe()`` scope (the command must re-install, not shadow, them)."""
    trace = tmp_path / "env_trace.jsonl"
    code = (
        "from repro.obs.runtime import STATE\n"
        "assert STATE.enabled, 'checker not installed from env'\n"
        "assert STATE.checker is not None and STATE.checker.mode == 'raise'\n"
        "assert STATE.tracer.enabled, 'tracer not installed from env'\n"
        "from repro.cli import main\n"
        "raise SystemExit(main(['simulate', '--jobs', '2',"
        " '--scheduler', 'hit']))\n"
    )
    src = Path(__file__).resolve().parents[2] / "src"
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env={
            "PYTHONPATH": str(src),
            "REPRO_CHECK_INVARIANTS": "1",
            "REPRO_TRACE": str(trace),
        },
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    records = [
        json.loads(l) for l in trace.read_text().splitlines() if l.strip()
    ]
    assert any(r["ev"] == "span" for r in records), records
    assert records[-1]["ev"] == "summary"
