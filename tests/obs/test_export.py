"""Trace-event export and HTML report: structure, validation, files."""

import json

import pytest

from repro.mapreduce import WorkloadGenerator
from repro.obs import (
    build_chrome_trace,
    render_html_report,
    save_chrome_trace,
    save_html_report,
    validate_chrome_trace,
)
from repro.schedulers import make_scheduler
from repro.simulator import MapReduceSimulator, SimulationConfig
from repro.topology import TreeConfig, build_tree


@pytest.fixture(scope="module")
def recorded_run():
    jobs = WorkloadGenerator(
        seed=0, input_size_range=(4.0, 8.0), map_rate=8.0, reduce_rate=8.0
    ).make_workload(3, interarrival=0.3)
    sim = MapReduceSimulator(
        build_tree(TreeConfig(depth=2, fanout=4, redundancy=2,
                              server_resources=(2.0,))),
        make_scheduler("hit-online", seed=0),
        jobs,
        SimulationConfig(seed=0, timeline_dt=0.1),
    )
    metrics = sim.run()
    return sim, metrics


class TestChromeTrace:
    def test_valid_and_roundtrips(self, recorded_run, tmp_path):
        sim, metrics = recorded_run
        path = tmp_path / "trace.json"
        trace = save_chrome_trace(path, metrics, sim.timeline,
                                  scheduler="hit-online")
        assert validate_chrome_trace(trace) == []
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []
        assert loaded["otherData"]["scheduler"] == "hit-online"

    def test_contains_all_record_kinds(self, recorded_run):
        sim, metrics = recorded_run
        trace = build_chrome_trace(metrics, sim.timeline)
        cats = {e.get("cat") for e in trace["traceEvents"]}
        assert {"job", "task", "flow"} <= cats
        names = {e["name"] for e in trace["traceEvents"]
                 if e["ph"] == "C"}
        assert "util: max switch" in names
        assert "queue depth" in names

    def test_counter_count_matches_samples(self, recorded_run):
        sim, metrics = recorded_run
        trace = build_chrome_trace(metrics, sim.timeline)
        queue_counters = [e for e in trace["traceEvents"]
                          if e["ph"] == "C" and e["name"] == "queue depth"]
        assert len(queue_counters) == len(sim.timeline.samples)

    def test_export_without_timeline(self, recorded_run):
        _, metrics = recorded_run
        trace = build_chrome_trace(metrics, None, scheduler="bare")
        assert validate_chrome_trace(trace) == []
        assert not any(e["ph"] == "C" for e in trace["traceEvents"])


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace({"noTraceEvents": 1}) != []

    def test_flags_empty(self):
        assert validate_chrome_trace({"traceEvents": []}) != []

    def test_flags_unknown_phase(self):
        bad = {"traceEvents": [
            {"ph": "Z", "name": "x", "pid": 1, "tid": 1, "ts": 0},
        ]}
        assert any("unknown phase" in p for p in validate_chrome_trace(bad))

    def test_flags_negative_ts_and_missing_dur(self):
        bad = {"traceEvents": [
            {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": -5.0},
        ]}
        problems = validate_chrome_trace(bad)
        assert any("ts" in p for p in problems)
        assert any("dur" in p for p in problems)

    def test_flags_dangling_async(self):
        bad = {"traceEvents": [
            {"ph": "b", "cat": "t", "id": 1, "name": "x",
             "pid": 1, "tid": 1, "ts": 0.0, "args": {}},
        ]}
        assert any("never ended" in p for p in validate_chrome_trace(bad))

    def test_flags_end_without_begin(self):
        bad = {"traceEvents": [
            {"ph": "e", "cat": "t", "id": 1, "name": "x",
             "pid": 1, "tid": 1, "ts": 0.0},
        ]}
        assert any("without matching begin" in p
                   for p in validate_chrome_trace(bad))

    def test_flags_non_numeric_counter(self):
        bad = {"traceEvents": [
            {"ph": "C", "name": "c", "pid": 1, "tid": 1, "ts": 0.0,
             "args": {"value": "high"}},
        ]}
        assert any("numeric" in p for p in validate_chrome_trace(bad))


class TestHtmlReport:
    def test_report_covers_runs(self, recorded_run, tmp_path):
        from repro.analysis import attribute_run

        sim, metrics = recorded_run
        sections = [{
            "scheduler": "hit-online",
            "metrics": metrics,
            "timeline": sim.timeline,
            "critical": attribute_run(metrics),
            "counters": {"spec.wins": 0},
        }]
        html = render_html_report(sections, title="smoke report")
        assert html.startswith("<!DOCTYPE html>")
        assert "hit-online" in html
        assert "<svg" in html  # inline gauge timelines
        assert "critical-path attribution" in html
        path = tmp_path / "report.html"
        save_html_report(path, sections)
        assert path.read_text(encoding="utf-8") == render_html_report(sections)

    def test_report_without_timeline_or_critical(self, recorded_run):
        _, metrics = recorded_run
        html = render_html_report(
            [{"scheduler": "bare", "metrics": metrics, "timeline": None}]
        )
        assert "bare" in html
        assert "<svg" not in html
