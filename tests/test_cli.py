"""CLI smoke and behaviour tests (everything runs in-process)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scheduler_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scheduler", "fifo"])


class TestTopologyCommand:
    @pytest.mark.parametrize("kind", ["tree", "fattree", "vl2", "bcube"])
    def test_builds_and_prints(self, kind, capsys):
        assert main(["topology", kind]) == 0
        out = capsys.readouterr().out
        assert "Topology(" in out
        assert "switches" in out

    def test_tree_parameters_respected(self, capsys):
        main(["topology", "tree", "--depth", "3", "--fanout", "2"])
        assert "servers=8" in capsys.readouterr().out


class TestWorkloadCommand:
    def test_prints_table(self, capsys):
        assert main(["workload", "--jobs", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "shuffle" in out

    def test_saves_trace(self, tmp_path, capsys):
        path = tmp_path / "wl.jsonl"
        main(["workload", "--jobs", "3", "--output", str(path)])
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        assert len(lines) == 3
        record = json.loads(lines[0])
        assert {"job_id", "class", "num_maps"} <= set(record)

    def test_deterministic_across_invocations(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        main(["workload", "--jobs", "4", "--seed", "9", "--output", str(a)])
        main(["workload", "--jobs", "4", "--seed", "9", "--output", str(b)])
        assert a.read_text() == b.read_text()


class TestOptimizeCommand:
    def test_runs_with_generated_jobs(self, capsys):
        assert main([
            "optimize", "--jobs", "3", "--scheduler", "capacity", "hit",
        ]) == 0
        out = capsys.readouterr().out
        assert "capacity" in out and "hit" in out

    def test_runs_from_trace(self, tmp_path, capsys):
        path = tmp_path / "wl.jsonl"
        main(["workload", "--jobs", "2", "--output", str(path)])
        capsys.readouterr()
        assert main([
            "optimize", "--jobs-trace", str(path), "--scheduler", "rackpack",
        ]) == 0
        assert "rackpack" in capsys.readouterr().out


class TestSimulateCommand:
    def test_runs_and_saves_trace(self, tmp_path, capsys):
        prefix = tmp_path / "run"
        assert main([
            "simulate", "--jobs", "3", "--scheduler", "capacity",
            "--save-trace", str(prefix),
        ]) == 0
        out = capsys.readouterr().out
        assert "mean JCT" in out
        trace_file = tmp_path / "run.capacity.jsonl"
        assert trace_file.exists()
        records = [json.loads(l) for l in trace_file.read_text().splitlines() if l]
        kinds = {r["kind"] for r in records}
        assert {"job_submit", "job_finish", "map_finish"} <= kinds


class TestTelemetryFlags:
    def test_timeline_export_and_reports(self, tmp_path, capsys):
        from repro.obs import validate_chrome_trace

        prefix = tmp_path / "perfetto"
        report = tmp_path / "report.html"
        assert main([
            "simulate", "--jobs", "2", "--scheduler", "capacity", "hit",
            "--timeline", "--critical-path",
            "--export-trace", str(prefix),
            "--html-report", str(report),
        ]) == 0
        out = capsys.readouterr().out
        assert "critical-path attribution" in out
        assert "| scheduler |" in out  # markdown table on stdout
        for name in ("capacity", "hit"):
            trace = json.loads((tmp_path / f"perfetto.{name}.json").read_text())
            assert validate_chrome_trace(trace) == []
            # --timeline was on, so counter samples must be present.
            assert any(e["ph"] == "C" for e in trace["traceEvents"])
        html = report.read_text()
        assert "capacity" in html and "hit" in html and "<svg" in html

    def test_export_without_timeline_has_no_counters(self, tmp_path, capsys):
        prefix = tmp_path / "bare"
        assert main([
            "simulate", "--jobs", "2", "--scheduler", "capacity",
            "--export-trace", str(prefix),
        ]) == 0
        capsys.readouterr()
        trace = json.loads((tmp_path / "bare.capacity.json").read_text())
        assert not any(e["ph"] == "C" for e in trace["traceEvents"])

    def test_env_var_enables_timeline(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TIMELINE_DT", "0.2")
        prefix = tmp_path / "env"
        assert main([
            "simulate", "--jobs", "2", "--scheduler", "capacity",
            "--export-trace", str(prefix),
        ]) == 0
        capsys.readouterr()
        trace = json.loads((tmp_path / "env.capacity.json").read_text())
        assert any(e["ph"] == "C" for e in trace["traceEvents"])


class TestTracerSinkLifecycle:
    """The --trace sink must be flushed/closed on every exit path."""

    def test_failing_run_still_yields_valid_jsonl(self, tmp_path, monkeypatch):
        from repro.simulator import MapReduceSimulator

        def boom(self):
            raise RuntimeError("mid-run crash")

        monkeypatch.setattr(MapReduceSimulator, "run", boom)
        trace = tmp_path / "crash.jsonl"
        with pytest.raises(RuntimeError, match="mid-run crash"):
            main([
                "simulate", "--jobs", "2", "--scheduler", "capacity",
                "--trace", str(trace),
            ])
        lines = [l for l in trace.read_text().splitlines() if l.strip()]
        records = [json.loads(l) for l in lines]  # every line parses
        assert records, "trace file empty after crash"
        assert records[-1]["ev"] == "summary"  # close() ran on the way out

    def test_optimize_failing_run_closes_trace(self, tmp_path, monkeypatch):
        import repro.experiments

        def boom(*args, **kwargs):
            raise RuntimeError("placement crash")

        monkeypatch.setattr(
            repro.experiments, "run_static_placement", boom
        )
        trace = tmp_path / "crash.jsonl"
        with pytest.raises(RuntimeError, match="placement crash"):
            main([
                "optimize", "--jobs", "2", "--scheduler", "hit",
                "--trace", str(trace),
            ])
        records = [
            json.loads(l) for l in trace.read_text().splitlines() if l.strip()
        ]
        assert records and records[-1]["ev"] == "summary"


class TestExperimentCommand:
    def test_fig3(self, capsys):
        assert main(["experiment", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "112" in out and "64" in out
