"""Max-min fair fluid network: allocation correctness and dynamics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import DelayModel, FlowNetwork
from repro.topology import Link, Server, Switch, Tier, Topology, TreeConfig, build_tree


def dumbbell(bandwidth=10.0, switch_capacity=100.0):
    """s0, s1 --- w4 --- w5 --- s2, s3 (shared middle link)."""
    servers = [Server(i, f"s{i}") for i in range(4)]
    switches = [
        Switch(4, "w4", Tier.ACCESS, switch_capacity),
        Switch(5, "w5", Tier.ACCESS, switch_capacity),
    ]
    links = [
        Link(0, 4, bandwidth),
        Link(1, 4, bandwidth),
        Link(4, 5, bandwidth),
        Link(5, 2, bandwidth),
        Link(5, 3, bandwidth),
    ]
    return Topology(servers, switches, links)


class TestAllocation:
    def test_single_flow_gets_bottleneck(self):
        net = FlowNetwork(dumbbell(bandwidth=10.0))
        net.add_flow(0, (0, 4, 5, 2), size=100.0)
        net.recompute_rates()
        assert net.active_flows[0].rate == pytest.approx(10.0)

    def test_two_flows_share_middle_link(self):
        net = FlowNetwork(dumbbell(bandwidth=10.0))
        net.add_flow(0, (0, 4, 5, 2), 100.0)
        net.add_flow(1, (1, 4, 5, 3), 100.0)
        net.recompute_rates()
        for f in net.active_flows:
            assert f.rate == pytest.approx(5.0)

    def test_max_min_unequal_paths(self):
        """Classic max-min: a one-link flow gets the leftovers."""
        net = FlowNetwork(dumbbell(bandwidth=10.0))
        net.add_flow(0, (0, 4, 5, 2), 100.0)  # crosses middle
        net.add_flow(1, (1, 4, 5, 3), 100.0)  # crosses middle
        net.add_flow(2, (0, 4, 1), 100.0)     # rack-local via w4? invalid path
        # s0->w4->s1 is a valid 2-hop path (both links exist).
        net.recompute_rates()
        rates = {f.flow_id: f.rate for f in net.active_flows}
        # Middle link shared by flows 0,1 -> 5 each.  Flow 2 shares s0-w4
        # with flow 0: fair share on that link is 5 each, but after flow 0
        # freezes at 5 (middle bottleneck), flow 2 takes the rest: 5.
        # Flow 2 also uses w4-s1 (alone).  So flow 2 gets 5.
        assert rates[0] == pytest.approx(5.0)
        assert rates[1] == pytest.approx(5.0)
        assert rates[2] == pytest.approx(5.0)

    def test_switch_capacity_constrains(self):
        net = FlowNetwork(dumbbell(bandwidth=100.0, switch_capacity=6.0))
        net.add_flow(0, (0, 4, 5, 2), 100.0)
        net.add_flow(1, (1, 4, 5, 3), 100.0)
        net.recompute_rates()
        for f in net.active_flows:
            assert f.rate == pytest.approx(3.0)  # switch 6.0 / 2 flows

    def test_no_resource_overload(self):
        """Sum of rates through every link/switch <= its capacity."""
        topo = build_tree(TreeConfig(depth=2, fanout=4, redundancy=2))
        net = FlowNetwork(topo)
        rng = np.random.default_rng(0)
        for fid in range(30):
            src, dst = rng.choice(16, size=2, replace=False)
            path = topo.shortest_path(int(src), int(dst))
            net.add_flow(fid, path, 100.0)
        net.recompute_rates()
        # Check link loads.
        for link in topo.links:
            for direction in ((link.u, link.v), (link.v, link.u)):
                load = sum(
                    f.rate
                    for f in net.active_flows
                    if direction in zip(f.path, f.path[1:])
                )
                assert load <= link.bandwidth + 1e-6
        # Check switch loads.
        for w in topo.switch_ids:
            load = sum(f.rate for f in net.active_flows if w in f.path)
            assert load <= topo.switch(w).capacity + 1e-6

    def test_every_flow_gets_positive_rate(self):
        topo = build_tree(TreeConfig(depth=2, fanout=4, redundancy=2))
        net = FlowNetwork(topo)
        rng = np.random.default_rng(1)
        for fid in range(40):
            src, dst = rng.choice(16, size=2, replace=False)
            net.add_flow(fid, topo.shortest_path(int(src), int(dst)), 10.0)
        net.recompute_rates()
        assert all(f.rate > 0 for f in net.active_flows)

    @settings(max_examples=20, deadline=None)
    @given(n_flows=st.integers(1, 25), seed=st.integers(0, 999))
    def test_property_max_min_is_stable_allocation(self, n_flows, seed):
        """No flow can be increased without decreasing a smaller flow:
        every flow is bottlenecked on at least one saturated resource."""
        topo = build_tree(TreeConfig(depth=2, fanout=2, redundancy=1))
        net = FlowNetwork(topo)
        rng = np.random.default_rng(seed)
        for fid in range(n_flows):
            src, dst = rng.choice(4, size=2, replace=False)
            net.add_flow(fid, topo.shortest_path(int(src), int(dst)), 10.0)
        net.recompute_rates()
        # Resource loads.
        loads: dict[int, float] = {}
        for f in net.active_flows:
            for r in f.resources:
                loads[r] = loads.get(r, 0.0) + f.rate
        caps = net._caps
        for f in net.active_flows:
            saturated = any(
                loads[r] >= caps[r] - 1e-6 for r in f.resources
            )
            assert saturated, f"flow {f.flow_id} has slack on all resources"


class TestDynamics:
    def test_advance_consumes_remaining(self):
        net = FlowNetwork(dumbbell(10.0))
        net.add_flow(0, (0, 4, 5, 2), size=20.0)
        net.advance(1.0)
        assert net.active_flows[0].remaining == pytest.approx(10.0)

    def test_completion_detection(self):
        net = FlowNetwork(dumbbell(10.0))
        net.add_flow(0, (0, 4, 5, 2), size=20.0)
        assert net.time_to_next_completion() == pytest.approx(2.0)
        net.advance(2.0)
        assert net.completed_flows() == [0]

    def test_remove_flow_frees_bandwidth(self):
        net = FlowNetwork(dumbbell(10.0))
        net.add_flow(0, (0, 4, 5, 2), 100.0)
        net.add_flow(1, (1, 4, 5, 3), 100.0)
        net.recompute_rates()
        net.remove_flow(0)
        net.recompute_rates()
        assert net.active_flows[0].rate == pytest.approx(10.0)

    def test_negative_advance_rejected(self):
        net = FlowNetwork(dumbbell())
        with pytest.raises(ValueError):
            net.advance(-1.0)

    def test_duplicate_flow_rejected(self):
        net = FlowNetwork(dumbbell())
        net.add_flow(0, (0, 4, 5, 2), 1.0)
        with pytest.raises(ValueError, match="already active"):
            net.add_flow(0, (0, 4, 5, 2), 1.0)

    def test_single_node_path_rejected(self):
        net = FlowNetwork(dumbbell())
        with pytest.raises(ValueError, match="multi-node"):
            net.add_flow(0, (0,), 1.0)

    def test_invalid_hop_rejected(self):
        net = FlowNetwork(dumbbell())
        with pytest.raises(ValueError, match="not a physical link"):
            net.add_flow(0, (0, 5, 2), 1.0)

    def test_idle_network_has_no_horizon(self):
        net = FlowNetwork(dumbbell())
        assert net.time_to_next_completion() is None

    def test_resume_with_remaining_bytes(self):
        """Fault recovery resumes a parked flow with its progress kept."""
        net = FlowNetwork(dumbbell(10.0))
        net.add_flow(0, (0, 4, 5, 2), size=20.0, remaining=5.0)
        assert net.active_flows[0].remaining == pytest.approx(5.0)
        assert net.time_to_next_completion() == pytest.approx(0.5)

    def test_remaining_must_be_in_range(self):
        net = FlowNetwork(dumbbell())
        with pytest.raises(ValueError, match=r"remaining must be in \(0, size\]"):
            net.add_flow(0, (0, 4, 5, 2), size=20.0, remaining=0.0)
        with pytest.raises(ValueError, match=r"remaining must be in \(0, size\]"):
            net.add_flow(0, (0, 4, 5, 2), size=20.0, remaining=21.0)


class TestUnknownFlowErrors:
    def test_remove_unknown_flow_names_id_and_count(self):
        net = FlowNetwork(dumbbell())
        net.add_flow(7, (0, 4, 5, 2), 10.0)
        with pytest.raises(
            KeyError, match=r"remove_flow: unknown flow 99 \(1 active flows\)"
        ):
            net.remove_flow(99)

    def test_reroute_unknown_flow_names_id_and_count(self):
        net = FlowNetwork(dumbbell())
        with pytest.raises(
            KeyError, match=r"reroute_flow: unknown flow 3 \(0 active flows\)"
        ):
            net.reroute_flow(3, (0, 4, 5, 2))

    def test_double_remove_surfaces_as_unknown(self):
        net = FlowNetwork(dumbbell())
        net.add_flow(0, (0, 4, 5, 2), 10.0)
        net.remove_flow(0)
        with pytest.raises(KeyError, match="remove_flow: unknown flow 0"):
            net.remove_flow(0)


class TestDelayModel:
    def test_empty_network_baseline_delay(self):
        net = FlowNetwork(dumbbell(), DelayModel(switch_service_us=25.0,
                                                 link_propagation_us=2.0))
        flow = net.add_flow(0, (0, 4, 5, 2), 1.0)
        # 3 links * 2us + 2 switches * 25us at zero utilisation.
        assert flow.start_delay_us == pytest.approx(3 * 2 + 2 * 25)

    def test_congestion_inflates_delay(self):
        net = FlowNetwork(dumbbell(10.0, switch_capacity=10.0))
        net.add_flow(0, (0, 4, 5, 2), 100.0)
        net.recompute_rates()
        later = net.add_flow(1, (1, 4, 5, 3), 100.0)
        baseline = FlowNetwork(dumbbell()).add_flow(9, (1, 4, 5, 3), 1.0)
        assert later.start_delay_us > baseline.start_delay_us

    def test_utilisation_capped(self):
        dm = DelayModel(max_utilisation=0.9)
        net = FlowNetwork(dumbbell(10.0, switch_capacity=1.0), dm)
        net.add_flow(0, (0, 4, 5, 2), 100.0)
        net.recompute_rates()
        flow = net.add_flow(1, (1, 4, 5, 3), 100.0)
        # 1/(1-0.9) = 10x inflation at most per switch.
        assert flow.start_delay_us <= 2 * 25.0 * 10 + 3 * 2 + 1e-6

    def test_switch_utilisation_query(self):
        net = FlowNetwork(dumbbell(10.0, switch_capacity=20.0))
        net.add_flow(0, (0, 4, 5, 2), 100.0)
        net.recompute_rates()
        assert net.switch_utilisation(4) == pytest.approx(10.0 / 20.0)
