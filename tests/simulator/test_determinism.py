"""The seeding contract: same config ⇒ byte-identical simulation output.

All randomness in a run derives from ``SimulationConfig.seed`` (see
``docs/simulation_model.md``); two runs with the same seed must therefore
agree on every record, not just the aggregates.
"""

import dataclasses

import pytest

from repro.mapreduce import WorkloadGenerator
from repro.schedulers import make_scheduler
from repro.simulator import SimulationConfig, run_simulation
from repro.topology import TreeConfig, build_tree


def _run(scheduler_name: str, seed: int):
    topology = build_tree(
        TreeConfig(depth=2, fanout=4, redundancy=2, server_resources=(2.0,))
    )
    jobs = WorkloadGenerator(
        seed=seed, input_size_range=(4.0, 8.0), map_rate=8.0, reduce_rate=8.0
    ).make_workload(4, interarrival=0.5)
    config = SimulationConfig(seed=seed, server_speed_spread=0.2)
    return run_simulation(
        topology, make_scheduler(scheduler_name, seed=seed), jobs, config
    )


@pytest.mark.parametrize("scheduler_name", ["hit-online", "capacity-ecmp", "random"])
def test_identical_seed_identical_run(scheduler_name):
    a = _run(scheduler_name, seed=7)
    b = _run(scheduler_name, seed=7)
    assert [dataclasses.astuple(r) for r in a.jobs] == [
        dataclasses.astuple(r) for r in b.jobs
    ]
    assert [dataclasses.astuple(r) for r in a.tasks] == [
        dataclasses.astuple(r) for r in b.tasks
    ]
    assert [dataclasses.astuple(r) for r in a.flows] == [
        dataclasses.astuple(r) for r in b.flows
    ]
    assert a.summary() == b.summary()


def test_different_seed_different_run():
    """Sanity check that the seed actually reaches the randomness sources
    (otherwise the determinism test above would pass vacuously)."""
    a = _run("random", seed=7)
    b = _run("random", seed=8)
    assert a.summary() != b.summary()
