"""The decision-provenance plane's contract: auditing never perturbs.

A simulation with ``provenance`` set must be byte-identical to the same
simulation without it — same records in the same order, same event count,
same fingerprints — across seeds and the plain / faults /
faults+speculation / online arms.  Every hook is a pure read and consumes
no randomness, so any divergence here means an emission grew a side
effect (or a guard started changing control flow).
"""

import dataclasses

import pytest

from repro.experiments.online import (
    ONLINE_TOPOLOGIES,
    build_arrival_plan,
    online_fingerprint,
)
from repro.faults import FaultKind, FaultSpec
from repro.faults.chaos import WatchdogSimulator
from repro.mapreduce import WorkloadGenerator
from repro.obs import DECISION_KINDS, REASON_CODES, ProvenanceConfig
from repro.schedulers import make_scheduler
from repro.simulator import MapReduceSimulator, SimulationConfig
from repro.speculation import SpeculationConfig
from repro.topology import TreeConfig, build_tree
from repro.workload import AdmissionConfig, generate_arrivals


def _faults(topology):
    switch = topology.switch_ids[0]
    return (
        FaultSpec(0.4, FaultKind.SERVER_FAIL, 2),
        FaultSpec(0.6, FaultKind.TASK_SLOWDOWN, 5, factor=5.0, duration=1.5),
        FaultSpec(0.8, FaultKind.SWITCH_FAIL, switch),
        FaultSpec(1.3, FaultKind.SWITCH_RECOVER, switch),
        FaultSpec(1.4, FaultKind.SERVER_RECOVER, 2),
    )


def _scenario(name, topology):
    if name == "plain":
        return {}
    extra = {"faults": _faults(topology), "max_task_retries": 10}
    if name == "faults+speculation":
        extra["speculation"] = SpeculationConfig()
    return extra


SCENARIOS = ("plain", "faults", "faults+speculation")


def _run(seed, scheduler, scenario, provenance):
    topology = build_tree(
        TreeConfig(depth=2, fanout=4, redundancy=2, server_resources=(2.0,))
    )
    jobs = WorkloadGenerator(
        seed=seed, input_size_range=(4.0, 8.0), map_rate=8.0, reduce_rate=8.0
    ).make_workload(4, interarrival=0.3)
    config = SimulationConfig(
        seed=seed,
        server_speed_spread=0.2,
        provenance=provenance,
        **_scenario(scenario, topology),
    )
    sim = MapReduceSimulator(
        topology, make_scheduler(scheduler, seed=seed), jobs, config
    )
    metrics = sim.run()
    return sim, metrics


def _astuples(records):
    return [dataclasses.astuple(r) for r in records]


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("seed", [0, 3])
@pytest.mark.parametrize("scheduler", ["hit-online", "capacity-ecmp"])
def test_audited_run_byte_identical(scenario, seed, scheduler):
    bare_sim, bare = _run(seed, scheduler, scenario, provenance=None)
    aud_sim, aud = _run(
        seed, scheduler, scenario, provenance=ProvenanceConfig(ring_size=256)
    )

    assert bare_sim.provenance is None
    assert aud_sim.provenance is not None
    assert aud_sim.provenance.emitted > 0, "audit produced no records"

    assert _astuples(aud.jobs) == _astuples(bare.jobs)
    assert _astuples(aud.tasks) == _astuples(bare.tasks)
    assert _astuples(aud.flows) == _astuples(bare.flows)
    assert aud_sim.events_processed == bare_sim.events_processed
    assert aud.summary() == bare.summary()


@pytest.mark.parametrize("seed", [0, 3])
def test_audited_run_fingerprint_deterministic(seed):
    a, _ = _run(seed, "hit-online", "faults+speculation",
                provenance=ProvenanceConfig())
    b, _ = _run(seed, "hit-online", "faults+speculation",
                provenance=ProvenanceConfig())
    assert a.provenance.fingerprint() == b.provenance.fingerprint()
    assert a.provenance.counters() == b.provenance.counters()


def test_record_stream_well_formed():
    sim, _ = _run(0, "hit-online", "faults+speculation",
                  provenance=ProvenanceConfig(ring_size=100_000))
    records = sim.provenance.records()
    assert len(records) == sim.provenance.emitted
    assert [r.seq for r in records] == list(range(len(records)))
    times = [r.t for r in records]
    assert times == sorted(times), "decision times must follow the clock"
    for record in records:
        assert record.kind in DECISION_KINDS
        assert record.reason in REASON_CODES
        assert record.scheduler == "hit-online"
    kinds = {r.kind for r in records}
    assert {"admission", "placement", "route", "fault", "speculation"} <= kinds


def _online_run(provenance):
    seed = 1
    topology = ONLINE_TOPOLOGIES["small"]()
    plan = build_arrival_plan(
        topology, multiplier=1.5, tenants=2, profile="poisson", duration=2.0
    )
    jobs = generate_arrivals(plan, seed=seed)
    config = SimulationConfig(
        map_slots_per_job=16,
        seed=seed,
        admission=AdmissionConfig(policy="queue-bound", queue_bound=8),
        provenance=provenance,
    )
    sim = WatchdogSimulator(
        ONLINE_TOPOLOGIES["small"](),
        make_scheduler("hit-online", seed=seed),
        jobs,
        config,
        stall_limit=50_000,
    )
    metrics = sim.run()
    counters = {k: int(v) for k, v in sim.admission.counters().items()}
    counters["online.completed"] = len(metrics.jobs)
    summary = {k: float(v) for k, v in metrics.online_summary().items()}
    return sim, online_fingerprint(summary, counters, sim.events_processed)


def test_online_arm_byte_identical():
    bare_sim, bare_print = _online_run(None)
    aud_sim, aud_print = _online_run(ProvenanceConfig(ring_size=512))

    assert aud_sim.provenance is not None
    assert aud_print == bare_print
    assert aud_sim.events_processed == bare_sim.events_processed
    # Admission verdicts are audited with the arrival plane's reason codes.
    kinds = {r.kind for r in aud_sim.provenance.records()}
    assert "admission" in kinds
