"""Simulation traces, flow rerouting and server heterogeneity."""

import json

import pytest

from repro.schedulers import make_scheduler
from repro.simulator import (
    FlowNetwork,
    MapReduceSimulator,
    SimulationConfig,
    dump_trace,
    load_trace,
    run_simulation,
    trace_from_metrics,
)
from repro.topology import TreeConfig, build_tree

from ..conftest import make_job


@pytest.fixture
def topo():
    return build_tree(
        TreeConfig(depth=2, fanout=4, redundancy=2, server_resources=(2.0,))
    )


class TestSimulationTrace:
    def run_once(self, topo):
        jobs = [make_job(num_maps=3, num_reduces=2, input_size=3.0)]
        return run_simulation(topo, make_scheduler("capacity"), jobs)

    def test_events_time_sorted(self, topo):
        events = trace_from_metrics(self.run_once(topo))
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_event_kinds_complete(self, topo):
        events = trace_from_metrics(self.run_once(topo))
        kinds = {e.kind for e in events}
        assert {
            "job_submit", "job_finish", "map_start", "map_finish",
            "reduce_start", "reduce_finish", "flow_start", "flow_finish",
        } <= kinds

    def test_counts_match_metrics(self, topo):
        metrics = self.run_once(topo)
        events = trace_from_metrics(metrics)
        assert sum(1 for e in events if e.kind == "map_finish") == len(
            [t for t in metrics.tasks if t.kind == "map"]
        )
        assert sum(1 for e in events if e.kind == "flow_finish") == len(
            metrics.flows
        )

    def test_json_roundtrip(self, topo):
        metrics = self.run_once(topo)
        records = load_trace(dump_trace(metrics))
        assert len(records) == len(trace_from_metrics(metrics))
        assert all("t" in r and "kind" in r for r in records)

    def test_deterministic_serialisation(self, topo):
        metrics = self.run_once(topo)
        assert dump_trace(metrics) == dump_trace(metrics)


class TestReroute:
    def test_reroute_preserves_remaining(self, topo):
        net = FlowNetwork(topo)
        path1 = topo.shortest_path(0, 15)
        net.add_flow(0, path1, size=10.0)
        net.advance(0.1)
        remaining = net.active_flows[0].remaining
        # Find an alternative path via enumeration.
        from repro.topology import enumerate_paths

        alt = next(
            p for p in enumerate_paths(topo, 0, 15, slack=0) if p != path1
        )
        flow = net.reroute_flow(0, alt)
        assert flow.remaining == remaining
        assert flow.path == alt

    def test_reroute_requires_same_endpoints(self, topo):
        net = FlowNetwork(topo)
        net.add_flow(0, topo.shortest_path(0, 15), 1.0)
        with pytest.raises(ValueError, match="endpoints"):
            net.reroute_flow(0, topo.shortest_path(1, 15))

    def test_reroute_changes_rates(self, topo):
        """Moving a flow off a shared link raises both flows' rates."""
        net = FlowNetwork(topo)
        p = topo.shortest_path(0, 15)
        net.add_flow(0, p, 100.0)
        net.add_flow(1, p, 100.0)
        net.recompute_rates()
        before = net.active_flows[0].rate
        from repro.topology import enumerate_paths

        alt = next(
            q
            for q in enumerate_paths(topo, 0, 15, slack=0)
            if q[1] != p[1] and q[-2] != p[-2]
        )
        net.reroute_flow(1, alt)
        net.recompute_rates()
        assert net.active_flows[0].rate > before


class TestHeterogeneity:
    def test_homogeneous_by_default(self, topo):
        sim = MapReduceSimulator(
            topo, make_scheduler("capacity"), [make_job()], SimulationConfig()
        )
        assert set(sim.server_speeds.values()) == {1.0}

    def test_speeds_sampled_in_range(self, topo):
        config = SimulationConfig(server_speed_spread=0.4, seed=1)
        sim = MapReduceSimulator(topo, make_scheduler("capacity"),
                                 [make_job()], config)
        for speed in sim.server_speeds.values():
            assert 0.6 <= speed <= 1.4
        assert len(set(sim.server_speeds.values())) > 1

    def test_rejects_bad_spread(self, topo):
        with pytest.raises(ValueError, match="spread"):
            MapReduceSimulator(
                topo, make_scheduler("capacity"), [make_job()],
                SimulationConfig(server_speed_spread=1.0),
            )

    def test_heterogeneity_stretches_map_tail(self, topo):
        """Slow servers lengthen the slowest map tasks."""
        jobs = [make_job(num_maps=8, num_reduces=1, input_size=8.0)]
        homo = run_simulation(topo, make_scheduler("capacity"), jobs,
                              SimulationConfig(seed=3))
        hetero = run_simulation(topo, make_scheduler("capacity"), jobs,
                                SimulationConfig(seed=3,
                                                 server_speed_spread=0.5))
        assert hetero.task_durations("map").max() > homo.task_durations("map").max()

    def test_all_jobs_still_complete(self, topo):
        jobs = [make_job(job_id=i, num_maps=4, num_reduces=2) for i in range(2)]
        metrics = run_simulation(
            topo, make_scheduler("hit", seed=0), jobs,
            SimulationConfig(seed=0, server_speed_spread=0.3),
        )
        assert len(metrics.jobs) == 2


class TestHitOnline:
    def test_hit_online_completes_and_matches_quality(self, topo):
        jobs = [make_job(job_id=i, num_maps=6, num_reduces=2, input_size=6.0)
                for i in range(3)]
        plain = run_simulation(topo, make_scheduler("hit", seed=1), jobs)
        online = run_simulation(topo, make_scheduler("hit-online", seed=1), jobs)
        assert len(online.jobs) == 3
        # Online rebalancing never makes routing worse.
        assert online.total_shuffle_cost() <= plain.total_shuffle_cost() + 1e-6
