"""The timeline recorder's contract: recording never perturbs the run.

A simulation with ``timeline_dt`` set must be byte-identical to the same
simulation without it — same records in the same order, same event count —
across seeds, schedulers, fault timelines and speculation.  The recorder
only *reads* state (its one shared computation, ``ensure_rates``, is
idempotent and deterministic), so any divergence here means a sampling
hook grew a side effect.
"""

import dataclasses

import pytest

from repro.faults import FaultKind, FaultSpec
from repro.mapreduce import WorkloadGenerator
from repro.schedulers import make_scheduler
from repro.simulator import MapReduceSimulator, SimulationConfig
from repro.speculation import SpeculationConfig
from repro.topology import TreeConfig, build_tree

def _faults(topology):
    switch = topology.switch_ids[0]
    return (
        FaultSpec(0.4, FaultKind.SERVER_FAIL, 2),
        FaultSpec(0.6, FaultKind.TASK_SLOWDOWN, 5, factor=5.0, duration=1.5),
        FaultSpec(0.8, FaultKind.SWITCH_FAIL, switch),
        FaultSpec(1.3, FaultKind.SWITCH_RECOVER, switch),
        FaultSpec(1.4, FaultKind.SERVER_RECOVER, 2),
    )


def _scenario(name, topology):
    if name == "plain":
        return {}
    extra = {"faults": _faults(topology), "max_task_retries": 10}
    if name == "faults+speculation":
        extra["speculation"] = SpeculationConfig()
    return extra


SCENARIOS = ("plain", "faults", "faults+speculation")


def _run(seed: int, scheduler: str, scenario: str, timeline_dt: float | None):
    topology = build_tree(
        TreeConfig(depth=2, fanout=4, redundancy=2, server_resources=(2.0,))
    )
    jobs = WorkloadGenerator(
        seed=seed, input_size_range=(4.0, 8.0), map_rate=8.0, reduce_rate=8.0
    ).make_workload(4, interarrival=0.3)
    config = SimulationConfig(
        seed=seed,
        server_speed_spread=0.2,
        timeline_dt=timeline_dt,
        **_scenario(scenario, topology),
    )
    sim = MapReduceSimulator(
        topology, make_scheduler(scheduler, seed=seed), jobs, config
    )
    metrics = sim.run()
    return sim, metrics


def _astuples(records):
    return [dataclasses.astuple(r) for r in records]


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("seed", [0, 3])
@pytest.mark.parametrize("scheduler", ["hit-online", "random"])
def test_recorded_run_byte_identical(scenario, seed, scheduler):
    bare_sim, bare = _run(seed, scheduler, scenario, timeline_dt=None)
    rec_sim, rec = _run(seed, scheduler, scenario, timeline_dt=0.07)

    assert bare_sim.timeline is None
    assert rec_sim.timeline is not None
    assert rec_sim.timeline.samples, "recorder produced no samples"

    assert _astuples(rec.jobs) == _astuples(bare.jobs)
    assert _astuples(rec.tasks) == _astuples(bare.tasks)
    assert _astuples(rec.flows) == _astuples(bare.flows)
    assert rec_sim.events_processed == bare_sim.events_processed
    assert rec.summary() == bare.summary()


def test_sampling_grid_independent_of_dt():
    """Two recorded runs with different grids also agree with each other
    (dt only changes what is observed, never what happens)."""
    _, coarse = _run(1, "hit-online", "faults", timeline_dt=0.5)
    _, fine = _run(1, "hit-online", "faults", timeline_dt=0.01)
    assert _astuples(coarse.tasks) == _astuples(fine.tasks)
    assert coarse.summary() == fine.summary()


def test_markers_record_fault_events():
    sim, _ = _run(2, "random", "faults+speculation", timeline_dt=0.1)
    kinds = {m.kind for m in sim.timeline.markers}
    assert "server_fail" in kinds
    assert "task_slowdown" in kinds
