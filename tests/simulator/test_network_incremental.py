"""Incremental-vs-full allocator equivalence (the bit-identity contract).

The incremental water-filling allocator refills only the sharing-graph
component(s) touched since the last recompute.  Its correctness claim is not
"close enough" but **bit-identical**: every flow rate, every aggregate
resource load, every completion horizon must match a full progressive fill
byte for byte, whatever sequence of add/remove/reroute/park-resume churn
preceded it and wherever the fallback threshold happens to sit.  These tests
drive randomized op sequences across Tree/FatTree/VL2 fabrics against
mirrored networks in every allocator mode, and run whole simulations under
``network_incremental`` True/False expecting byte-identical records.

Also here: the degenerate-capacity regression for the ``level > 0`` drain
guard (zero-capacity resources must pin their flows at exactly 0.0 without
perturbing any other resource's remaining capacity).
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultKind, FaultSpec
from repro.mapreduce import WorkloadGenerator
from repro.schedulers import make_scheduler
from repro.simulator import FlowNetwork, MapReduceSimulator, SimulationConfig
from repro.speculation import SpeculationConfig
from repro.topology import (
    FatTreeConfig,
    Link,
    Server,
    Switch,
    Tier,
    Topology,
    TreeConfig,
    VL2Config,
    build_fattree,
    build_tree,
    build_vl2,
)
from repro.topology.routing import enumerate_paths


def make_topology(kind: str) -> Topology:
    if kind == "tree":
        return build_tree(TreeConfig(depth=2, fanout=3, redundancy=2))
    if kind == "fattree":
        return build_fattree(FatTreeConfig(k=4))
    return build_vl2(VL2Config(num_intermediate=2, num_aggregation=2,
                               num_tor=4, servers_per_tor=2))


TOPOLOGIES = ("tree", "fattree", "vl2")

#: Allocator variants compared against the full-recompute reference: never
#: fall back (pure component refills), always fall back (pure full refills
#: through the incremental bookkeeping), and the default mixed regime.
VARIANTS = (
    {"incremental": True, "incremental_threshold": 10.0},
    {"incremental": True, "incremental_threshold": 0.0},
    {"incremental": True},
)


def assert_networks_bit_identical(ref: FlowNetwork, other: FlowNetwork) -> None:
    ref_flows = {f.flow_id: f for f in ref.active_flows}
    other_flows = {f.flow_id: f for f in other.active_flows}
    assert ref_flows.keys() == other_flows.keys()
    fids = sorted(ref_flows)
    ref_rates = np.array([ref_flows[fid].rate for fid in fids])
    other_rates = np.array([other_flows[fid].rate for fid in fids])
    assert ref_rates.tobytes() == other_rates.tobytes()
    ref_rem = np.array([ref_flows[fid].remaining for fid in fids])
    other_rem = np.array([other_flows[fid].remaining for fid in fids])
    assert ref_rem.tobytes() == other_rem.tobytes()
    assert ref.resource_rates().tobytes() == other.resource_rates().tobytes()
    assert ref.completed_flows() == other.completed_flows()
    ref_t = ref.time_to_next_completion()
    other_t = other.time_to_next_completion()
    if ref_t is None:
        assert other_t is None
    else:
        assert np.float64(ref_t).tobytes() == np.float64(other_t).tobytes()


def churn_sequence(nets, topology, seed, n_ops):
    """Drive an identical random op sequence through every mirrored net."""
    rng = np.random.default_rng(seed)
    servers = list(topology.server_ids)
    live: dict[int, tuple[tuple[int, ...], float]] = {}
    next_fid = 0
    now = 0.0
    for _ in range(n_ops):
        op = rng.random()
        if op < 0.45 or not live:
            src, dst = rng.choice(servers, size=2, replace=False)
            path = topology.shortest_path(int(src), int(dst))
            size = float(rng.uniform(1.0, 50.0))
            for net in nets:
                net.add_flow(next_fid, path, size, now=now)
            live[next_fid] = (path, size)
            next_fid += 1
        elif op < 0.65:
            fid = int(rng.choice(sorted(live)))
            for net in nets:
                net.remove_flow(fid)
            del live[fid]
        elif op < 0.80:
            fid = int(rng.choice(sorted(live)))
            path, _ = live[fid]
            candidates = enumerate_paths(
                topology, path[0], path[-1], slack=1, limit=16
            )
            new_path = candidates[int(rng.integers(len(candidates)))]
            for net in nets:
                net.reroute_flow(fid, new_path)
            live[fid] = (new_path, live[fid][1])
        elif op < 0.90:
            # Park-resume: remove, then re-add preserving remaining bytes
            # (the fault-recovery round trip).
            fid = int(rng.choice(sorted(live)))
            removed = [net.remove_flow(fid) for net in nets]
            path, size = live.pop(fid)
            remaining = removed[0].remaining
            if 0.0 < remaining <= size:
                for net in nets:
                    net.add_flow(fid, path, size, now=now, remaining=remaining)
                live[fid] = (path, size)
        else:
            dt = float(rng.uniform(0.0, 0.5))
            now += dt
            for net in nets:
                net.advance(dt)
            completed = nets[0].completed_flows()
            for fid in completed:
                for net in nets:
                    net.remove_flow(fid)
                live.pop(fid, None)
        for net in nets:
            net.recompute_rates()
        yield


class TestIncrementalEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000), kind=st.sampled_from(TOPOLOGIES))
    def test_property_churn_is_bit_identical(self, seed, kind):
        """Random add/remove/reroute/park-resume churn: every allocator
        variant stays bit-identical to the full recompute after each op."""
        topology = make_topology(kind)
        full = FlowNetwork(topology, incremental=False)
        others = [FlowNetwork(topology, **kw) for kw in VARIANTS]
        for _ in churn_sequence([full, *others], topology, seed, n_ops=40):
            for other in others:
                assert_networks_bit_identical(full, other)

    def test_threshold_fallback_is_transparent(self):
        """Crossing the fallback threshold mid-sequence changes nothing."""
        topology = make_topology("fattree")
        full = FlowNetwork(topology, incremental=False)
        # Threshold 0.4: early ops refill components, dense phases fall back.
        mixed = FlowNetwork(topology, incremental=True,
                            incremental_threshold=0.4)
        for _ in churn_sequence([full, mixed], topology, seed=7, n_ops=80):
            assert_networks_bit_identical(full, mixed)

    def test_emptied_resources_snap_to_exact_zero(self):
        """Removing every flow leaves the aggregate array all-+0.0 — the
        incremental removal refunds must not strand float drift."""
        topology = make_topology("tree")
        net = FlowNetwork(topology)
        servers = list(topology.server_ids)
        rng = np.random.default_rng(3)
        for fid in range(20):
            src, dst = rng.choice(servers, size=2, replace=False)
            net.add_flow(fid, topology.shortest_path(int(src), int(dst)),
                         float(rng.uniform(1.0, 9.0)))
        net.recompute_rates()
        for fid in range(20):
            net.remove_flow(fid)
        net.recompute_rates()
        rates = net.resource_rates()
        assert rates.tobytes() == np.zeros_like(rates).tobytes()


def _faults(topology):
    switch = topology.switch_ids[0]
    return (
        FaultSpec(0.4, FaultKind.SERVER_FAIL, 2),
        FaultSpec(0.6, FaultKind.TASK_SLOWDOWN, 5, factor=5.0, duration=1.5),
        FaultSpec(0.8, FaultKind.SWITCH_FAIL, switch),
        FaultSpec(1.3, FaultKind.SWITCH_RECOVER, switch),
        FaultSpec(1.4, FaultKind.SERVER_RECOVER, 2),
    )


def _run(seed: int, scenario: str, incremental: bool):
    topology = build_tree(
        TreeConfig(depth=2, fanout=4, redundancy=2, server_resources=(2.0,))
    )
    extra = {}
    if scenario != "plain":
        extra = {"faults": _faults(topology), "max_task_retries": 10}
        if scenario == "faults+speculation":
            extra["speculation"] = SpeculationConfig()
    config = SimulationConfig(
        seed=seed,
        server_speed_spread=0.2,
        network_incremental=incremental,
        **extra,
    )
    sim = MapReduceSimulator(
        topology, make_scheduler("hit-online", seed=seed), jobs_for(seed), config
    )
    metrics = sim.run()
    return sim, metrics


def jobs_for(seed: int):
    return WorkloadGenerator(
        seed=seed, input_size_range=(4.0, 8.0), map_rate=8.0, reduce_rate=8.0
    ).make_workload(4, interarrival=0.3)


def _astuples(records):
    return [dataclasses.astuple(r) for r in records]


class TestEngineByteIdentity:
    """Whole-simulation equivalence of the allocator modes: flow reroutes,
    parks and resumes all route through the incremental path, so a full run
    exercises it far beyond what unit churn can."""

    @pytest.mark.parametrize(
        "scenario", ("plain", "faults", "faults+speculation")
    )
    @pytest.mark.parametrize("seed", [0, 3])
    def test_runs_byte_identical(self, scenario, seed):
        inc_sim, inc = _run(seed, scenario, incremental=True)
        full_sim, full = _run(seed, scenario, incremental=False)
        assert _astuples(inc.jobs) == _astuples(full.jobs)
        assert _astuples(inc.tasks) == _astuples(full.tasks)
        assert _astuples(inc.flows) == _astuples(full.flows)
        assert inc_sim.events_processed == full_sim.events_processed
        assert inc.summary() == full.summary()


class TestDegenerateCapacity:
    """Zero/drained-capacity resources and the ``level > 0`` drain guard."""

    @staticmethod
    def _dumbbell_with_dead_switch():
        """s0,s1 -- w4(capacity zeroed) -- w5 -- s2,s3, plus a private
        s0-w6-s1 leg through a healthy switch that must stay unperturbed.

        ``Topology`` rejects non-positive capacities at construction, so the
        degenerate resource is injected straight into the allocator's
        capacity array — exactly the state a zero-capacity resource would
        put it in.
        """
        servers = [Server(i, f"s{i}") for i in range(4)]
        switches = [
            Switch(4, "w4", Tier.ACCESS, 100.0),
            Switch(5, "w5", Tier.ACCESS, 100.0),
            Switch(6, "w6", Tier.ACCESS, 100.0),
        ]
        links = [
            Link(0, 4, 10.0),
            Link(1, 4, 10.0),
            Link(4, 5, 10.0),
            Link(5, 2, 10.0),
            Link(5, 3, 10.0),
            Link(0, 6, 10.0),
            Link(6, 1, 10.0),
        ]
        net = FlowNetwork(Topology(servers, switches, links))
        net._caps[net._switch_resource[4]] = 0.0
        return net

    def test_zero_capacity_switch_pins_flows_to_exact_zero(self):
        net = self._dumbbell_with_dead_switch()
        net.add_flow(0, (0, 4, 5, 2), 100.0)
        net.add_flow(1, (0, 6, 1), 100.0)
        net.recompute_rates()
        rates = {f.flow_id: f.rate for f in net.active_flows}
        assert rates[0] == 0.0
        assert np.float64(rates[0]).tobytes() == np.float64(0.0).tobytes()
        # The healthy leg is untouched by the degenerate bottleneck: its
        # flow takes the full link bandwidth, bit-exactly.
        assert rates[1] == 10.0

    def test_zero_capacity_survives_repeated_churn(self):
        """Churning flows on/off the dead switch never lets drift leak into
        other resources (the guard skips the 0.0-level drain outright)."""
        net = self._dumbbell_with_dead_switch()
        net.add_flow(0, (0, 6, 1), 100.0)
        for round_ in range(25):
            fid = 100 + round_
            net.add_flow(fid, (0, 4, 5, 2), 7.0)
            net.recompute_rates()
            assert net.active_flows[-1].rate == 0.0
            assert net.active_flows[0].rate == 10.0
            net.remove_flow(fid)
            net.recompute_rates()
        assert net.switch_utilisation(4) == 0.0
        assert net.switch_utilisation(6) == pytest.approx(10.0 / 100.0)

    def test_fully_drained_resource_freezes_leftover_flows_at_zero(self):
        """A resource drained to exactly its capacity by earlier freezes
        yields level 0.0 for its stragglers — they must read exactly 0.0."""
        servers = [Server(0, "s0"), Server(1, "s1"), Server(2, "s2")]
        switches = [Switch(3, "w3", Tier.ACCESS, 100.0)]
        # s0-w3 carries two flows; s1-w3 carries one of them alone and is
        # narrower, so that flow freezes first and exactly exhausts s0-w3.
        links = [Link(0, 3, 10.0), Link(3, 1, 5.0), Link(3, 2, 5.0)]
        net = FlowNetwork(Topology(servers, switches, links))
        net.add_flow(0, (0, 3, 1), 100.0)
        net.add_flow(1, (0, 3, 2), 100.0)
        net.recompute_rates()
        rates = {f.flow_id: f.rate for f in net.active_flows}
        assert rates[0] == 5.0
        assert rates[1] == 5.0
        # Both directed halves of s0-w3 sum to 10.0 == bandwidth: saturated
        # with zero drift.
        assert net.utilisation_by_link()[(0, 3)] == 1.0
