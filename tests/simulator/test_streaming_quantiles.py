"""P² streaming quantile estimator vs the exact ``np.percentile``.

The estimator must track the exact tail within a small relative error at
realistic sample counts, fall back to the exact answer below five
samples, and stay completely out of the way unless a collector opts in
with ``streaming_quantiles=True`` (exact percentiles remain the
default).
"""

import numpy as np
import pytest

from repro.simulator.metrics import JobRecord, MetricsCollector, P2Quantile


def _feed(estimator, values):
    for v in values:
        estimator.add(float(v))
    return estimator


class TestP2Quantile:
    def test_empty_and_tiny(self):
        est = P2Quantile(0.99)
        assert est.value() == 0.0
        _feed(est, [3.0, 1.0])
        # Below five samples the estimator answers exactly.
        assert est.value() == pytest.approx(np.percentile([3.0, 1.0], 99))

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    @pytest.mark.parametrize(
        "dist",
        [
            lambda rng: rng.uniform(0.0, 100.0, 20_000),
            lambda rng: rng.exponential(5.0, 20_000),
            lambda rng: rng.lognormal(1.0, 0.75, 20_000),
        ],
        ids=["uniform", "exponential", "lognormal"],
    )
    def test_tracks_exact_within_tolerance(self, q, dist):
        rng = np.random.default_rng(7)
        values = dist(rng)
        est = _feed(P2Quantile(q), values)
        exact = float(np.percentile(values, q * 100.0))
        assert est.value() == pytest.approx(exact, rel=0.05)

    def test_monotone_input_is_exactish(self):
        est = _feed(P2Quantile(0.5), range(1, 1002))
        assert est.value() == pytest.approx(501.0, rel=0.01)

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)


def _record_jobs(collector, completion_times):
    for i, jct in enumerate(completion_times):
        collector.record_job(
            JobRecord(
                job_id=i,
                name=f"job-{i}",
                shuffle_class="uniform",
                submit_time=0.0,
                start_time=float(jct) * 0.25,
                finish_time=float(jct),
                shuffle_volume=1.0,
                remote_map_traffic=0.0,
            )
        )


class TestCollectorOptIn:
    def test_default_stays_exact(self):
        collector = MetricsCollector()
        _record_jobs(collector, [1.0, 2.0, 3.0, 4.0, 100.0])
        assert collector._p2_jct is None
        exact = float(np.percentile([1.0, 2.0, 3.0, 4.0, 100.0], 99))
        assert collector.jct_percentile(99.0) == pytest.approx(exact)

    def test_streaming_p99_close_to_exact(self):
        rng = np.random.default_rng(11)
        jcts = rng.exponential(4.0, 5_000) + 0.5
        streaming = MetricsCollector(streaming_quantiles=True)
        exact = MetricsCollector()
        _record_jobs(streaming, jcts)
        _record_jobs(exact, jcts)
        assert streaming.jct_percentile(99.0) == pytest.approx(
            exact.jct_percentile(99.0), rel=0.05
        )
        assert streaming.slowdown_percentile(99.0) == pytest.approx(
            exact.slowdown_percentile(99.0), rel=0.05
        )

    def test_other_percentiles_stay_exact_even_when_streaming(self):
        streaming = MetricsCollector(streaming_quantiles=True)
        _record_jobs(streaming, range(1, 101))
        assert streaming.jct_percentile(50.0) == pytest.approx(
            np.percentile(np.arange(1.0, 101.0), 50)
        )
