"""Engine-level overload contract: arrivals through the admission plane.

Every submitted job ends as exactly one of {completed, rejected-with-
reason, queued-at-end}; nothing is silently dropped, reruns are
byte-identical, and a job that can never be placed is an accounted
outcome, not a hang or a crash.
"""

import dataclasses

import pytest

from repro.obs import InvariantChecker, Tracer, observe
from repro.schedulers import make_scheduler
from repro.simulator import MapReduceSimulator, SimulationConfig
from repro.topology import TreeConfig, build_tree
from repro.workload import (
    AdmissionConfig,
    ArrivalConfig,
    TenantSpec,
    generate_arrivals,
)

from ..conftest import make_job


@pytest.fixture
def topo():
    return build_tree(
        TreeConfig(depth=2, fanout=4, redundancy=2, server_resources=(2.0,))
    )


def _overload_jobs(seed=0, rate=6.0, duration=2.0):
    """Far more offered work than 32 slots absorb in the window."""
    config = ArrivalConfig(
        tenants=(
            TenantSpec(0, rate=rate, input_size_range=(2.0, 4.0)),
            TenantSpec(1, rate=rate, weight=2.0, input_size_range=(2.0, 4.0)),
        ),
        profile="poisson",
        duration=duration,
    )
    return generate_arrivals(config, seed=seed)


def _run(topo, jobs, admission, scheduler="capacity", seed=0):
    sim = MapReduceSimulator(
        topo,
        make_scheduler(scheduler, seed=seed),
        jobs,
        SimulationConfig(seed=seed, admission=admission),
    )
    metrics = sim.run()
    return sim, metrics


class TestAccounting:
    def test_every_job_has_exactly_one_fate(self, topo):
        jobs = _overload_jobs()
        admission = AdmissionConfig(policy="queue-bound", queue_bound=2)
        sim, metrics = _run(topo, jobs, admission)
        completed = {r.job_id for r in metrics.jobs}
        rejected = {r.job_id for r in metrics.rejections}
        queued = {s.job_id for s in sim.admission.queued_jobs()}
        assert completed | rejected | queued == {j.job_id for j in jobs}
        assert not completed & rejected
        assert not completed & queued
        assert not rejected & queued
        assert rejected, "no rejections at 2x+ overload — not overloaded?"
        counters = sim.admission.counters()
        assert counters["admission.submitted"] == len(jobs)
        assert counters["admission.rejected"] == len(rejected)

    def test_rejections_carry_reason_and_skip_job_state(self, topo):
        jobs = _overload_jobs()
        admission = AdmissionConfig(policy="queue-bound", queue_bound=1)
        sim, metrics = _run(topo, jobs, admission)
        assert metrics.rejections
        for record in metrics.rejections:
            assert record.reason == "queue-full"
            # Rejected before materialisation: no job state, no HDFS blocks.
            assert record.job_id not in sim._jobs_by_id

    def test_bounded_queue_stays_bounded(self, topo):
        bound = 3
        jobs = _overload_jobs(rate=10.0)
        admission = AdmissionConfig(policy="queue-bound", queue_bound=bound)
        sim, _ = _run(topo, jobs, admission)
        assert sim.admission.max_queue_len() <= bound

    def test_admit_all_completes_everything_eventually(self, topo):
        jobs = _overload_jobs(rate=3.0, duration=1.0)
        sim, metrics = _run(topo, jobs, AdmissionConfig(policy="admit-all"))
        assert len(metrics.jobs) == len(jobs)
        assert not metrics.rejections
        assert sim.admission.queue_depth() == 0


class TestQueuedAtEnd:
    def test_unplaceable_job_is_accounted_not_fatal(self):
        """A job needing more slots than the cluster owns stays queued when
        the stream drains — the contract's third leg, not a RuntimeError."""
        topo = build_tree(
            TreeConfig(depth=2, fanout=2, redundancy=1,
                       server_resources=(2.0,))
        )  # 8 slots total
        whale = make_job(0, num_maps=4, num_reduces=9)  # needs 1+9 > 8
        sim, metrics = _run(topo, [whale], AdmissionConfig(policy="admit-all"))
        assert metrics.jobs == []
        assert sim.admission.queue_depth() == 1
        counters = sim.admission.counters()
        assert counters["admission.queued"] == 1
        assert counters["admission.submitted"] == 1

    def test_batch_mode_same_job_still_raises(self):
        """Without an admission plane the pre-online contract holds: an
        unfinishable workload is a configuration bug, not an outcome."""
        topo = build_tree(
            TreeConfig(depth=2, fanout=2, redundancy=1,
                       server_resources=(2.0,))
        )
        whale = make_job(0, num_maps=4, num_reduces=9)
        with pytest.raises(RuntimeError, match="unfinished|unadmitted"):
            _run(topo, [whale], admission=None)


class TestDeterminism:
    @pytest.mark.parametrize("scheduler", ["capacity", "hit"])
    def test_online_rerun_is_record_identical(self, topo, scheduler):
        admission = AdmissionConfig(policy="queue-bound", queue_bound=4)

        def once():
            # Regenerate everything from seeds, as a rerun would.
            return _run(
                topo, _overload_jobs(seed=5), admission,
                scheduler=scheduler, seed=5,
            )[1]

        a, b = once(), once()
        assert [dataclasses.astuple(r) for r in a.jobs] == [
            dataclasses.astuple(r) for r in b.jobs
        ]
        assert [dataclasses.astuple(r) for r in a.rejections] == [
            dataclasses.astuple(r) for r in b.rejections
        ]
        assert a.online_summary() == b.online_summary()


class TestObservedMode:
    def test_invariants_and_counters_clean_under_overload(self, topo):
        jobs = _overload_jobs()
        admission = AdmissionConfig(policy="queue-bound", queue_bound=2)
        checker = InvariantChecker(mode="raise")
        tracer = Tracer()
        with observe(checker=checker, tracer=tracer):
            sim, metrics = _run(topo, jobs, admission)
        assert checker.violations == []
        assert checker.checks_run > 0
        counts = tracer.counters
        assert counts["admission.submitted"] == len(jobs)
        assert counts["admission.rejected"] == len(metrics.rejections)
        assert counts["admission.queued"] == sim.admission.queue_depth()
