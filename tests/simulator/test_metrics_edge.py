"""MetricsCollector edge cases: empty and single-sample record sets.

Pins the degenerate-input contract the reporting layer relies on: no
aggregate may raise or emit NaN/inf on zero flows, empty record sets or a
single sample — it returns 0.0 (or the sample itself) instead.
"""

import math

import pytest

from repro.simulator.metrics import (
    FlowRecord,
    JobRecord,
    MetricsCollector,
    TaskRecord,
)


def _job(job_id=0, submit=0.0, finish=5.0):
    return JobRecord(
        job_id=job_id, name=f"j{job_id}", shuffle_class="heavy",
        submit_time=submit, start_time=submit, finish_time=finish,
        shuffle_volume=1.0, remote_map_traffic=0.5,
    )


def _all_aggregates(collector: MetricsCollector) -> dict[str, float]:
    values = dict(collector.summary())
    values["throughput"] = collector.throughput()
    values["mean_map"] = collector.mean_task_duration("map")
    values["mean_reduce"] = collector.mean_task_duration("reduce")
    for q in (0.0, 50.0, 99.0, 100.0):
        values[f"p{q}"] = collector.jct_percentile(q)
    return values


class TestEmpty:
    def test_every_aggregate_finite_and_zero(self):
        collector = MetricsCollector()
        for name, value in _all_aggregates(collector).items():
            assert math.isfinite(value), f"{name} not finite"
            assert value == 0.0, f"{name} != 0 on empty records"

    def test_percentile_range_validated(self):
        collector = MetricsCollector()
        with pytest.raises(ValueError):
            collector.jct_percentile(-1.0)
        with pytest.raises(ValueError):
            collector.jct_percentile(100.5)


class TestSingleSample:
    def test_percentiles_return_the_sample(self):
        collector = MetricsCollector()
        collector.record_job(_job(finish=5.0))
        for q in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert collector.jct_percentile(q) == pytest.approx(5.0)
        assert collector.mean_jct() == pytest.approx(5.0)

    def test_single_task_and_flow(self):
        collector = MetricsCollector()
        collector.record_task(
            TaskRecord(0, "map", 0, start=1.0, finish=2.5)
        )
        collector.record_flow(
            FlowRecord(0, 0, size=2.0, start=1.0, finish=2.0,
                       num_switches=3, delay_us=10.0)
        )
        assert collector.mean_task_duration("map") == pytest.approx(1.5)
        assert collector.mean_task_duration("reduce") == 0.0
        assert collector.average_route_length() == pytest.approx(3.0)
        assert collector.throughput() == pytest.approx(2.0)


class TestZeroFlowDegenerates:
    def test_jobs_without_flows(self):
        """A map-only workload records jobs/tasks but zero flows."""
        collector = MetricsCollector()
        collector.record_job(_job())
        collector.record_task(TaskRecord(0, "map", 0, start=0.0, finish=1.0))
        values = _all_aggregates(collector)
        assert all(math.isfinite(v) for v in values.values())
        assert values["shuffle_cost"] == 0.0
        assert values["throughput"] == 0.0
        assert values["avg_shuffle_delay_us"] == 0.0

    def test_only_instant_local_flows(self):
        """Co-located flows deliver instantly: zero makespan, finite
        throughput (0.0 by contract, not inf)."""
        collector = MetricsCollector()
        collector.record_flow(
            FlowRecord(0, 0, size=1.0, start=2.0, finish=2.0,
                       num_switches=0, delay_us=0.0)
        )
        assert collector.throughput() == 0.0
        assert collector.average_shuffle_delay_us() == 0.0
        assert collector.average_flow_duration() == 0.0
        assert collector.average_route_length() == 0.0
