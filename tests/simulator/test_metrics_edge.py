"""MetricsCollector edge cases: empty and single-sample record sets.

Pins the degenerate-input contract the reporting layer relies on: no
aggregate may raise or emit NaN/inf on zero flows, empty record sets or a
single sample — it returns 0.0 (or the sample itself) instead.
"""

import math

import pytest

from repro.simulator.metrics import (
    FlowRecord,
    JobRecord,
    MetricsCollector,
    RejectionRecord,
    TaskRecord,
    jain_fairness,
)


def _job(job_id=0, submit=0.0, finish=5.0, start=None, tenant=0):
    if start is None:
        start = submit
    return JobRecord(
        job_id=job_id, name=f"j{job_id}", shuffle_class="heavy",
        submit_time=submit, start_time=start, finish_time=finish,
        shuffle_volume=1.0, remote_map_traffic=0.5, tenant=tenant,
    )


def _all_aggregates(collector: MetricsCollector) -> dict[str, float]:
    values = dict(collector.summary())
    values["throughput"] = collector.throughput()
    values["mean_map"] = collector.mean_task_duration("map")
    values["mean_reduce"] = collector.mean_task_duration("reduce")
    for q in (0.0, 50.0, 99.0, 100.0):
        values[f"p{q}"] = collector.jct_percentile(q)
    return values


class TestEmpty:
    def test_every_aggregate_finite_and_zero(self):
        collector = MetricsCollector()
        for name, value in _all_aggregates(collector).items():
            assert math.isfinite(value), f"{name} not finite"
            assert value == 0.0, f"{name} != 0 on empty records"

    def test_percentile_range_validated(self):
        collector = MetricsCollector()
        with pytest.raises(ValueError):
            collector.jct_percentile(-1.0)
        with pytest.raises(ValueError):
            collector.jct_percentile(100.5)


class TestSingleSample:
    def test_percentiles_return_the_sample(self):
        collector = MetricsCollector()
        collector.record_job(_job(finish=5.0))
        for q in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert collector.jct_percentile(q) == pytest.approx(5.0)
        assert collector.mean_jct() == pytest.approx(5.0)

    def test_single_task_and_flow(self):
        collector = MetricsCollector()
        collector.record_task(
            TaskRecord(0, "map", 0, start=1.0, finish=2.5)
        )
        collector.record_flow(
            FlowRecord(0, 0, size=2.0, start=1.0, finish=2.0,
                       num_switches=3, delay_us=10.0)
        )
        assert collector.mean_task_duration("map") == pytest.approx(1.5)
        assert collector.mean_task_duration("reduce") == 0.0
        assert collector.average_route_length() == pytest.approx(3.0)
        assert collector.throughput() == pytest.approx(2.0)


class TestZeroFlowDegenerates:
    def test_jobs_without_flows(self):
        """A map-only workload records jobs/tasks but zero flows."""
        collector = MetricsCollector()
        collector.record_job(_job())
        collector.record_task(TaskRecord(0, "map", 0, start=0.0, finish=1.0))
        values = _all_aggregates(collector)
        assert all(math.isfinite(v) for v in values.values())
        assert values["shuffle_cost"] == 0.0
        assert values["throughput"] == 0.0
        assert values["avg_shuffle_delay_us"] == 0.0

    def test_only_instant_local_flows(self):
        """Co-located flows deliver instantly: zero makespan, finite
        throughput (0.0 by contract, not inf)."""
        collector = MetricsCollector()
        collector.record_flow(
            FlowRecord(0, 0, size=1.0, start=2.0, finish=2.0,
                       num_switches=0, delay_us=0.0)
        )
        assert collector.throughput() == 0.0
        assert collector.average_shuffle_delay_us() == 0.0
        assert collector.average_flow_duration() == 0.0
        assert collector.average_route_length() == 0.0


class TestOnlineAggregatesEmpty:
    """The online summary obeys the same degenerate-input contract."""

    def test_empty_online_summary_finite(self):
        collector = MetricsCollector()
        summary = collector.online_summary()
        for name, value in summary.items():
            assert math.isfinite(float(value)), f"{name} not finite"
        assert summary["jobs"] == 0
        assert summary["rejected"] == 0
        assert summary["mean_slowdown"] == 0.0
        # Fairness over no tenants is perfect by convention, not NaN.
        assert summary["tenant_fairness"] == 1.0

    def test_slowdown_percentile_range_validated(self):
        collector = MetricsCollector()
        with pytest.raises(ValueError):
            collector.slowdown_percentile(-0.5)
        with pytest.raises(ValueError):
            collector.slowdown_percentile(101.0)


class TestSlowdown:
    def test_zero_service_time_clamps_to_one(self):
        """An instantly-finishing job has slowdown 1.0, never a div-by-zero."""
        record = _job(submit=1.0, start=3.0, finish=3.0)
        assert record.service_time == 0.0
        assert record.wait_time == pytest.approx(2.0)
        assert record.slowdown == 1.0

    def test_waiting_inflates_slowdown(self):
        # 1 time unit of service after 3 units of queueing: slowdown 4.
        record = _job(submit=0.0, start=3.0, finish=4.0)
        assert record.slowdown == pytest.approx(4.0)

    def test_p99_jct_single_sample(self):
        collector = MetricsCollector()
        collector.record_job(_job(finish=5.0))
        assert collector.p99_jct() == pytest.approx(5.0)
        assert collector.slowdown_percentile(99.0) == pytest.approx(1.0)


class TestJainFairness:
    def test_equal_shares_are_perfectly_fair(self):
        assert jain_fairness([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_hog_is_maximally_unfair(self):
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_all_zero_are_fair_by_convention(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness([1.0, -0.5])

    def test_tenant_fairness_over_mean_slowdowns(self):
        collector = MetricsCollector()
        # Tenant 0 runs unqueued (slowdown 1), tenant 1 waits 3x its
        # service time (slowdown 4): fairness must dip below 1.
        collector.record_job(_job(0, submit=0.0, finish=1.0, tenant=0))
        collector.record_job(
            _job(1, submit=0.0, start=3.0, finish=4.0, tenant=1)
        )
        per_tenant = collector.per_tenant_mean_slowdown()
        assert per_tenant == {0: pytest.approx(1.0), 1: pytest.approx(4.0)}
        assert collector.tenant_fairness() == pytest.approx(
            jain_fairness([1.0, 4.0])
        )
        assert collector.tenant_fairness() < 1.0


class TestRejections:
    def test_rejections_counted_by_reason(self):
        collector = MetricsCollector()
        for i, reason in enumerate(("queue-full", "queue-full", "throttled")):
            collector.record_rejection(
                RejectionRecord(
                    job_id=i, name=f"j{i}", tenant=i % 2, time=float(i),
                    reason=reason,
                )
            )
        assert collector.rejection_count() == {
            "queue-full": 2, "throttled": 1,
        }
        assert collector.online_summary()["rejected"] == 3

    def test_rejections_leave_jct_aggregates_alone(self):
        collector = MetricsCollector()
        collector.record_job(_job(finish=2.0))
        collector.record_rejection(
            RejectionRecord(1, "j1", tenant=0, time=0.5, reason="load-shed")
        )
        assert collector.mean_jct() == pytest.approx(2.0)
        assert collector.online_summary()["jobs"] == 1
