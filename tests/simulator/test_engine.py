"""End-to-end discrete-event simulation tests."""

import numpy as np
import pytest

from repro.cluster import Resources
from repro.mapreduce import JobSpec, ShuffleClass, WorkloadGenerator
from repro.schedulers import make_scheduler
from repro.simulator import MapReduceSimulator, SimulationConfig, run_simulation
from repro.topology import TreeConfig, build_tree

from ..conftest import make_job


@pytest.fixture
def topo():
    return build_tree(
        TreeConfig(depth=2, fanout=4, redundancy=2, server_resources=(2.0,))
    )


def small_jobs(n=3, seed=0, interarrival=1.0):
    gen = WorkloadGenerator(seed=seed, input_size_range=(2.0, 4.0))
    return gen.make_workload(n, interarrival=interarrival)


class TestBasicExecution:
    @pytest.mark.parametrize("name", ["capacity", "pna", "hit", "random"])
    def test_all_jobs_complete(self, topo, name):
        jobs = small_jobs(3)
        metrics = run_simulation(topo, make_scheduler(name, seed=0), jobs)
        assert len(metrics.jobs) == 3
        assert all(j.finish_time >= j.submit_time for j in metrics.jobs)

    def test_task_counts_match_specs(self, topo):
        jobs = small_jobs(2)
        metrics = run_simulation(topo, make_scheduler("capacity"), jobs)
        maps = metrics.task_durations("map")
        reduces = metrics.task_durations("reduce")
        assert maps.size == sum(j.num_maps for j in jobs)
        assert reduces.size == sum(j.num_reduces for j in jobs)

    def test_flow_volume_conserved(self, topo):
        jobs = small_jobs(2)
        metrics = run_simulation(topo, make_scheduler("capacity"), jobs)
        expected = sum(j.shuffle_volume for j in jobs)
        assert metrics.total_shuffle_volume() == pytest.approx(expected, rel=1e-6)

    def test_deterministic_given_seed(self, topo):
        jobs = small_jobs(3)
        m1 = run_simulation(topo, make_scheduler("hit", seed=4), jobs,
                            SimulationConfig(seed=4))
        m2 = run_simulation(topo, make_scheduler("hit", seed=4), jobs,
                            SimulationConfig(seed=4))
        assert m1.job_completion_times().tolist() == m2.job_completion_times().tolist()

    def test_cluster_empty_after_run(self, topo):
        sim = MapReduceSimulator(topo, make_scheduler("capacity"), small_jobs(2))
        sim.run()
        for sid in sim.cluster.server_ids:
            assert sim.cluster.used(sid).is_zero

    def test_reduce_finishes_after_its_flows(self, topo):
        jobs = [make_job(num_maps=2, num_reduces=1, input_size=2.0)]
        metrics = run_simulation(topo, make_scheduler("capacity"), jobs)
        reduce_finish = max(
            t.finish for t in metrics.tasks if t.kind == "reduce"
        )
        last_flow = max((f.finish for f in metrics.flows), default=0.0)
        assert reduce_finish >= last_flow


class TestWaves:
    def test_multiple_waves_executed(self, topo):
        # 12 maps but only 4 concurrent map slots -> 3 waves.
        jobs = [make_job(num_maps=12, num_reduces=2, input_size=6.0)]
        config = SimulationConfig(map_slots_per_job=4)
        metrics = run_simulation(topo, make_scheduler("capacity"), jobs, config)
        assert metrics.task_durations("map").size == 12
        assert len(metrics.jobs) == 1

    def test_wave_barrier_orders_map_starts(self, topo):
        jobs = [make_job(num_maps=8, num_reduces=1, input_size=4.0)]
        config = SimulationConfig(map_slots_per_job=4)
        metrics = run_simulation(topo, make_scheduler("capacity"), jobs, config)
        starts = sorted(t.start for t in metrics.tasks if t.kind == "map")
        # Two distinct wave start times.
        assert len(set(round(s, 9) for s in starts)) >= 2

    def test_hit_subsequent_wave_near_reduces(self, topo):
        jobs = [make_job(num_maps=8, num_reduces=1, input_size=4.0)]
        config = SimulationConfig(map_slots_per_job=4)
        metrics = run_simulation(topo, make_scheduler("hit", seed=0), jobs, config)
        assert len(metrics.jobs) == 1


class TestAdmission:
    def test_fifo_queueing_when_cluster_small(self):
        tiny = build_tree(
            TreeConfig(depth=2, fanout=2, redundancy=1, server_resources=(2.0,))
        )
        # 8 slots; each job needs 4 maps + 1 reduce = 5 -> one at a time.
        jobs = [
            make_job(job_id=i, num_maps=4, num_reduces=1, input_size=2.0)
            for i in range(3)
        ]
        metrics = run_simulation(tiny, make_scheduler("capacity"), jobs)
        assert len(metrics.jobs) == 3
        # Later jobs queue: their JCT includes waiting.
        jct = {j.job_id: j.completion_time for j in metrics.jobs}
        assert jct[2] > jct[0]

    def test_remote_map_traffic_recorded(self, topo):
        jobs = small_jobs(4, interarrival=0.0)
        metrics = run_simulation(topo, make_scheduler("random", seed=0), jobs)
        # Random placement on a 16-server cluster: some maps must be remote.
        assert metrics.total_remote_map_traffic() > 0


class TestSchedulerOrdering:
    def test_hit_no_worse_shuffle_cost_than_capacity(self, topo):
        jobs = small_jobs(4, seed=3)
        cost = {}
        for name in ("capacity", "hit"):
            metrics = run_simulation(topo, make_scheduler(name, seed=3), jobs)
            cost[name] = metrics.total_shuffle_cost()
        assert cost["hit"] <= cost["capacity"] + 1e-9

    def test_hit_shorter_routes(self, topo):
        jobs = small_jobs(4, seed=3)
        hops = {}
        for name in ("capacity", "hit"):
            metrics = run_simulation(topo, make_scheduler(name, seed=3), jobs)
            hops[name] = metrics.average_route_length()
        assert hops["hit"] < hops["capacity"]
