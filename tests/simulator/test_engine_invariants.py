"""Engine-wide conservation and cleanliness invariants."""

import pytest

from repro.mapreduce import WorkloadGenerator
from repro.schedulers import make_scheduler
from repro.simulator import MapReduceSimulator, SimulationConfig
from repro.topology import TreeConfig, build_tree

from ..conftest import make_job


@pytest.fixture
def topo():
    return build_tree(
        TreeConfig(depth=2, fanout=4, redundancy=2, server_resources=(2.0,))
    )


def run_sim(topo, scheduler_name, jobs, **config):
    sim = MapReduceSimulator(
        topo, make_scheduler(scheduler_name, seed=0), jobs,
        SimulationConfig(seed=0, **config),
    )
    metrics = sim.run()
    return sim, metrics


class TestConservation:
    @pytest.mark.parametrize("name", ["capacity", "hit", "hit-online"])
    def test_switch_loads_zero_after_run(self, topo, name):
        """Every flow's rate must be refunded when it completes."""
        jobs = WorkloadGenerator(seed=1, input_size_range=(2.0, 4.0)).make_workload(3)
        sim, _ = run_sim(topo, name, jobs)
        for w in topo.switch_ids:
            assert sim.controller.load(w) == pytest.approx(0.0, abs=1e-9)

    def test_network_empty_after_run(self, topo):
        jobs = WorkloadGenerator(seed=2, input_size_range=(2.0, 4.0)).make_workload(3)
        sim, _ = run_sim(topo, "hit", jobs)
        assert sim.network.active_flows == ()

    def test_flow_records_cover_all_partitions(self, topo):
        """#flow records == #non-empty shuffle-matrix entries per job."""
        jobs = [make_job(num_maps=3, num_reduces=2, input_size=3.0)]
        sim, metrics = run_sim(topo, "capacity", jobs)
        assert len(metrics.flows) == 3 * 2  # uniform matrix: all non-empty

    def test_every_flow_finishes_after_it_starts(self, topo):
        jobs = WorkloadGenerator(seed=3, input_size_range=(2.0, 4.0)).make_workload(4)
        _, metrics = run_sim(topo, "pna", jobs)
        for f in metrics.flows:
            assert f.finish >= f.start

    def test_task_time_ordering_within_job(self, topo):
        """No reduce finishes before the job's last map finishes."""
        jobs = [make_job(num_maps=4, num_reduces=2, input_size=4.0)]
        _, metrics = run_sim(topo, "capacity", jobs)
        last_map = max(t.finish for t in metrics.tasks if t.kind == "map")
        first_reduce = min(
            t.finish for t in metrics.tasks if t.kind == "reduce"
        )
        assert first_reduce >= last_map

    def test_jct_at_least_critical_path(self, topo):
        """JCT can never undercut map compute + reduce compute."""
        job = make_job(num_maps=2, num_reduces=1, input_size=2.0)
        _, metrics = run_sim(topo, "hit", [job])
        floor = job.map_duration + job.reduce_duration(job.shuffle_volume)
        assert metrics.jobs[0].completion_time >= floor - 1e-9


class TestWaveAccounting:
    def test_container_ids_never_reused(self, topo):
        jobs = [make_job(num_maps=9, num_reduces=2, input_size=4.5)]
        sim, metrics = run_sim(topo, "capacity", jobs, map_slots_per_job=3)
        # 3 waves x 3 maps + 2 reduces = 11 containers created in total.
        assert sim.cluster.num_containers == 11

    def test_map_records_once_per_task(self, topo):
        jobs = [make_job(num_maps=8, num_reduces=2, input_size=4.0)]
        _, metrics = run_sim(topo, "hit", jobs, map_slots_per_job=3)
        indices = sorted(t.index for t in metrics.tasks if t.kind == "map")
        assert indices == list(range(8))

    def test_wave_count_matches_plan(self, topo):
        from repro.mapreduce import plan_waves

        jobs = [make_job(num_maps=10, num_reduces=1, input_size=5.0)]
        _, metrics = run_sim(topo, "capacity", jobs, map_slots_per_job=4)
        starts = sorted({round(t.start, 9) for t in metrics.tasks if t.kind == "map"})
        plan = plan_waves(0, 10, 1, 4, 100)
        assert len(starts) >= plan.num_map_waves  # barriers create >= 3 epochs
