"""Event queue ordering and metrics aggregation."""

import numpy as np
import pytest

from repro.simulator import (
    Event,
    EventKind,
    EventQueue,
    FlowRecord,
    JobRecord,
    MetricsCollector,
    TaskRecord,
)


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(Event(2.0, EventKind.MAP_DONE))
        q.push(Event(1.0, EventKind.JOB_ARRIVAL))
        q.push(Event(3.0, EventKind.NETWORK))
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == [EventKind.JOB_ARRIVAL, EventKind.MAP_DONE, EventKind.NETWORK]

    def test_fifo_at_equal_time(self):
        q = EventQueue()
        q.push(Event(1.0, EventKind.MAP_DONE, payload="a"))
        q.push(Event(1.0, EventKind.MAP_DONE, payload="b"))
        assert q.pop().payload == "a"
        assert q.pop().payload == "b"

    def test_kind_priority_at_colliding_timestamps(self):
        """Same-instant ordering contract: recoveries pop before failures,
        failures before every normal event — regardless of push order."""
        q = EventQueue()
        q.push(Event(1.0, EventKind.MAP_DONE, payload="done"))
        q.push(Event(1.0, EventKind.SERVER_FAIL, payload="fail"))
        q.push(Event(1.0, EventKind.TASK_RETRY, payload="retry"))
        q.push(Event(1.0, EventKind.SWITCH_RECOVER, payload="heal"))
        q.push(Event(1.0, EventKind.TASK_SLOWDOWN, payload="slow"))
        q.push(Event(1.0, EventKind.SERVER_RECOVER, payload="revive"))
        order = [q.pop().payload for _ in range(6)]
        # Within a priority class insertion order still applies
        # ("fail" before "slow", "done" before "retry").
        assert order == ["heal", "revive", "fail", "slow", "done", "retry"]

    def test_arrival_priority_at_colliding_timestamps(self):
        """JOB_ARRIVAL has its own class: after recoveries and failures,
        before every other normal event — regardless of push order.  This is
        what makes mid-run arrival interleaving (the online workload plane)
        deterministic rather than dependent on which subsystem pushed first.
        """
        q = EventQueue()
        q.push(Event(1.0, EventKind.MAP_DONE, payload="done"))
        q.push(Event(1.0, EventKind.JOB_ARRIVAL, payload="arrive-a"))
        q.push(Event(1.0, EventKind.TASK_RETRY, payload="retry"))
        q.push(Event(1.0, EventKind.SERVER_FAIL, payload="fail"))
        q.push(Event(1.0, EventKind.JOB_ARRIVAL, payload="arrive-b"))
        q.push(Event(1.0, EventKind.SERVER_RECOVER, payload="heal"))
        order = [q.pop().payload for _ in range(6)]
        assert order == [
            "heal", "fail", "arrive-a", "arrive-b", "done", "retry",
        ]

    def test_arrival_beats_speculation_sweep(self):
        q = EventQueue()
        q.push(Event(1.0, EventKind.SPECULATE, payload="sweep"))
        q.push(Event(1.0, EventKind.JOB_ARRIVAL, payload="arrive"))
        assert q.pop().payload == "arrive"
        assert q.pop().payload == "sweep"

    def test_earlier_time_beats_higher_priority(self):
        q = EventQueue()
        q.push(Event(2.0, EventKind.SERVER_RECOVER, payload="late-heal"))
        q.push(Event(1.0, EventKind.MAP_DONE, payload="early-done"))
        assert q.pop().payload == "early-done"

    def test_priority_table_covers_every_kind(self):
        from repro.simulator.events import EVENT_PRIORITY

        assert set(EVENT_PRIORITY) == set(EventKind)

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(Event(5.0, EventKind.NETWORK))
        assert q.peek_time() == 5.0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(Event(-1.0, EventKind.NETWORK))

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(Event(0.0, EventKind.NETWORK))
        assert q and len(q) == 1


class TestMetrics:
    def make_collector(self):
        m = MetricsCollector()
        m.record_job(JobRecord(0, "a", "shuffle-heavy", 0.0, 0.5, 10.0, 5.0, 1.0))
        m.record_job(JobRecord(1, "b", "shuffle-light", 2.0, 2.0, 6.0, 1.0, 0.0))
        m.record_task(TaskRecord(0, "map", 0, 0.0, 1.0))
        m.record_task(TaskRecord(0, "map", 1, 0.0, 3.0))
        m.record_task(TaskRecord(0, "reduce", 0, 1.0, 9.0))
        m.record_flow(FlowRecord(0, 0, size=4.0, start=1.0, finish=3.0,
                                 num_switches=3, delay_us=100.0))
        m.record_flow(FlowRecord(1, 0, size=2.0, start=1.0, finish=2.0,
                                 num_switches=1, delay_us=50.0))
        m.record_flow(FlowRecord(2, 1, size=1.0, start=3.0, finish=3.0,
                                 num_switches=0, delay_us=0.0))
        return m

    def test_jct(self):
        m = self.make_collector()
        assert m.job_completion_times().tolist() == [10.0, 4.0]
        assert m.mean_jct() == 7.0

    def test_task_durations(self):
        m = self.make_collector()
        assert m.task_durations("map").tolist() == [1.0, 3.0]
        assert m.task_durations("reduce").tolist() == [8.0]

    def test_route_length_includes_local_flows(self):
        m = self.make_collector()
        assert m.average_route_length() == pytest.approx((3 + 1 + 0) / 3)

    def test_delay_excludes_local_flows(self):
        m = self.make_collector()
        assert m.average_shuffle_delay_us() == pytest.approx(75.0)

    def test_shuffle_cost(self):
        m = self.make_collector()
        assert m.total_shuffle_cost() == pytest.approx(4 * 3 + 2 * 1 + 0)

    def test_volume_and_remote_traffic(self):
        m = self.make_collector()
        assert m.total_shuffle_volume() == 7.0
        assert m.total_remote_map_traffic() == 1.0

    def test_makespan(self):
        m = self.make_collector()
        assert m.makespan() == 10.0

    def test_throughput(self):
        m = self.make_collector()
        # flows span 1.0 .. 3.0 -> 7 volume / 2 time
        assert m.throughput() == pytest.approx(3.5)

    def test_summary_keys(self):
        summary = self.make_collector().summary()
        for key in ("jobs", "mean_jct", "avg_route_hops", "shuffle_cost"):
            assert key in summary

    def test_empty_collector_safe(self):
        m = MetricsCollector()
        assert m.mean_jct() == 0.0
        assert m.average_route_length() == 0.0
        assert m.average_shuffle_delay_us() == 0.0
        assert m.makespan() == 0.0
        assert m.throughput() == 0.0
