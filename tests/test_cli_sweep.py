"""CLI behaviour of ``repro sweep``: exit codes, resume, shard identity."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

GRID_FLAGS = [
    "--seeds", "0", "1",
    "--schedulers", "capacity", "hit",
    "--topologies", "mini",
    "--arms", "baseline",
    "--jobs", "2",
    "--interarrival", "0.25",
]


def sweep_cmd(cache_dir, out=None, extra=()):
    argv = ["sweep", *GRID_FLAGS, "--cache-dir", str(cache_dir), *extra]
    if out is not None:
        argv += ["--out", str(out)]
    return argv


class TestExitCodes:
    def test_success_is_zero_and_prints_table(self, tmp_path, capsys):
        assert main(sweep_cmd(tmp_path / "cache")) == 0
        out = capsys.readouterr().out
        assert "4 cells — 4 ran, 0 cached, 0 failed" in out
        assert "capacity" in out and "hit" in out
        assert "mean_jct" in out

    def test_any_failed_cell_is_nonzero(self, tmp_path, capsys, monkeypatch):
        import repro.experiments.sweep as sweep_mod

        real_run_cell = sweep_mod.run_cell

        def flaky(cell):
            if cell.scheduler == "hit" and cell.seed == 1:
                raise RuntimeError("boom")
            return real_run_cell(cell)

        monkeypatch.setattr(sweep_mod, "run_cell", flaky)
        assert main(sweep_cmd(tmp_path / "cache")) == 1
        captured = capsys.readouterr()
        assert "1 failed" in captured.out
        assert "FAILED mini/hit/seed1/baseline" in captured.err
        assert "boom" in captured.err

    def test_force_and_resume_conflict_is_usage_error(self, tmp_path, capsys):
        assert main(
            sweep_cmd(tmp_path / "cache", extra=["--force", "--resume"])
        ) == 2
        assert "contradictory" in capsys.readouterr().err


class TestResumeFlag:
    def test_resume_on_empty_cache_dir_runs_everything(
        self, tmp_path, capsys
    ):
        cache = tmp_path / "never-populated"
        assert main(sweep_cmd(cache, extra=["--resume"])) == 0
        assert "4 ran, 0 cached" in capsys.readouterr().out

    def test_second_invocation_skips_cached_cells(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(sweep_cmd(cache)) == 0
        capsys.readouterr()
        assert main(sweep_cmd(cache, extra=["--resume"])) == 0
        assert "0 ran, 4 cached" in capsys.readouterr().out


class TestShardByteIdentity:
    def test_two_worker_smoke_equals_serial_bytes(self, tmp_path, capsys):
        """The 2x2 grid merged through two workers is byte-for-byte the
        serial run's output."""
        serial_out = tmp_path / "serial.json"
        sharded_out = tmp_path / "sharded.json"
        assert main(sweep_cmd(tmp_path / "c1", out=serial_out)) == 0
        assert main(
            sweep_cmd(tmp_path / "c2", out=sharded_out,
                      extra=["--workers", "2"])
        ) == 0
        capsys.readouterr()
        assert serial_out.read_bytes() == sharded_out.read_bytes()
        doc = json.loads(serial_out.read_text())
        assert doc["format"] == "repro.sweep.v1"
        assert len(doc["cells"]) == 4


class TestGridFile:
    def test_grid_file_overrides_inline_flags(self, tmp_path, capsys):
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps({
            "seeds": [5],
            "schedulers": ["capacity"],
            "topologies": ["mini"],
            "arms": ["baseline", "static"],
            "workload": {"num_jobs": 2, "interarrival": 0.25},
        }))
        out = tmp_path / "merged.json"
        assert main([
            "sweep", "--grid", str(grid),
            "--cache-dir", str(tmp_path / "cache"), "--out", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        assert len(doc["cells"]) == 2
        arms = {c["config"]["arm"] for c in doc["cells"]}
        assert arms == {"baseline", "static"}

    def test_bad_grid_spec_raises(self, tmp_path):
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps({"schedulers": ["nope"]}))
        with pytest.raises(ValueError, match="unknown scheduler"):
            main(["sweep", "--grid", str(grid),
                  "--cache-dir", str(tmp_path / "cache")])


class TestObservability:
    def test_trace_records_cell_timers_and_summary(self, tmp_path, capsys):
        trace = tmp_path / "sweep.jsonl"
        assert main(
            sweep_cmd(tmp_path / "cache", extra=["--trace", str(trace)])
        ) == 0
        records = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if line.strip()
        ]
        cell_events = [r for r in records if r.get("name") == "sweep.cell"]
        assert len(cell_events) == 4
        assert all(r["ok"] and r["dur_ms"] >= 0 for r in cell_events)
        summaries = [r for r in records if r.get("name") == "sweep.summary"]
        assert len(summaries) == 1
        assert summaries[0]["cells"] == 4 and summaries[0]["ran"] == 4
        final = records[-1]
        assert final["ev"] == "summary"
        assert final["counters"].get("sweep.cells_ran") == 4
        assert "sweep.cell" in final["timers"]
