"""Shared fixtures: small topologies and workloads the whole suite reuses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Container, Resources, TaskKind, TaskRef
from repro.core import TAAInstance
from repro.mapreduce import JobSpec, ShuffleClass, WorkloadGenerator, build_flows
from repro.topology import TreeConfig, build_tree


@pytest.fixture
def small_tree():
    """16 servers, 2 racks-of-4 levels, redundancy 2 (multipath)."""
    return build_tree(TreeConfig(depth=2, fanout=4, redundancy=2))


@pytest.fixture
def flat_tree():
    """4 servers, 2 racks, single-path (the case-study fabric)."""
    return build_tree(
        TreeConfig(depth=2, fanout=2, redundancy=1, server_resources=(2.0,))
    )


@pytest.fixture
def deep_tree():
    """64 servers, 3 tiers, redundancy 2."""
    return build_tree(TreeConfig(depth=3, fanout=4, redundancy=2))


def make_job(
    job_id: int = 0,
    num_maps: int = 4,
    num_reduces: int = 2,
    input_size: float = 4.0,
    shuffle_ratio: float = 1.0,
    skew: float = 0.0,
) -> JobSpec:
    """Convenience JobSpec factory for tests."""
    return JobSpec(
        job_id=job_id,
        name=f"test-{job_id}",
        shuffle_class=ShuffleClass.HEAVY,
        num_maps=num_maps,
        num_reduces=num_reduces,
        input_size=input_size,
        shuffle_ratio=shuffle_ratio,
        skew=skew,
    )


def make_taa(
    topology,
    job: JobSpec | None = None,
    demand: Resources = Resources(1.0, 0.0),
    seed: int = 0,
) -> tuple[TAAInstance, list[int], list[int]]:
    """Build a one-job TAA instance with unplaced containers.

    Returns ``(taa, map_container_ids, reduce_container_ids)``.
    """
    job = job or make_job()
    containers = []
    map_ids, reduce_ids = [], []
    cid = 0
    for i in range(job.num_maps):
        containers.append(Container(cid, demand, TaskRef(job.job_id, TaskKind.MAP, i)))
        map_ids.append(cid)
        cid += 1
    for i in range(job.num_reduces):
        containers.append(
            Container(cid, demand, TaskRef(job.job_id, TaskKind.REDUCE, i))
        )
        reduce_ids.append(cid)
        cid += 1
    flows = build_flows(job, map_ids, reduce_ids, rng=np.random.default_rng(seed))
    return TAAInstance(topology, containers, flows), map_ids, reduce_ids


@pytest.fixture
def workload_generator():
    return WorkloadGenerator(seed=42, input_size_range=(2.0, 6.0))
