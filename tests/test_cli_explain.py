"""``repro explain`` — decision-chain reconstruction from spilled logs.

The chain test runs against a hand-crafted ``decisions.*.jsonl`` so the
expected output is an exact golden string; the end-to-end test drives a
real ``simulate --provenance`` run and then explains a task from it.
"""

import json

import pytest

from repro.cli import main
from repro.obs import DecisionRecord


def _write_log(path, scheduler, rows):
    lines = []
    for seq, row in enumerate(rows):
        record = DecisionRecord(seq=seq, scheduler=scheduler, **row)
        lines.append(json.dumps(record.to_dict(), sort_keys=True,
                                separators=(",", ":")))
    path.write_text("\n".join(lines) + "\n")


@pytest.fixture
def run_dir(tmp_path):
    _write_log(
        tmp_path / "decisions.hit.jsonl",
        "hit",
        [
            {"t": 0.0, "kind": "admission", "reason": "batch-fifo", "job": 1},
            {"t": 0.1, "kind": "placement", "reason": "node-local",
             "job": 1, "task": "m3", "attempt": 0,
             "detail": {"chosen": 11}},
            {"t": 0.2, "kind": "placement", "reason": "rack-local",
             "job": 1, "task": "m4", "attempt": 0},
            {"t": 0.9, "kind": "route", "reason": "policy-optimal",
             "job": 1, "task": "m3->r0"},
            {"t": 1.1, "kind": "placement", "reason": "node-local",
             "job": 2, "task": "m3"},
        ],
    )
    _write_log(
        tmp_path / "decisions.pna.jsonl",
        "pna",
        [
            {"t": 0.0, "kind": "admission", "reason": "batch-fifo", "job": 1},
            {"t": 0.3, "kind": "placement", "reason": "remote",
             "job": 1, "task": "m3", "attempt": 0},
        ],
    )
    return tmp_path


class TestExplainChain:
    def test_golden_chain_output(self, run_dir, capsys):
        assert main(["explain", "--run", str(run_dir), "--scheduler", "hit",
                     "--job", "1", "--task", "m3"]) == 0
        out = capsys.readouterr().out
        assert out == (
            "decision chain for job 1 task m3 (hit, 3 records):\n"
            '  #0 t=0.000000 admission batch-fifo job=1\n'
            '  #1 t=0.100000 placement node-local job=1 task=m3 attempt=0'
            ' {"chosen":11}\n'
            "  #3 t=0.900000 route policy-optimal job=1 task=m3->r0\n"
        )

    def test_chains_never_interleave_across_schedulers(self, run_dir, capsys):
        assert main(["explain", "--run", str(run_dir),
                     "--job", "1", "--task", "m3"]) == 0
        out = capsys.readouterr().out
        # One chain per scheduler, each internally seq-ordered.
        assert "(hit, 3 records)" in out
        assert "(pna, 2 records)" in out
        hit_part = out.split("(pna, 2 records)")[0]
        assert "remote" not in hit_part

    def test_job_level_chain(self, run_dir, capsys):
        assert main(["explain", "--run", str(run_dir), "--scheduler", "hit",
                     "--job", "2"]) == 0
        out = capsys.readouterr().out
        assert "decision chain for job 2 (hit, 1 records):" in out
        assert "task=m3" in out

    def test_single_file_target(self, run_dir, capsys):
        log = run_dir / "decisions.pna.jsonl"
        assert main(["explain", "--run", str(log), "--job", "1"]) == 0
        assert "(pna, 2 records)" in capsys.readouterr().out


class TestExplainSummary:
    def test_summary_table(self, run_dir, capsys):
        assert main(["explain", "--run", str(run_dir), "--summary"]) == 0
        out = capsys.readouterr().out
        assert "placement:node-local" in out
        assert "placement:remote" in out
        for scheduler in ("hit", "pna"):
            assert scheduler in out


class TestExplainErrors:
    def test_no_logs_is_exit_2(self, tmp_path, capsys):
        assert main(["explain", "--run", str(tmp_path), "--job", "1"]) == 2
        assert "no decision logs" in capsys.readouterr().err

    def test_missing_job_without_summary_is_exit_2(self, run_dir, capsys):
        assert main(["explain", "--run", str(run_dir)]) == 2

    def test_unmatched_query_is_exit_1(self, run_dir, capsys):
        assert main(["explain", "--run", str(run_dir), "--job", "99"]) == 1


class TestExplainEndToEnd:
    def test_simulate_then_explain(self, tmp_path, capsys):
        prov = tmp_path / "prov"
        assert main([
            "simulate", "--scheduler", "hit", "--jobs", "3", "--seed", "0",
            "--provenance", str(prov),
        ]) == 0
        capsys.readouterr()
        assert main(["explain", "--run", str(prov), "--job", "0",
                     "--task", "m0"]) == 0
        out = capsys.readouterr().out
        assert "decision chain for job 0 task m0 (hit," in out
        assert "placement" in out
        capsys.readouterr()
        assert main(["explain", "--run", str(prov), "--summary"]) == 0
        assert "admission:batch-fifo" in capsys.readouterr().out
