"""Link-level faults: capacity scaling, routing masks, reroute/park/resume."""

import pytest

from repro.core.policy import NoFeasiblePathError, PolicyController
from repro.faults import FaultInjector, FaultKind, FaultSpec, generate_timeline
from repro.mapreduce import WorkloadGenerator
from repro.obs import InvariantChecker, observe
from repro.schedulers import make_scheduler
from repro.simulator import FlowNetwork, MapReduceSimulator, SimulationConfig


def run_link_timeline(topology, timeline, scheduler="hit", seed=7, jobs=3):
    workload = WorkloadGenerator(
        seed=seed, input_size_range=(2.0, 4.0)
    ).make_workload(jobs, interarrival=0.5)
    config = SimulationConfig(
        seed=seed, faults=tuple(timeline), max_task_retries=10
    )
    sim = MapReduceSimulator(
        topology, make_scheduler(scheduler, seed=seed), workload, config
    )
    with observe(checker=InvariantChecker(mode="raise")):
        metrics = sim.run()
    return sim, metrics, workload


class TestNetworkCapacityScaling:
    def test_scaling_halves_bottleneck(self, small_tree):
        net = FlowNetwork(small_tree)
        u, v = small_tree.links[0].key
        base = net.link_capacity_factor(u, v)
        assert base == 1.0
        net.set_link_capacity_factor(u, v, 0.5)
        assert net.link_capacity_factor(u, v) == 0.5
        net.set_link_capacity_factor(u, v, 1.0)
        assert net.link_capacity_factor(u, v) == 1.0

    def test_degraded_link_throttles_flow(self, flat_tree):
        net = FlowNetwork(flat_tree)
        path = flat_tree.shortest_path(0, 1)
        net.add_flow(0, path, 100.0)
        net.recompute_rates()
        full = net.active_flows[0].rate
        net.set_link_capacity_factor(path[0], path[1], 0.25)
        net.recompute_rates()
        assert net.active_flows[0].rate == pytest.approx(full * 0.25)
        net.set_link_capacity_factor(path[0], path[1], 1.0)
        net.recompute_rates()
        assert net.active_flows[0].rate == pytest.approx(full)

    def test_rejects_non_link(self, small_tree):
        net = FlowNetwork(small_tree)
        with pytest.raises(ValueError, match="is not a physical link"):
            net.set_link_capacity_factor(0, 1, 0.5)

    def test_rejects_bad_factor(self, small_tree):
        net = FlowNetwork(small_tree)
        u, v = small_tree.links[0].key
        with pytest.raises(ValueError, match="factor"):
            net.set_link_capacity_factor(u, v, 1.5)

    def test_describer_names_owner_in_errors(self, flat_tree):
        net = FlowNetwork(flat_tree)
        net.flow_describer = lambda fid: (
            "job 7 shuffle map 1 -> reduce 2" if fid == 5 else ""
        )
        path = flat_tree.shortest_path(0, 1)
        net.add_flow(5, path, 1.0)
        with pytest.raises(ValueError) as err:
            net.add_flow(5, path, 1.0)
        assert "job 7 shuffle map 1 -> reduce 2" in str(err.value)
        with pytest.raises(KeyError) as err:
            net.remove_flow(99)
        assert "job 7" not in str(err.value)  # unknown id has no owner

    def test_describer_exceptions_swallowed(self, flat_tree):
        net = FlowNetwork(flat_tree)

        def bomb(fid):
            raise RuntimeError("describer bug")

        net.flow_describer = bomb
        with pytest.raises(KeyError, match="unknown flow 3"):
            net.remove_flow(3)


class TestPolicyLinkMask:
    def test_failed_link_avoided(self, small_tree):
        controller = PolicyController(small_tree)
        path, _ = controller.optimal_path(0, 4, 1.0)
        u, v = path[0], path[1]
        controller.fail_link(u, v)
        assert controller.is_link_failed(u, v)
        path2, _ = controller.optimal_path(0, 4, 1.0)
        hops = list(zip(path2, path2[1:]))
        assert (u, v) not in hops and (v, u) not in hops
        controller.recover_link(u, v)
        assert not controller.failed_links

    def test_single_path_fabric_disconnects(self, flat_tree):
        controller = PolicyController(flat_tree)
        for switch in flat_tree.neighbors(0):
            controller.fail_link(0, switch)
        with pytest.raises(NoFeasiblePathError):
            controller.optimal_path(0, 1, 0.1)

    def test_rejects_non_link(self, small_tree):
        controller = PolicyController(small_tree)
        with pytest.raises(KeyError, match="no physical link"):
            controller.fail_link(0, 1)

    def test_sync_mirrors_link_state(self, small_tree):
        a = PolicyController(small_tree)
        b = PolicyController(small_tree)
        u, v = small_tree.links[0].key
        a.fail_link(u, v)
        b.sync_failures_from(a)
        assert b.is_link_failed(u, v)
        a.recover_link(u, v)
        b.sync_failures_from(a)
        assert not b.failed_links


class TestInjectorLinkState:
    def test_fail_recover_cycle(self, small_tree):
        injector = FaultInjector(small_tree, ())
        u, v = small_tree.links[0].key
        assert injector.mark_link_failed(u, v)
        assert (u, v) in injector.dead_links
        assert injector.link_capacity_factor(u, v) == 0.0
        assert not injector.mark_link_failed(u, v)  # idempotent
        assert injector.mark_link_recovered(u, v)
        assert not injector.dead_links
        assert injector.counters["faults.link_fail"] == 1
        assert injector.counters["faults.link_recover"] == 1

    def test_degrade_to_zero_is_dead(self, small_tree):
        injector = FaultInjector(small_tree, ())
        u, v = small_tree.links[0].key
        injector.mark_link_degraded(u, v, 0.25)
        assert injector.link_capacity_factor(u, v) == 0.25
        assert not injector.dead_links
        injector.mark_link_degraded(u, v, 0.0)
        assert (u, v) in injector.dead_links
        injector.mark_link_degraded(u, v, 1.0)
        assert injector.link_capacity_factor(u, v) == 1.0
        assert injector.counters["faults.link_restore"] == 1

    def test_assert_path_clear_flags_dead_link(self, small_tree):
        injector = FaultInjector(small_tree, ())
        u, v = small_tree.links[0].key
        injector.mark_link_failed(u, v)
        with pytest.raises(RuntimeError, match="dead link"):
            injector.assert_path_clear((u, v))


class TestEngineLinkFaults:
    def scripted(self, topology, when=0.3, recover=2.0):
        u, v = topology.links[0].key
        return [
            FaultSpec(time=when, kind=FaultKind.LINK_FAIL, target=u, target2=v),
            FaultSpec(
                time=recover, kind=FaultKind.LINK_RECOVER, target=u, target2=v
            ),
        ]

    @pytest.mark.parametrize("scheduler", ["capacity", "hit"])
    def test_all_jobs_survive_link_outage(self, small_tree, scheduler):
        sim, metrics, workload = run_link_timeline(
            small_tree, self.scripted(small_tree), scheduler=scheduler
        )
        assert len(metrics.jobs) == len(workload)
        assert sim.faults.counters["faults.link_fail"] == 1
        assert sim.faults.counters["faults.link_recover"] == 1

    def test_single_path_fabric_parks_and_resumes(self, flat_tree):
        """On a redundancy-1 tree a dead access link strands its server's
        flows: they must park (not vanish) and resume on recovery."""
        sim, metrics, workload = run_link_timeline(
            flat_tree, self.scripted(flat_tree, when=0.05, recover=3.0),
            scheduler="capacity",
        )
        assert len(metrics.jobs) == len(workload)
        counters = sim.faults.counters
        assert counters["faults.flows_parked"] >= 1
        assert counters["faults.flows_resumed"] == counters["faults.flows_parked"]
        summary = sim.faults.summary()
        assert summary["faults.parked_dwell"] > 0.0
        assert not sim._parked

    def test_degrade_slows_but_completes(self, small_tree):
        u, v = small_tree.links[0].key
        timeline = [
            FaultSpec(
                time=0.2,
                kind=FaultKind.LINK_DEGRADE,
                target=u,
                target2=v,
                factor=0.1,
            ),
        ]
        sim, metrics, workload = run_link_timeline(small_tree, timeline)
        assert len(metrics.jobs) == len(workload)
        assert sim.faults.counters["faults.link_degrade"] == 1
        assert sim.network.link_capacity_factor(u, v) == pytest.approx(0.1)

    def test_gauges_track_link_state(self, small_tree):
        injector = FaultInjector(small_tree, ())
        u, v = small_tree.links[0].key
        injector.mark_link_failed(u, v)
        assert injector.gauges()["failed_links"] == 1
        injector.mark_link_recovered(u, v)
        assert injector.gauges()["failed_links"] == 0

    def test_sampled_link_timeline_deterministic(self, small_tree):
        timeline = generate_timeline(
            small_tree,
            seed=5,
            horizon=4.0,
            link_mtbf=6.0,
            link_mttr=0.5,
        )
        assert timeline, "seed must produce link activity"
        _, m1, _ = run_link_timeline(small_tree, timeline)
        _, m2, _ = run_link_timeline(small_tree, timeline)
        assert m1.summary() == m2.summary()
