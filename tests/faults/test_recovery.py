"""Failure-recovery behaviour of the simulation engine.

Fault instants are derived from a fault-free dry run of the identical
workload, so every test targets a window where the victim work is provably
in flight — no timing guesswork against execution-model constants.
"""

import dataclasses

import pytest

from repro.faults import FaultKind, FaultSpec
from repro.obs import InvariantChecker, observe
from repro.schedulers import make_scheduler
from repro.simulator import MapReduceSimulator, SimulationConfig, run_simulation
from repro.topology import TreeConfig, build_tree

from ..conftest import make_job


@pytest.fixture
def topo():
    """4 servers in 2 racks, single-path (redundancy 1): failing the core
    switch severs all cross-rack traffic, which is what the parking tests
    need."""
    return build_tree(
        TreeConfig(depth=2, fanout=2, redundancy=1, server_resources=(2.0,))
    )


def jobs_one():
    # 6 containers at demand 1.0 against 4.0 per rack: the job cannot fit in
    # one rack, so the shuffle always crosses the core switch.
    return [make_job(num_maps=4, num_reduces=2, input_size=4.0)]


def run_with_faults(topo, faults, *, scheduler="capacity", seed=0, **overrides):
    config = dataclasses.replace(
        SimulationConfig(seed=seed, faults=tuple(faults)), **overrides
    )
    sim = MapReduceSimulator(
        topo, make_scheduler(scheduler, seed=seed), jobs_one(), config
    )
    with observe(checker=InvariantChecker(mode="raise")):
        metrics = sim.run()
    return sim, metrics


def map_window(metrics):
    starts = [t.start for t in metrics.tasks if t.kind == "map"]
    finishes = [t.finish for t in metrics.tasks if t.kind == "map"]
    return min(starts), min(finishes), max(finishes)


class TestServerFailure:
    def test_mid_map_failure_reexecutes_and_completes(self, topo):
        baseline = run_simulation(topo, make_scheduler("capacity"), jobs_one())
        first_start, first_finish, _ = map_window(baseline)
        t_fail = (first_start + first_finish) / 2
        # Fail 3 of 4 servers while every map is running: at most two maps
        # fit on the survivor, so at least two attempts must be killed.
        faults = [FaultSpec(t_fail, FaultKind.SERVER_FAIL, sid) for sid in (0, 1, 2)]
        faults += [
            FaultSpec(t_fail + 1.0, FaultKind.SERVER_RECOVER, sid) for sid in (0, 1, 2)
        ]
        sim, metrics = run_with_faults(topo, faults)
        assert len(metrics.jobs) == 1
        assert metrics.task_durations("map").size == 4
        assert metrics.task_durations("reduce").size == 2
        counters = sim.faults.summary()
        assert counters["faults.server_fail"] == 3
        assert counters["faults.server_recover"] == 3
        assert counters["retries.map"] >= 2
        # Degradation is real: the job finishes later than fault-free.
        assert metrics.summary()["makespan"] > baseline.summary()["makespan"]

    def test_lost_map_output_reruns_completed_map(self, topo):
        baseline = run_simulation(topo, make_scheduler("capacity"), jobs_one())
        _, _, all_maps_done = map_window(baseline)
        last_flow = max(f.finish for f in baseline.flows)
        assert all_maps_done < last_flow, "shuffle must outlive the map phase"
        t_fail = (all_maps_done + last_flow) / 2
        faults = [FaultSpec(t_fail, FaultKind.SERVER_FAIL, sid) for sid in (0, 1, 2)]
        faults += [
            FaultSpec(t_fail + 0.5, FaultKind.SERVER_RECOVER, sid) for sid in (0, 1, 2)
        ]
        sim, metrics = run_with_faults(topo, faults)
        assert len(metrics.jobs) == 1
        counters = sim.faults.summary()
        # Losing 3 of 4 servers mid-shuffle must cost at least one
        # re-execution (a completed map whose output was still needed, or a
        # reducer that had to restart and re-fetch).
        assert counters.get("retries.map", 0) + counters.get("retries.reduce", 0) >= 1
        # Every map is eventually recorded done at least once.
        assert metrics.task_durations("map").size >= 4

    def test_retry_budget_exhaustion_aborts(self, topo):
        baseline = run_simulation(topo, make_scheduler("capacity"), jobs_one())
        first_start, first_finish, _ = map_window(baseline)
        t_fail = (first_start + first_finish) / 2
        faults = [FaultSpec(t_fail, FaultKind.SERVER_FAIL, sid) for sid in (0, 1, 2)]
        with pytest.raises(RuntimeError, match="max_task_retries=0"):
            run_with_faults(topo, faults, max_task_retries=0)

    def test_slowdown_stretches_makespan(self, topo):
        baseline = run_simulation(topo, make_scheduler("capacity"), jobs_one())
        faults = [
            FaultSpec(0.0, FaultKind.TASK_SLOWDOWN, sid, factor=4.0)
            for sid in range(4)
        ]
        _, metrics = run_with_faults(topo, faults)
        assert len(metrics.jobs) == 1
        assert metrics.summary()["makespan"] > baseline.summary()["makespan"]

    def test_no_fault_timeline_is_bit_identical_to_baseline(self, topo):
        """faults=() must leave the execution model untouched."""
        baseline = run_simulation(topo, make_scheduler("capacity"), jobs_one())
        again = run_simulation(
            topo, make_scheduler("capacity"), jobs_one(), SimulationConfig(faults=())
        )
        assert [dataclasses.astuple(r) for r in baseline.tasks] == [
            dataclasses.astuple(r) for r in again.tasks
        ]
        assert baseline.summary() == again.summary()


class TestSwitchFailure:
    def test_core_outage_parks_and_resumes_flows(self, topo):
        baseline = run_simulation(topo, make_scheduler("capacity"), jobs_one())
        flow_start = min(f.start for f in baseline.flows)
        flow_end = max(f.finish for f in baseline.flows)
        core = max(topo.switch_ids)
        t_fail = flow_start + 0.25 * (flow_end - flow_start)
        # Recover only after the fault-free shuffle would have long finished,
        # so parked flows genuinely wait out the outage.
        faults = [
            FaultSpec(t_fail, FaultKind.SWITCH_FAIL, core),
            FaultSpec(flow_end + 1.0, FaultKind.SWITCH_RECOVER, core),
        ]
        sim, metrics = run_with_faults(topo, faults)
        assert len(metrics.jobs) == 1
        counters = sim.faults.summary()
        assert counters["faults.switch_fail"] == 1
        assert counters["faults.switch_recover"] == 1
        assert counters["faults.flows_parked"] >= 1
        assert counters["faults.flows_resumed"] >= 1
        # The job cannot finish before the partition heals.
        assert metrics.summary()["makespan"] > flow_end + 1.0

    @pytest.mark.parametrize("scheduler", ["capacity", "capacity-ecmp", "hit"])
    def test_redundant_fabric_reroutes_around_outage(self, small_tree, scheduler):
        """On a redundancy-2 tree a single switch loss is survivable without
        parking; the run completes with the guard asserting every installed
        path avoids the dead switch."""
        jobs = [make_job(num_maps=6, num_reduces=3, input_size=6.0)]
        baseline = run_simulation(small_tree, make_scheduler(scheduler, seed=0), jobs)
        flow_start = min(f.start for f in baseline.flows)
        flow_end = max(f.finish for f in baseline.flows)
        victim = small_tree.switch_ids[0]
        faults = (
            FaultSpec(
                flow_start + 0.25 * (flow_end - flow_start),
                FaultKind.SWITCH_FAIL,
                victim,
            ),
            FaultSpec(flow_end + 1.0, FaultKind.SWITCH_RECOVER, victim),
        )
        config = SimulationConfig(faults=faults)
        sim = MapReduceSimulator(
            small_tree, make_scheduler(scheduler, seed=0), jobs, config
        )
        with observe(checker=InvariantChecker(mode="raise")):
            metrics = sim.run()
        assert len(metrics.jobs) == 1
        assert sim.faults.summary()["faults.switch_fail"] == 1
