"""FaultInjector: event scheduling, live failed-element state, counters."""

import pytest

from repro.faults import FaultInjector, FaultKind, FaultSpec
from repro.simulator.events import EventKind, EventQueue


def make_injector(topology, specs=()):
    return FaultInjector(topology, specs)


class TestScheduling:
    def test_one_event_per_spec(self, flat_tree):
        switch = flat_tree.switch_ids[0]
        injector = make_injector(
            flat_tree,
            [
                FaultSpec(0.5, FaultKind.SERVER_FAIL, 1),
                FaultSpec(1.0, FaultKind.SWITCH_FAIL, switch),
                FaultSpec(2.0, FaultKind.SERVER_RECOVER, 1),
            ],
        )
        queue = EventQueue()
        assert injector.schedule(queue) == 3
        events = [queue.pop() for _ in range(3)]
        assert [e.kind for e in events] == [
            EventKind.SERVER_FAIL,
            EventKind.SWITCH_FAIL,
            EventKind.SERVER_RECOVER,
        ]
        assert [e.payload for e in events] == [1, switch, 1]

    def test_slowdown_payload_carries_factor(self, flat_tree):
        injector = make_injector(
            flat_tree, [FaultSpec(0.2, FaultKind.TASK_SLOWDOWN, 3, factor=2.5)]
        )
        queue = EventQueue()
        injector.schedule(queue)
        event = queue.pop()
        assert event.kind is EventKind.TASK_SLOWDOWN
        assert event.payload == (3, 2.5)

    def test_constructor_validates_targets(self, flat_tree):
        with pytest.raises(ValueError, match="not a switch"):
            make_injector(flat_tree, [FaultSpec(1.0, FaultKind.SWITCH_FAIL, 0)])


class TestLiveState:
    def test_mark_and_recover_server(self, flat_tree):
        injector = make_injector(flat_tree)
        assert injector.mark_server_failed(2)
        assert injector.failed_servers == frozenset({2})
        # Duplicate failure is a no-op and is not double-counted.
        assert not injector.mark_server_failed(2)
        assert injector.counters["faults.server_fail"] == 1
        assert injector.mark_server_recovered(2)
        assert injector.failed_servers == frozenset()
        assert not injector.mark_server_recovered(2)

    def test_mark_and_recover_switch(self, flat_tree):
        switch = flat_tree.switch_ids[0]
        injector = make_injector(flat_tree)
        assert injector.mark_switch_failed(switch)
        assert injector.failed_switches == frozenset({switch})
        assert not injector.mark_switch_failed(switch)
        assert injector.mark_switch_recovered(switch)
        assert injector.counters["faults.switch_recover"] == 1

    def test_assert_path_clear(self, flat_tree):
        tor, core = flat_tree.switch_ids[0], max(flat_tree.switch_ids)
        injector = make_injector(flat_tree)
        injector.mark_switch_failed(core)
        injector.assert_path_clear((0, tor, 1))  # core not on this path
        with pytest.raises(RuntimeError, match=f"failed switch {core}"):
            injector.assert_path_clear((0, tor, core, tor, 2))

    def test_summary_sorted(self, flat_tree):
        injector = make_injector(flat_tree)
        injector.count("retries.map", 2)
        injector.count("faults.server_fail")
        assert list(injector.summary()) == ["faults.server_fail", "retries.map"]
        assert injector.summary() == {"faults.server_fail": 1, "retries.map": 2}
