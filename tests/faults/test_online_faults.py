"""Overload contract under faults: arrivals + outages, nothing unaccounted.

The chaos suite proves survivability for batch workloads; this file layers
the admission plane on top of an injected fault timeline and asserts the
two contracts compose — every arriving job still ends as exactly one of
{completed, rejected-with-reason, queued-at-end}, reruns stay byte-
identical, and the arrival priority class keeps recoveries ahead of
same-instant arrivals.
"""

import dataclasses

import pytest

from repro.faults import FaultKind, FaultSpec
from repro.obs import InvariantChecker, observe
from repro.schedulers import make_scheduler
from repro.simulator import MapReduceSimulator, SimulationConfig
from repro.topology import TreeConfig, build_tree
from repro.workload import (
    AdmissionConfig,
    ArrivalConfig,
    TenantSpec,
    generate_arrivals,
)


@pytest.fixture
def topo():
    return build_tree(
        TreeConfig(depth=2, fanout=4, redundancy=2, server_resources=(2.0,))
    )


def _arrivals(seed=0, rate=4.0, duration=2.5):
    config = ArrivalConfig(
        tenants=(
            TenantSpec(0, rate=rate, input_size_range=(2.0, 4.0)),
            TenantSpec(1, rate=rate, input_size_range=(2.0, 4.0)),
        ),
        profile="poisson",
        duration=duration,
    )
    return generate_arrivals(config, seed=seed)


def _outage(topo):
    """Mid-window rack turbulence: a server dies and recovers, a core
    switch blips, a link degrades — all while arrivals keep landing."""
    core = max(topo.switch_ids)
    link = topo.links[0]
    return (
        FaultSpec(0.5, FaultKind.SERVER_FAIL, 3),
        FaultSpec(0.7, FaultKind.SWITCH_FAIL, core),
        FaultSpec(0.9, FaultKind.LINK_DEGRADE, link.u, target2=link.v,
                  factor=0.3),
        FaultSpec(1.3, FaultKind.SWITCH_RECOVER, core),
        FaultSpec(1.6, FaultKind.SERVER_RECOVER, 3),
        FaultSpec(1.8, FaultKind.LINK_RECOVER, link.u, target2=link.v),
    )


def _run(topo, jobs, *, seed=0, scheduler="hit", faults=(),
         admission=None, check=False):
    sim = MapReduceSimulator(
        topo,
        make_scheduler(scheduler, seed=seed),
        jobs,
        SimulationConfig(
            seed=seed, faults=faults, admission=admission,
            max_task_retries=10,
        ),
    )
    if check:
        checker = InvariantChecker(mode="raise")
        with observe(checker=checker):
            metrics = sim.run()
        assert checker.violations == []
    else:
        metrics = sim.run()
    return sim, metrics


class TestOverloadUnderFaults:
    def test_accounting_identity_survives_an_outage(self, topo):
        jobs = _arrivals(rate=8.0)
        admission = AdmissionConfig(policy="queue-bound", queue_bound=1)
        sim, metrics = _run(
            topo, jobs, faults=_outage(topo), admission=admission, check=True,
        )
        completed = {r.job_id for r in metrics.jobs}
        rejected = {r.job_id for r in metrics.rejections}
        queued = {s.job_id for s in sim.admission.queued_jobs()}
        assert completed | rejected | queued == {j.job_id for j in jobs}
        assert len(completed) + len(rejected) + len(queued) == len(jobs)
        assert rejected, "outage + overload produced no rejections"
        # The faults actually fired (the test is not vacuous).
        assert sim.faults is not None
        summary = sim.faults.summary()
        assert summary["faults.server_fail"] == 1
        assert summary["faults.switch_fail"] == 1

    def test_load_shedding_reacts_to_capacity_loss(self, topo):
        """Killing half the servers under load-threshold admission must
        shed arrivals that the full cluster would have absorbed."""
        jobs = _arrivals(rate=2.0)
        half = [
            FaultSpec(0.2, FaultKind.SERVER_FAIL, sid)
            for sid in range(topo.num_servers // 2)
        ]
        admission = AdmissionConfig(policy="load-threshold",
                                    load_threshold=0.8)
        _, faulted = _run(
            topo, jobs, faults=tuple(half), admission=admission,
        )
        _, clean = _run(topo, jobs, admission=admission)
        shed = [r for r in faulted.rejections if r.reason == "load-shed"]
        assert len(shed) > len(clean.rejections)

    def test_rerun_byte_identical_under_faults_and_overload(self, topo):
        admission = AdmissionConfig(policy="queue-bound", queue_bound=2)

        def once():
            return _run(
                topo, _arrivals(seed=3), seed=3,
                faults=_outage(topo), admission=admission,
            )[1]

        a, b = once(), once()
        assert [dataclasses.astuple(r) for r in a.jobs] == [
            dataclasses.astuple(r) for r in b.jobs
        ]
        assert [dataclasses.astuple(r) for r in a.rejections] == [
            dataclasses.astuple(r) for r in b.rejections
        ]
        assert a.online_summary() == b.online_summary()

    def test_fault_free_admission_run_ignores_fault_plumbing(self, topo):
        """admission-on, faults-off must equal the same run with an empty
        fault tuple spelled explicitly — no hidden coupling."""
        admission = AdmissionConfig(policy="admit-all")
        _, a = _run(topo, _arrivals(rate=1.5), admission=admission)
        _, b = _run(topo, _arrivals(rate=1.5), admission=admission,
                    faults=())
        assert a.online_summary() == b.online_summary()
