"""Chaos harness: the survivability contract over randomized campaigns.

The headline test is the acceptance gate: 52 seeded randomized timelines
(correlated domains, link faults and degradations, partition trials every
4th seed) across 2 topologies × 2 schedulers, each rerun for byte-identity,
with zero contract violations.
"""

import json

import pytest

from repro.faults.chaos import (
    CHAOS_TOPOLOGIES,
    ChaosConfig,
    ChaosReport,
    _ChaosSimulator,
    run_chaos,
    run_chaos_trial,
    sample_chaos_timeline,
)
from repro.mapreduce import WorkloadGenerator
from repro.schedulers import make_scheduler
from repro.simulator import MapReduceSimulator, SimulationConfig


class TestSurvivabilityCampaign:
    def test_52_trials_zero_violations(self):
        report = run_chaos(ChaosConfig(trials=52, seed=0))
        assert len(report.trials) == 52
        assert report.violations == [], [
            (t.trial, t.violations) for t in report.violations
        ]
        # The campaign must actually exercise the whole grid...
        grids = {(t.scheduler, t.topology) for t in report.trials}
        assert grids == {
            (s, t) for s in ("capacity", "hit") for t in ("small", "deep")
        }
        # ...and actual fault activity, including partition trials.
        assert sum(t.num_specs for t in report.trials) > 0
        assert any(t.allow_partition for t in report.trials)
        fired = set()
        for t in report.trials:
            fired.update(t.counters)
        assert "faults.link_fail" in fired or "faults.link_degrade" in fired
        assert "faults.domain_fail" in fired

    def test_report_canonical_and_stable(self):
        a = run_chaos(ChaosConfig(trials=4, seed=7, rerun=False))
        b = run_chaos(ChaosConfig(trials=4, seed=7, rerun=False))
        assert a.canonical() == b.canonical()
        doc = json.loads(a.canonical())
        assert doc["summary"]["trials"] == 4
        assert len(doc["trials"]) == 4


class TestNoFaultByteIdentity:
    def test_chaos_engine_matches_plain_engine(self, small_tree):
        """A chaos simulator with no fault timeline is the plain engine:
        same metrics, same event count, byte for byte."""

        def run(cls):
            jobs = WorkloadGenerator(
                seed=5, input_size_range=(2.0, 4.0)
            ).make_workload(3, interarrival=0.5)
            sim = cls(
                small_tree,
                make_scheduler("hit", seed=5),
                jobs,
                SimulationConfig(seed=5),
            )
            metrics = sim.run()
            return metrics.summary(), sim.events_processed

        plain = run(MapReduceSimulator)
        chaos = run(_ChaosSimulator)
        assert plain == chaos


class TestWatchdogAndFailures:
    def test_watchdog_trips_on_stall(self, small_tree):
        """An absurdly low stall limit must trip on any real run — proving
        the watchdog is live — and be reported as a contract violation."""
        jobs = WorkloadGenerator(
            seed=5, input_size_range=(2.0, 4.0)
        ).make_workload(2, interarrival=0.5)
        sim = _ChaosSimulator(
            small_tree,
            make_scheduler("capacity", seed=5),
            jobs,
            SimulationConfig(seed=5),
            stall_limit=0,
        )
        with pytest.raises(RuntimeError, match="chaos watchdog"):
            sim.run()

    def test_retry_exhaustion_is_accounted_not_violation(self):
        """With a zero retry budget under heavy faults, the run aborts with
        the engine's explicit reason — an accounted failure, not a
        contract violation."""
        failures = 0
        for seed in range(10):
            trial = run_chaos_trial(
                0,
                scheduler="capacity",
                topology="small",
                seed=seed,
                max_task_retries=0,
                rerun=True,
            )
            assert trial.violations == ()
            if trial.status == "failed":
                failures += 1
                assert "exceeded max_task_retries" in trial.reason
        assert failures > 0, "some seed must exhaust a zero retry budget"


class TestTimelineSampling:
    def test_deterministic(self):
        topo = CHAOS_TOPOLOGIES["small"]()
        a = sample_chaos_timeline(topo, seed=12)
        b = sample_chaos_timeline(topo, seed=12)
        assert a == b

    def test_seeds_vary_fault_mix(self):
        topo = CHAOS_TOPOLOGIES["small"]()
        mixes = {
            frozenset(s.kind for s in sample_chaos_timeline(topo, seed=seed))
            for seed in range(12)
        }
        assert len(mixes) > 1


class TestConfigValidation:
    def test_rejects_unknown_topology(self):
        with pytest.raises(ValueError, match="unknown chaos topologies"):
            ChaosConfig(topologies=("möbius",))

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError, match="trials"):
            ChaosConfig(trials=0)

    def test_report_summary_counts(self):
        report = ChaosReport(config=ChaosConfig())
        assert report.summary() == {
            "trials": 0,
            "ok": 0,
            "failed_accounted": 0,
            "violations": 0,
        }
