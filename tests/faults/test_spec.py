"""Fault timeline specs: validation, serialisation, seeded generation."""

import pytest

from repro.faults import (
    FaultKind,
    FaultSpec,
    generate_timeline,
    load_fault_file,
    save_fault_file,
    validate_timeline,
)


class TestFaultSpec:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultSpec(-1.0, FaultKind.SERVER_FAIL, 0)

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError, match="node id"):
            FaultSpec(1.0, FaultKind.SERVER_FAIL, -3)

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            FaultSpec(1.0, FaultKind.TASK_SLOWDOWN, 0, factor=0.0)

    def test_dict_roundtrip(self):
        spec = FaultSpec(2.5, FaultKind.TASK_SLOWDOWN, 3, factor=4.0)
        assert FaultSpec.from_dict(spec.as_dict()) == spec

    def test_factor_only_serialised_for_slowdowns(self):
        assert "factor" not in FaultSpec(1.0, FaultKind.SWITCH_FAIL, 9).as_dict()
        assert "factor" in FaultSpec(1.0, FaultKind.TASK_SLOWDOWN, 0).as_dict()

    def test_from_dict_malformed_record(self):
        with pytest.raises(ValueError, match="malformed fault record"):
            FaultSpec.from_dict({"time": 1.0, "kind": "volcano", "target": 0})


class TestValidateTimeline:
    def test_sorted_by_time(self, flat_tree):
        specs = [
            FaultSpec(2.0, FaultKind.SERVER_RECOVER, 0),
            FaultSpec(1.0, FaultKind.SERVER_FAIL, 0),
        ]
        out = validate_timeline(flat_tree, specs)
        assert [s.time for s in out] == [1.0, 2.0]

    def test_server_kind_must_target_server(self, flat_tree):
        switch = flat_tree.switch_ids[0]
        with pytest.raises(ValueError, match="not a server"):
            validate_timeline(flat_tree, [FaultSpec(1.0, FaultKind.SERVER_FAIL, switch)])

    def test_switch_kind_must_target_switch(self, flat_tree):
        with pytest.raises(ValueError, match="not a switch"):
            validate_timeline(flat_tree, [FaultSpec(1.0, FaultKind.SWITCH_FAIL, 0)])

    def test_unknown_node_rejected(self, flat_tree):
        with pytest.raises(ValueError):
            validate_timeline(flat_tree, [FaultSpec(1.0, FaultKind.SERVER_FAIL, 10_000)])


class TestFaultFiles:
    def test_save_load_roundtrip(self, tmp_path, flat_tree):
        specs = validate_timeline(
            flat_tree,
            [
                FaultSpec(0.5, FaultKind.SERVER_FAIL, 1),
                FaultSpec(0.8, FaultKind.TASK_SLOWDOWN, 2, factor=2.0),
                FaultSpec(1.5, FaultKind.SERVER_RECOVER, 1),
            ],
        )
        path = tmp_path / "faults.jsonl"
        save_fault_file(str(path), specs)
        assert load_fault_file(str(path)) == specs

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "faults.jsonl"
        path.write_text(
            "# scripted outage\n"
            "\n"
            '{"time": 1.0, "kind": "server-fail", "target": 0}\n'
        )
        (spec,) = load_fault_file(str(path))
        assert spec == FaultSpec(1.0, FaultKind.SERVER_FAIL, 0)

    def test_invalid_json_names_line(self, tmp_path):
        path = tmp_path / "faults.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match=":1: invalid JSON"):
            load_fault_file(str(path))


class TestGenerateTimeline:
    def test_deterministic_for_seed(self, small_tree):
        kwargs = dict(seed=7, horizon=10.0, server_mtbf=2.0, switch_mtbf=4.0)
        assert generate_timeline(small_tree, **kwargs) == generate_timeline(
            small_tree, **kwargs
        )

    def test_different_seeds_differ(self, small_tree):
        a = generate_timeline(small_tree, seed=1, horizon=10.0, server_mtbf=2.0)
        b = generate_timeline(small_tree, seed=2, horizon=10.0, server_mtbf=2.0)
        assert a != b

    def test_every_failure_has_matching_recovery(self, small_tree):
        timeline = generate_timeline(
            small_tree, seed=3, horizon=6.0, server_mtbf=2.0, switch_mtbf=3.0
        )
        down: set[int] = set()
        for spec in timeline:
            if spec.kind in (FaultKind.SERVER_FAIL, FaultKind.SWITCH_FAIL):
                assert spec.target not in down
                down.add(spec.target)
            else:
                assert spec.target in down
                down.discard(spec.target)
        assert not down, "timeline left elements permanently failed"

    def test_switch_concurrency_cap(self, small_tree):
        timeline = generate_timeline(
            small_tree,
            seed=5,
            horizon=50.0,
            switch_mtbf=1.0,
            switch_mttr=2.0,
            max_concurrent_switch_failures=1,
        )
        down: set[int] = set()
        for spec in timeline:
            if spec.kind is FaultKind.SWITCH_FAIL:
                down.add(spec.target)
                assert len(down) <= 1
            elif spec.kind is FaultKind.SWITCH_RECOVER:
                down.discard(spec.target)

    def test_invalid_parameters(self, small_tree):
        with pytest.raises(ValueError, match="horizon"):
            generate_timeline(small_tree, seed=0, horizon=0.0, server_mtbf=1.0)
        with pytest.raises(ValueError, match="MTBF/MTTR"):
            generate_timeline(small_tree, seed=0, horizon=1.0, server_mtbf=-1.0)
