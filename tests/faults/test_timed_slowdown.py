"""Timed slowdown episodes: spec validation, injector pairing, engine effect."""

import pytest

from repro.faults import FaultInjector, FaultKind, FaultSpec, generate_timeline
from repro.schedulers import make_scheduler
from repro.simulator import MapReduceSimulator, SimulationConfig
from repro.simulator.events import EventKind, EventQueue
from repro.topology import TreeConfig, build_tree

from ..conftest import make_job


@pytest.fixture
def topo():
    return build_tree(
        TreeConfig(depth=2, fanout=2, redundancy=1, server_resources=(2.0,))
    )


class TestSpec:
    def test_duration_rejected_on_non_slowdown_kinds(self):
        with pytest.raises(ValueError, match="task-slowdown"):
            FaultSpec(0.0, FaultKind.SERVER_FAIL, 0, duration=1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultSpec(0.0, FaultKind.TASK_SLOWDOWN, 0, factor=2.0, duration=-1.0)

    def test_round_trip_preserves_duration(self):
        spec = FaultSpec(0.5, FaultKind.TASK_SLOWDOWN, 3, factor=4.0, duration=0.25)
        assert FaultSpec.from_dict(spec.as_dict()) == spec

    def test_untimed_slowdown_serialises_without_duration(self):
        spec = FaultSpec(0.5, FaultKind.TASK_SLOWDOWN, 3, factor=4.0)
        assert "duration" not in spec.as_dict()


class TestInjector:
    def test_timed_slowdown_schedules_its_restore(self, topo):
        server = topo.server_ids[0]
        injector = FaultInjector(
            topo,
            [FaultSpec(0.1, FaultKind.TASK_SLOWDOWN, server, factor=4.0,
                       duration=0.3)],
        )
        queue = EventQueue()
        assert injector.schedule(queue) == 2
        first, second = queue.pop(), queue.pop()
        assert first.kind is EventKind.TASK_SLOWDOWN
        assert first.payload == (server, 4.0)
        assert second.kind is EventKind.TASK_SLOWDOWN
        assert second.time == pytest.approx(0.4)
        assert second.payload == (server, 1.0)

    def test_untimed_slowdown_schedules_one_event(self, topo):
        injector = FaultInjector(
            topo,
            [FaultSpec(0.1, FaultKind.TASK_SLOWDOWN, topo.server_ids[0],
                       factor=4.0)],
        )
        queue = EventQueue()
        assert injector.schedule(queue) == 1


class TestEngine:
    def test_speed_restored_after_duration(self, topo):
        server = topo.server_ids[0]
        config = SimulationConfig(
            seed=0,
            faults=(
                FaultSpec(0.0, FaultKind.TASK_SLOWDOWN, server, factor=4.0,
                          duration=0.2),
            ),
            max_task_retries=10,
        )
        sim = MapReduceSimulator(
            topo, make_scheduler("capacity", seed=0),
            [make_job(num_maps=4, num_reduces=2)], config,
        )
        metrics = sim.run()
        assert len(metrics.jobs) == 1
        assert sim.server_speeds[server] == sim._base_speeds[server]
        assert sim.faults.counters.get("faults.slowdown") == 1
        assert sim.faults.counters.get("faults.slowdown_restore") == 1


class TestSampling:
    def test_slowdown_draws_extend_without_perturbing_failures(self, topo):
        base = generate_timeline(
            topo, seed=3, horizon=5.0, server_mtbf=4.0, server_mttr=0.5
        )
        extended = generate_timeline(
            topo, seed=3, horizon=5.0, server_mtbf=4.0, server_mttr=0.5,
            slowdown_mtbf=3.0, slowdown_mttr=0.4, slowdown_factor=5.0,
        )
        failures = tuple(
            s for s in extended if s.kind is not FaultKind.TASK_SLOWDOWN
        )
        assert failures == base
        slowdowns = [
            s for s in extended if s.kind is FaultKind.TASK_SLOWDOWN
        ]
        assert slowdowns
        assert all(s.duration > 0 and s.factor == 5.0 for s in slowdowns)

    def test_rejects_factor_at_or_below_one(self, topo):
        with pytest.raises(ValueError, match="exceed 1.0"):
            generate_timeline(
                topo, seed=0, horizon=1.0, slowdown_mtbf=1.0,
                slowdown_factor=1.0,
            )
