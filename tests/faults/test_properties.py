"""Whole-system fault properties, checked over seeded random timelines.

Three contracts from ``docs/fault_model.md``:

* **no silent loss** — whatever the timeline, every submitted job finishes
  and every task spec is accounted for;
* **routing safety** — no flow is ever installed or rerouted onto a path
  through a currently-failed switch;
* **determinism** — a faulty run is bit-identical when repeated.
"""

import dataclasses

import pytest

from repro.faults import generate_timeline
from repro.mapreduce import WorkloadGenerator
from repro.obs import InvariantChecker, observe
from repro.schedulers import make_scheduler
from repro.simulator import MapReduceSimulator, SimulationConfig


def faulty_run(topology, scheduler_name, seed, spy=None):
    jobs = WorkloadGenerator(seed=seed, input_size_range=(2.0, 4.0)).make_workload(
        3, interarrival=0.5
    )
    faults = generate_timeline(
        topology,
        seed=seed,
        horizon=4.0,
        server_mtbf=6.0,
        server_mttr=0.5,
        switch_mtbf=10.0,
        switch_mttr=0.5,
    )
    assert faults, "chosen seeds must actually produce fault activity"
    config = SimulationConfig(
        seed=seed, faults=faults, max_task_retries=10, server_speed_spread=0.2
    )
    sim = MapReduceSimulator(
        topology, make_scheduler(scheduler_name, seed=seed), jobs, config
    )
    if spy is not None:
        spy(sim)
    with observe(checker=InvariantChecker(mode="raise")):
        metrics = sim.run()
    return jobs, sim, metrics


@pytest.mark.parametrize("scheduler_name", ["capacity", "hit", "random"])
@pytest.mark.parametrize("seed", [3, 11])
def test_no_task_lost_under_random_timeline(small_tree, scheduler_name, seed):
    jobs, _, metrics = faulty_run(small_tree, scheduler_name, seed)
    assert len(metrics.jobs) == len(jobs)
    # Re-executions may add records, but nothing may go missing.
    assert metrics.task_durations("map").size >= sum(j.num_maps for j in jobs)
    assert metrics.task_durations("reduce").size >= sum(j.num_reduces for j in jobs)
    assert all(j.finish_time >= j.submit_time for j in metrics.jobs)


@pytest.mark.parametrize("seed", [3, 11])
def test_no_flow_installed_through_failed_switch(small_tree, seed):
    """Intercept every path install/reroute and check it against the live
    failed-switch set at that instant (independent of the engine's own
    ``assert_path_clear`` guard)."""
    installs = []

    def spy(sim):
        orig_add, orig_reroute = sim.network.add_flow, sim.network.reroute_flow

        def add_flow(flow_id, path, size, now=0.0, remaining=None):
            assert not (set(path) & sim.faults.failed_switches), (
                f"flow {flow_id} installed through failed switch on {path}"
            )
            installs.append(tuple(path))
            return orig_add(flow_id, path, size, now, remaining=remaining)

        def reroute_flow(flow_id, path):
            assert not (set(path) & sim.faults.failed_switches)
            installs.append(tuple(path))
            return orig_reroute(flow_id, path)

        sim.network.add_flow = add_flow
        sim.network.reroute_flow = reroute_flow

    faulty_run(small_tree, "capacity", seed, spy=spy)
    assert installs, "the workload must exercise the network at all"


@pytest.mark.parametrize("scheduler_name", ["capacity", "random"])
def test_faulty_run_is_bit_identical(small_tree, scheduler_name):
    _, sim_a, a = faulty_run(small_tree, scheduler_name, seed=11)
    _, sim_b, b = faulty_run(small_tree, scheduler_name, seed=11)
    for field in ("jobs", "tasks", "flows"):
        assert [dataclasses.astuple(r) for r in getattr(a, field)] == [
            dataclasses.astuple(r) for r in getattr(b, field)
        ]
    assert a.summary() == b.summary()
    assert sim_a.faults.summary() == sim_b.faults.summary()
