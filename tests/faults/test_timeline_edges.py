"""`generate_timeline` edge cases: degenerate knobs and the partition guard."""

import pytest

from repro.faults import FaultKind, domains_of, generate_timeline
from repro.topology import TreeConfig, build_tree

_FAIL_KINDS = {
    FaultKind.SERVER_FAIL,
    FaultKind.SWITCH_FAIL,
    FaultKind.LINK_FAIL,
    FaultKind.DOMAIN_FAIL,
}
_RECOVER_OF = {
    FaultKind.SERVER_FAIL: FaultKind.SERVER_RECOVER,
    FaultKind.SWITCH_FAIL: FaultKind.SWITCH_RECOVER,
    FaultKind.LINK_FAIL: FaultKind.LINK_RECOVER,
    FaultKind.DOMAIN_FAIL: FaultKind.DOMAIN_RECOVER,
}


def fragile_tree():
    """Redundancy-1 fabric: one dead switch or uplink can cut servers off."""
    return build_tree(
        TreeConfig(depth=2, fanout=4, redundancy=1, server_resources=(2.0,))
    )


def _partitioned_at_some_point(topology, timeline) -> bool:
    """Independent replay: walk the timeline chronologically (recoveries
    first at ties, as the event queue orders them) and BFS the live-server
    reachability after every state change."""
    down_servers: dict[int, int] = {}
    down_switches: dict[int, int] = {}
    down_links: dict[tuple[int, int], int] = {}

    def bump(table, key, delta):
        count = table.get(key, 0) + delta
        if count:
            table[key] = count
        else:
            table.pop(key, None)

    def apply(spec, delta):
        kind = spec.kind
        if kind in (FaultKind.SERVER_FAIL, FaultKind.SERVER_RECOVER):
            bump(down_servers, spec.target, delta)
        elif kind in (FaultKind.SWITCH_FAIL, FaultKind.SWITCH_RECOVER):
            bump(down_switches, spec.target, delta)
        elif kind in (FaultKind.LINK_FAIL, FaultKind.LINK_RECOVER):
            key = tuple(sorted((spec.target, spec.target2)))
            bump(down_links, key, delta)
        elif kind is FaultKind.LINK_DEGRADE:
            key = tuple(sorted((spec.target, spec.target2)))
            if spec.factor == 0.0:
                bump(down_links, key, 1)
            else:
                down_links.pop(key, None)
        elif kind in (FaultKind.DOMAIN_FAIL, FaultKind.DOMAIN_RECOVER):
            domain = domains_of(topology, spec.domain)[spec.target]
            for sid in domain.servers:
                bump(down_servers, sid, delta)
            for wid in domain.switches:
                bump(down_switches, wid, delta)

    def connected() -> bool:
        live = [s for s in topology.server_ids if s not in down_servers]
        if len(live) <= 1:
            return True
        seen = {live[0]}
        frontier = [live[0]]
        while frontier:
            node = frontier.pop()
            for peer in topology.neighbors(node):
                if peer in down_switches or peer in down_servers:
                    continue
                if tuple(sorted((node, peer))) in down_links:
                    continue
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        return all(s in seen for s in live)

    is_fail = {
        FaultKind.SERVER_FAIL,
        FaultKind.SWITCH_FAIL,
        FaultKind.LINK_FAIL,
        FaultKind.DOMAIN_FAIL,
    }
    ordered = sorted(
        timeline, key=lambda s: (s.time, 1 if s.kind in is_fail else 0)
    )
    for spec in ordered:
        if spec.kind is FaultKind.TASK_SLOWDOWN:
            continue
        delta = 1 if spec.kind in is_fail else -1
        if spec.kind is FaultKind.LINK_DEGRADE:
            delta = 0
        apply(spec, delta if delta else 1)
        if not connected():
            return True
    return False


class TestDegenerateKnobs:
    def test_zero_horizon_rejected(self, small_tree):
        with pytest.raises(ValueError, match="horizon"):
            generate_timeline(
                small_tree, seed=0, horizon=0.0, link_mtbf=1.0
            )

    def test_no_knobs_empty(self, small_tree):
        assert generate_timeline(small_tree, seed=0, horizon=5.0) == ()

    def test_mttr_zero_is_instant_repair(self, small_tree):
        """MTTR 0 draws zero-length outages: they are dropped whole (a
        same-instant fail/recover pair would strand the element, since
        recoveries dispatch before failures at equal timestamps)."""
        for knobs in (
            {"server_mtbf": 0.5, "server_mttr": 0.0},
            {"switch_mtbf": 0.5, "switch_mttr": 0.0},
            {"link_mtbf": 0.5, "link_mttr": 0.0},
            {"domain_mtbf": 0.5, "domain_mttr": 0.0},
        ):
            timeline = generate_timeline(
                small_tree, seed=3, horizon=10.0, **knobs
            )
            assert timeline == ()

    def test_negative_mttr_rejected(self, small_tree):
        with pytest.raises(ValueError, match="MTBF/MTTR"):
            generate_timeline(
                small_tree, seed=0, horizon=1.0, link_mtbf=1.0, link_mttr=-0.1
            )

    def test_every_failure_has_matching_recovery(self, small_tree):
        timeline = generate_timeline(
            small_tree,
            seed=11,
            horizon=6.0,
            server_mtbf=4.0,
            switch_mtbf=8.0,
            link_mtbf=6.0,
            domain_mtbf=10.0,
            server_mttr=0.5,
            switch_mttr=0.5,
            link_mttr=0.5,
            domain_mttr=0.5,
        )
        opened: dict[tuple, int] = {}
        for spec in timeline:
            if spec.kind in _FAIL_KINDS:
                key = (_RECOVER_OF[spec.kind], spec.target, spec.target2, spec.domain)
                opened[key] = opened.get(key, 0) + 1
            elif spec.kind.name.endswith("RECOVER"):
                key = (spec.kind, spec.target, spec.target2, spec.domain)
                assert opened.get(key, 0) > 0, f"orphan recovery {spec}"
                opened[key] -= 1
        assert all(v == 0 for v in opened.values())


class TestPartitionGuard:
    KNOBS = dict(
        switch_mtbf=3.0,
        switch_mttr=0.8,
        max_concurrent_switch_failures=2,
        link_mtbf=3.0,
        link_mttr=0.8,
        domain_mtbf=6.0,
        domain_mttr=0.8,
        domain_kind="rack",
    )

    @pytest.mark.parametrize("seed", range(20))
    def test_guarded_timeline_never_partitions(self, seed):
        topology = fragile_tree()
        timeline = generate_timeline(
            topology, seed=seed, horizon=8.0, **self.KNOBS
        )
        assert not _partitioned_at_some_point(topology, timeline)

    def test_unguarded_timelines_do_partition(self):
        """The same knobs with the guard off must partition for some seed —
        otherwise the guarded property above is vacuous."""
        topology = fragile_tree()
        hits = sum(
            _partitioned_at_some_point(
                topology,
                generate_timeline(
                    topology,
                    seed=seed,
                    horizon=8.0,
                    allow_partition=True,
                    **self.KNOBS,
                ),
            )
            for seed in range(20)
        )
        assert hits > 0

    def test_guard_preserves_non_partitioning_outages(self):
        """The guard drops only partitioning episodes: on a redundant
        fabric, outages that cannot partition it (one switch at a time,
        plus server crashes) come through untouched."""
        topology = build_tree(TreeConfig(depth=2, fanout=4, redundancy=2))
        kwargs = dict(
            seed=9,
            horizon=8.0,
            server_mtbf=4.0,
            server_mttr=0.5,
            switch_mtbf=3.0,
            switch_mttr=0.8,
        )
        guarded = generate_timeline(topology, **kwargs)
        free = generate_timeline(topology, allow_partition=True, **kwargs)
        assert guarded == free
        assert guarded

    def test_cap_still_respected_alongside_domains(self):
        """The switch-concurrency cap applies to the independent switch
        stream even while domain outages run; independent switch outages
        never overlap beyond the cap."""
        topology = fragile_tree()
        timeline = generate_timeline(
            topology, seed=4, horizon=8.0, **self.KNOBS
        )
        open_switch = 0
        worst = 0
        for spec in sorted(
            timeline,
            key=lambda s: (s.time, 0 if s.kind.name.endswith("RECOVER") else 1),
        ):
            if spec.kind is FaultKind.SWITCH_FAIL:
                open_switch += 1
                worst = max(worst, open_switch)
            elif spec.kind is FaultKind.SWITCH_RECOVER:
                open_switch -= 1
        assert worst <= self.KNOBS["max_concurrent_switch_failures"]
