"""Failure-domain derivation: racks, pods, power feeds from link adjacency."""

import pytest

from repro.faults import DOMAIN_KINDS, domains_of
from repro.topology import TreeConfig, build_tree


@pytest.fixture
def deep3():
    """64 servers, three switch tiers — pods are non-trivial here."""
    return build_tree(TreeConfig(depth=3, fanout=4, redundancy=2))


class TestRacks:
    def test_partition_of_servers(self, small_tree):
        racks = domains_of(small_tree, "rack")
        seen = [s for r in racks for s in r.servers]
        assert sorted(seen) == sorted(small_tree.server_ids)
        assert len(seen) == len(set(seen))

    def test_rack_switches_are_access_neighbors(self, small_tree):
        for rack in domains_of(small_tree, "rack"):
            for sid in rack.servers:
                assert set(small_tree.neighbors(sid)) <= set(rack.switches)

    def test_small_tree_shape(self, small_tree):
        racks = domains_of(small_tree, "rack")
        assert len(racks) == 4
        assert all(len(r.servers) == 4 for r in racks)
        # redundancy 2: each rack is served by two access switches
        assert all(len(r.switches) == 2 for r in racks)

    def test_ordering_is_deterministic(self, small_tree):
        a = domains_of(small_tree, "rack")
        b = domains_of(small_tree, "rack")
        assert a == b
        assert [r.index for r in a] == list(range(len(a)))
        mins = [min(r.servers) for r in a]
        assert mins == sorted(mins)


class TestPods:
    def test_pods_group_racks_by_aggregation(self, deep3):
        racks = domains_of(deep3, "rack")
        pods = domains_of(deep3, "pod")
        # depth-3 fanout-4: 16 racks under 4 aggregation groups
        assert len(racks) == 16
        assert len(pods) == 4
        pod_servers = [s for p in pods for s in p.servers]
        assert sorted(pod_servers) == sorted(deep3.server_ids)

    def test_pod_contains_whole_racks(self, deep3):
        pods = domains_of(deep3, "pod")
        for rack in domains_of(deep3, "rack"):
            owners = [
                p for p in pods if set(rack.servers) <= set(p.servers)
            ]
            assert len(owners) == 1

    def test_two_level_tree_pods_are_racks(self, small_tree):
        racks = domains_of(small_tree, "rack")
        pods = domains_of(small_tree, "pod")
        assert [p.servers for p in pods] == [r.servers for r in racks]


class TestPower:
    def test_pairs_of_adjacent_racks(self, small_tree):
        power = domains_of(small_tree, "power")
        racks = domains_of(small_tree, "rack")
        assert len(power) == 2
        assert power[0].servers == racks[0].servers + racks[1].servers

    def test_power_covers_all_servers(self, deep3):
        seen = [s for d in domains_of(deep3, "power") for s in d.servers]
        assert sorted(seen) == sorted(deep3.server_ids)


class TestApi:
    def test_unknown_kind(self, small_tree):
        with pytest.raises(ValueError, match="unknown failure-domain kind"):
            domains_of(small_tree, "blast-radius")

    def test_kinds_registry(self):
        assert DOMAIN_KINDS == ("rack", "pod", "power")

    def test_elements_property(self, small_tree):
        rack = domains_of(small_tree, "rack")[0]
        assert rack.elements == rack.servers + rack.switches
        assert rack.name == "rack0"
