"""format_table's markdown mode: GitHub-pasteable, same cells as plain."""

import pytest

from repro.analysis import format_table


ROWS = [("hit", 1.5, 3), ("capacity", 2.25, 4)]
HEADERS = ("scheduler", "jct", "hops")


def test_markdown_structure():
    out = format_table(HEADERS, ROWS, title="t", style="markdown")
    lines = out.splitlines()
    assert lines[0] == "**t**"
    assert lines[1] == ""
    assert lines[2].startswith("| scheduler")
    # Alignment row: pipes and right-align colons only.
    assert set(lines[3]) <= {"|", "-", ":"}
    assert lines[3].count(":") == len(HEADERS)
    # One data line per row, all pipe-delimited with aligned columns.
    assert len(lines) == 4 + len(ROWS)
    data_lines = [lines[2], *lines[4:]]
    assert all(line.startswith("| ") and line.endswith(" |")
               for line in data_lines)
    assert len({len(line) for line in lines[2:]}) == 1  # columns align


def test_markdown_without_title():
    out = format_table(HEADERS, ROWS, style="markdown")
    assert out.splitlines()[0].startswith("| scheduler")


def test_same_cell_formatting_as_plain():
    plain = format_table(HEADERS, ROWS, style="plain")
    md = format_table(HEADERS, ROWS, style="markdown")
    # Same float formatting in both styles (copy-paste consistency).
    assert "1.500" in plain and "1.500" in md
    assert "2.250" in plain and "2.250" in md


def test_unknown_style_rejected():
    with pytest.raises(ValueError):
        format_table(HEADERS, ROWS, style="html")


def test_plain_is_default_and_unchanged():
    assert format_table(HEADERS, ROWS) == format_table(
        HEADERS, ROWS, style="plain"
    )
    assert "|" not in format_table(HEADERS, ROWS)
