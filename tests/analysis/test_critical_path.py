"""Critical-path attribution: exact partition and segment semantics."""

import pytest

from repro.analysis import (
    SEGMENTS,
    aggregate_segments,
    attribute_job,
    attribute_run,
    format_critical_path,
)
from repro.faults import FaultKind, FaultSpec
from repro.mapreduce import WorkloadGenerator
from repro.schedulers import make_scheduler
from repro.simulator import MapReduceSimulator, SimulationConfig
from repro.simulator.metrics import JobRecord, TaskRecord
from repro.speculation import SpeculationConfig
from repro.topology import TreeConfig, build_tree


def _run(scheduler="hit-online", seed=0, faults=(), speculation=None):
    jobs = WorkloadGenerator(
        seed=seed, input_size_range=(4.0, 8.0), map_rate=8.0, reduce_rate=8.0
    ).make_workload(4, interarrival=0.3)
    config = SimulationConfig(seed=seed, server_speed_spread=0.2)
    if faults:
        import dataclasses

        config = dataclasses.replace(
            config, faults=tuple(faults), max_task_retries=10
        )
    if speculation is not None:
        import dataclasses

        config = dataclasses.replace(config, speculation=speculation)
    sim = MapReduceSimulator(
        build_tree(TreeConfig(depth=2, fanout=4, redundancy=2,
                              server_resources=(2.0,))),
        make_scheduler(scheduler, seed=seed),
        jobs,
        config,
    )
    return sim.run()


FAULTS = (
    FaultSpec(0.4, FaultKind.SERVER_FAIL, 2),
    FaultSpec(0.5, FaultKind.TASK_SLOWDOWN, 5, factor=6.0, duration=2.0),
    FaultSpec(1.4, FaultKind.SERVER_RECOVER, 2),
)


class TestExactPartition:
    @pytest.mark.parametrize("scheduler", ["capacity", "random", "hit-online"])
    def test_segments_sum_to_jct(self, scheduler):
        metrics = _run(scheduler)
        paths = attribute_run(metrics)
        assert len(paths) == len(metrics.jobs)
        for path in paths:
            assert abs(path.segment_sum - path.jct) < 1e-9
            assert all(v >= 0.0 for v in path.segments.values())
            assert set(path.segments) == set(SEGMENTS)

    def test_sum_holds_under_faults_and_speculation(self):
        metrics = _run(
            "random", seed=3, faults=FAULTS, speculation=SpeculationConfig()
        )
        for path in attribute_run(metrics):
            assert abs(path.segment_sum - path.jct) < 1e-9
            assert all(v >= 0.0 for v in path.segments.values())


class TestSyntheticAttribution:
    def _job(self, submit=0.0, start=0.5, finish=10.0):
        return JobRecord(
            job_id=0, name="j", shuffle_class="heavy",
            submit_time=submit, start_time=start, finish_time=finish,
            shuffle_volume=1.0, remote_map_traffic=0.0,
        )

    def test_pinned_segment_values(self):
        tasks = [
            TaskRecord(0, "map", 0, start=1.0, finish=3.0, server=1),
            TaskRecord(0, "map", 1, start=1.0, finish=4.0, server=2),
            TaskRecord(0, "reduce", 0, start=1.0, finish=10.0, server=3,
                       compute_start=7.0),
        ]
        path = attribute_job(self._job(), tasks)
        assert path.critical_map == 1
        assert path.critical_reduce == 0
        assert path.segments["queue_wait"] == pytest.approx(0.5)
        assert path.segments["map_serial"] == pytest.approx(0.5)
        assert path.segments["map_compute"] == pytest.approx(3.0)
        assert path.segments["shuffle"] == pytest.approx(3.0)
        assert path.segments["reduce_compute"] == pytest.approx(3.0)
        assert path.segments["fault_retry"] == 0.0
        assert path.segments["speculation"] == 0.0
        assert path.segment_sum == pytest.approx(path.jct)

    def test_retry_and_speculation_relabel_the_critical_map(self):
        retried = [
            TaskRecord(0, "map", 0, start=2.0, finish=5.0, attempt=2),
            TaskRecord(0, "reduce", 0, start=2.0, finish=10.0,
                       compute_start=6.0),
        ]
        path = attribute_job(self._job(), retried)
        assert path.segments["fault_retry"] > 0.0
        assert path.segments["map_serial"] == 0.0

        speculative = [
            TaskRecord(0, "map", 0, start=2.0, finish=5.0, speculative=True),
            TaskRecord(0, "reduce", 0, start=2.0, finish=10.0,
                       compute_start=6.0),
        ]
        path = attribute_job(self._job(), speculative)
        assert path.segments["speculation"] == pytest.approx(3.0)
        assert path.segments["map_compute"] == 0.0

    def test_degenerate_orderings_never_go_negative(self):
        # Reduce "computing" before the critical map finished (stale
        # compute_start after a fault retry): milestones are monotonised.
        tasks = [
            TaskRecord(0, "map", 0, start=2.0, finish=8.0, attempt=1),
            TaskRecord(0, "reduce", 0, start=1.0, finish=10.0,
                       compute_start=4.0),
        ]
        path = attribute_job(self._job(), tasks)
        assert all(v >= 0.0 for v in path.segments.values())
        assert path.segment_sum == pytest.approx(path.jct)

    def test_job_with_no_tasks(self):
        path = attribute_job(self._job(), [])
        assert path.critical_map == -1
        assert path.critical_reduce == -1
        assert path.segment_sum == pytest.approx(path.jct)


class TestAggregationAndFormatting:
    def test_aggregate_empty(self):
        agg = aggregate_segments([])
        assert agg == dict.fromkeys(SEGMENTS, 0.0)

    def test_aggregate_means(self):
        metrics = _run("capacity")
        paths = attribute_run(metrics)
        agg = aggregate_segments(paths)
        assert sum(agg.values()) == pytest.approx(
            sum(p.jct for p in paths) / len(paths)
        )

    def test_format_styles(self):
        metrics = _run("capacity")
        table = format_critical_path({"capacity": attribute_run(metrics)})
        assert "shuffle" in table and "|" not in table
        md = format_critical_path(
            {"capacity": attribute_run(metrics)}, style="markdown"
        )
        assert md.count("|") > 10
        assert "**critical-path attribution" in md
