"""ASCII chart helpers."""

import pytest

from repro.analysis import bar_chart, series_chart, sparkline


class TestBarChart:
    def test_scales_to_peak(self):
        out = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_title(self):
        out = bar_chart({"a": 1.0}, title="T")
        assert out.splitlines()[0] == "T"

    def test_zero_values(self):
        out = bar_chart({"a": 0.0, "b": 0.0})
        assert "#" not in out

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})

    def test_labels_aligned(self):
        out = bar_chart({"x": 1.0, "long-label": 1.0})
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_series_monotone_glyphs(self):
        s = sparkline([0, 1, 2, 3, 4, 5])
        from repro.analysis.charts import _SPARK_LEVELS

        indices = [_SPARK_LEVELS.index(c) for c in s]
        assert indices == sorted(indices)

    def test_flat_series(self):
        s = sparkline([5, 5, 5])
        assert len(set(s)) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestSeriesChart:
    def test_one_line_per_series(self):
        out = series_chart({
            "hit": [(0, 1.0), (1, 0.5)],
            "capacity": [(0, 1.0), (1, 1.0)],
        })
        assert len(out.splitlines()) == 2

    def test_downsamples_long_series(self):
        points = [(i, float(i)) for i in range(200)]
        out = series_chart({"s": points}, width=20)
        line = out.splitlines()[0]
        assert len(line.split("| ")[1]) <= 20

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            series_chart({})

    def test_sorts_by_x(self):
        # Unsorted input must not change the rendered shape.
        a = series_chart({"s": [(0, 0.0), (1, 5.0), (2, 0.0)]})
        b = series_chart({"s": [(2, 0.0), (0, 0.0), (1, 5.0)]})
        assert a == b
