"""CDFs, statistics and report formatting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    EmpiricalCDF,
    describe,
    format_paper_vs_measured,
    format_table,
    improvement,
    reduction,
)


class TestCDF:
    def test_basic_probabilities(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf.at(0.5) == 0.0
        assert cdf.at(2.0) == 0.5
        assert cdf.at(4.0) == 1.0
        assert cdf.at(100.0) == 1.0

    def test_percentiles(self):
        cdf = EmpiricalCDF.from_samples([10, 20, 30, 40, 50])
        assert cdf.percentile(0.2) == 10
        assert cdf.percentile(1.0) == 50
        assert cdf.median == 30

    def test_mean(self):
        assert EmpiricalCDF.from_samples([1, 2, 3]).mean == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_samples([])

    def test_bad_quantile_rejected(self):
        cdf = EmpiricalCDF.from_samples([1.0])
        with pytest.raises(ValueError):
            cdf.percentile(0.0)
        with pytest.raises(ValueError):
            cdf.percentile(1.5)

    def test_series_downsamples(self):
        cdf = EmpiricalCDF.from_samples(list(range(100)))
        series = cdf.series(points=10)
        assert len(series) == 10
        assert series[-1] == (99.0, 1.0)

    def test_series_full_when_small(self):
        cdf = EmpiricalCDF.from_samples([1, 2])
        assert len(cdf.series(points=10)) == 2

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50))
    def test_property_monotone_nondecreasing(self, samples):
        cdf = EmpiricalCDF.from_samples(samples)
        assert (np.diff(cdf.values) >= 0).all()
        assert (np.diff(cdf.probabilities) > 0).all() or len(samples) == 1
        assert cdf.probabilities[-1] == pytest.approx(1.0)


class TestStats:
    def test_improvement(self):
        assert improvement(10.0, 7.0) == pytest.approx(0.3)
        assert improvement(10.0, 12.0) == pytest.approx(-0.2)
        assert improvement(0.0, 5.0) == 0.0

    def test_reduction_alias(self):
        assert reduction(4.0, 1.0) == improvement(4.0, 1.0)

    def test_describe(self):
        d = describe([1.0, 2.0, 3.0, 4.0])
        assert d["n"] == 4
        assert d["mean"] == 2.5
        assert d["max"] == 4.0

    def test_describe_empty(self):
        assert describe([])["n"] == 0


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "metric"], [["x", 1.0], ["yy", 22.5]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "metric" in lines[0]

    def test_format_table_title(self):
        out = format_table(["a"], [["1"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_paper_vs_measured_block(self):
        out = format_paper_vs_measured(
            "Fig 6", [("JCT improvement", "~28%", 0.31)]
        )
        assert "Fig 6" in out
        assert "~28%" in out
        assert "0.310" in out
