"""Open-loop arrival generator: determinism, profiles, saturation estimate.

The arrival plane underpins the overload contract's byte-identical-rerun
leg, so the core property here is seed-stability: equal (config, seed)
yields equal job lists, element for element.
"""

import pytest

from repro.mapreduce.job import JobSpec
from repro.workload.arrivals import (
    ARRIVAL_PROFILES,
    ArrivalConfig,
    TenantSpec,
    estimate_saturation_rate,
    generate_arrivals,
    load_arrival_trace,
    save_arrival_trace,
)

TWO_TENANTS = (
    TenantSpec(0, rate=2.0, weight=2.0),
    TenantSpec(1, rate=1.0, input_size_range=(4.0, 8.0)),
)


def _config(**kwargs):
    defaults = dict(tenants=TWO_TENANTS, profile="poisson", duration=6.0)
    defaults.update(kwargs)
    return ArrivalConfig(**defaults)


class TestDeterminism:
    @pytest.mark.parametrize("profile", ["poisson", "diurnal", "bursty"])
    def test_same_seed_same_jobs(self, profile):
        config = _config(profile=profile)
        a = generate_arrivals(config, seed=3)
        b = generate_arrivals(config, seed=3)
        assert a == b
        assert a, "sampled an empty stream at rate 3 jobs/unit over 6 units"

    def test_different_seeds_differ(self):
        config = _config()
        a = generate_arrivals(config, seed=0)
        b = generate_arrivals(config, seed=1)
        assert [j.submit_time for j in a] != [j.submit_time for j in b]

    def test_adding_a_tenant_leaves_existing_streams_alone(self):
        """Per-tenant RNG streams are independent: tenant 0's arrival
        instants must not move when tenant 1 joins the mix."""
        solo = generate_arrivals(
            _config(tenants=(TWO_TENANTS[0],)), seed=7
        )
        both = generate_arrivals(_config(), seed=7)
        solo_times = [j.submit_time for j in solo]
        both_t0 = [j.submit_time for j in both if j.tenant == 0]
        assert both_t0 == solo_times


class TestStreamShape:
    def test_sorted_contiguous_ids_and_tenant_stamps(self):
        jobs = generate_arrivals(_config(), seed=0)
        assert [j.job_id for j in jobs] == list(range(len(jobs)))
        times = [j.submit_time for j in jobs]
        assert times == sorted(times)
        assert all(0.0 <= t < 6.0 for t in times)
        assert {j.tenant for j in jobs} == {0, 1}
        assert all(isinstance(j, JobSpec) for j in jobs)

    def test_rate_multiplier_scales_offered_load(self):
        config = _config(duration=20.0)
        base = len(generate_arrivals(config, seed=0))
        heavy = len(
            generate_arrivals(
                _config(duration=20.0, rate_multiplier=3.0), seed=0
            )
        )
        assert heavy > 2 * base

    def test_tenant_size_mix_respected(self):
        jobs = generate_arrivals(_config(duration=20.0), seed=0)
        t1_sizes = [j.input_size for j in jobs if j.tenant == 1]
        assert t1_sizes
        assert all(4.0 <= s <= 8.0 for s in t1_sizes)

    def test_bursty_keeps_average_rate(self):
        """The on/off modulation redistributes arrivals in time but holds
        the time-average near the nominal rate."""
        config = _config(profile="bursty", duration=200.0)
        jobs = generate_arrivals(config, seed=0)
        nominal = sum(t.rate for t in TWO_TENANTS) * 200.0
        assert 0.7 * nominal < len(jobs) < 1.3 * nominal


class TestTraceProfile:
    def test_round_trip_and_replay(self, tmp_path):
        instants = ((0.5, 0), (1.25, 1), (1.25, 0), (9.0, 1))
        path = tmp_path / "arrivals.jsonl"
        save_arrival_trace(path, instants)
        loaded = load_arrival_trace(path)
        assert loaded == instants

        config = _config(profile="trace", trace=loaded)
        jobs = generate_arrivals(config, seed=0)
        # The 9.0 instant falls outside duration=6 and is clipped.
        assert [(j.submit_time, j.tenant) for j in jobs] == [
            (0.5, 0), (1.25, 0), (1.25, 1),
        ]

    def test_corrupt_trace_line_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time": 1.0, "tenant": 0}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            load_arrival_trace(path)


class TestValidation:
    def test_profiles_registry_is_exhaustive(self):
        assert set(ARRIVAL_PROFILES) == {
            "poisson", "diurnal", "bursty", "trace",
        }

    @pytest.mark.parametrize("bad", [
        dict(tenants=()),
        dict(tenants=(TenantSpec(0), TenantSpec(0))),
        dict(profile="weibull"),
        dict(duration=0.0),
        dict(rate_multiplier=0.0),
        dict(diurnal_amplitude=1.0),
        dict(burst_factor=1.0),
        dict(profile="trace"),  # trace profile without instants
        dict(profile="trace", trace=((-1.0, 0),)),
        dict(profile="trace", trace=((1.0, 99),)),  # unknown tenant
    ])
    def test_config_rejects(self, bad):
        with pytest.raises(ValueError):
            _config(**bad)

    @pytest.mark.parametrize("bad", [
        dict(tenant_id=-1),
        dict(rate=0.0),
        dict(weight=0.0),
        dict(input_size_range=(0.0, 4.0)),
        dict(input_size_range=(8.0, 4.0)),
    ])
    def test_tenant_rejects(self, bad):
        kwargs = dict(tenant_id=0)
        kwargs.update(bad)
        with pytest.raises(ValueError):
            TenantSpec(**kwargs)


class TestSaturationEstimate:
    def test_scales_linearly_with_slots(self):
        one = estimate_saturation_rate(10, TWO_TENANTS)
        two = estimate_saturation_rate(20, TWO_TENANTS)
        assert two == pytest.approx(2 * one)
        assert one > 0

    def test_bigger_jobs_saturate_sooner(self):
        small = estimate_saturation_rate(
            16, (TenantSpec(0, input_size_range=(2.0, 4.0)),)
        )
        large = estimate_saturation_rate(
            16, (TenantSpec(0, input_size_range=(20.0, 40.0)),)
        )
        assert large < small

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            estimate_saturation_rate(0)
