"""Admission controller: policies, weighted-fair drain, backpressure latch.

Everything here is deterministic by construction (no RNG in the module);
the tests drive the controller through explicit offer/peek/commit call
sequences and check the accounting that the overload contract relies on.
"""

import pytest

from repro.mapreduce.job import JobSpec, ShuffleClass
from repro.workload.admission import (
    ADMISSION_POLICIES,
    REJECT_LOAD_SHED,
    REJECT_QUEUE_FULL,
    REJECT_THROTTLED,
    AdmissionConfig,
    AdmissionController,
)


def _job(job_id, tenant=0, num_maps=4, num_reduces=2):
    return JobSpec(
        job_id=job_id, name=f"j{job_id}", shuffle_class=ShuffleClass.MEDIUM,
        num_maps=num_maps, num_reduces=num_reduces,
        input_size=8.0, shuffle_ratio=0.5, tenant=tenant,
    )


def _offer_n(controller, n, tenant=0, start_id=0, now=0.0, occupancy=0.0):
    return [
        controller.offer(_job(start_id + i, tenant=tenant), now, occupancy)
        for i in range(n)
    ]


class TestPolicies:
    def test_registry_is_exhaustive(self):
        assert set(ADMISSION_POLICIES) == {
            "admit-all", "queue-bound", "load-threshold", "token-bucket",
        }

    def test_admit_all_never_rejects(self):
        controller = AdmissionController(AdmissionConfig(policy="admit-all"))
        reasons = _offer_n(controller, 50, occupancy=1.0)
        assert reasons == [None] * 50
        assert controller.queue_depth() == 50

    def test_queue_bound_rejects_past_the_bound(self):
        controller = AdmissionController(
            AdmissionConfig(policy="queue-bound", queue_bound=3)
        )
        reasons = _offer_n(controller, 5)
        assert reasons == [None, None, None,
                           REJECT_QUEUE_FULL, REJECT_QUEUE_FULL]
        assert controller.max_queue_len() == 3
        # Draining one slot frees exactly one admission.
        head = controller.peek()
        controller.commit(head)
        assert _offer_n(controller, 2, start_id=10) == [
            None, REJECT_QUEUE_FULL,
        ]

    def test_queue_bound_is_per_tenant(self):
        controller = AdmissionController(
            AdmissionConfig(policy="queue-bound", queue_bound=1)
        )
        assert controller.offer(_job(0, tenant=0), 0.0, 0.0) is None
        # Tenant 1's queue is empty; tenant 0's bound does not spill over.
        assert controller.offer(_job(1, tenant=1), 0.0, 0.0) is None
        assert controller.offer(_job(2, tenant=0), 0.0, 0.0) == (
            REJECT_QUEUE_FULL
        )

    def test_load_threshold_sheds_on_occupancy(self):
        controller = AdmissionController(
            AdmissionConfig(policy="load-threshold", load_threshold=0.9)
        )
        assert controller.offer(_job(0), 0.0, 0.5) is None
        assert controller.offer(_job(1), 0.0, 0.9) == REJECT_LOAD_SHED
        assert controller.offer(_job(2), 0.0, 0.95) == REJECT_LOAD_SHED
        assert controller.offer(_job(3), 0.0, 0.89) is None

    def test_token_bucket_passes_bursts_throttles_sustained(self):
        controller = AdmissionController(
            AdmissionConfig(
                policy="token-bucket", bucket_rate=1.0, bucket_depth=2.0
            )
        )
        # Burst of 3 at t=0: depth 2 admits two, third is throttled.
        assert _offer_n(controller, 3, now=0.0) == [
            None, None, REJECT_THROTTLED,
        ]
        # After 1 time unit one token has refilled.
        assert controller.offer(_job(3), 1.0, 0.0) is None
        assert controller.offer(_job(4), 1.0, 0.0) == REJECT_THROTTLED

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(policy="fifo")
        with pytest.raises(ValueError):
            AdmissionConfig(policy="queue-bound")  # bound required
        with pytest.raises(ValueError):
            AdmissionConfig(queue_bound=0)
        with pytest.raises(ValueError):
            AdmissionConfig(load_threshold=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(high_watermark=0.5, low_watermark=0.9)
        with pytest.raises(ValueError):
            AdmissionConfig(tenant_weights=((0, -1.0),))


class TestWeightedFairDrain:
    def _drain_order(self, controller):
        order = []
        while (head := controller.peek()) is not None:
            controller.commit(head)
            order.append((head.tenant, head.job_id))
        return order

    def test_equal_weights_interleave(self):
        controller = AdmissionController(AdmissionConfig())
        _offer_n(controller, 3, tenant=0, start_id=0)
        _offer_n(controller, 3, tenant=1, start_id=10)
        tenants = [t for t, _ in self._drain_order(controller)]
        assert tenants == [0, 1, 0, 1, 0, 1]

    def test_heavier_tenant_drains_more_often(self):
        controller = AdmissionController(
            AdmissionConfig(tenant_weights=((0, 3.0), (1, 1.0)))
        )
        _offer_n(controller, 6, tenant=0, start_id=0)
        _offer_n(controller, 6, tenant=1, start_id=10)
        first_eight = [t for t, _ in self._drain_order(controller)][:8]
        # Weight 3:1 over equal-sized jobs: tenant 0 gets ~3 of every 4.
        assert first_eight.count(0) == 6
        assert first_eight.count(1) == 2

    def test_vtime_charges_slot_demand_not_job_count(self):
        """A tenant of big jobs pays more virtual time per commit, so the
        small-job tenant gets multiple turns in between."""
        controller = AdmissionController(AdmissionConfig())
        for i in range(2):
            controller.offer(
                _job(i, tenant=0, num_maps=12, num_reduces=4), 0.0, 0.0
            )
        for i in range(4):
            controller.offer(
                _job(10 + i, tenant=1, num_maps=2, num_reduces=2), 0.0, 0.0
            )
        order = [t for t, _ in self._drain_order(controller)]
        # t0 job costs 16/1, t1 job costs 4/1: after one t0 commit the
        # fair scheduler owes tenant 1 four commits.
        assert order == [0, 1, 1, 1, 1, 0]

    def test_fifo_within_tenant(self):
        controller = AdmissionController(AdmissionConfig())
        _offer_n(controller, 4, tenant=0)
        ids = [j for _, j in self._drain_order(controller)]
        assert ids == [0, 1, 2, 3]

    def test_commit_out_of_order_raises(self):
        controller = AdmissionController(AdmissionConfig())
        _offer_n(controller, 2, tenant=0)
        with pytest.raises(ValueError, match="out of order"):
            controller.commit(_job(1, tenant=0))

    def test_peek_empty_returns_none(self):
        controller = AdmissionController(AdmissionConfig())
        assert controller.peek() is None


class TestBackpressure:
    def test_hysteresis_latch(self):
        config = AdmissionConfig(high_watermark=0.9, low_watermark=0.7)
        controller = AdmissionController(config)
        assert not controller.defer(0.85, parked=0)  # below high: run
        assert controller.defer(0.92, parked=0)      # latched
        assert controller.defer(0.8, parked=0)       # still latched (>= low)
        assert not controller.defer(0.69, parked=0)  # released
        assert controller.deferrals == 2

    def test_parked_flows_alone_can_latch(self):
        config = AdmissionConfig(
            high_watermark=0.9, low_watermark=0.7, parked_pressure=4
        )
        controller = AdmissionController(config)
        assert controller.pressure(0.0, parked=4) == 1.0
        assert controller.pressure(0.0, parked=2) == pytest.approx(0.5)
        assert controller.defer(0.1, parked=4)
        assert not controller.defer(0.1, parked=0)


class TestAccounting:
    def test_counters_close_the_identity(self):
        controller = AdmissionController(
            AdmissionConfig(policy="queue-bound", queue_bound=2)
        )
        _offer_n(controller, 4, tenant=0)           # 2 queued, 2 rejected
        _offer_n(controller, 1, tenant=1, start_id=10)
        controller.commit(controller.peek())        # start one
        counters = controller.counters()
        assert counters["admission.submitted"] == 5
        assert counters["admission.admitted"] == 3
        assert counters["admission.rejected"] == 2
        assert counters["admission.queued"] == 2
        assert counters["admission.tenant.0.rejected.queue-full"] == 2
        started = sum(
            counters[f"admission.tenant.{t}.started"] for t in (0, 1)
        )
        # submitted == started + queued + rejected, per the contract.
        assert counters["admission.submitted"] == (
            started + counters["admission.queued"]
            + counters["admission.rejected"]
        )

    def test_drain_queued_empties_and_returns_in_order(self):
        controller = AdmissionController(AdmissionConfig())
        _offer_n(controller, 2, tenant=1, start_id=10)
        _offer_n(controller, 2, tenant=0)
        leftovers = controller.drain_queued()
        assert [(j.tenant, j.job_id) for j in leftovers] == [
            (0, 0), (0, 1), (1, 10), (1, 11),
        ]
        assert controller.queue_depth() == 0
        assert controller.queued_jobs() == []

    def test_tenant_rows_match_counters(self):
        controller = AdmissionController(
            AdmissionConfig(tenant_weights=((1, 2.0),))
        )
        _offer_n(controller, 3, tenant=1)
        (row,) = controller.tenant_rows()
        assert row["tenant"] == 1
        assert row["weight"] == 2.0
        assert row["submitted"] == 3
        assert row["queued"] == 3
        assert row["rejected"] == 0
