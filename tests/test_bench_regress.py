"""Bench-regression gate: passes on committed baselines, fails on drift."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
SCRIPT = ROOT / "benchmarks" / "bench_regress.py"
BASELINES = ROOT / "benchmarks" / "baselines"


def run_gate(tmp_path, hotpath, straggler, online=None, extra=()):
    out = tmp_path / "BENCH_regress.json"
    if online is None:
        online = BASELINES / "quick" / "BENCH_online.json"
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), "--check",
         "--hotpath", str(hotpath), "--straggler", str(straggler),
         "--online", str(online),
         "--out", str(out), *extra],
        capture_output=True, text=True, cwd=ROOT,
    )
    verdict = json.loads(out.read_text()) if out.exists() else None
    return proc, verdict


@pytest.mark.parametrize("scale", ["quick", "full"])
def test_committed_baselines_pass_against_themselves(tmp_path, scale):
    proc, verdict = run_gate(
        tmp_path,
        BASELINES / scale / "BENCH_hotpath.json",
        BASELINES / scale / "BENCH_straggler.json",
        BASELINES / scale / "BENCH_online.json",
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert verdict["verdict"] == "pass"
    for block in verdict["benchmarks"].values():
        assert block["ok"]
        assert block["scale"] == scale
        assert block["checks"], "no checks ran"


def test_synthetic_sim_regression_fails(tmp_path):
    """Deterministic simulated metrics are gated near-exactly."""
    report = json.loads(
        (BASELINES / "quick" / "BENCH_straggler.json").read_text()
    )
    report["summary"]["hit"]["mean_jct_on"] *= 1.05
    bad = tmp_path / "BENCH_straggler.json"
    bad.write_text(json.dumps(report))
    proc, verdict = run_gate(
        tmp_path, BASELINES / "quick" / "BENCH_hotpath.json", bad
    )
    assert proc.returncode == 1
    assert verdict["verdict"] == "fail"
    failed = [c["name"] for c in verdict["benchmarks"]["straggler"]["checks"]
              if not c["ok"]]
    assert failed == ["hit: mean_jct_on"]


def test_synthetic_speedup_collapse_fails(tmp_path):
    """Wall-clock ratios get a tolerance band, not exact comparison: a
    small wobble passes, losing most of the speedup fails."""
    base = json.loads(
        (BASELINES / "quick" / "BENCH_hotpath.json").read_text()
    )
    wobble = json.loads(json.dumps(base))
    for case in wobble["cases"]:
        case["grading"]["speedup"] *= 0.9  # within the 0.5 band
    ok_file = tmp_path / "wobble.json"
    ok_file.write_text(json.dumps(wobble))
    proc, _ = run_gate(
        tmp_path, ok_file, BASELINES / "quick" / "BENCH_straggler.json"
    )
    assert proc.returncode == 0

    collapsed = json.loads(json.dumps(base))
    collapsed["cases"][0]["grading"]["speedup"] *= 0.2  # below the band
    bad_file = tmp_path / "collapsed.json"
    bad_file.write_text(json.dumps(collapsed))
    proc, verdict = run_gate(
        tmp_path, bad_file, BASELINES / "quick" / "BENCH_straggler.json"
    )
    assert proc.returncode == 1
    failed = [c for c in verdict["benchmarks"]["hotpath"]["checks"]
              if not c["ok"]]
    assert len(failed) == 1 and failed[0]["kind"] == "ratio-min"


def test_synthetic_online_fingerprint_drift_fails(tmp_path):
    """Overload-campaign cells are deterministic: a fingerprint change is a
    behaviour change and must fail the gate."""
    report = json.loads(
        (BASELINES / "quick" / "BENCH_online.json").read_text()
    )
    report["cells"][0]["fingerprint"] = "0" * 64
    bad = tmp_path / "BENCH_online.json"
    bad.write_text(json.dumps(report))
    proc, verdict = run_gate(
        tmp_path,
        BASELINES / "quick" / "BENCH_hotpath.json",
        BASELINES / "quick" / "BENCH_straggler.json",
        bad,
    )
    assert proc.returncode == 1
    assert verdict["verdict"] == "fail"
    failed = [c["name"] for c in verdict["benchmarks"]["online"]["checks"]
              if not c["ok"]]
    assert failed and all("fingerprint" in name for name in failed)


def test_synthetic_online_violation_fails(tmp_path):
    """A report carrying contract violations never passes, even if it were
    rebaselined to match itself."""
    report = json.loads(
        (BASELINES / "quick" / "BENCH_online.json").read_text()
    )
    report["summary"]["violations"] = 2
    bad = tmp_path / "BENCH_online.json"
    bad.write_text(json.dumps(report))
    proc, verdict = run_gate(
        tmp_path,
        BASELINES / "quick" / "BENCH_hotpath.json",
        BASELINES / "quick" / "BENCH_straggler.json",
        bad,
    )
    assert proc.returncode == 1
    failed = [c["name"] for c in verdict["benchmarks"]["online"]["checks"]
              if not c["ok"]]
    assert "summary.violations is zero" in failed


def test_missing_report_fails_check_mode(tmp_path):
    proc, verdict = run_gate(
        tmp_path,
        tmp_path / "nonexistent.json",
        BASELINES / "quick" / "BENCH_straggler.json",
    )
    assert proc.returncode == 1
    assert "unreadable" in verdict["benchmarks"]["hotpath"]["error"]


def test_without_check_flag_always_exits_zero(tmp_path):
    out = tmp_path / "BENCH_regress.json"
    proc = subprocess.run(
        [sys.executable, str(SCRIPT),
         "--hotpath", str(tmp_path / "nope.json"),
         "--straggler", str(tmp_path / "nope.json"),
         "--out", str(out)],
        capture_output=True, text=True, cwd=ROOT,
    )
    assert proc.returncode == 0
    assert json.loads(out.read_text())["verdict"] == "fail"
