"""RackPackScheduler: minimal-rack-footprint placement."""

import numpy as np
import pytest

from repro.mapreduce import HdfsModel, rack_of_servers
from repro.schedulers import RackPackScheduler, SchedulingContext, make_scheduler

from ..conftest import make_job, make_taa


def context(taa, topo, job, seed=0):
    hdfs = HdfsModel(topo, seed=seed)
    hdfs.place_job_blocks(job)
    return SchedulingContext(taa=taa, hdfs=hdfs, rng=np.random.default_rng(seed))


class TestRackPack:
    def test_factory(self):
        assert make_scheduler("rackpack").name == "rackpack"

    def test_job_fits_in_one_rack(self, small_tree):
        # small_tree: racks of 4 servers x 2 slots = 8 slots; job needs 6.
        job = make_job(num_maps=4, num_reduces=2)
        taa, map_ids, reduce_ids = make_taa(small_tree, job)
        RackPackScheduler().place_initial_wave(
            context(taa, small_tree, job), job, map_ids, reduce_ids
        )
        racks = rack_of_servers(small_tree)
        used = {
            racks[taa.cluster.container(cid).server_id]
            for cid in map_ids + reduce_ids
        }
        assert len(used) == 1

    def test_overflow_spills_to_second_rack(self, small_tree):
        job = make_job(num_maps=10, num_reduces=2, input_size=10.0)
        taa, map_ids, reduce_ids = make_taa(small_tree, job)
        RackPackScheduler().place_initial_wave(
            context(taa, small_tree, job), job, map_ids, reduce_ids
        )
        racks = rack_of_servers(small_tree)
        used = {
            racks[taa.cluster.container(cid).server_id]
            for cid in map_ids + reduce_ids
        }
        assert len(used) == 2  # 12 containers / 8 per rack

    def test_second_job_prefers_fresh_rack(self, small_tree):
        job1 = make_job(job_id=0, num_maps=4, num_reduces=2)
        taa, m1, r1 = make_taa(small_tree, job1)
        sched = RackPackScheduler()
        ctx = context(taa, small_tree, job1)
        sched.place_initial_wave(ctx, job1, m1, r1)
        racks = rack_of_servers(small_tree)
        rack1 = {racks[taa.cluster.container(c).server_id] for c in m1 + r1}

        from repro.cluster import Container, Resources, TaskKind, TaskRef

        m2, r2 = [], []
        cid = 100
        for i in range(4):
            taa.cluster.add_container(
                Container(cid, Resources(1, 0), TaskRef(1, TaskKind.MAP, i))
            )
            m2.append(cid)
            cid += 1
        for i in range(2):
            taa.cluster.add_container(
                Container(cid, Resources(1, 0), TaskRef(1, TaskKind.REDUCE, i))
            )
            r2.append(cid)
            cid += 1
        job2 = make_job(job_id=1, num_maps=4, num_reduces=2)
        sched.place_initial_wave(ctx, job2, m2, r2)
        rack2 = {racks[taa.cluster.container(c).server_id] for c in m2 + r2}
        # Job 2 must not split across job 1's rack remnants: it gets the
        # emptiest rack, which is a fresh one.
        assert rack2.isdisjoint(rack1)

    def test_wave_reuses_job_rack(self, small_tree):
        job = make_job(num_maps=4, num_reduces=2)
        taa, map_ids, reduce_ids = make_taa(small_tree, job)
        sched = RackPackScheduler()
        ctx = context(taa, small_tree, job)
        # Place reduces first (simulating an earlier wave)...
        sched.place_initial_wave(ctx, job, [], reduce_ids)
        racks = rack_of_servers(small_tree)
        reduce_rack = {
            racks[taa.cluster.container(c).server_id] for c in reduce_ids
        }
        # ... then a later map wave lands in the same rack.
        sched.place_map_wave(ctx, job, map_ids)
        map_rack = {racks[taa.cluster.container(c).server_id] for c in map_ids}
        assert map_rack == reduce_rack

    def test_cheaper_than_capacity_costlier_than_hit(self, small_tree):
        """Rack packing sits between topology-blind and cost-driven."""
        job = make_job(num_maps=6, num_reduces=2, input_size=6.0)
        costs = {}
        for name in ("capacity", "rackpack", "hit"):
            taa, map_ids, reduce_ids = make_taa(small_tree, job)
            ctx = context(taa, small_tree, job, seed=1)
            sched = make_scheduler(name, seed=1)
            sched.place_initial_wave(ctx, job, map_ids, reduce_ids)
            sched.route_flows(taa)
            costs[name] = taa.total_shuffle_cost()
        assert costs["rackpack"] <= costs["capacity"]
        assert costs["hit"] <= costs["rackpack"]

    def test_raises_when_nothing_fits(self, flat_tree):
        job = make_job(num_maps=8, num_reduces=2)
        taa, map_ids, reduce_ids = make_taa(flat_tree, job)
        with pytest.raises(RuntimeError, match="no rack"):
            RackPackScheduler().place_initial_wave(
                context(taa, flat_tree, job), job, map_ids, reduce_ids
            )
