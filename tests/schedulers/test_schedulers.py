"""Behavioural tests for all four scheduling strategies."""

import numpy as np
import pytest

from repro.mapreduce import HdfsModel
from repro.schedulers import (
    CapacityScheduler,
    HitScheduler,
    PNAScheduler,
    RandomScheduler,
    SchedulingContext,
    make_scheduler,
)

from ..conftest import make_job, make_taa


def context(taa, topo, job, seed=0):
    hdfs = HdfsModel(topo, seed=seed)
    hdfs.place_job_blocks(job)
    return SchedulingContext(taa=taa, hdfs=hdfs, rng=np.random.default_rng(seed))


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("capacity", CapacityScheduler),
        ("pna", PNAScheduler),
        ("hit", HitScheduler),
        ("random", RandomScheduler),
    ])
    def test_make_scheduler(self, name, cls):
        sched = make_scheduler(name, seed=1)
        assert isinstance(sched, cls)
        assert sched.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_scheduler("fifo")

    def test_only_hit_is_network_aware(self):
        assert make_scheduler("hit").network_aware
        for name in ("capacity", "pna", "random"):
            assert not make_scheduler(name).network_aware


class TestCommonContract:
    """Every scheduler must place every container feasibly."""

    @pytest.mark.parametrize("name", ["capacity", "pna", "hit", "random"])
    def test_places_all_containers(self, small_tree, name):
        job = make_job()
        taa, map_ids, reduce_ids = make_taa(small_tree, job)
        ctx = context(taa, small_tree, job)
        make_scheduler(name, seed=0).place_initial_wave(ctx, job, map_ids, reduce_ids)
        assert taa.cluster.unplaced_containers() == []
        taa.cluster.validate()

    @pytest.mark.parametrize("name", ["capacity", "pna", "hit"])
    def test_map_wave_places_only_maps(self, small_tree, name):
        job = make_job()
        taa, map_ids, reduce_ids = make_taa(small_tree, job)
        for i, cid in enumerate(reduce_ids):
            taa.cluster.place(cid, 12 + i)
        ctx = context(taa, small_tree, job)
        make_scheduler(name, seed=0).place_map_wave(ctx, job, map_ids)
        for cid in map_ids:
            assert taa.cluster.container(cid).is_placed

    @pytest.mark.parametrize("name", ["capacity", "pna", "hit", "random"])
    def test_route_flows_installs_policies(self, small_tree, name):
        job = make_job()
        taa, map_ids, reduce_ids = make_taa(small_tree, job)
        ctx = context(taa, small_tree, job)
        sched = make_scheduler(name, seed=0)
        sched.place_initial_wave(ctx, job, map_ids, reduce_ids)
        sched.route_flows(taa)
        for flow in taa.flows:
            assert taa.controller.policy_of(flow.flow_id) is not None


class TestCapacity:
    def test_maps_prefer_replica_nodes(self, small_tree):
        job = make_job()
        taa, map_ids, reduce_ids = make_taa(small_tree, job)
        ctx = context(taa, small_tree, job)
        CapacityScheduler().place_initial_wave(ctx, job, map_ids, reduce_ids)
        blocks = ctx.hdfs.blocks_of(job.job_id)
        local = sum(
            1
            for i, cid in enumerate(map_ids)
            if blocks[i].is_local(taa.cluster.container(cid).server_id)
        )
        assert local == len(map_ids)  # empty cluster: all node-local

    def test_reduces_round_robin_spread(self, small_tree):
        job = make_job(num_maps=1, num_reduces=4)
        taa, map_ids, reduce_ids = make_taa(small_tree, job)
        ctx = context(taa, small_tree, job)
        CapacityScheduler().place_initial_wave(ctx, job, map_ids, reduce_ids)
        servers = {taa.cluster.container(cid).server_id for cid in reduce_ids}
        assert len(servers) == 4  # one per heartbeat slot

    def test_cursor_persists_across_jobs(self, small_tree):
        job1, job2 = make_job(0, num_maps=1, num_reduces=1), make_job(1, num_maps=1, num_reduces=1)
        sched = CapacityScheduler()
        taa, m1, r1 = make_taa(small_tree, job1)
        ctx = context(taa, small_tree, job1)
        sched.place_initial_wave(ctx, job1, m1, r1)
        first = taa.cluster.container(r1[0]).server_id
        # A second job's wildcard placements continue from the cursor.
        from repro.cluster import Container, Resources, TaskKind, TaskRef

        c = Container(100, Resources(1, 0), TaskRef(1, TaskKind.REDUCE, 0))
        taa.cluster.add_container(c)
        sched._round_robin(ctx, [100])
        assert taa.cluster.container(100).server_id != first


class TestPNA:
    def test_reduce_placement_minimises_static_cost(self, small_tree):
        job = make_job(num_maps=4, num_reduces=1)
        taa, map_ids, reduce_ids = make_taa(small_tree, job)
        ctx = context(taa, small_tree, job)
        # Pin all maps on rack 0 by hand, then let PNA place the reduce.
        for i, cid in enumerate(map_ids):
            taa.cluster.place(cid, i)  # servers 0..3 = rack 0
        pna = PNAScheduler(seed=0)
        pna._place_reduces(ctx, reduce_ids)
        assert taa.cluster.container(reduce_ids[0]).server_id in {0, 1, 2, 3}

    def test_probabilistic_with_low_beta(self, small_tree):
        """beta=0 ignores cost: placements spread beyond the best rack."""
        job = make_job(num_maps=4, num_reduces=1)
        seen = set()
        for seed in range(12):
            taa, map_ids, reduce_ids = make_taa(small_tree, job)
            ctx = context(taa, small_tree, job, seed=seed)
            for i, cid in enumerate(map_ids):
                taa.cluster.place(cid, i)
            pna = PNAScheduler(beta=0.0, seed=seed)
            pna._place_reduces(ctx, reduce_ids)
            seen.add(taa.cluster.container(reduce_ids[0]).server_id)
        assert len(seen) > 4

    def test_static_cost_is_switch_count(self, small_tree):
        job = make_job()
        taa, *_ = make_taa(small_tree, job)
        ctx = context(taa, small_tree, job)
        pna = PNAScheduler()
        assert pna.static_cost(ctx, 0, 0) == 0.0
        assert pna.static_cost(ctx, 0, 1) == 1.0  # same rack: one access switch
        assert pna.static_cost(ctx, 0, 15) == 3.0  # cross-rack: acc-core-acc

    def test_rejects_negative_beta(self):
        with pytest.raises(ValueError):
            PNAScheduler(beta=-1.0)


class TestHitSchedulerAdapter:
    def test_exposes_last_result(self, small_tree):
        job = make_job()
        taa, map_ids, reduce_ids = make_taa(small_tree, job)
        ctx = context(taa, small_tree, job)
        sched = HitScheduler()
        assert sched.last_result is None
        sched.place_initial_wave(ctx, job, map_ids, reduce_ids)
        assert sched.last_result is not None
        assert sched.last_result.final_cost <= sched.last_result.initial_cost + 1e-9

    def test_beats_random_on_shuffle_cost(self, small_tree):
        job = make_job(num_maps=4, num_reduces=2, input_size=8.0)
        costs = {}
        for name in ("hit", "random"):
            taa, map_ids, reduce_ids = make_taa(small_tree, job)
            ctx = context(taa, small_tree, job)
            sched = make_scheduler(name, seed=0)
            sched.place_initial_wave(ctx, job, map_ids, reduce_ids)
            sched.route_flows(taa)
            costs[name] = taa.total_shuffle_cost()
        assert costs["hit"] <= costs["random"]
