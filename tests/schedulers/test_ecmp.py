"""EcmpCapacityScheduler: multipath routing over Capacity placement."""

import numpy as np
import pytest

from repro.mapreduce import HdfsModel
from repro.schedulers import EcmpCapacityScheduler, SchedulingContext, make_scheduler

from ..conftest import make_job, make_taa


def context(taa, topo, job, seed=0):
    hdfs = HdfsModel(topo, seed=seed)
    hdfs.place_job_blocks(job)
    return SchedulingContext(taa=taa, hdfs=hdfs, rng=np.random.default_rng(seed))


class TestEcmp:
    def test_factory_and_flags(self):
        sched = make_scheduler("capacity-ecmp", seed=1)
        assert isinstance(sched, EcmpCapacityScheduler)
        assert sched.ecmp is True
        assert sched.network_aware is False

    def test_placement_identical_to_capacity(self, small_tree):
        """Only routing differs; the placements are byte-identical."""
        job = make_job()
        placements = {}
        for name in ("capacity", "capacity-ecmp"):
            taa, map_ids, reduce_ids = make_taa(small_tree, job)
            ctx = context(taa, small_tree, job)
            make_scheduler(name, seed=0).place_initial_wave(
                ctx, job, map_ids, reduce_ids
            )
            placements[name] = taa.cluster.placement_snapshot()
        assert placements["capacity"] == placements["capacity-ecmp"]

    def test_route_flows_spreads_over_replicas(self, small_tree):
        """With redundancy 2, ECMP must use more than one replica switch."""
        job = make_job(num_maps=8, num_reduces=2, input_size=8.0)
        taa, map_ids, reduce_ids = make_taa(small_tree, job)
        ctx = context(taa, small_tree, job)
        sched = EcmpCapacityScheduler(seed=0)
        sched.place_initial_wave(ctx, job, map_ids, reduce_ids)
        sched.route_flows(taa)
        used_switches = set()
        for flow in taa.flows:
            policy = taa.controller.policy_of(flow.flow_id)
            assert policy is not None
            used_switches.update(policy.switch_list)
        # The deterministic static router would only ever touch replica-0
        # switches; ECMP must reach beyond that half of the fabric.
        static_taa, m2, r2 = make_taa(small_tree, job)
        ctx2 = context(static_taa, small_tree, job)
        cap = make_scheduler("capacity", seed=0)
        cap.place_initial_wave(ctx2, job, m2, r2)
        cap.route_flows(static_taa)
        static_switches = set()
        for flow in static_taa.flows:
            policy = static_taa.controller.policy_of(flow.flow_id)
            static_switches.update(policy.switch_list)
        assert len(used_switches) > len(static_switches)

    def test_ecmp_routes_have_shortest_length(self, small_tree):
        job = make_job(num_maps=4, num_reduces=2)
        taa, map_ids, reduce_ids = make_taa(small_tree, job)
        ctx = context(taa, small_tree, job)
        sched = EcmpCapacityScheduler(seed=3)
        sched.place_initial_wave(ctx, job, map_ids, reduce_ids)
        sched.route_flows(taa)
        for flow in taa.flows:
            policy = taa.controller.policy_of(flow.flow_id)
            src = taa.cluster.container(flow.src_container).server_id
            dst = taa.cluster.container(flow.dst_container).server_id
            if src == dst:
                continue
            assert len(policy.path) - 1 == small_tree.hop_distance(src, dst)

    def test_seeded_determinism(self, small_tree):
        job = make_job()
        routes = []
        for _ in range(2):
            taa, map_ids, reduce_ids = make_taa(small_tree, job)
            ctx = context(taa, small_tree, job)
            sched = EcmpCapacityScheduler(seed=7)
            sched.place_initial_wave(ctx, job, map_ids, reduce_ids)
            sched.route_flows(taa)
            routes.append(tuple(
                taa.controller.policy_of(f.flow_id).path for f in taa.flows
            ))
        assert routes[0] == routes[1]
