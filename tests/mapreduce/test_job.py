"""JobSpec invariants and shuffle-matrix properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce import JobSpec, ShuffleClass, shuffle_matrix

from ..conftest import make_job


class TestJobSpec:
    def test_derived_quantities(self):
        job = make_job(num_maps=4, num_reduces=2, input_size=8.0, shuffle_ratio=0.5)
        assert job.shuffle_volume == 4.0
        assert job.map_input_size == 2.0
        assert job.map_duration == 1.0  # 2.0 / default rate 2.0
        assert job.reduce_duration(4.0) == 2.0

    def test_rejects_zero_tasks(self):
        with pytest.raises(ValueError):
            make_job(num_maps=0)
        with pytest.raises(ValueError):
            make_job(num_reduces=0)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            make_job(input_size=0.0)
        with pytest.raises(ValueError):
            make_job(shuffle_ratio=-0.1)

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            JobSpec(0, "j", ShuffleClass.LIGHT, 1, 1, 1.0, 0.5, map_rate=0)

    def test_rejects_negative_skew(self):
        with pytest.raises(ValueError):
            make_job(skew=-1.0)

    def test_describe_mentions_key_facts(self):
        text = make_job(job_id=7).describe()
        assert "job 7" in text and "4M x 2R" in text


class TestShuffleMatrix:
    def test_shape(self):
        m = shuffle_matrix(make_job(num_maps=4, num_reduces=3))
        assert m.shape == (4, 3)

    def test_total_is_shuffle_volume(self):
        job = make_job(input_size=8.0, shuffle_ratio=0.75)
        m = shuffle_matrix(job)
        assert m.sum() == pytest.approx(job.shuffle_volume)

    def test_uniform_when_no_skew(self):
        m = shuffle_matrix(make_job(num_maps=3, num_reduces=4, skew=0.0))
        assert np.allclose(m, m[0, 0])

    def test_skew_makes_unequal_partitions(self):
        m = shuffle_matrix(make_job(num_maps=4, num_reduces=4, skew=1.0))
        col = m.sum(axis=0)
        assert col.max() > 2 * col.min()

    def test_skew_shuffled_by_rng(self):
        job = make_job(num_maps=2, num_reduces=8, skew=1.0)
        m1 = shuffle_matrix(job, np.random.default_rng(1))
        m2 = shuffle_matrix(job, np.random.default_rng(2))
        assert not np.allclose(m1, m2)

    def test_deterministic_given_seed(self):
        job = make_job(num_maps=2, num_reduces=8, skew=1.0)
        m1 = shuffle_matrix(job, np.random.default_rng(5))
        m2 = shuffle_matrix(job, np.random.default_rng(5))
        assert np.allclose(m1, m2)

    def test_rows_equal_per_map_share(self):
        job = make_job(num_maps=5, num_reduces=3)
        m = shuffle_matrix(job)
        assert np.allclose(m.sum(axis=1), job.shuffle_volume / 5)


@settings(max_examples=40, deadline=None)
@given(
    maps=st.integers(1, 20),
    reduces=st.integers(1, 20),
    size=st.floats(0.5, 100.0, allow_nan=False),
    ratio=st.floats(0.0, 2.0, allow_nan=False),
    skew=st.floats(0.0, 2.0, allow_nan=False),
)
def test_property_matrix_nonnegative_and_conserves_volume(
    maps, reduces, size, ratio, skew
):
    job = make_job(num_maps=maps, num_reduces=reduces, input_size=size,
                   shuffle_ratio=ratio, skew=skew)
    m = shuffle_matrix(job, np.random.default_rng(0))
    assert (m >= 0).all()
    assert m.sum() == pytest.approx(job.shuffle_volume, rel=1e-9, abs=1e-9)
