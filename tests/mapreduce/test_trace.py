"""Workload trace serialisation round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce import (
    WorkloadGenerator,
    dump_workload,
    load_workload,
    load_workload_file,
    save_workload_file,
)
from repro.mapreduce.trace import TRACE_SCHEMA_VERSION, job_from_record, job_to_record

from ..conftest import make_job


class TestRoundTrip:
    def test_single_job(self):
        job = make_job(job_id=7, num_maps=5, num_reduces=2, skew=0.5)
        restored = job_from_record(job_to_record(job))
        assert restored == job

    def test_workload_text_roundtrip(self):
        jobs = WorkloadGenerator(seed=2).make_workload(8, interarrival=1.5)
        assert load_workload(dump_workload(jobs)) == jobs

    def test_file_roundtrip(self, tmp_path):
        jobs = WorkloadGenerator(seed=3).make_workload(5)
        path = tmp_path / "trace.jsonl"
        save_workload_file(path, jobs)
        assert load_workload_file(path) == jobs

    def test_blank_lines_skipped(self):
        jobs = WorkloadGenerator(seed=0).make_workload(2)
        text = "\n\n" + dump_workload(jobs) + "\n\n"
        assert load_workload(text) == jobs

    @settings(max_examples=25, deadline=None)
    @given(
        maps=st.integers(1, 40),
        reduces=st.integers(1, 20),
        size=st.floats(0.1, 1000.0, allow_nan=False),
        ratio=st.floats(0.0, 3.0, allow_nan=False),
    )
    def test_property_roundtrip(self, maps, reduces, size, ratio):
        job = make_job(num_maps=maps, num_reduces=reduces,
                       input_size=size, shuffle_ratio=ratio)
        assert job_from_record(job_to_record(job)) == job


class TestValidation:
    def test_rejects_newer_schema(self):
        record = job_to_record(make_job())
        record["v"] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            job_from_record(record)

    def test_rejects_invalid_json_with_line_number(self):
        good = dump_workload([make_job()])
        with pytest.raises(ValueError, match="line 2"):
            load_workload(good + "\nnot json")

    def test_missing_optional_fields_default(self):
        record = job_to_record(make_job())
        for optional in ("output_ratio", "map_rate", "reduce_rate", "skew",
                         "submit_time"):
            del record[optional]
        job = job_from_record(record)
        assert job.map_rate == 2.0
        assert job.skew == 0.0
