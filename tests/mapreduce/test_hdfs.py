"""HDFS block placement: replication, rack-awareness and locality."""

import pytest

from repro.mapreduce import HdfsModel, rack_of_servers
from repro.topology import TreeConfig, build_tree

from ..conftest import make_job


@pytest.fixture
def topo():
    return build_tree(TreeConfig(depth=2, fanout=4, redundancy=1))


class TestRacks:
    def test_rack_groups_by_access_switch(self, topo):
        racks = rack_of_servers(topo)
        assert racks[0] == racks[3]  # same rack of 4
        assert racks[0] != racks[4]

    def test_all_servers_assigned(self, topo):
        racks = rack_of_servers(topo)
        assert set(racks) == set(topo.server_ids)

    def test_redundant_access_uses_lowest_id(self):
        topo = build_tree(TreeConfig(depth=2, fanout=2, redundancy=2))
        racks = rack_of_servers(topo)
        assert racks[0] == racks[1]


class TestPlacement:
    def test_one_block_per_map(self, topo):
        hdfs = HdfsModel(topo, seed=0)
        job = make_job(num_maps=6)
        blocks = hdfs.place_job_blocks(job)
        assert len(blocks) == 6

    def test_replication_factor(self, topo):
        hdfs = HdfsModel(topo, replication=3, seed=0)
        for block in hdfs.place_job_blocks(make_job(num_maps=10)):
            assert len(block.replicas) == 3
            assert len(set(block.replicas)) == 3

    def test_second_replica_on_other_rack(self, topo):
        hdfs = HdfsModel(topo, replication=3, seed=0)
        for block in hdfs.place_job_blocks(make_job(num_maps=10)):
            r = [hdfs.rack_of(s) for s in block.replicas]
            assert r[0] != r[1]

    def test_replication_capped_by_cluster(self):
        topo = build_tree(TreeConfig(depth=1, fanout=2))
        hdfs = HdfsModel(topo, replication=5, seed=0)
        blocks = hdfs.place_job_blocks(make_job(num_maps=2))
        assert all(len(b.replicas) <= 2 for b in blocks)

    def test_idempotent_per_job(self, topo):
        hdfs = HdfsModel(topo, seed=0)
        job = make_job()
        assert hdfs.place_job_blocks(job) is hdfs.place_job_blocks(job)

    def test_deterministic_given_seed(self, topo):
        job = make_job(num_maps=8)
        b1 = HdfsModel(topo, seed=9).place_job_blocks(job)
        b2 = HdfsModel(topo, seed=9).place_job_blocks(job)
        assert [x.replicas for x in b1] == [x.replicas for x in b2]

    def test_writer_affinity_clusters_blocks(self, topo):
        hdfs = HdfsModel(topo, seed=3)
        blocks = hdfs.place_job_blocks(make_job(num_maps=20))
        first_replicas = [b.replicas[0] for b in blocks]
        # With 70% writer affinity the modal first-replica dominates.
        most_common = max(set(first_replicas), key=first_replicas.count)
        assert first_replicas.count(most_common) >= 10


class TestLocality:
    def test_classification(self, topo):
        hdfs = HdfsModel(topo, replication=2, seed=0)
        job = make_job(num_maps=1)
        hdfs.place_job_blocks(job)
        block = hdfs.blocks_of(job.job_id)[0]
        local = block.replicas[0]
        assert hdfs.locality(job.job_id, 0, local) == "node-local"
        same_rack = next(
            s
            for s in topo.server_ids
            if s not in block.replicas and hdfs.rack_of(s) == hdfs.rack_of(local)
        )
        assert hdfs.locality(job.job_id, 0, same_rack) == "rack-local"

    def test_remote_map_traffic_counts_nonlocal(self, topo):
        hdfs = HdfsModel(topo, replication=1, seed=0)
        job = make_job(num_maps=2, input_size=4.0)  # split = 2.0
        hdfs.place_job_blocks(job)
        blocks = hdfs.blocks_of(job.job_id)
        local_server = blocks[0].replicas[0]
        other = next(s for s in topo.server_ids if s not in blocks[1].replicas)
        traffic = hdfs.remote_map_traffic(job, {0: local_server, 1: other})
        assert traffic == pytest.approx(2.0)

    def test_remote_map_traffic_zero_when_all_local(self, topo):
        hdfs = HdfsModel(topo, replication=1, seed=0)
        job = make_job(num_maps=3, input_size=3.0)
        hdfs.place_job_blocks(job)
        placement = {
            i: b.replicas[0] for i, b in enumerate(hdfs.blocks_of(job.job_id))
        }
        assert hdfs.remote_map_traffic(job, placement) == 0.0
