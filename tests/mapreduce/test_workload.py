"""The Table-1 workload generator."""

import numpy as np
import pytest

from repro.mapreduce import (
    PUMA_BENCHMARKS,
    ShuffleClass,
    WorkloadGenerator,
    class_mix,
)


class TestTable1:
    def test_proportions_sum_to_one(self):
        assert sum(b.proportion for b in PUMA_BENCHMARKS) == pytest.approx(1.0)

    def test_class_mix_matches_paper(self):
        mix = class_mix()
        assert mix[ShuffleClass.HEAVY] == pytest.approx(0.40)
        assert mix[ShuffleClass.MEDIUM] == pytest.approx(0.20)
        assert mix[ShuffleClass.LIGHT] == pytest.approx(0.40)

    def test_benchmark_names_match_paper(self):
        names = {b.name for b in PUMA_BENCHMARKS}
        assert names == {
            "terasort", "index", "join", "sequence-count", "adjacency",
            "inverted-index", "term-vector",
            "grep", "wordcount", "classification", "histogram",
        }

    def test_shuffle_ratios_ordered_by_class(self):
        by_class = {}
        for b in PUMA_BENCHMARKS:
            by_class.setdefault(b.shuffle_class, []).append(b.shuffle_ratio)
        assert min(by_class[ShuffleClass.HEAVY]) > max(by_class[ShuffleClass.MEDIUM])
        assert min(by_class[ShuffleClass.MEDIUM]) > max(by_class[ShuffleClass.LIGHT])


class TestGenerator:
    def test_deterministic(self):
        a = WorkloadGenerator(seed=5).make_workload(10)
        b = WorkloadGenerator(seed=5).make_workload(10)
        assert [(j.name, j.input_size) for j in a] == [
            (j.name, j.input_size) for j in b
        ]

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(seed=1).make_workload(10)
        b = WorkloadGenerator(seed=2).make_workload(10)
        assert [j.name for j in a] != [j.name for j in b]

    def test_job_ids_unique_and_sequential(self):
        jobs = WorkloadGenerator(seed=0).make_workload(5)
        assert [j.job_id for j in jobs] == list(range(5))

    def test_input_size_in_range(self):
        gen = WorkloadGenerator(seed=0, input_size_range=(2.0, 4.0))
        for job in gen.make_workload(20):
            assert 2.0 <= job.input_size <= 4.0

    def test_task_counts_scale_with_input(self):
        gen = WorkloadGenerator(seed=0, split_size=1.0, reduces_per_maps=0.5)
        job = gen.make_job(input_size=8.0)
        assert job.num_maps == 8
        assert job.num_reduces == 4

    def test_interarrival_spaces_submit_times(self):
        jobs = WorkloadGenerator(seed=0).make_workload(10, interarrival=5.0)
        times = [j.submit_time for j in jobs]
        assert times == sorted(times)
        assert times[-1] > 0

    def test_zero_interarrival_all_at_once(self):
        jobs = WorkloadGenerator(seed=0).make_workload(5, interarrival=0.0)
        assert all(j.submit_time == 0.0 for j in jobs)

    def test_jobs_of_class_restricted(self):
        gen = WorkloadGenerator(seed=0)
        for sc in ShuffleClass:
            for job in gen.jobs_of_class(sc, 5):
                assert job.shuffle_class == sc

    def test_mix_approximates_table1(self):
        gen = WorkloadGenerator(seed=0)
        jobs = gen.make_workload(600)
        heavy = sum(1 for j in jobs if j.shuffle_class == ShuffleClass.HEAVY)
        assert 0.30 < heavy / 600 < 0.50

    def test_rejects_bad_proportions(self):
        from repro.mapreduce.workload import Benchmark

        bad = (Benchmark("x", ShuffleClass.HEAVY, 0.5, 1.0, 1.0),)
        with pytest.raises(ValueError, match="sum to 1"):
            WorkloadGenerator(benchmarks=bad)

    def test_rejects_bad_size_range(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(input_size_range=(4.0, 2.0))

    def test_pinned_benchmark(self):
        gen = WorkloadGenerator(seed=0)
        bench = PUMA_BENCHMARKS[0]  # terasort
        job = gen.make_job(benchmark=bench)
        assert job.name.startswith("terasort")
        assert job.shuffle_ratio == bench.shuffle_ratio
