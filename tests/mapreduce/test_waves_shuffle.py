"""Wave planning and shuffle-flow construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce import (
    build_flows,
    flows_between,
    plan_waves,
    shuffle_matrix,
)

from ..conftest import make_job


class TestWaves:
    def test_single_wave_when_slots_suffice(self):
        plan = plan_waves(0, num_maps=4, num_reduces=2, map_slots=8, reduce_slots=4)
        assert plan.is_single_wave
        assert plan.map_waves == ((0, 1, 2, 3),)

    def test_multiple_map_waves(self):
        plan = plan_waves(0, num_maps=7, num_reduces=2, map_slots=3, reduce_slots=4)
        assert plan.map_waves == ((0, 1, 2), (3, 4, 5), (6,))
        assert plan.num_map_waves == 3
        assert plan.num_reduce_waves == 1

    def test_every_task_in_exactly_one_wave(self):
        plan = plan_waves(0, 11, 5, 4, 2)
        seen = [t for wave in plan.map_waves for t in wave]
        assert seen == list(range(11))
        seen_r = [t for wave in plan.reduce_waves for t in wave]
        assert seen_r == list(range(5))

    def test_zero_maps(self):
        plan = plan_waves(0, 0, 1, 2, 2)
        assert plan.map_waves == ((),)

    def test_rejects_bad_slots(self):
        with pytest.raises(ValueError):
            plan_waves(0, 1, 1, 0, 1)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            plan_waves(0, -1, 1, 1, 1)

    @settings(max_examples=30, deadline=None)
    @given(
        maps=st.integers(0, 50),
        slots=st.integers(1, 10),
    )
    def test_property_wave_sizes_bounded_by_slots(self, maps, slots):
        plan = plan_waves(0, maps, 1, slots, 1)
        for wave in plan.map_waves:
            assert len(wave) <= slots


class TestBuildFlows:
    def test_flow_count_and_endpoints(self):
        job = make_job(num_maps=3, num_reduces=2)
        flows = build_flows(job, [10, 11, 12], [20, 21])
        assert len(flows) == 6
        assert {f.src_container for f in flows} == {10, 11, 12}
        assert {f.dst_container for f in flows} == {20, 21}

    def test_sizes_sum_to_shuffle_volume(self):
        job = make_job(input_size=8.0, shuffle_ratio=1.0)
        flows = build_flows(job, list(range(job.num_maps)),
                            list(range(100, 100 + job.num_reduces)))
        assert sum(f.size for f in flows) == pytest.approx(job.shuffle_volume)

    def test_respects_given_matrix(self):
        job = make_job(num_maps=2, num_reduces=2)
        matrix = np.array([[1.0, 0.0], [0.0, 3.0]])
        flows = build_flows(job, [0, 1], [2, 3], matrix=matrix)
        assert len(flows) == 2  # zero entries dropped
        assert {(f.src_container, f.dst_container, f.size) for f in flows} == {
            (0, 2, 1.0),
            (1, 3, 3.0),
        }

    def test_rate_scaling(self):
        job = make_job(num_maps=1, num_reduces=1, input_size=4.0, shuffle_ratio=1.0)
        (flow,) = build_flows(job, [0], [1], rate_epoch=2.0)
        assert flow.rate == pytest.approx(flow.size / 2.0)

    def test_flow_ids_sequential_from_offset(self):
        job = make_job(num_maps=2, num_reduces=2)
        flows = build_flows(job, [0, 1], [2, 3], first_flow_id=100)
        assert [f.flow_id for f in flows] == [100, 101, 102, 103]

    def test_validates_container_counts(self):
        job = make_job(num_maps=2, num_reduces=2)
        with pytest.raises(ValueError):
            build_flows(job, [0], [2, 3])
        with pytest.raises(ValueError):
            build_flows(job, [0, 1], [2])

    def test_validates_matrix_shape(self):
        job = make_job(num_maps=2, num_reduces=2)
        with pytest.raises(ValueError):
            build_flows(job, [0, 1], [2, 3], matrix=np.ones((3, 3)))

    def test_flows_between_selector(self):
        job = make_job(num_maps=2, num_reduces=2)
        flows = build_flows(job, [0, 1], [2, 3])
        sel = flows_between(flows, 0, 3)
        assert len(sel) == 1
        assert sel[0].src_container == 0 and sel[0].dst_container == 3

    def test_rejects_negative_size(self):
        from repro.mapreduce import ShuffleFlow

        with pytest.raises(ValueError):
            ShuffleFlow(0, 0, 0, 0, 1, 2, size=-1.0, rate=0.0)
