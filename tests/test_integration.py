"""Cross-module integration scenarios."""

import numpy as np
import pytest

from repro.cluster import Container, Resources, TaskKind, TaskRef
from repro.core import HitConfig, HitOptimizer, TAAInstance
from repro.mapreduce import JobSpec, ShuffleClass, WorkloadGenerator, build_flows
from repro.schedulers import make_scheduler
from repro.simulator import SimulationConfig, run_simulation
from repro.topology import TreeConfig, build_bcube, build_fattree, build_tree, build_vl2
from repro.yarnsim import ApplicationMaster, ResourceManager, TopologyAwareTaskDict

from .conftest import make_job, make_taa


class TestOptimizerAcrossFabrics:
    """Hit's core loop must work unmodified on every fabric generator."""

    @pytest.mark.parametrize("factory", [
        lambda: build_tree(TreeConfig(depth=2, fanout=4, redundancy=2)),
        lambda: build_fattree(k=4),
        lambda: build_vl2(num_tor=4, servers_per_tor=4),
        lambda: build_bcube(n=4, k=1),
    ], ids=["tree", "fattree", "vl2", "bcube"])
    def test_optimize_and_verify(self, factory):
        topo = factory()
        taa, *_ = make_taa(topo)
        result = HitOptimizer(taa, HitConfig(seed=0)).optimize_initial_wave()
        assert result.final_cost <= result.initial_cost + 1e-9
        assert taa.verify_constraints() == []


class TestZeroShuffleJobs:
    def test_shuffle_free_job_simulates(self):
        """shuffle_ratio=0 means no flows at all; reduces finish on compute."""
        topo = build_tree(TreeConfig(depth=2, fanout=4, redundancy=2,
                                     server_resources=(2.0,)))
        job = JobSpec(
            job_id=0, name="map-only", shuffle_class=ShuffleClass.LIGHT,
            num_maps=4, num_reduces=2, input_size=4.0, shuffle_ratio=0.0,
        )
        metrics = run_simulation(topo, make_scheduler("hit", seed=0), [job])
        assert len(metrics.jobs) == 1
        assert metrics.total_shuffle_volume() == 0.0
        assert metrics.flows == []

    def test_optimizer_handles_flowless_containers(self, small_tree):
        job = make_job(shuffle_ratio=0.0)
        # shuffle_ratio=0 -> build_flows drops everything.
        taa, *_ = make_taa(small_tree, job)
        assert taa.flows == ()
        result = HitOptimizer(taa, HitConfig(seed=0)).optimize_initial_wave()
        assert result.final_cost == 0.0
        assert taa.cluster.unplaced_containers() == []


class TestSkewedJobs:
    def test_skewed_shuffle_simulates(self):
        topo = build_tree(TreeConfig(depth=2, fanout=4, redundancy=2,
                                     server_resources=(2.0,)))
        job = JobSpec(
            job_id=0, name="join", shuffle_class=ShuffleClass.HEAVY,
            num_maps=6, num_reduces=3, input_size=6.0, shuffle_ratio=1.1,
            skew=1.0,
        )
        metrics = run_simulation(topo, make_scheduler("hit", seed=0), [job])
        # Reduce with the heavy partition finishes last but all complete.
        assert metrics.task_durations("reduce").size == 3
        assert metrics.total_shuffle_volume() == pytest.approx(
            job.shuffle_volume, rel=1e-6
        )


class TestSimulatorVsStaticConsistency:
    def test_flow_route_lengths_match_static_policies(self):
        """For a single job with one wave, the DES's routed hop counts equal
        the static instance's policy lengths under the same scheduler."""
        topo = build_tree(TreeConfig(depth=2, fanout=4, redundancy=2,
                                     server_resources=(4.0,)))
        job = make_job(num_maps=4, num_reduces=2)
        metrics = run_simulation(
            topo, make_scheduler("capacity"), [job],
            SimulationConfig(seed=0),
        )
        # Every networked flow's switch count must be a plausible static
        # shortest-path length on this fabric (1 or 3 switches).
        for f in metrics.flows:
            assert f.num_switches in (0, 1, 3)


class TestYarnRoundTrip:
    def test_taa_to_yarn_to_cluster_equivalence(self, small_tree):
        """Placements carried through the YARN plumbing reconstruct the TAA
        assignment exactly when the cluster is empty."""
        job = make_job()
        taa, *_ = make_taa(small_tree, job)
        HitOptimizer(taa, HitConfig(seed=1)).optimize_initial_wave()
        taskdict = TopologyAwareTaskDict.from_placement(
            taa.cluster, small_tree, taa.cluster.placement_snapshot()
        )
        rm = ResourceManager(small_tree)
        am = ApplicationMaster(rm=rm, job=job, taskdict=taskdict)
        granted = am.acquire_containers()
        for c in taa.cluster.containers():
            assert granted[str(c.task)].server_id == c.server_id


class TestWorkloadPipeline:
    def test_generated_workload_runs_under_every_scheduler(self):
        topo = build_tree(TreeConfig(depth=2, fanout=4, redundancy=2,
                                     server_resources=(2.0,)))
        jobs = WorkloadGenerator(
            seed=11, input_size_range=(2.0, 4.0)
        ).make_workload(4, interarrival=1.0)
        totals = {}
        for name in ("capacity", "pna", "hit", "random"):
            metrics = run_simulation(topo, make_scheduler(name, seed=11), jobs)
            totals[name] = metrics.total_shuffle_volume()
        # Volume conservation across schedulers: same bytes moved.
        values = list(totals.values())
        assert all(v == pytest.approx(values[0], rel=1e-6) for v in values)

    def test_same_seed_same_workload_same_blocks(self):
        """Determinism across the whole pipeline: two identical simulations
        produce identical JCT vectors and flow counts."""
        topo_factory = lambda: build_tree(
            TreeConfig(depth=2, fanout=4, redundancy=2, server_resources=(2.0,))
        )
        jobs = WorkloadGenerator(seed=5, input_size_range=(2.0, 4.0)).make_workload(3)
        runs = []
        for _ in range(2):
            metrics = run_simulation(
                topo_factory(), make_scheduler("pna", seed=5), jobs,
                SimulationConfig(seed=5),
            )
            runs.append((
                metrics.job_completion_times().tolist(),
                len(metrics.flows),
                metrics.total_shuffle_cost(),
            ))
        assert runs[0] == runs[1]


class TestFailureInjection:
    def test_unsatisfiable_job_is_surfaced(self):
        """A job whose reduce count exceeds cluster slots can never be
        admitted; the simulation refuses to end silently."""
        tiny = build_tree(TreeConfig(depth=1, fanout=2, server_resources=(1.0,)))
        job = make_job(num_maps=1, num_reduces=8)
        with pytest.raises(RuntimeError, match="unadmitted|unfinished"):
            run_simulation(tiny, make_scheduler("capacity"), [job])

    def test_max_events_guard(self):
        topo = build_tree(TreeConfig(depth=2, fanout=4, redundancy=2,
                                     server_resources=(2.0,)))
        jobs = [make_job(num_maps=4, num_reduces=2)]
        with pytest.raises(RuntimeError, match="max_events"):
            run_simulation(
                topo, make_scheduler("capacity"), jobs,
                SimulationConfig(max_events=3),
            )
