"""Overload-tolerant allocation: RM deferred-grant queue and AM pending set.

``allocate`` stays all-or-error for batch workloads; ``try_allocate`` /
``drain_deferred`` are the open-loop path where a full cluster is a normal
state, not a bug.  The properties pinned here: grants are strict FIFO with
head-of-line blocking (deterministic, starvation-free), nothing is lost
between the RM queue and the AM's ``pending`` mirror, and ``occupancy``
tracks live-node memory.
"""

import pytest

from repro.cluster import Resources
from repro.yarnsim import ApplicationMaster, ResourceManager, ResourceRequest

from ..conftest import make_job


@pytest.fixture
def rm(flat_tree):
    """4 servers x 2.0 memory = 8 unit-containers of headroom."""
    return ResourceManager(flat_tree)


def _request(memory=1.0, **kwargs):
    return ResourceRequest(
        priority=1, capability=Resources(memory, 0.0), **kwargs
    )


class TestTryAllocate:
    def test_all_fit_nothing_deferred(self, rm):
        app = rm.register_application("a")
        granted, deferred = rm.try_allocate(app, [_request()] * 3)
        assert len(granted) == 3
        assert deferred == []
        assert rm.deferred_count() == 0

    def test_overflow_defers_instead_of_raising(self, rm):
        app = rm.register_application("a")
        granted, deferred = rm.try_allocate(app, [_request()] * 10)
        assert len(granted) == 8
        assert len(deferred) == 2
        assert rm.deferred_count() == 2
        # The strict allocate on the same state would have raised.
        with pytest.raises(RuntimeError):
            rm.allocate(app, [_request()])

    def test_multi_container_request_splits_per_container(self, rm):
        app = rm.register_application("a")
        granted, deferred = rm.try_allocate(
            app, [_request(num_containers=10)]
        )
        assert len(granted) == 8
        assert len(deferred) == 2
        assert rm.deferred_count() == 2

    def test_unknown_app_rejected(self, rm):
        with pytest.raises(KeyError):
            rm.try_allocate(99, [_request()])


class TestDrainDeferred:
    def test_fifo_order_across_apps(self, rm):
        a = rm.register_application("a")
        b = rm.register_application("b")
        filler, _ = rm.try_allocate(a, [_request()] * 8)  # cluster now full
        rm.try_allocate(a, [_request()])                  # deferred first
        rm.try_allocate(b, [_request()])                  # deferred second
        # Free two containers, drain: grants come back in arrival order.
        rm.release(filler[0])
        rm.release(filler[1])
        drained = rm.drain_deferred()
        assert [app for app, _, _ in drained] == [a, b]
        assert rm.deferred_count() == 0

    def test_head_of_line_blocks_smaller_followers(self, rm):
        """A big head request must not be starved by later small ones:
        drain stops at the head until it fits."""
        app = rm.register_application("a")
        filler, _ = rm.try_allocate(app, [_request()] * 8)  # full
        rm.try_allocate(app, [_request(memory=2.0)])        # big head
        rm.try_allocate(app, [_request(memory=1.0)])        # small follower
        # One unit free: the small follower would fit, the head does not.
        on_node = [g for g in filler if g.hostname == filler[0].hostname]
        rm.release(on_node[0])
        assert rm.drain_deferred() == []
        assert rm.deferred_count() == 2
        # Free the rest of that node plus one unit elsewhere: the head
        # fits first, then the follower.
        for grant in on_node[1:]:
            rm.release(grant)
        rm.release(next(g for g in filler if g.hostname != on_node[0].hostname))
        drained = rm.drain_deferred()
        assert [r.capability.memory for _, r, _ in drained] == [2.0, 1.0]

    def test_drain_empty_queue_is_noop(self, rm):
        assert rm.drain_deferred() == []


class TestOccupancy:
    def test_tracks_used_memory(self, rm):
        assert rm.occupancy() == 0.0
        app = rm.register_application("a")
        rm.try_allocate(app, [_request()] * 4)
        assert rm.occupancy() == pytest.approx(0.5)
        rm.try_allocate(app, [_request()] * 4)
        assert rm.occupancy() == 1.0

    def test_lost_nodes_leave_the_denominator(self, flat_tree):
        rm = ResourceManager(flat_tree, heartbeat_expiry=1.0)
        app = rm.register_application("a")
        (grant,), _ = rm.try_allocate(app, [_request(memory=2.0)])
        for name in rm.nodes:
            rm.record_heartbeat(name, 0.0)
        assert rm.occupancy() == pytest.approx(0.25)
        # Only the (fully) loaded node heartbeats on; the others expire.
        rm.record_heartbeat(grant.hostname, 5.0)
        rm.expire_nodes(5.0)
        assert rm.lost_nodes == set(rm.nodes) - {grant.hostname}
        assert rm.occupancy() == 1.0


class TestApplicationMaster:
    def test_acquire_available_partial_then_deferred_grants(self, flat_tree):
        rm = ResourceManager(flat_tree)
        blocker = ApplicationMaster(rm, make_job(0, num_maps=5, num_reduces=1))
        blocker.acquire_containers()  # 6 of 8 units taken
        am = ApplicationMaster(rm, make_job(1, num_maps=3, num_reduces=1))
        granted = am.acquire_available()
        assert len(granted) == 2
        assert len(am.pending) == 2
        assert not am.fully_granted
        assert rm.deferred_count() == 2

        blocker.release_all()
        for app_id, request, grant in rm.drain_deferred():
            assert app_id == am.app_id
            am.record_deferred_grant(request, grant)
        assert am.pending == []
        assert am.fully_granted
        assert len(am.granted) == 4
        # Every task key holds exactly one grant, no duplicates.
        ids = [g.container_id for g in am.granted.values()]
        assert len(ids) == len(set(ids))

    def test_acquire_available_on_idle_cluster_matches_strict(self, flat_tree):
        rm = ResourceManager(flat_tree)
        am = ApplicationMaster(rm, make_job(0, num_maps=4, num_reduces=2))
        granted = am.acquire_available()
        assert len(granted) == 6
        assert am.fully_granted
        assert am.pending == []
        assert rm.deferred_count() == 0
