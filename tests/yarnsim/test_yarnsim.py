"""YARN-like control plane: requests, NodeManager, ResourceManager, AM."""

import pytest

from repro.cluster import Resources, TaskKind, TaskRef
from repro.core import HitConfig, HitOptimizer
from repro.yarnsim import (
    ANY_HOST,
    ApplicationMaster,
    HitResourceRequest,
    LaunchedContainer,
    NodeManager,
    ResourceManager,
    ResourceRequest,
    TopologyAwareTaskDict,
)

from ..conftest import make_job, make_taa


@pytest.fixture
def rm(small_tree):
    return ResourceManager(small_tree)


class TestRequests:
    def test_wildcard_default(self):
        r = ResourceRequest(priority=1, capability=Resources(1, 0))
        assert r.is_anywhere

    def test_rejects_zero_containers(self):
        with pytest.raises(ValueError):
            ResourceRequest(priority=1, capability=Resources(1, 0), num_containers=0)

    def test_rejects_negative_priority(self):
        with pytest.raises(ValueError):
            ResourceRequest(priority=-1, capability=Resources(1, 0))

    def test_hit_request_requires_host(self):
        with pytest.raises(ValueError, match="concrete preferred host"):
            HitResourceRequest(priority=1, capability=Resources(1, 0))

    def test_hit_request_with_host(self):
        r = HitResourceRequest(
            priority=1, capability=Resources(1, 0), resource_name="s3"
        )
        assert not r.is_anywhere


class TestNodeManager:
    def test_launch_and_release(self):
        nm = NodeManager(0, "s0", Resources(2, 0))
        nm.launch(LaunchedContainer(0, Resources(1, 0)))
        assert nm.used == Resources(1, 0)
        assert len(nm) == 1
        nm.release(0)
        assert nm.used.is_zero

    def test_capacity_enforced(self):
        nm = NodeManager(0, "s0", Resources(1, 0))
        nm.launch(LaunchedContainer(0, Resources(1, 0)))
        with pytest.raises(RuntimeError, match="insufficient"):
            nm.launch(LaunchedContainer(1, Resources(1, 0)))

    def test_duplicate_container_rejected(self):
        nm = NodeManager(0, "s0", Resources(2, 0))
        nm.launch(LaunchedContainer(0, Resources(1, 0)))
        with pytest.raises(ValueError, match="already running"):
            nm.launch(LaunchedContainer(0, Resources(1, 0)))

    def test_heartbeat_report(self):
        nm = NodeManager(0, "s0", Resources(2, 0))
        nm.launch(LaunchedContainer(5, Resources(1, 0), task="j0.M0"))
        hb = nm.heartbeat()
        assert hb["hostname"] == "s0"
        assert hb["running"] == [5]


class TestResourceManager:
    def test_one_node_per_server(self, rm, small_tree):
        assert len(rm.nodes) == small_tree.num_servers

    def test_wildcard_round_robin(self, rm):
        app = rm.register_application("job")
        grants = rm.allocate(
            app,
            [ResourceRequest(priority=1, capability=Resources(1, 0), num_containers=4)],
        )
        hosts = [g.hostname for g in grants]
        assert len(set(hosts)) == 4  # spread across nodes

    def test_hit_request_lands_on_preferred(self, rm):
        app = rm.register_application("job")
        req = HitResourceRequest(
            priority=1, capability=Resources(1, 0), resource_name="s7"
        )
        (grant,) = rm.allocate(app, [req])
        assert grant.hostname == "s7"

    def test_hit_request_falls_back_to_nearest(self, rm, small_tree):
        app = rm.register_application("job")
        cap = Resources(1, 0)
        # Fill s0 (capacity 2 in the fixture tree).
        rm.allocate(app, [
            HitResourceRequest(priority=1, capability=cap, resource_name="s0",
                               num_containers=2)
        ])
        (grant,) = rm.allocate(app, [
            HitResourceRequest(priority=1, capability=cap, resource_name="s0")
        ])
        assert grant.hostname != "s0"
        # Nearest = same rack (servers s1..s3 in the 4-per-rack tree).
        assert grant.hostname in {"s1", "s2", "s3"}

    def test_strict_locality_failure(self, rm):
        app = rm.register_application("job")
        cap = Resources(1, 0)
        rm.allocate(app, [
            HitResourceRequest(priority=1, capability=cap, resource_name="s0",
                               num_containers=2)
        ])
        with pytest.raises(RuntimeError, match="no node"):
            rm.allocate(app, [
                HitResourceRequest(priority=1, capability=cap,
                                   resource_name="s0", relax_locality=False)
            ])

    def test_unknown_host_rejected(self, rm):
        app = rm.register_application("job")
        with pytest.raises(KeyError):
            rm.allocate(app, [
                HitResourceRequest(priority=1, capability=Resources(1, 0),
                                   resource_name="nope")
            ])

    def test_unknown_app_rejected(self, rm):
        with pytest.raises(KeyError):
            rm.allocate(99, [])

    def test_release_refunds(self, rm):
        app = rm.register_application("job")
        before = rm.cluster_available()
        (grant,) = rm.allocate(app, [
            ResourceRequest(priority=1, capability=Resources(1, 0))
        ])
        rm.release(grant)
        assert rm.cluster_available() == before


class TestLiveness:
    """NM heartbeat liveness and the RM's lost-node / re-grant protocol."""

    def test_heartbeat_stamps_timestamp(self):
        nm = NodeManager(0, "s0", Resources(2, 0))
        assert nm.last_heartbeat == 0.0
        nm.heartbeat(3.5)
        assert nm.last_heartbeat == 3.5
        # Omitting ``now`` keeps the report side-effect free.
        report = nm.heartbeat()
        assert report["last_heartbeat"] == 3.5

    def test_drain_releases_everything(self):
        nm = NodeManager(0, "s0", Resources(4, 0))
        nm.launch(LaunchedContainer(1, Resources(1, 0)))
        nm.launch(LaunchedContainer(0, Resources(2, 0)))
        lost = nm.drain()
        assert [c.container_id for c in lost] == [0, 1]
        assert nm.used.is_zero and len(nm) == 0

    def test_expiry_disabled_by_default(self, rm):
        assert rm.expire_nodes(now=1e9) == []
        assert rm.lost_nodes == frozenset()

    def test_expire_and_rejoin(self, small_tree):
        rm = ResourceManager(small_tree, heartbeat_expiry=1.0)
        app = rm.register_application("job")
        (grant,) = rm.allocate(app, [
            ResourceRequest(priority=1, capability=Resources(1, 0))
        ])
        for hostname in rm.nodes:
            if hostname != grant.hostname:
                rm.record_heartbeat(hostname, now=5.0)
        dead = rm.expire_nodes(now=5.0)
        assert [g.container_id for g in dead] == [grant.container_id]
        assert rm.lost_nodes == frozenset({grant.hostname})
        assert rm.nodes[grant.hostname].used.is_zero
        # A heartbeat brings the node back (empty, ready for grants).
        rm.record_heartbeat(grant.hostname, now=6.0)
        assert rm.lost_nodes == frozenset()

    def test_lost_node_receives_no_grants(self, small_tree):
        rm = ResourceManager(small_tree, heartbeat_expiry=1.0)
        victim = sorted(rm.nodes)[0]
        for hostname in rm.nodes:
            if hostname != victim:
                rm.record_heartbeat(hostname, now=5.0)
        rm.expire_nodes(now=5.0)
        app = rm.register_application("job")
        # Wildcard round-robin skips the lost node ...
        grants = rm.allocate(app, [
            ResourceRequest(priority=1, capability=Resources(1, 0),
                            num_containers=4)
        ])
        assert victim not in {g.hostname for g in grants}
        # ... and so does a Hit request preferring it (relaxed locality).
        (grant,) = rm.allocate(app, [
            HitResourceRequest(priority=1, capability=Resources(1, 0),
                               resource_name=victim)
        ])
        assert grant.hostname != victim

    def test_regrant_replaces_dead_containers(self, small_tree):
        rm = ResourceManager(small_tree, heartbeat_expiry=1.0)
        app = rm.register_application("job")
        (grant,) = rm.allocate(app, [
            ResourceRequest(priority=1, capability=Resources(1, 0))
        ])
        for hostname in rm.nodes:
            if hostname != grant.hostname:
                rm.record_heartbeat(hostname, now=5.0)
        dead = rm.expire_nodes(now=5.0)
        (replacement,) = rm.regrant(dead)
        assert replacement.container_id != grant.container_id
        assert replacement.hostname != grant.hostname
        assert replacement.capability == grant.capability


class TestTaskDict:
    def test_from_placement(self, small_tree):
        taa, map_ids, reduce_ids = make_taa(small_tree)
        HitOptimizer(taa, HitConfig(seed=0)).optimize_initial_wave()
        td = TopologyAwareTaskDict.from_placement(
            taa.cluster, small_tree, taa.cluster.placement_snapshot()
        )
        assert len(td) == len(map_ids) + len(reduce_ids)
        task = taa.cluster.container(map_ids[0]).task
        expected = small_tree.server(
            taa.cluster.container(map_ids[0]).server_id
        ).name
        assert td.preferred_host(task) == expected

    def test_set_and_contains(self):
        td = TopologyAwareTaskDict()
        task = TaskRef(0, TaskKind.MAP, 0)
        assert task not in td
        td.set_preferred_host(task, "s5")
        assert task in td
        assert td.preferred_host(task) == "s5"


class TestApplicationMaster:
    def test_stock_am_emits_wildcards(self, rm):
        job = make_job()
        am = ApplicationMaster(rm=rm, job=job)
        requests = am.build_requests()
        assert len(requests) == job.num_maps + job.num_reduces
        assert all(r.resource_name == ANY_HOST for r in requests)

    def test_hit_am_emits_preferred_hosts(self, rm, small_tree):
        job = make_job()
        taa, map_ids, reduce_ids = make_taa(small_tree, job)
        HitOptimizer(taa, HitConfig(seed=0)).optimize_initial_wave()
        td = TopologyAwareTaskDict.from_placement(
            taa.cluster, small_tree, taa.cluster.placement_snapshot()
        )
        am = ApplicationMaster(rm=rm, job=job, taskdict=td)
        requests = am.build_requests()
        assert all(isinstance(r, HitResourceRequest) for r in requests)

    def test_acquire_and_release_cycle(self, rm, small_tree):
        job = make_job()
        taa, *_ = make_taa(small_tree, job)
        HitOptimizer(taa, HitConfig(seed=0)).optimize_initial_wave()
        td = TopologyAwareTaskDict.from_placement(
            taa.cluster, small_tree, taa.cluster.placement_snapshot()
        )
        am = ApplicationMaster(rm=rm, job=job, taskdict=td)
        granted = am.acquire_containers()
        assert len(granted) == job.num_maps + job.num_reduces
        before = rm.cluster_available()
        am.release_all()
        assert rm.cluster_available().dominates(before)

    def test_grants_match_hit_placement_when_room(self, rm, small_tree):
        """End-to-end Section 6 flow: TAA optimisation -> taskdict ->
        Hit-ResourceRequests -> RM grants on the preferred hosts."""
        job = make_job()
        taa, *_ = make_taa(small_tree, job)
        HitOptimizer(taa, HitConfig(seed=0)).optimize_initial_wave()
        td = TopologyAwareTaskDict.from_placement(
            taa.cluster, small_tree, taa.cluster.placement_snapshot()
        )
        am = ApplicationMaster(rm=rm, job=job, taskdict=td)
        granted = am.acquire_containers()
        for c in taa.cluster.containers():
            expected = small_tree.server(c.server_id).name
            assert granted[str(c.task)].hostname == expected
