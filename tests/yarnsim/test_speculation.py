"""Speculative containers through the YARN-like control plane.

Backups are ordinary grants with two extra properties: the RM tracks them in
a speculative ledger until the race resolves, and they may never land on the
straggler's own host (``avoid_host``).  Commit keeps the winner's grant and
preempts the loser at its NodeManager.
"""

import pytest

from repro.cluster import Resources, TaskKind, TaskRef
from repro.yarnsim import (
    ApplicationMaster,
    LaunchedContainer,
    NodeManager,
    ResourceManager,
    ResourceRequest,
    TopologyAwareTaskDict,
)

from ..conftest import make_job

CAP = Resources(1.0, 0.0)
MAP0 = TaskRef(0, TaskKind.MAP, 0)


@pytest.fixture
def rm(small_tree):
    return ResourceManager(small_tree)


@pytest.fixture
def am(rm):
    am = ApplicationMaster(rm=rm, job=make_job(num_maps=4, num_reduces=2))
    am.acquire_containers()
    return am


class TestRequestValidation:
    def test_avoiding_the_preferred_host_is_contradictory(self):
        with pytest.raises(ValueError, match="prefers and avoids"):
            ResourceRequest(
                priority=1,
                capability=CAP,
                resource_name="s3",
                avoid_host="s3",
            )

    def test_speculative_wildcard_with_avoid_is_fine(self):
        r = ResourceRequest(
            priority=1, capability=CAP, speculative=True, avoid_host="s3"
        )
        assert r.speculative and r.avoid_host == "s3"


class TestNodeManagerKill:
    def test_kill_releases_and_counts(self):
        nm = NodeManager(0, "s0", Resources(2, 0))
        nm.launch(LaunchedContainer(7, CAP))
        nm.kill(7)
        assert nm.used.is_zero
        assert nm.killed_count == 1

    def test_heartbeat_reports_kills(self):
        nm = NodeManager(0, "s0", Resources(2, 0))
        nm.launch(LaunchedContainer(7, CAP))
        nm.kill(7)
        assert nm.heartbeat()["killed"] == 1

    def test_running_container_lookup(self):
        nm = NodeManager(0, "s0", Resources(2, 0))
        nm.launch(LaunchedContainer(7, CAP))
        assert nm.running_container(7).container_id == 7
        assert nm.running_container(8) is None


class TestResourceManagerLedger:
    def test_speculative_grants_are_accounted(self, rm):
        app = rm.register_application("job")
        (grant,) = rm.allocate(
            app,
            [ResourceRequest(priority=1, capability=CAP, speculative=True)],
        )
        assert rm.speculative_load() == CAP
        rm.release(grant)
        assert rm.speculative_load().is_zero

    def test_kill_and_promote_clear_the_ledger(self, rm):
        app = rm.register_application("job")
        a, b = rm.allocate(
            app,
            [
                ResourceRequest(
                    priority=1, capability=CAP, num_containers=2,
                    speculative=True,
                )
            ],
        )
        rm.kill(a)
        rm.promote(b)
        assert rm.speculative_load().is_zero
        assert rm.nodes[a.hostname].killed_count == 1

    def test_round_robin_skips_the_avoided_host(self, rm):
        app = rm.register_application("job")
        grants = rm.allocate(
            app,
            [
                ResourceRequest(
                    priority=1, capability=CAP, num_containers=8,
                    avoid_host="s0",
                )
            ],
        )
        assert all(g.hostname != "s0" for g in grants)


class TestApplicationMasterBackups:
    def test_backup_avoids_the_original_host(self, am, rm):
        original = am.granted[str(MAP0)]
        backup = am.request_backup(MAP0)
        assert backup.hostname != original.hostname
        assert rm.speculative_load() == CAP

    def test_backup_requires_a_running_attempt(self, am):
        with pytest.raises(KeyError, match="no running attempt"):
            am.request_backup(TaskRef(0, TaskKind.MAP, 99))

    def test_one_backup_per_task(self, am):
        am.request_backup(MAP0)
        with pytest.raises(ValueError, match="already has a backup"):
            am.request_backup(MAP0)

    def test_preferred_backup_host_honoured_when_distinct(self, rm):
        taskdict = TopologyAwareTaskDict()
        am = ApplicationMaster(
            rm=rm, job=make_job(num_maps=4, num_reduces=2), taskdict=taskdict
        )
        am.acquire_containers()
        original = am.granted[str(MAP0)]
        target = "s9" if original.hostname != "s9" else "s10"
        taskdict.set_preferred_host(MAP0, target)
        backup = am.request_backup(MAP0)
        assert backup.hostname == target

    def test_commit_original_kills_backup(self, am, rm):
        original = am.granted[str(MAP0)]
        backup = am.request_backup(MAP0)
        am.commit_attempt(MAP0, original)
        assert am.granted[str(MAP0)] is original
        assert not am.backups
        assert rm.speculative_load().is_zero
        assert rm.nodes[backup.hostname].killed_count == 1

    def test_commit_backup_promotes_it_and_kills_original(self, am, rm):
        original = am.granted[str(MAP0)]
        backup = am.request_backup(MAP0)
        am.commit_attempt(MAP0, backup)
        assert am.granted[str(MAP0)] is backup
        assert not am.backups
        assert rm.speculative_load().is_zero
        assert rm.nodes[original.hostname].killed_count == 1

    def test_commit_rejects_a_foreign_container(self, am, rm):
        am.request_backup(MAP0)
        stranger = am.granted[str(TaskRef(0, TaskKind.MAP, 1))]
        with pytest.raises(ValueError, match="not an attempt"):
            am.commit_attempt(MAP0, stranger)

    def test_release_all_frees_backups_too(self, am, rm):
        am.request_backup(MAP0)
        am.release_all()
        assert not am.granted and not am.backups
        assert rm.speculative_load().is_zero
        assert all(nm.used.is_zero for nm in rm.nodes.values())
