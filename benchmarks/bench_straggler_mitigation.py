"""Straggler-mitigation report: speculative execution on vs off.

Replays the canonical straggler scenario (``straggler_timeline``: factor-6
compute slowdown on ~10% of the testbed's servers) against a
topology-aware scheduler (``hit``) and a topology-blind one (``random``),
each with and without LATE speculative execution, and writes
``BENCH_straggler.json`` with mean/p99 JCT per arm plus the speculation
counters.  The run asserts the headline claim: on the same timeline,
speculation must *reduce* mean JCT for every scheduler.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_straggler_mitigation.py [--out FILE]

Scale knob: ``REPRO_BENCH_SCALE=quick`` runs a single seed with a smaller
workload — suitable for CI smoke runs.  The default (``full``) averages
over three seeds at the experiment scale (12 jobs).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import (  # noqa: E402
    configs,
    fault_degradation,
    straggler_timeline,
)
from repro.speculation import SpeculationConfig  # noqa: E402

QUICK = os.environ.get("REPRO_BENCH_SCALE", "full") == "quick"

SEEDS = (0,) if QUICK else (0, 1, 2)
NUM_JOBS = 8 if QUICK else 12
SCHEDULERS = ("hit", "random")
FRACTION = 0.1
FACTOR = 6.0


def jct_stats(metrics) -> dict[str, float]:
    jcts = metrics.job_completion_times()
    return {
        "mean_jct": float(np.mean(jcts)),
        "p99_jct": float(np.percentile(jcts, 99)),
    }


def run_seed(seed: int) -> dict[str, dict[str, object]]:
    timeline = straggler_timeline(
        configs.testbed_tree(), fraction=FRACTION, factor=FACTOR
    )
    result = fault_degradation(
        seed=seed,
        num_jobs=NUM_JOBS,
        scheduler_names=SCHEDULERS,
        timeline=timeline,
        speculation=SpeculationConfig(),
    )
    out: dict[str, dict[str, object]] = {}
    for name, run in result.runs.items():
        assert run.mitigated is not None
        out[name] = {
            "clean": jct_stats(run.clean),
            "speculation_off": jct_stats(run.faulty),
            "speculation_on": jct_stats(run.mitigated),
            "mitigation_gain": run.mitigation_gain,
            "spec_counters": run.spec_counters,
        }
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_straggler.json", help="JSON report path"
    )
    args = parser.parse_args(argv)

    per_seed = {seed: run_seed(seed) for seed in SEEDS}

    report: dict[str, object] = {
        "scale": "quick" if QUICK else "full",
        "seeds": list(SEEDS),
        "num_jobs": NUM_JOBS,
        "straggler_fraction": FRACTION,
        "slowdown_factor": FACTOR,
        "per_seed": {str(s): r for s, r in per_seed.items()},
    }

    failures = []
    print(f"== Straggler mitigation ({len(SEEDS)} seed(s), "
          f"{NUM_JOBS} jobs, factor {FACTOR} on {FRACTION:.0%} of servers) ==")
    summary: dict[str, dict[str, float]] = {}
    for name in SCHEDULERS:
        off = np.mean([per_seed[s][name]["speculation_off"]["mean_jct"]
                       for s in SEEDS])
        on = np.mean([per_seed[s][name]["speculation_on"]["mean_jct"]
                      for s in SEEDS])
        p99_off = np.mean([per_seed[s][name]["speculation_off"]["p99_jct"]
                           for s in SEEDS])
        p99_on = np.mean([per_seed[s][name]["speculation_on"]["p99_jct"]
                          for s in SEEDS])
        gain = 1.0 - on / off
        wins = sum(per_seed[s][name]["spec_counters"].get("spec.wins", 0)
                   for s in SEEDS)
        summary[name] = {
            "mean_jct_off": float(off),
            "mean_jct_on": float(on),
            "p99_jct_off": float(p99_off),
            "p99_jct_on": float(p99_on),
            "mean_gain": float(gain),
            "spec_wins": int(wins),
        }
        print(f"{name:>8}: mean JCT {off:.3f} -> {on:.3f} "
              f"({gain:+.1%}), p99 {p99_off:.3f} -> {p99_on:.3f}, "
              f"{wins} backup win(s)")
        if not on < off:
            failures.append(name)
        if wins == 0:
            failures.append(f"{name} (no speculative wins)")
    report["summary"] = summary

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"report written to {args.out}")
    if failures:
        print(f"FAIL: speculation did not help: {failures}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
