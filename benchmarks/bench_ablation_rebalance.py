"""Ablation A5: online policy rebalancing of live flows (Section 5.1.1).

Static single-path routing piles every flow of a busy cluster onto the
replica-0 switch chain; one rebalancing sweep migrates flows onto idle
same-type switches.  The ablation measures the Eq-3 cost before/after the
sweep and the number of migrations — the gain available to the ``hit-online``
scheduler variant when placements are *not* already shuffle-optimal.
"""

from repro.analysis import format_table
from repro.core import RebalanceConfig, rebalance_flows
from repro.experiments import build_static_workload, configs, run_static_placement
from repro.mapreduce import WorkloadGenerator
from repro.schedulers import make_scheduler

from conftest import scale


def run_sweep(seed: int, num_jobs: int):
    jobs = WorkloadGenerator(
        seed=seed, input_size_range=(6.0, 12.0)
    ).make_workload(num_jobs)
    topology = configs.testbed_tree()
    workload = build_static_workload(topology, jobs, seed=seed)
    # Capacity placement + static routing = the congested starting state.
    result = run_static_placement(
        workload, make_scheduler("capacity"), seed=seed
    )
    report = rebalance_flows(
        result.taa.controller,
        list(result.taa.flows),
        RebalanceConfig(min_relative_gain=0.05),
    )
    return report


def test_ablation_online_rebalance(benchmark):
    report = benchmark.pedantic(
        run_sweep,
        kwargs={"seed": 0, "num_jobs": scale(8, 4)},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(
        ("metric", "value"),
        [
            ("live flows considered", report.flows_considered),
            ("migrations", report.migrations),
            ("Eq-3 cost before", report.cost_before),
            ("Eq-3 cost after", report.cost_after),
            ("gain", report.gain),
        ],
        title="== Ablation A5: one online rebalancing sweep ==",
    ))
    # A congested static-path state must offer real migrations and a
    # strictly positive gain.
    assert report.migrations > 0
    assert report.gain > 0.0
    assert report.cost_after < report.cost_before
