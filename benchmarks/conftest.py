"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper: it runs the
experiment once under pytest-benchmark timing, prints the regenerated
rows/series next to the paper's reported numbers, and asserts the *shape*
(who wins, roughly by how much, where the curve bends).  Absolute magnitudes
come from a simulator, not the authors' testbed — EXPERIMENTS.md records the
measured-vs-paper comparison for each run.

Scale knob: set ``REPRO_BENCH_SCALE=quick`` to shrink the expensive runs
(fewer seeds/jobs) during development; the default regenerates the full
configurations.
"""

from __future__ import annotations

import os

import pytest

QUICK = os.environ.get("REPRO_BENCH_SCALE", "full") == "quick"


def scale(full: int, quick: int) -> int:
    return quick if QUICK else full


@pytest.fixture(scope="session")
def testbed_results():
    """The Figure 6/7 dynamic runs, shared by both benchmarks (expensive)."""
    from repro.experiments import fig6_fig7_testbed

    seeds = range(scale(4, 1))
    return [
        fig6_fig7_testbed(seed=s, num_jobs=scale(22, 8)) for s in seeds
    ]
