"""Figure 8(a-b): impact of workload class and network architecture.

Paper: (a) shuffle-cost reduction for a shuffle-heavy workload reaches 38%
for Hit vs 21% for PNA, with smaller gains on lighter classes; (b) across
Tree / Fat-Tree / VL2 / BCube, Hit beats PNA by ~19% and Capacity by ~32%,
and the Tree fits MapReduce traffic best.
"""

from repro.analysis import format_paper_vs_measured, format_table
from repro.experiments import fig8a_workload_classes, fig8b_architectures

from conftest import scale


def test_fig8a_workload_classes(benchmark):
    data = benchmark.pedantic(
        fig8a_workload_classes,
        kwargs={"seed": 0, "jobs_per_class": scale(8, 4)},
        rounds=1,
        iterations=1,
    )
    rows = [
        (cls, v["capacity_cost"], v["hit_reduction"], v["pna_reduction"])
        for cls, v in data.items()
    ]
    print()
    print(format_table(
        ("class", "capacity cost", "hit reduction", "pna reduction"),
        rows,
        title="== Figure 8a: shuffle-cost reduction per class ==",
    ))
    print(format_paper_vs_measured("Figure 8a", [
        ("heavy: Hit reduction", "~38%", data["shuffle-heavy"]["hit_reduction"]),
        ("heavy: PNA reduction", "~21%", data["shuffle-heavy"]["pna_reduction"]),
    ]))
    for cls, v in data.items():
        # Hit always reduces more than PNA; both beat Capacity.
        assert v["hit_reduction"] > v["pna_reduction"] > 0, cls
    # Shuffle-heavy gains at least as much as shuffle-light for Hit.
    assert (
        data["shuffle-heavy"]["hit_reduction"]
        >= data["shuffle-light"]["hit_reduction"] - 0.05
    )


def test_fig8b_architectures(benchmark):
    data = benchmark.pedantic(
        fig8b_architectures,
        kwargs={"seed": 0, "num_jobs": scale(6, 3)},
        rounds=1,
        iterations=1,
    )
    rows = [
        (arch, v["capacity"], v["pna"], v["hit"], v["hit_vs_capacity"], v["hit_vs_pna"])
        for arch, v in data.items()
    ]
    print()
    print(format_table(
        ("architecture", "capacity", "pna", "hit", "hit/cap", "hit/pna"),
        rows,
        title="== Figure 8b: shuffle cost per architecture ==",
    ))
    mean_vs_cap = sum(v["hit_vs_capacity"] for v in data.values()) / len(data)
    mean_vs_pna = sum(v["hit_vs_pna"] for v in data.values()) / len(data)
    print(format_paper_vs_measured("Figure 8b", [
        ("Hit vs Capacity (mean over archs)", "~32%", mean_vs_cap),
        ("Hit vs PNA (mean over archs)", "~19%", mean_vs_pna),
    ]))
    for arch, v in data.items():
        assert v["hit"] < v["pna"], arch
        assert v["hit"] < v["capacity"], arch
    # Paper: "Map-and-Reduce style fits the Tree network architecture very
    # well because it results in less shuffle cost" — tree gives Hit its
    # lowest per-volume cost among the switch-centric fabrics.
    assert data["tree"]["hit"] <= data["fat-tree"]["hit"]
    assert data["tree"]["hit"] <= data["vl2"]["hit"]
