"""Figure 1: traffic volume during the shuffle phase.

Paper's observation: for shuffle-heavy jobs the shuffle volume contributes
more than 75% of total communication traffic, while remote-Map traffic stays
under 20%; shuffle-light jobs invert the ratio.
"""

from repro.analysis import format_paper_vs_measured, format_table
from repro.experiments import fig1_traffic_volume

from conftest import scale


def test_fig1_traffic_volume(benchmark):
    data = benchmark.pedantic(
        fig1_traffic_volume,
        kwargs={"seed": 0, "jobs_per_class": scale(4, 3)},
        rounds=1,
        iterations=1,
    )
    rows = [
        (cls, v["shuffle_volume"], v["remote_map_volume"], v["shuffle_share"])
        for cls, v in data.items()
    ]
    print()
    print(format_table(
        ("class", "shuffle volume", "remote-map volume", "shuffle share"),
        rows,
        title="== Figure 1: traffic volume during shuffle phase ==",
    ))
    print(format_paper_vs_measured("Figure 1", [
        ("heavy shuffle share", "> 0.75",
         data["shuffle-heavy"]["shuffle_share"]),
        ("heavy remote-map share", "< 0.20",
         1 - data["shuffle-heavy"]["shuffle_share"]),
        ("light shuffle share", "small",
         data["shuffle-light"]["shuffle_share"]),
    ]))
    assert data["shuffle-heavy"]["shuffle_share"] > 0.75
    assert 1 - data["shuffle-heavy"]["shuffle_share"] < 0.20
    assert data["shuffle-light"]["shuffle_share"] < 0.5
    assert (
        data["shuffle-heavy"]["shuffle_share"]
        >= data["shuffle-medium"]["shuffle_share"]
        > data["shuffle-light"]["shuffle_share"]
    )
