"""Figure 6(a-c): CDFs of job completion / map / reduce task times.

Paper headline: Hit-Scheduler improves mean job completion time by ~28% over
the Capacity scheduler and ~11% over the Probabilistic Network-Aware
scheduler; PNA beats Hit on the *map* phase (Hit ignores input locality) but
loses on reduce/shuffle-dominated totals.
"""

import numpy as np

from repro.analysis import EmpiricalCDF, format_paper_vs_measured, format_table
from repro.analysis.stats import improvement


def _aggregate(results, metric):
    """Mean over seeds of a per-scheduler scalar metric."""
    out = {}
    for name in ("capacity", "pna", "hit"):
        out[name] = float(np.mean([metric(r.metrics[name]) for r in results]))
    return out


def test_fig6_job_completion_cdf(benchmark, testbed_results):
    results = benchmark.pedantic(lambda: testbed_results, rounds=1, iterations=1)
    jct = _aggregate(results, lambda m: m.mean_jct())
    hit_vs_cap = improvement(jct["capacity"], jct["hit"])
    hit_vs_pna = improvement(jct["pna"], jct["hit"])

    # CDF series (Figure 6a) from the pooled samples of all seeds.
    print()
    for name in ("capacity", "pna", "hit"):
        samples = np.concatenate(
            [r.metrics[name].job_completion_times() for r in results]
        )
        cdf = EmpiricalCDF.from_samples(samples)
        series = ", ".join(f"({v:.2f},{p:.2f})" for v, p in cdf.series(8))
        print(f"Fig 6a CDF [{name:9s}]: {series}")
    print(format_paper_vs_measured("Figure 6a (mean JCT)", [
        ("Hit vs Capacity improvement", "~28%", hit_vs_cap),
        ("Hit vs PNA improvement", "~11%", hit_vs_pna),
        ("mean JCT capacity", "(testbed seconds)", jct["capacity"]),
        ("mean JCT pna", "(testbed seconds)", jct["pna"]),
        ("mean JCT hit", "(testbed seconds)", jct["hit"]),
    ]))
    # Shape: Hit < PNA < Capacity on mean JCT, with a solid margin over
    # Capacity and a positive margin over PNA.
    assert jct["hit"] < jct["pna"] < jct["capacity"]
    assert hit_vs_cap > 0.15
    assert hit_vs_pna > 0.0


def test_fig6b_map_times_pna_wins_map_phase(benchmark, testbed_results):
    maps = benchmark.pedantic(
        _aggregate,
        args=(testbed_results, lambda m: float(m.task_durations("map").mean())),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(
        ("scheduler", "mean map task time"),
        sorted(maps.items()),
        title="== Figure 6b: map task execution times ==",
    ))
    # PNA's locality-driven maps are at least as fast as Hit's
    # shuffle-optimised (locality-blind) maps.
    assert maps["pna"] <= maps["hit"]


def test_fig6c_reduce_times_hit_wins(benchmark, testbed_results):
    reduces = benchmark.pedantic(
        _aggregate,
        args=(testbed_results, lambda m: float(m.task_durations("reduce").mean())),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(
        ("scheduler", "mean reduce task time"),
        sorted(reduces.items()),
        title="== Figure 6c: reduce task execution times ==",
    ))
    # Reduce times are shuffle-dominated: Hit must win clearly.
    from conftest import QUICK

    assert reduces["hit"] < reduces["capacity"]
    if not QUICK:  # single-seed quick runs are too noisy for this margin
        assert reduces["hit"] < reduces["pna"]
