"""Ablation A2: the value of each half of the joint optimisation.

The paper's thesis is that task assignment and network policy must be
optimised *together* (Section 5.1.3 shows they separate cleanly, so the two
halves can be measured independently).  This ablation compares, on the same
workload and initial random placement:

* ``static``            — random placement, static single-path routing;
* ``policy-only``       — random placement, Algorithm 1 policies;
* ``assignment-only``   — stable-matching placement, static routing;
* ``joint``             — the full Hit-Scheduler.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import HitConfig, HitOptimizer
from repro.experiments import build_static_workload, configs
from repro.experiments.static import evaluate_policy_cost
from repro.mapreduce import WorkloadGenerator

from conftest import scale


def run_variants(seed: int = 0, num_jobs: int = 6):
    from repro.cluster import Container
    from repro.core import TAAInstance

    jobs = WorkloadGenerator(
        seed=seed, input_size_range=(6.0, 12.0)
    ).make_workload(num_jobs)

    def fresh_taa():
        topology = configs.testbed_tree()
        workload = build_static_workload(topology, jobs, seed=seed)
        taa = TAAInstance(
            topology,
            [Container(c.container_id, c.demand, c.task) for c in workload.containers],
            workload.flows,
        )
        return taa

    results = {}

    # static: random placement + static routing.
    taa = fresh_taa()
    HitOptimizer(taa, HitConfig(seed=seed)).random_initial_placement()
    snapshot = taa.cluster.placement_snapshot()
    taa.install_static_policies()
    results["static"] = evaluate_policy_cost(taa)

    # policy-only: same random placement, optimal policies.
    taa = fresh_taa()
    for cid, sid in snapshot.items():
        if sid is not None:
            taa.cluster.place(cid, sid)
    taa.install_all_policies()
    results["policy-only"] = evaluate_policy_cost(taa)

    # assignment-only: full matching, then static routing.
    taa = fresh_taa()
    HitOptimizer(taa, HitConfig(seed=seed)).optimize_initial_wave()
    assignment = taa.cluster.placement_snapshot()
    taa.install_static_policies()
    results["assignment-only"] = evaluate_policy_cost(taa)

    # joint: matching + optimal policies.
    taa = fresh_taa()
    for cid, sid in assignment.items():
        if sid is not None:
            taa.cluster.place(cid, sid)
    taa.install_all_policies()
    results["joint"] = evaluate_policy_cost(taa)
    return results


def test_ablation_separate_optimisation(benchmark):
    results = benchmark.pedantic(
        run_variants,
        kwargs={"seed": 0, "num_jobs": scale(6, 3)},
        rounds=1,
        iterations=1,
    )
    order = ["static", "policy-only", "assignment-only", "joint"]
    print()
    print(format_table(
        ("variant", "Eq-3 cost", "reduction vs static"),
        [
            (k, results[k], 1 - results[k] / results["static"])
            for k in order
        ],
        title="== Ablation A2: separated vs joint optimisation ==",
    ))
    # Each half helps on its own; the joint optimisation is the best.
    assert results["policy-only"] <= results["static"] + 1e-9
    assert results["assignment-only"] < results["static"]
    assert results["joint"] <= results["assignment-only"] + 1e-9
    assert results["joint"] <= results["policy-only"]
