"""Ablation A6: does Hit's advantage survive server heterogeneity?

The paper's related work (Tarazu, LATE) worries about heterogeneous
clusters; Hit-Scheduler itself never models compute speed.  This sensitivity
run widens the server-speed spread and checks that Hit's JCT advantage over
the Capacity scheduler persists — placement quality should matter regardless
of who computes faster, since the gains come from the network.
"""

from repro.analysis import format_table
from repro.analysis.stats import improvement
from repro.experiments import configs
from repro.schedulers import make_scheduler
from repro.simulator import SimulationConfig, run_simulation

from conftest import scale


def run_sensitivity(seed: int, num_jobs: int, spreads=(0.0, 0.25, 0.5)):
    jobs = configs.testbed_workload(seed=seed, num_jobs=num_jobs)
    out = {}
    for spread in spreads:
        jct = {}
        for name in ("capacity", "hit"):
            base = configs.testbed_simulation_config(seed=seed)
            config = SimulationConfig(
                container_demand=base.container_demand,
                map_slots_per_job=base.map_slots_per_job,
                seed=seed,
                server_speed_spread=spread,
            )
            metrics = run_simulation(
                configs.testbed_tree(), make_scheduler(name, seed=seed),
                jobs, config,
            )
            jct[name] = metrics.mean_jct()
        out[spread] = {
            "jct_capacity": jct["capacity"],
            "jct_hit": jct["hit"],
            "hit_improvement": improvement(jct["capacity"], jct["hit"]),
        }
    return out


def test_ablation_heterogeneity(benchmark):
    data = benchmark.pedantic(
        run_sensitivity,
        kwargs={"seed": 1, "num_jobs": scale(16, 8)},
        rounds=1,
        iterations=1,
    )
    rows = [
        (spread, v["jct_capacity"], v["jct_hit"], v["hit_improvement"])
        for spread, v in sorted(data.items())
    ]
    print()
    print(format_table(
        ("speed spread", "capacity JCT", "hit JCT", "hit improvement"),
        rows,
        title="== Ablation A6: sensitivity to server heterogeneity ==",
    ))
    # Hit's advantage must persist at every heterogeneity level.
    for spread, v in data.items():
        assert v["hit_improvement"] > 0.10, f"spread={spread}"
