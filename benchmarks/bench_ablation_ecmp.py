"""Ablation A7: how much of Hit's win is just *using* the extra paths?

``capacity-ecmp`` keeps the stock Capacity placement but hashes each flow
onto a random equal-cost shortest path (what a real fabric's ECMP does),
isolating multipath utilisation from placement quality.

Finding worth stating plainly: on our oversubscribed testbed, blind ECMP
recovers most of the *JCT* gap to Hit (and can even edge ahead, since it
keeps Capacity's map locality) — congestion relief is the dominant JCT
mechanism in a fluid-fairness simulator — but none of the *traffic-cost*
gap: ECMP flows still traverse ~4.5 switches where Hit's traverse ~1, so the
fabric carries ~4-5x the GB·T.  In a multi-tenant cloud that cross-sectional
traffic is exactly what the paper's objective (Eq 3) prices: Hit buys the
same JCT while leaving the core idle for everyone else.  It also explains
why the paper's strongest baseline (PNA) is modelled single-path: the
compared-against Hadoop fabrics pinned flows per ToR route.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.analysis.stats import improvement
from repro.experiments import configs
from repro.schedulers import make_scheduler
from repro.simulator import run_simulation

from conftest import scale


def run_comparison(seed: int, num_jobs: int):
    jobs = configs.testbed_workload(seed=seed, num_jobs=num_jobs)
    out = {}
    for name in ("capacity", "capacity-ecmp", "hit"):
        metrics = run_simulation(
            configs.testbed_tree(),
            make_scheduler(name, seed=seed),
            jobs,
            configs.testbed_simulation_config(seed=seed),
        )
        out[name] = metrics.summary()
    return out


def test_ablation_ecmp(benchmark):
    results = benchmark.pedantic(
        run_comparison,
        kwargs={"seed": 1, "num_jobs": scale(16, 8)},
        rounds=1,
        iterations=1,
    )
    rows = [
        (name, s["mean_jct"], s["avg_route_hops"], s["shuffle_cost"])
        for name, s in results.items()
    ]
    print()
    print(format_table(
        ("scheduler", "mean JCT", "route hops", "shuffle cost (GB.T)"),
        rows,
        title="== Ablation A7: ECMP multipath vs joint optimisation ==",
    ))
    cap, ecmp, hit = (
        results["capacity"], results["capacity-ecmp"], results["hit"]
    )
    print(f"\nECMP recovers {improvement(cap['mean_jct'], ecmp['mean_jct']):.0%} "
          f"of JCT but 0% of traffic cost; Hit cuts traffic cost by "
          f"{improvement(cap['shuffle_cost'], hit['shuffle_cost']):.0%}.")
    # ECMP spreading helps JCT a lot over single-path capacity...
    assert ecmp["mean_jct"] < cap["mean_jct"]
    # ...but leaves route lengths and fabric traffic untouched (equal up to
    # float summation order; the path sets have identical lengths)...
    assert ecmp["avg_route_hops"] == pytest.approx(cap["avg_route_hops"])
    assert ecmp["shuffle_cost"] == pytest.approx(cap["shuffle_cost"])
    # ...while Hit stays JCT-competitive with ECMP (within ~15%; ECMP can
    # edge ahead on JCT because it also keeps map locality) and slashes the
    # fabric traffic ECMP leaves untouched.
    assert hit["mean_jct"] <= ecmp["mean_jct"] * 1.15
    assert hit["shuffle_cost"] < 0.5 * ecmp["shuffle_cost"]
