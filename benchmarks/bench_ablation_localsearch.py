"""Ablation A4: stable matching (Alg 2) vs utility hill climbing.

Both consume the same Eq 5/10 utilities; the question the ablation answers
is whether the matching machinery earns its complexity.  Metric: final Eq-3
cost and the number of utility evaluations each needs on the same instance.
"""

import numpy as np

from repro.analysis import format_table
from repro.cluster import Container
from repro.core import (
    HitConfig,
    HitOptimizer,
    LocalSearchOptimizer,
    TAAInstance,
)
from repro.experiments import build_static_workload, configs
from repro.mapreduce import WorkloadGenerator

from conftest import scale


def compare(seed: int, num_jobs: int):
    jobs = WorkloadGenerator(
        seed=seed, input_size_range=(6.0, 12.0)
    ).make_workload(num_jobs)

    def fresh():
        topology = configs.testbed_tree()
        workload = build_static_workload(topology, jobs, seed=seed)
        return TAAInstance(
            topology,
            [Container(c.container_id, c.demand, c.task)
             for c in workload.containers],
            workload.flows,
        )

    # Matching path.
    taa = fresh()
    matching = HitOptimizer(taa, HitConfig(seed=seed)).optimize_initial_wave()

    # Hill-climbing path, from the same random start.
    taa2 = fresh()
    HitOptimizer(taa2, HitConfig(seed=seed)).random_initial_placement()
    taa2.install_all_policies()
    climb = LocalSearchOptimizer(taa2).optimize()

    return {
        "matching_cost": matching.final_cost,
        "climb_cost": climb.final_cost,
        "climb_moves": climb.moves_applied,
        "climb_evaluations": climb.utilities_evaluated,
    }


def test_ablation_localsearch_vs_matching(benchmark):
    results = benchmark.pedantic(
        compare,
        kwargs={"seed": 0, "num_jobs": scale(4, 2)},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(
        ("strategy", "final Eq-3 cost", "work"),
        [
            ("stable matching (Alg 2)", results["matching_cost"],
             "a few sweeps"),
            ("utility hill climbing", results["climb_cost"],
             f"{results['climb_moves']} moves / "
             f"{results['climb_evaluations']} utility evals"),
        ],
        title="== Ablation A4: matching vs local search ==",
    ))
    # Both must land far below a random placement; matching must be at least
    # competitive (within 25%) with exhaustive hill climbing while doing far
    # less utility evaluation work.
    assert results["matching_cost"] <= results["climb_cost"] * 1.25
    assert results["climb_moves"] > 0
