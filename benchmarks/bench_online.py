"""Overload-campaign report: open-loop arrivals through the admission plane.

Sweeps an arrival-rate multiplier through and past the estimated saturation
point, for Hit vs the capacity baseline on two fabrics, with every cell
graded against the overload contract (exhaustive accounting, bounded
queues, liveness, byte-identical reruns — see docs/workload.md), and writes
``BENCH_online.json``.  The run asserts the contract itself: any violation
in any cell fails the benchmark.

Everything in the report is deterministic simulated data — fingerprints,
counters, slowdown/fairness metrics — so ``bench_regress.py`` compares it
near-exactly against the committed baseline: a drift is a behaviour change,
not machine noise.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_online.py [--out FILE]

Scale knob: ``REPRO_BENCH_SCALE=quick`` runs a 2-multiplier grid on one
fabric — suitable for CI smoke runs.  The default (``full``) sweeps three
multipliers over both fabrics.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.online import (  # noqa: E402
    OnlineConfig,
    overload_campaign,
)

QUICK = os.environ.get("REPRO_BENCH_SCALE", "full") == "quick"

CONFIG = OnlineConfig(
    multipliers=(0.75, 2.0) if QUICK else (0.5, 1.0, 2.0),
    seed=0,
    schedulers=("capacity", "hit"),
    topologies=("deep",) if QUICK else ("small", "deep"),
    tenants=2,
    profile="poisson",
    policy="queue-bound",
    queue_bound=8,
    duration=1.5 if QUICK else 3.0,
    rerun=True,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_online.json", help="JSON report path"
    )
    args = parser.parse_args(argv)

    report = overload_campaign(CONFIG)
    s = report.summary()
    body = {
        "scale": "quick" if QUICK else "full",
        "config": CONFIG.to_dict(),
        "summary": s,
        "cells": [c.to_dict() for c in report.cells],
    }

    print(
        f"== Overload campaign ({len(report.cells)} cells: "
        f"{len(CONFIG.multipliers)} multipliers x "
        f"{len(CONFIG.schedulers)} schedulers x "
        f"{len(CONFIG.topologies)} topologies) =="
    )
    for c in report.cells:
        summary = c.summary
        print(
            f"  {c.multiplier:>4}x {c.scheduler:>8}/{c.topology:<5} "
            f"submitted={c.submitted:<3} "
            f"completed={c.counters.get('online.completed', 0):<3} "
            f"rejected={c.counters.get('admission.rejected', 0):<3} "
            f"queued={c.counters.get('admission.queued', 0):<2} "
            f"mean_slowdown={summary.get('mean_slowdown', 0.0):.3f} "
            f"p99_jct={summary.get('p99_jct', 0.0):.3f} "
            f"fairness={summary.get('tenant_fairness', 0.0):.3f}"
        )
    print(
        f"totals: submitted={s['submitted']} completed={s['completed']} "
        f"rejected={s['rejected']} queued={s['queued']} "
        f"violations={s['violations']}"
    )

    Path(args.out).write_text(json.dumps(body, indent=2) + "\n")
    print(f"report written to {args.out}")
    if s["violations"]:
        for c in report.violations:
            print(
                f"VIOLATION cell {c.cell} ({c.scheduler}/{c.topology} "
                f"at {c.multiplier}x): {'; '.join(c.violations)}"
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
