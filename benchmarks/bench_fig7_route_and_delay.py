"""Figure 7(a-b): average shuffle route length and shuffle delay.

Paper: Hit-Scheduler shortens the average route from 6.5 to 4.4 switch hops
(~30%) versus Capacity, and cuts the average shuffle packet delay from
189 us to 131 us (~32%).
"""

import numpy as np

from repro.analysis import format_paper_vs_measured
from repro.analysis.stats import improvement


def _aggregate(results, metric):
    out = {}
    for name in ("capacity", "pna", "hit"):
        out[name] = float(np.mean([metric(r.metrics[name]) for r in results]))
    return out


def test_fig7a_route_length(benchmark, testbed_results):
    results = benchmark.pedantic(lambda: testbed_results, rounds=1, iterations=1)
    hops = _aggregate(results, lambda m: m.average_route_length())
    reduction = improvement(hops["capacity"], hops["hit"])
    print()
    print(format_paper_vs_measured("Figure 7a (avg route length)", [
        ("capacity avg hops", 6.5, hops["capacity"]),
        ("pna avg hops", "(between)", hops["pna"]),
        ("hit avg hops", 4.4, hops["hit"]),
        ("hit reduction vs capacity", "~30%", reduction),
    ]))
    assert hops["hit"] < hops["pna"] < hops["capacity"]
    assert reduction > 0.25  # at least the paper's ballpark


def test_fig7b_shuffle_delay(benchmark, testbed_results):
    delay = benchmark.pedantic(
        _aggregate,
        args=(testbed_results, lambda m: m.average_shuffle_delay_us()),
        rounds=1,
        iterations=1,
    )
    reduction = improvement(delay["capacity"], delay["hit"])
    print()
    print(format_paper_vs_measured("Figure 7b (avg shuffle delay)", [
        ("capacity delay (us)", 189, delay["capacity"]),
        ("hit delay (us)", 131, delay["hit"]),
        ("reduction", "~32%", reduction),
    ]))
    assert delay["hit"] < delay["capacity"]
    assert reduction > 0.2
