"""Ablation A1: stable-matching heuristic vs the exact TAA optimum.

Not a paper figure — validates the design choice of Section 5: how much
optimality does the polynomial stable-matching heuristic give up versus
brute force on instances small enough to enumerate?
"""

import numpy as np

from repro.analysis import format_table
from repro.cluster import Container, Resources, TaskKind, TaskRef
from repro.core import (
    CostModel,
    HitConfig,
    HitOptimizer,
    TAAInstance,
    solve_exact,
)
from repro.mapreduce import ShuffleFlow
from repro.topology import TreeConfig, build_tree


def build_instance(seed: int):
    topo = build_tree(
        TreeConfig(depth=2, fanout=2, redundancy=2, server_resources=(2.0,))
    )
    rng = np.random.default_rng(seed)
    containers, flows = [], []
    map_ids, reduce_ids = [], []
    cid = 0
    for i in range(3):
        containers.append(Container(cid, Resources(1, 0), TaskRef(0, TaskKind.MAP, i)))
        map_ids.append(cid)
        cid += 1
    for i in range(2):
        containers.append(
            Container(cid, Resources(1, 0), TaskRef(0, TaskKind.REDUCE, i))
        )
        reduce_ids.append(cid)
        cid += 1
    fid = 0
    for m in map_ids:
        for r in reduce_ids:
            size = float(rng.uniform(0.5, 2.0))
            flows.append(ShuffleFlow(fid, 0, 0, 0, m, r, size, size))
            fid += 1
    return TAAInstance(
        topo, containers, flows, cost_model=CostModel(congestion_weight=0.0)
    )


def measure_gaps(num_seeds: int = 10):
    gaps = []
    for seed in range(num_seeds):
        taa = build_instance(seed)
        exact = solve_exact(taa)
        heuristic = HitOptimizer(taa, HitConfig(seed=seed)).optimize_initial_wave()
        ratio = (
            heuristic.final_cost / exact.cost if exact.cost > 0 else 1.0
        )
        gaps.append((seed, exact.cost, heuristic.final_cost, ratio))
    return gaps


def test_ablation_exact_gap(benchmark):
    gaps = benchmark.pedantic(measure_gaps, rounds=1, iterations=1)
    print()
    print(format_table(
        ("seed", "exact cost", "heuristic cost", "ratio"),
        gaps,
        title="== Ablation A1: heuristic vs exact optimum ==",
    ))
    ratios = [g[3] for g in gaps]
    mean_ratio = float(np.mean(ratios))
    print(f"mean optimality ratio: {mean_ratio:.3f}")
    # The heuristic is never better than exact, hits the optimum on a good
    # fraction of the seeds, and stays well under 2x on average.
    assert all(r >= 1.0 - 1e-9 for r in ratios)
    assert sum(1 for r in ratios if r < 1.001) >= 3
    assert mean_ratio < 1.7
