"""Scheduler zoo: all six strategies through the dynamic simulator.

Not a paper figure — an end-to-end regression that the full scheduler
lineup (including the rack-packing related-work baseline and the online
variant) maintains the expected quality ordering on the testbed workload:

    hit <= hit-online <= rackpack <= pna  (on shuffle cost)
    and every network-aware gain shows up in mean JCT.
"""

from repro.analysis import bar_chart, format_table
from repro.experiments import configs
from repro.schedulers import make_scheduler
from repro.simulator import run_simulation

from conftest import scale

SCHEDULERS = ("random", "capacity", "pna", "rackpack", "hit", "hit-online")


def run_zoo(seed: int, num_jobs: int):
    jobs = configs.testbed_workload(seed=seed, num_jobs=num_jobs)
    out = {}
    for name in SCHEDULERS:
        metrics = run_simulation(
            configs.testbed_tree(),
            make_scheduler(name, seed=seed),
            jobs,
            configs.testbed_simulation_config(seed=seed),
        )
        out[name] = metrics.summary()
    return out


def test_scheduler_zoo(benchmark):
    results = benchmark.pedantic(
        run_zoo,
        kwargs={"seed": 2, "num_jobs": scale(16, 8)},
        rounds=1,
        iterations=1,
    )
    rows = [
        (name, s["mean_jct"], s["avg_route_hops"], s["shuffle_cost"])
        for name, s in results.items()
    ]
    print()
    print(format_table(
        ("scheduler", "mean JCT", "route hops", "shuffle cost"),
        rows,
        title="== scheduler zoo on the testbed workload ==",
    ))
    print()
    print(bar_chart(
        {name: s["shuffle_cost"] for name, s in results.items()},
        title="shuffle cost (lower is better)",
        value_fmt="{:.1f}",
    ))
    cost = {name: s["shuffle_cost"] for name, s in results.items()}
    # Network-awareness ladder on shuffle cost.
    assert cost["hit"] <= cost["rackpack"] + 1e-9
    assert cost["rackpack"] <= cost["pna"] + 1e-9
    assert cost["pna"] <= cost["random"] * 1.1
    # The online variant never routes worse than plain hit.
    assert cost["hit-online"] <= cost["hit"] + 1e-6
    # And hit's JCT beats the topology-blind baselines.
    jct = {name: s["mean_jct"] for name, s in results.items()}
    assert jct["hit"] < jct["capacity"]
    assert jct["hit"] < jct["random"]
