"""Figure 10: sensitivity to the number of parallel jobs (512-node sim).

Paper: Hit's overall cost reduction grows quickly with the job count, then
saturates once more than ~12 jobs push the fabric toward its bandwidth
bottleneck; PNA's reduction stays comparatively flat (~15%).
"""

from repro.analysis import format_paper_vs_measured, format_table
from repro.experiments import fig10_job_numbers

from conftest import QUICK, scale


def test_fig10_job_numbers(benchmark):
    job_counts = (3, 6, 9) if QUICK else (3, 6, 9, 12, 15, 18)
    data = benchmark.pedantic(
        fig10_job_numbers,
        kwargs={
            "seed": 0,
            "job_counts": job_counts,
            "num_servers": scale(512, 64),
            # Quick mode shrinks jobs so they still fit the smaller cluster.
            "input_size_range": (24.0, 48.0) if not QUICK else (6.0, 10.0),
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        (n, v["hit_reduction"], v["pna_reduction"])
        for n, v in sorted(data.items())
    ]
    print()
    print(format_table(
        ("jobs", "hit reduction", "pna reduction"),
        rows,
        title="== Figure 10: cost reduction vs number of jobs ==",
    ))
    counts = sorted(data)
    first, last = counts[0], counts[-1]
    mid = counts[len(counts) // 2]
    print(format_paper_vs_measured("Figure 10", [
        (f"Hit reduction @ {first} jobs", "low end of curve",
         data[first]["hit_reduction"]),
        (f"Hit reduction @ {mid} jobs", "rising",
         data[mid]["hit_reduction"]),
        (f"Hit reduction @ {last} jobs", "saturated (~38%)",
         data[last]["hit_reduction"]),
        ("PNA reduction (last point)", "~15%, flat",
         data[last]["pna_reduction"]),
    ]))
    # Shape 1: Hit beats PNA at every point.
    for n, v in data.items():
        assert v["hit_reduction"] > v["pna_reduction"], n
    # Shape 2 (full scale only — the rising knee needs rack-spanning jobs on
    # the 512-server fabric): the Hit curve rises from its first point and
    # then saturates; the late-curve slope is smaller than the early one.
    if not QUICK:
        early_gain = data[mid]["hit_reduction"] - data[first]["hit_reduction"]
        late_gain = data[last]["hit_reduction"] - data[mid]["hit_reduction"]
        assert data[mid]["hit_reduction"] >= data[first]["hit_reduction"]
        assert late_gain <= early_gain + 0.02
