"""Figure 9: sensitivity to network bandwidth (512-node simulation).

Paper: throughput improvement over the Capacity scheduler grows as bandwidth
tightens — up to ~48% at 0.1 Mbps — and Hit-Scheduler dominates PNA
especially under limited bandwidth, because PNA assumes a static cost and a
single fixed path.
"""

from repro.analysis import format_paper_vs_measured, format_table
from repro.experiments import fig9_bandwidth_sensitivity

from conftest import scale


def test_fig9_bandwidth_sensitivity(benchmark):
    bandwidths = (0.1, 0.5, 1.0, 5.0, 20.0, 60.0)
    data = benchmark.pedantic(
        fig9_bandwidth_sensitivity,
        kwargs={
            "seed": 0,
            "bandwidths": bandwidths,
            "num_jobs": scale(6, 3),
            "num_servers": scale(512, 64),
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        (bw, v["hit_improvement"], v["pna_improvement"])
        for bw, v in sorted(data.items())
    ]
    print()
    print(format_table(
        ("bandwidth (Mbps)", "hit improvement", "pna improvement"),
        rows,
        title="== Figure 9: throughput improvement vs Capacity ==",
    ))
    print(format_paper_vs_measured("Figure 9", [
        ("Hit improvement @ 0.1 Mbps", "~48%", data[0.1]["hit_improvement"]),
        ("Hit improvement @ 60 Mbps", "small", data[60.0]["hit_improvement"]),
    ]))
    # Shape 1: Hit >= PNA at every bandwidth; strictly better at the tightest.
    for bw, v in data.items():
        assert v["hit_improvement"] >= v["pna_improvement"] - 1e-9, bw
    assert data[0.1]["hit_improvement"] > data[0.1]["pna_improvement"]
    # Shape 2: improvement decays as bandwidth grows (network stops being
    # the bottleneck).
    assert data[0.1]["hit_improvement"] > data[5.0]["hit_improvement"]
    assert data[5.0]["hit_improvement"] > data[60.0]["hit_improvement"]
    # Shape 3: tight-bandwidth improvement is substantial (paper: ~48%).
    assert data[0.1]["hit_improvement"] > 0.3
