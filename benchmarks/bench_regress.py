"""Bench-regression gate: diff current bench reports against baselines.

Compares the JSON reports written by ``bench_perf_hotpath.py``
(``BENCH_hotpath.json``), ``bench_straggler_mitigation.py``
(``BENCH_straggler.json``) and ``bench_online.py`` (``BENCH_online.json``)
against the committed baselines under ``benchmarks/baselines/<scale>/``
and emits a machine-readable verdict (``BENCH_regress.json``).  Two kinds
of quantity get two kinds of band:

* **Deterministic simulated metrics** (straggler mean/p99 JCTs, mitigation
  gains, speculation win counts; hotpath case shapes) are identical on any
  machine for a given seed — compared near-exactly (``--sim-tolerance``,
  default 1e-6 relative).  A drift here is a *behaviour* change, not noise.
* **Wall-clock speedup ratios** (hotpath ``grading.speedup`` /
  ``initial_wave.speedup`` / ``churn.speedup``) are machine-dependent; a
  regression is flagged
  only when the current ratio falls below ``baseline * (1 - tolerance)``
  (default 0.5 — i.e. losing more than half the recorded speedup).
  Absolute ``*_ms`` timings are never compared.

Baselines are keyed by the report's own ``scale`` field (``quick`` in CI,
``full`` locally), so a quick run is never judged against full-scale
numbers.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_regress.py --check \
        [--hotpath FILE] [--straggler FILE] [--out BENCH_regress.json]

Without ``--check`` the script only writes/prints the verdict (exit 0);
with it, any regression — or a missing report/baseline — exits non-zero,
which is what CI gates on.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

ROOT = Path(__file__).resolve().parent.parent
BASELINE_DIR = Path(__file__).resolve().parent / "baselines"

#: Fractional speedup loss tolerated on machine-dependent ratios.
DEFAULT_TOLERANCE = 0.5
#: Relative tolerance on deterministic simulated metrics.
DEFAULT_SIM_TOLERANCE = 1e-6


def _check(
    checks: list[dict[str, Any]],
    name: str,
    kind: str,
    baseline: Any,
    current: Any,
    ok: bool,
    detail: str = "",
) -> bool:
    checks.append(
        {
            "name": name,
            "kind": kind,
            "baseline": baseline,
            "current": current,
            "ok": bool(ok),
            **({"detail": detail} if detail else {}),
        }
    )
    return bool(ok)


def _exact(checks, name, baseline, current) -> bool:
    return _check(
        checks, name, "exact", baseline, current, baseline == current
    )


def _close(checks, name, baseline, current, rel_tol) -> bool:
    try:
        b, c = float(baseline), float(current)
    except (TypeError, ValueError):
        return _check(
            checks, name, "sim-close", baseline, current, False,
            "not a number",
        )
    ok = abs(c - b) <= rel_tol * max(abs(b), abs(c), 1e-12)
    return _check(checks, name, "sim-close", b, c, ok)


def _ratio_min(checks, name, baseline, current, tolerance) -> bool:
    """Machine-dependent speedup: fail only below (1 - tolerance) x base."""
    try:
        b, c = float(baseline), float(current)
    except (TypeError, ValueError):
        return _check(
            checks, name, "ratio-min", baseline, current, False,
            "not a number",
        )
    floor = b * (1.0 - tolerance)
    ok = c >= floor
    return _check(
        checks, name, "ratio-min", b, c, ok,
        "" if ok else f"below floor {floor:.3g}",
    )


def compare_hotpath(
    baseline: dict[str, Any],
    current: dict[str, Any],
    tolerance: float,
) -> list[dict[str, Any]]:
    checks: list[dict[str, Any]] = []
    _exact(checks, "scale", baseline.get("scale"), current.get("scale"))
    base_cases = {c["case"]: c for c in baseline.get("cases", [])}
    cur_cases = {c["case"]: c for c in current.get("cases", [])}
    for name, base in base_cases.items():
        cur = cur_cases.get(name)
        if cur is None:
            _check(checks, f"{name}: present", "exact", True, False, False,
                   "case missing from current report")
            continue
        for field in ("servers", "switches", "containers", "flows"):
            _exact(checks, f"{name}: {field}", base[field], cur[field])
        for section in ("grading", "initial_wave"):
            _ratio_min(
                checks,
                f"{name}: {section}.speedup",
                base[section]["speedup"],
                cur[section]["speedup"],
                tolerance,
            )
    base_churn = baseline.get("churn")
    if base_churn is not None:
        cur_churn = current.get("churn")
        if cur_churn is None:
            _check(checks, "churn: present", "exact", True, False, False,
                   "churn section missing from current report")
        else:
            for field in ("case", "flows", "events"):
                _exact(checks, f"churn: {field}",
                       base_churn.get(field), cur_churn.get(field))
            # The equivalence assertion is part of the bench itself; a report
            # can only carry True, but gate it anyway so a silently edited
            # report cannot pass.
            _exact(checks, "churn: bit_identical",
                   True, cur_churn.get("bit_identical"))
            _ratio_min(checks, "churn: speedup",
                       base_churn.get("speedup"), cur_churn.get("speedup"),
                       tolerance)
    return checks


def compare_straggler(
    baseline: dict[str, Any],
    current: dict[str, Any],
    sim_tolerance: float,
) -> list[dict[str, Any]]:
    checks: list[dict[str, Any]] = []
    for field in ("scale", "seeds", "num_jobs", "straggler_fraction",
                  "slowdown_factor"):
        _exact(checks, field, baseline.get(field), current.get(field))
    base_summary = baseline.get("summary", {})
    cur_summary = current.get("summary", {})
    for scheduler, base in base_summary.items():
        cur = cur_summary.get(scheduler)
        if cur is None:
            _check(checks, f"{scheduler}: present", "exact", True, False,
                   False, "scheduler missing from current report")
            continue
        for metric in ("mean_jct_off", "mean_jct_on", "p99_jct_off",
                       "p99_jct_on", "mean_gain"):
            _close(
                checks, f"{scheduler}: {metric}",
                base.get(metric), cur.get(metric), sim_tolerance,
            )
        _exact(checks, f"{scheduler}: spec_wins",
               base.get("spec_wins"), cur.get("spec_wins"))
    return checks


def compare_online(
    baseline: dict[str, Any],
    current: dict[str, Any],
    sim_tolerance: float,
) -> list[dict[str, Any]]:
    """Overload campaign: everything is deterministic simulated data.

    Cell fingerprints already hash summary + counters + event count, so
    exact fingerprint equality subsumes every per-cell metric; the summary
    metrics are still compared individually for readable failure output.
    """
    checks: list[dict[str, Any]] = []
    _exact(checks, "scale", baseline.get("scale"), current.get("scale"))
    _exact(checks, "config", baseline.get("config"), current.get("config"))
    base_summary = baseline.get("summary", {})
    cur_summary = current.get("summary", {})
    for field in ("cells", "ok", "submitted", "completed", "rejected",
                  "queued", "violations"):
        _exact(checks, f"summary.{field}",
               base_summary.get(field), cur_summary.get(field))
    # A passing baseline carries zero violations; gate the current report
    # on that directly so a regressed-then-rebaselined report cannot hide.
    _exact(checks, "summary.violations is zero",
           0, cur_summary.get("violations"))
    base_cells = {c["cell"]: c for c in baseline.get("cells", [])}
    cur_cells = {c["cell"]: c for c in current.get("cells", [])}
    for cell_id, base in base_cells.items():
        cur = cur_cells.get(cell_id)
        label = (f"cell {cell_id} ({base.get('scheduler')}/"
                 f"{base.get('topology')} @ {base.get('multiplier')}x)")
        if cur is None:
            _check(checks, f"{label}: present", "exact", True, False, False,
                   "cell missing from current report")
            continue
        for field in ("status", "submitted", "fingerprint"):
            _exact(checks, f"{label}: {field}",
                   base.get(field), cur.get(field))
        for metric in ("mean_slowdown", "p99_jct", "tenant_fairness"):
            _close(
                checks, f"{label}: {metric}",
                base.get("summary", {}).get(metric),
                cur.get("summary", {}).get(metric),
                sim_tolerance,
            )
    return checks


def _load(path: Path) -> dict[str, Any] | None:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def diff_report(
    name: str,
    current_path: Path,
    baseline_dir: Path,
    compare,
    tolerance: float,
) -> dict[str, Any]:
    """One benchmark's verdict block (handles missing files)."""
    current = _load(current_path)
    if current is None:
        return {
            "ok": False,
            "error": f"current report unreadable: {current_path}",
            "checks": [],
        }
    scale = current.get("scale", "full")
    baseline_path = baseline_dir / str(scale) / f"BENCH_{name}.json"
    baseline = _load(baseline_path)
    if baseline is None:
        return {
            "ok": False,
            "error": f"no committed baseline: {baseline_path}",
            "scale": scale,
            "checks": [],
        }
    checks = compare(baseline, current, tolerance)
    return {
        "ok": all(c["ok"] for c in checks),
        "scale": scale,
        "baseline": str(baseline_path.relative_to(ROOT)),
        "current": str(current_path),
        "checks": checks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--hotpath", default=str(ROOT / "BENCH_hotpath.json"),
        help="current hotpath report (default: repo root)",
    )
    parser.add_argument(
        "--straggler", default=str(ROOT / "BENCH_straggler.json"),
        help="current straggler report (default: repo root)",
    )
    parser.add_argument(
        "--online", default=str(ROOT / "BENCH_online.json"),
        help="current overload-campaign report (default: repo root)",
    )
    parser.add_argument(
        "--baseline-dir", default=str(BASELINE_DIR),
        help="committed baselines root (scale subdirectories)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="fractional speedup loss tolerated on wall-clock ratios "
             f"(default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--sim-tolerance", type=float, default=DEFAULT_SIM_TOLERANCE,
        help="relative tolerance on deterministic simulated metrics "
             f"(default {DEFAULT_SIM_TOLERANCE})",
    )
    parser.add_argument(
        "--out", default=str(ROOT / "BENCH_regress.json"),
        help="machine-readable verdict path",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero on any regression or missing report/baseline",
    )
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baseline_dir)
    verdict: dict[str, Any] = {
        "tolerance": args.tolerance,
        "sim_tolerance": args.sim_tolerance,
        "benchmarks": {
            "hotpath": diff_report(
                "hotpath", Path(args.hotpath), baseline_dir,
                compare_hotpath, args.tolerance,
            ),
            "straggler": diff_report(
                "straggler", Path(args.straggler), baseline_dir,
                compare_straggler, args.sim_tolerance,
            ),
            "online": diff_report(
                "online", Path(args.online), baseline_dir,
                compare_online, args.sim_tolerance,
            ),
        },
    }
    ok = all(b["ok"] for b in verdict["benchmarks"].values())
    verdict["verdict"] = "pass" if ok else "fail"

    Path(args.out).write_text(json.dumps(verdict, indent=2) + "\n")
    for name, block in verdict["benchmarks"].items():
        if "error" in block:
            print(f"{name:10s} ERROR  {block['error']}")
            continue
        failed = [c for c in block["checks"] if not c["ok"]]
        status = "ok" if block["ok"] else f"FAIL ({len(failed)} check(s))"
        print(f"{name:10s} {status}  [{len(block['checks'])} checks, "
              f"scale={block['scale']}, baseline={block['baseline']}]")
        for c in failed:
            detail = f" ({c['detail']})" if c.get("detail") else ""
            print(f"    {c['name']}: baseline={c['baseline']} "
                  f"current={c['current']}{detail}")
    print(f"verdict: {verdict['verdict']} -> {args.out}")
    return 1 if (args.check and not ok) else 0


if __name__ == "__main__":
    raise SystemExit(main())
