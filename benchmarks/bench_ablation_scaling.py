"""Ablation A3: scheduler decision latency vs cluster size.

The paper claims Algorithm 2 runs in O(M x N) proposals (Section 5.2.3) and
the subsequent-wave strategy in O(n^2).  This is a genuine micro-benchmark:
it times one full initial-wave optimisation of a fixed-size job on growing
clusters and checks that the measured proposal count respects the bound.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.cluster import Container, Resources, TaskKind, TaskRef
from repro.core import (
    HitConfig,
    HitOptimizer,
    TAAInstance,
    build_preference_matrix,
    stable_match,
)
from repro.mapreduce import ShuffleFlow
from repro.topology import TreeConfig, build_tree


def build_taa(fanout: int, seed: int = 0):
    topo = build_tree(
        TreeConfig(depth=2, fanout=fanout, redundancy=2, server_resources=(3.0,))
    )
    rng = np.random.default_rng(seed)
    containers, flows = [], []
    map_ids, reduce_ids = [], []
    cid = 0
    for i in range(8):
        containers.append(Container(cid, Resources(1, 0), TaskRef(0, TaskKind.MAP, i)))
        map_ids.append(cid)
        cid += 1
    for i in range(2):
        containers.append(
            Container(cid, Resources(1, 0), TaskRef(0, TaskKind.REDUCE, i))
        )
        reduce_ids.append(cid)
        cid += 1
    fid = 0
    for m in map_ids:
        for r in reduce_ids:
            size = float(rng.uniform(0.2, 1.0))
            flows.append(ShuffleFlow(fid, 0, 0, 0, m, r, size, size))
            fid += 1
    return TAAInstance(topo, containers, flows)


@pytest.mark.parametrize("fanout", [4, 8, 12])
def test_ablation_matching_scaling(benchmark, fanout):
    """Time one Algorithm1+Algorithm2 pass at growing cluster sizes."""
    taa = build_taa(fanout)
    HitOptimizer(taa, HitConfig(seed=0)).random_initial_placement()
    taa.install_all_policies()

    def one_pass():
        preferences = build_preference_matrix(taa)
        return stable_match(preferences, taa.cluster)

    result = benchmark(one_pass)
    servers = taa.topology.num_servers
    containers = taa.num_containers
    print()
    print(format_table(
        ("servers", "containers", "proposals", "bound M*N"),
        [(servers, containers, result.proposals, servers * containers)],
        title=f"== Ablation A3: matching pass at {servers} servers ==",
    ))
    assert result.proposals <= servers * containers
