"""Section 2.3 / Figure 3 case study: two jobs on a 4-server tree.

Paper arithmetic: the observed Capacity placement costs 112 GB.T; the paper's
improved reduce placement costs 64 GB.T (a 42% improvement).  Hit-Scheduler,
given the same pinned Map tasks, must do at least as well as the hand
solution.
"""

from repro.analysis import format_paper_vs_measured
from repro.experiments import fig3_case_study


def test_fig3_case_study(benchmark):
    result = benchmark.pedantic(fig3_case_study, rounds=1, iterations=1)
    print()
    print(format_paper_vs_measured("Figure 3 case study", [
        ("Capacity placement cost (GB.T)", 112, result.baseline_cost),
        ("paper's optimised cost (GB.T)", 64, result.paper_optimised_cost),
        ("Hit-Scheduler cost (GB.T)", "<= 64", result.hit_cost),
        ("improvement vs Capacity", "~42%", result.improvement_vs_baseline),
    ]))
    assert result.baseline_cost == 112.0
    assert result.paper_optimised_cost == 64.0
    assert result.hit_cost <= 64.0
    assert result.improvement_vs_baseline >= 0.42
