"""Perf regression harness for the vectorised routing/preference hot path.

Unlike the figure benchmarks (which regenerate paper results), this script
times the *implementation*: the grading pass (``build_preference_matrix``)
and the end-to-end initial-wave optimisation, comparing the shipped NumPy
kernels against the preserved scalar reference implementations in
``repro.core.scalar_ref``.  It seeds the repo's perf trajectory by writing
``BENCH_hotpath.json`` with before/after timings and speedups per topology.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_perf_hotpath.py [--out FILE]

Scale knob: ``REPRO_BENCH_SCALE=quick`` drops the largest topology and runs
a single repetition — suitable for CI smoke runs.  The default (``full``)
benchmarks up to a k=8 fat-tree (128 servers) with best-of-3 timing.

Both code paths are bit-compatible (see tests/core/test_vector_equivalence);
the harness re-asserts that here so a timing run can never silently compare
two implementations that diverged.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster import Container, Resources, TaskKind, TaskRef  # noqa: E402
from repro.core import HitConfig, HitOptimizer, TAAInstance  # noqa: E402
from repro.core import hit as hit_mod  # noqa: E402
from repro.core.policy import PolicyController  # noqa: E402
from repro.core.preference import (  # noqa: E402
    PairCostCache,
    build_preference_matrix,
)
from repro.core.scalar_ref import (  # noqa: E402
    ScalarPairCostCache,
    build_preference_matrix_scalar,
    dag_best_path_scalar,
)
from repro.mapreduce import JobSpec, ShuffleClass, build_flows  # noqa: E402
from repro.simulator import FlowNetwork  # noqa: E402
from repro.topology import (  # noqa: E402
    FatTreeConfig,
    TreeConfig,
    build_fattree,
    build_tree,
)

QUICK = os.environ.get("REPRO_BENCH_SCALE", "full") == "quick"

# (name, topology builder, num_maps, num_reduces); maps/reduces scale with
# the fabric so the grading matrix grows with server count.
CASES = [
    ("tree_d2f4", lambda: build_tree(TreeConfig(depth=2, fanout=4, redundancy=2)), 6, 2),
    ("fattree_k4", lambda: build_fattree(FatTreeConfig(k=4)), 6, 2),
    ("tree_d3f4", lambda: build_tree(TreeConfig(depth=3, fanout=4, redundancy=2)), 16, 4),
    ("fattree_k8", lambda: build_fattree(FatTreeConfig(k=8)), 32, 8),
    ("fattree_k16", lambda: build_fattree(FatTreeConfig(k=16)), 24, 6),
]
if QUICK:
    # Keep the two smallest cases plus a slimmed k=16 (same 1024-server
    # fabric, one small job) so CI still exercises the datacenter scale the
    # incremental work targets.
    CASES = CASES[:2] + [
        ("fattree_k16_lite", lambda: build_fattree(FatTreeConfig(k=16)), 4, 2),
    ]

REPEATS = 1 if QUICK else 3

# Churn microbench scale: (topology, flow population, churn events,
# same-block locality in server-id space).  The block equals one edge
# switch's server span (k/2), i.e. rack-local shuffle traffic — the regime
# locality-aware MapReduce placement produces and the one the incremental
# allocator targets: the sharing graph decomposes into rack-sized
# components, so a churn event dirties one rack, not the fabric.
if QUICK:
    CHURN = ("fattree_k8", lambda: build_fattree(FatTreeConfig(k=8)), 2_000, 60, 4)
else:
    CHURN = ("fattree_k16", lambda: build_fattree(FatTreeConfig(k=16)), 10_000, 150, 8)


def make_instance(builder, num_maps: int, num_reduces: int) -> TAAInstance:
    """One shuffle-heavy job on a fresh fabric, containers unplaced."""
    topo = builder()
    job = JobSpec(
        job_id=0,
        name="bench",
        shuffle_class=ShuffleClass.HEAVY,
        num_maps=num_maps,
        num_reduces=num_reduces,
        input_size=float(num_maps),
        shuffle_ratio=1.0,
        skew=0.0,
    )
    containers, map_ids, reduce_ids = [], [], []
    cid = 0
    for i in range(num_maps):
        containers.append(
            Container(cid, Resources(1.0, 0.0), TaskRef(0, TaskKind.MAP, i))
        )
        map_ids.append(cid)
        cid += 1
    for i in range(num_reduces):
        containers.append(
            Container(cid, Resources(1.0, 0.0), TaskRef(0, TaskKind.REDUCE, i))
        )
        reduce_ids.append(cid)
        cid += 1
    flows = build_flows(job, map_ids, reduce_ids, rng=np.random.default_rng(0))
    return TAAInstance(topo, containers, flows)


def placed_instance(builder, num_maps: int, num_reduces: int) -> TAAInstance:
    taa = make_instance(builder, num_maps, num_reduces)
    HitOptimizer(taa, HitConfig(seed=0)).random_initial_placement()
    taa.install_all_policies()
    return taa


def best_of(fn, repeats: int = REPEATS) -> float:
    """Best-of-N wall time in milliseconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, (time.perf_counter() - t0) * 1e3)
    return best


class FreshScalarCache:
    """Version-invalidated wrapper over :class:`ScalarPairCostCache`.

    The pre-vectorisation code built a fresh pair-cost cache per sweep and
    per fallback call, so unit costs were always priced against *current*
    switch loads.  A bare ``ScalarPairCostCache`` shared for the optimizer's
    lifetime would serve stale costs once loads change; this wrapper re-prices
    whenever the controller's load version moves, matching both the original
    behaviour and the shipped version-tracking ``PairCostCache``.
    """

    def __init__(self, taa: TAAInstance) -> None:
        self._taa = taa
        self._inner = ScalarPairCostCache(taa)
        self._version = taa.controller.load_version

    def refreshed(self) -> ScalarPairCostCache:
        version = self._taa.controller.load_version
        if version != self._version:
            self._inner = ScalarPairCostCache(self._taa)
            self._version = version
        return self._inner

    def unit_cost(self, a: int, b: int) -> float:
        return self.refreshed().unit_cost(a, b)


class scalar_kernels:
    """Context manager swapping the scalar reference kernels into place.

    Patches the three vectorised hot spots — the grading pass, the shared
    pair-cost cache and the stage-DAG DP — so ``HitOptimizer`` runs the
    pre-vectorisation code end to end.
    """

    def __enter__(self):
        self._pref = hit_mod.build_preference_matrix
        self._cache = hit_mod.PairCostCache
        self._dp = PolicyController._dag_best_path

        def scalar_pref(taa, container_ids=None, cache=None, previous=None):
            scalar_cache = (
                cache.refreshed() if isinstance(cache, FreshScalarCache) else None
            )
            return build_preference_matrix_scalar(
                taa, container_ids=container_ids, cache=scalar_cache
            )

        hit_mod.build_preference_matrix = scalar_pref
        hit_mod.PairCostCache = FreshScalarCache
        PolicyController._dag_best_path = (
            lambda self, src, dst, rate, enforce: dag_best_path_scalar(
                self, src, dst, rate, enforce
            )
        )
        return self

    def __exit__(self, *exc):
        hit_mod.build_preference_matrix = self._pref
        hit_mod.PairCostCache = self._cache
        PolicyController._dag_best_path = self._dp
        return False


def assert_equivalent(vec, ref) -> None:
    if not np.array_equal(np.isfinite(vec.cost), np.isfinite(ref.cost)):
        raise AssertionError("grading infeasibility masks diverged")
    finite = np.isfinite(ref.cost)
    if not np.allclose(vec.cost[finite], ref.cost[finite], rtol=0, atol=1e-9):
        raise AssertionError("grading costs diverged beyond 1e-9")


def bench_case(name, builder, num_maps, num_reduces) -> dict:
    taa = placed_instance(builder, num_maps, num_reduces)

    # Grading pass: one full preference-matrix build from a cold cache.
    vec_ms = best_of(
        lambda: build_preference_matrix(taa, cache=PairCostCache(taa))
    )
    scalar_ms = best_of(
        lambda: build_preference_matrix_scalar(taa, cache=ScalarPairCostCache(taa))
    )
    assert_equivalent(
        build_preference_matrix(taa, cache=PairCostCache(taa)),
        build_preference_matrix_scalar(taa),
    )

    # End-to-end initial wave (grading + matching + rerouting per sweep).
    def run_wave():
        inst = make_instance(builder, num_maps, num_reduces)
        return HitOptimizer(inst, HitConfig(seed=0)).optimize_initial_wave()

    wave_results = {}
    wave_vec_ms = best_of(lambda: wave_results.__setitem__("vec", run_wave()))
    with scalar_kernels():
        wave_scalar_ms = best_of(
            lambda: wave_results.__setitem__("scalar", run_wave())
        )
    if wave_results["vec"].final_cost != wave_results["scalar"].final_cost:
        raise AssertionError("initial-wave results diverged between kernels")

    topo = taa.topology
    case = {
        "case": name,
        "servers": len(topo.server_ids),
        "switches": len(topo.switch_ids),
        "containers": num_maps + num_reduces,
        "flows": len(taa.flows),
        "grading": {
            "scalar_ms": round(scalar_ms, 3),
            "vector_ms": round(vec_ms, 3),
            "speedup": round(scalar_ms / vec_ms, 2),
        },
        "initial_wave": {
            "scalar_ms": round(wave_scalar_ms, 3),
            "vector_ms": round(wave_vec_ms, 3),
            "speedup": round(wave_scalar_ms / wave_vec_ms, 2),
        },
    }
    return case


def bench_churn(name, builder, n_flows, events, block) -> dict:
    """Flow-churn microbench: incremental vs full max-min reallocation.

    Populates the fabric with ``n_flows`` block-local flows (rack-local
    multi-tenant traffic: endpoints drawn from the same ``block`` consecutive
    servers, so the flow/resource sharing graph decomposes into rack-sized
    components),
    then replays an identical remove+add churn sequence through both
    allocator modes, recomputing rates after every event.  Asserts the two
    final states are bit-identical before reporting the speedup.
    """
    topo = builder()
    servers = list(topo.server_ids)
    rng = np.random.default_rng(0)

    def sample_path():
        base = int(rng.integers(len(servers) // block)) * block
        a, b = rng.choice(block, size=2, replace=False)
        return topo.shortest_path(servers[base + int(a)], servers[base + int(b)])

    initial = [
        (fid, sample_path(), float(rng.uniform(1.0, 50.0)))
        for fid in range(n_flows)
    ]
    removals = rng.permutation(n_flows)[:events]
    arrivals = [
        (n_flows + e, sample_path(), float(rng.uniform(1.0, 50.0)))
        for e in range(events)
    ]

    def run_mode(incremental: bool) -> tuple[FlowNetwork, float]:
        net = FlowNetwork(topo, incremental=incremental)
        for fid, path, size in initial:
            net.add_flow(fid, path, size)
        net.recompute_rates()
        t0 = time.perf_counter()
        for e in range(events):
            net.remove_flow(int(removals[e]))
            fid, path, size = arrivals[e]
            net.add_flow(fid, path, size)
            net.recompute_rates()
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        return net, elapsed_ms

    inc_net, inc_ms = run_mode(True)
    full_net, full_ms = run_mode(False)

    inc_flows = {f.flow_id: f.rate for f in inc_net.active_flows}
    full_flows = {f.flow_id: f.rate for f in full_net.active_flows}
    fids = sorted(full_flows)
    identical = (
        list(inc_flows) == list(full_flows)
        and np.array([inc_flows[f] for f in fids]).tobytes()
        == np.array([full_flows[f] for f in fids]).tobytes()
        and inc_net.resource_rates().tobytes()
        == full_net.resource_rates().tobytes()
    )
    if not identical:
        raise AssertionError("incremental and full churn states diverged")
    return {
        "case": name,
        "flows": n_flows,
        "events": events,
        "full_ms": round(full_ms, 3),
        "incremental_ms": round(inc_ms, 3),
        "speedup": round(full_ms / inc_ms, 2),
        "bit_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"),
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    report = {
        "benchmark": "hotpath",
        "scale": "quick" if QUICK else "full",
        "repeats": REPEATS,
        "note": (
            "scalar_ms times the preserved pre-vectorisation reference "
            "(repro.core.scalar_ref); vector_ms times the shipped NumPy "
            "kernels. Best-of-N wall time."
        ),
        "cases": [],
    }
    for name, builder, num_maps, num_reduces in CASES:
        case = bench_case(name, builder, num_maps, num_reduces)
        report["cases"].append(case)
        print(
            f"{name:12s} servers={case['servers']:4d} "
            f"grading {case['grading']['scalar_ms']:9.2f} -> "
            f"{case['grading']['vector_ms']:8.2f} ms "
            f"({case['grading']['speedup']:5.1f}x)   "
            f"wave {case['initial_wave']['scalar_ms']:9.2f} -> "
            f"{case['initial_wave']['vector_ms']:8.2f} ms "
            f"({case['initial_wave']['speedup']:5.1f}x)"
        )

    churn = bench_churn(*CHURN)
    report["churn"] = churn
    print(
        f"churn {churn['case']} flows={churn['flows']} "
        f"events={churn['events']}: full {churn['full_ms']:.1f} ms -> "
        f"incremental {churn['incremental_ms']:.1f} ms "
        f"({churn['speedup']:.1f}x, bit-identical)"
    )

    largest = max(report["cases"], key=lambda c: c["servers"])
    report["largest_case"] = largest["case"]
    report["largest_grading_speedup"] = largest["grading"]["speedup"]

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
