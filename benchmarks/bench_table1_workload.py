"""Table 1: the benchmark mix of the evaluation workload.

Regenerates the job-type proportions from a large sampled workload and
checks them against the paper's 40/20/40 class split.
"""

from collections import Counter

from repro.analysis import format_table
from repro.mapreduce import PUMA_BENCHMARKS, ShuffleClass, WorkloadGenerator


def sample_mix(num_jobs: int = 2000, seed: int = 0) -> dict[str, float]:
    generator = WorkloadGenerator(seed=seed)
    jobs = generator.make_workload(num_jobs)
    counts = Counter(j.name.rsplit("-", 1)[0] for j in jobs)
    return {name: counts.get(name, 0) / num_jobs for name in
            sorted(b.name for b in PUMA_BENCHMARKS)}


def test_table1_benchmark_mix(benchmark):
    mix = benchmark.pedantic(sample_mix, rounds=1, iterations=1)
    expected = {b.name: b.proportion for b in PUMA_BENCHMARKS}
    rows = [
        (name, expected[name], mix[name])
        for name in sorted(expected)
    ]
    print()
    print(format_table(
        ("benchmark", "paper proportion", "sampled proportion"),
        rows,
        title="== Table 1: benchmark mix ==",
    ))
    # Every sampled proportion within 3 points of Table 1.
    for name, paper, sampled in rows:
        assert abs(paper - sampled) < 0.03, name
    # Class totals: 40/20/40.
    generator = WorkloadGenerator(seed=1)
    jobs = generator.make_workload(2000)
    per_class = Counter(j.shuffle_class for j in jobs)
    assert abs(per_class[ShuffleClass.HEAVY] / 2000 - 0.40) < 0.04
    assert abs(per_class[ShuffleClass.MEDIUM] / 2000 - 0.20) < 0.04
    assert abs(per_class[ShuffleClass.LIGHT] / 2000 - 0.40) < 0.04
