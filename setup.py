"""Shim for environments without the `wheel` package.

The canonical metadata lives in pyproject.toml; this file only exists so that
``pip install -e .`` can fall back to the legacy setuptools editable install
when PEP-660 wheels cannot be built (no `wheel` available offline).
"""

from setuptools import setup

setup()
