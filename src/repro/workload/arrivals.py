"""Seeded open-loop arrival processes over multi-tenant job mixes.

A batch workload fixes *which* jobs run; an open-loop workload fixes the
*offered load* and lets the cluster decide what it can absorb.  This module
samples per-tenant arrival streams — each tenant has its own rate, weight
and job-size mix — merges them into one deterministic job list, and stamps
every :class:`~repro.mapreduce.job.JobSpec` with its tenant.  Four profiles
cover the shapes the scheduling literature evaluates against:

``poisson``
    Homogeneous Poisson process at ``rate x rate_multiplier`` per tenant.
``diurnal``
    Inhomogeneous Poisson with a sinusoidal day/night rate envelope
    (sampled by thinning, so the draw count stays seed-stable).
``bursty``
    On/off modulated Poisson: exponential quiet/burst episodes, with the
    burst rate inflated by ``burst_factor`` over the quiet rate while the
    *average* rate stays the tenant's nominal rate.
``trace``
    Replay of explicit ``(time, tenant)`` arrival instants (job bodies are
    still sampled from the tenant's mix) — the hook for replaying cluster
    traces.

Everything is keyed off explicit seeds: two calls with equal config and
seed return equal job lists, element for element, which is what the
overload contract's byte-identical-rerun leg stands on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..mapreduce.job import JobSpec
from ..mapreduce.workload import PUMA_BENCHMARKS, WorkloadGenerator

__all__ = [
    "ARRIVAL_PROFILES",
    "TenantSpec",
    "ArrivalConfig",
    "generate_arrivals",
    "estimate_saturation_rate",
    "load_arrival_trace",
    "save_arrival_trace",
]

#: Supported arrival profiles (CLI choices validate against this).
ARRIVAL_PROFILES: tuple[str, ...] = ("poisson", "diurnal", "bursty", "trace")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the shared cluster.

    ``rate`` is the tenant's nominal arrival rate in jobs per simulated
    time unit (before the config-level ``rate_multiplier``).  ``weight``
    feeds the admission layer's weighted-fair dequeue — it does not change
    what the tenant *submits*, only how its queue drains.  The size mix is
    the tenant's own window into the PUMA job sampler.
    """

    tenant_id: int
    rate: float = 1.0
    weight: float = 1.0
    input_size_range: tuple[float, float] = (8.0, 32.0)

    def __post_init__(self) -> None:
        if self.tenant_id < 0:
            raise ValueError("tenant_id must be >= 0")
        if self.rate <= 0:
            raise ValueError(f"tenant {self.tenant_id}: rate must be > 0")
        if self.weight <= 0:
            raise ValueError(f"tenant {self.tenant_id}: weight must be > 0")
        lo, hi = self.input_size_range
        if lo <= 0 or lo > hi:
            raise ValueError(
                f"tenant {self.tenant_id}: invalid input_size_range"
            )


@dataclass(frozen=True)
class ArrivalConfig:
    """One open-loop arrival plan.

    ``duration`` bounds the *submission* window, not the simulation: jobs
    stop arriving at ``duration`` and the cluster then drains its backlog.
    ``rate_multiplier`` scales every tenant's rate uniformly — the knob the
    overload campaign sweeps through saturation.
    """

    tenants: tuple[TenantSpec, ...] = (TenantSpec(0),)
    profile: str = "poisson"
    duration: float = 10.0
    rate_multiplier: float = 1.0
    #: Diurnal profile: rate envelope ``1 + amplitude * sin(2 pi t/period)``.
    diurnal_period: float = 8.0
    diurnal_amplitude: float = 0.8
    #: Bursty profile: mean episode lengths and the on/off rate contrast.
    burst_cycle: float = 4.0
    burst_fraction: float = 0.25
    burst_factor: float = 3.0
    #: Trace profile: explicit (time, tenant_id) arrival instants.
    trace: tuple[tuple[float, int], ...] = ()

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("need at least one tenant")
        ids = [t.tenant_id for t in self.tenants]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate tenant ids: {sorted(ids)}")
        if self.profile not in ARRIVAL_PROFILES:
            raise ValueError(
                f"unknown profile {self.profile!r}; "
                f"choose from {ARRIVAL_PROFILES}"
            )
        if self.duration <= 0:
            raise ValueError("duration must be > 0")
        if self.rate_multiplier <= 0:
            raise ValueError("rate_multiplier must be > 0")
        if self.diurnal_period <= 0 or not 0 <= self.diurnal_amplitude < 1:
            raise ValueError("invalid diurnal envelope")
        if (
            self.burst_cycle <= 0
            or not 0 < self.burst_fraction < 1
            or self.burst_factor <= 1
        ):
            raise ValueError("invalid burst envelope")
        if self.profile == "trace" and not self.trace:
            raise ValueError("trace profile needs explicit arrivals")
        for time, tenant in self.trace:
            if time < 0:
                raise ValueError(f"trace arrival at negative time {time}")
            if tenant not in set(ids):
                raise ValueError(f"trace references unknown tenant {tenant}")

    def tenant(self, tenant_id: int) -> TenantSpec:
        for spec in self.tenants:
            if spec.tenant_id == tenant_id:
                return spec
        raise KeyError(f"unknown tenant {tenant_id}")


def _tenant_rng(seed: int, tenant_id: int, stream: int) -> np.random.Generator:
    """Independent, deterministic stream per (seed, tenant, purpose)."""
    return np.random.default_rng([seed, tenant_id, stream, 0xA221])


def _poisson_times(
    rng: np.random.Generator, rate: float, duration: float
) -> list[float]:
    times: list[float] = []
    t = float(rng.exponential(1.0 / rate))
    while t < duration:
        times.append(t)
        t += float(rng.exponential(1.0 / rate))
    return times


def _thinned_times(
    rng: np.random.Generator,
    peak_rate: float,
    duration: float,
    accept_prob,
) -> list[float]:
    """Inhomogeneous Poisson via Lewis-Shedler thinning.

    The candidate process runs at the envelope's peak; each candidate is
    kept with probability ``rate(t)/peak``.  One uniform draw per candidate
    keeps the stream length (and thus every later draw) seed-stable.
    """
    times: list[float] = []
    t = float(rng.exponential(1.0 / peak_rate))
    while t < duration:
        if float(rng.uniform()) < accept_prob(t):
            times.append(t)
        t += float(rng.exponential(1.0 / peak_rate))
    return times


def _burst_windows(
    rng: np.random.Generator, config: ArrivalConfig
) -> list[tuple[float, float]]:
    """Alternating quiet/burst episodes covering [0, duration)."""
    mean_on = config.burst_cycle * config.burst_fraction
    mean_off = config.burst_cycle - mean_on
    windows: list[tuple[float, float]] = []
    t = 0.0
    while t < config.duration:
        t += float(rng.exponential(mean_off))
        start = t
        t += float(rng.exponential(mean_on))
        if start < config.duration:
            windows.append((start, min(t, config.duration)))
    return windows


def _tenant_arrival_times(
    config: ArrivalConfig, tenant: TenantSpec, seed: int
) -> list[float]:
    rate = tenant.rate * config.rate_multiplier
    rng = _tenant_rng(seed, tenant.tenant_id, stream=0)
    if config.profile == "poisson":
        return _poisson_times(rng, rate, config.duration)
    if config.profile == "diurnal":
        peak = rate * (1.0 + config.diurnal_amplitude)

        def envelope(t: float) -> float:
            level = rate * (
                1.0
                + config.diurnal_amplitude
                * np.sin(2.0 * np.pi * t / config.diurnal_period)
            )
            return level / peak

        return _thinned_times(rng, peak, config.duration, envelope)
    if config.profile == "bursty":
        windows = _burst_windows(rng, config)
        # Split the nominal rate so the time-average stays `rate`:
        # rate = f * on + (1-f) * off with on = factor * off.
        f = config.burst_fraction
        off_rate = rate / (f * config.burst_factor + (1.0 - f))
        on_rate = off_rate * config.burst_factor

        def in_burst(t: float) -> bool:
            return any(a <= t < b for a, b in windows)

        return _thinned_times(
            rng,
            on_rate,
            config.duration,
            lambda t: 1.0 if in_burst(t) else off_rate / on_rate,
        )
    # trace: explicit instants for this tenant, clipped to the window.
    return sorted(
        time
        for time, tenant_id in config.trace
        if tenant_id == tenant.tenant_id and time < config.duration
    )


def generate_arrivals(config: ArrivalConfig, seed: int = 0) -> list[JobSpec]:
    """Sample the full multi-tenant arrival stream as one sorted job list.

    Per-tenant streams are sampled independently (so adding a tenant never
    perturbs another tenant's draws), merged by ``(time, tenant_id)``, and
    re-numbered: job ids are globally unique and increase in arrival order,
    which keeps downstream artifacts (traces, fingerprints) canonical.
    """
    per_tenant: list[tuple[float, int, JobSpec]] = []
    for tenant in config.tenants:
        times = _tenant_arrival_times(config, tenant, seed)
        sampler = WorkloadGenerator(
            seed=_tenant_rng(seed, tenant.tenant_id, stream=1),
            benchmarks=PUMA_BENCHMARKS,
            input_size_range=tenant.input_size_range,
        )
        for t in times:
            per_tenant.append((t, tenant.tenant_id, sampler.make_job(submit_time=t)))
    per_tenant.sort(key=lambda item: (item[0], item[1]))
    jobs: list[JobSpec] = []
    for k, (t, tenant_id, spec) in enumerate(per_tenant):
        base = spec.name.rsplit("-", 1)[0]
        jobs.append(
            replace(
                spec,
                job_id=k,
                name=f"{base}-{k}",
                submit_time=t,
                tenant=tenant_id,
            )
        )
    return jobs


def estimate_saturation_rate(
    num_slots: int,
    tenants: Sequence[TenantSpec] = (TenantSpec(0),),
    map_rate: float = 2.0,
    reduce_rate: float = 2.0,
    mean_shuffle_ratio: float = 0.45,
) -> float:
    """Rough aggregate arrival rate (jobs/time) that saturates the cluster.

    Service demand of an average job is its total map compute
    (``input/map_rate``) plus reduce compute (``shuffle/reduce_rate``) in
    slot-time units; ``num_slots`` slots serve that work in parallel at
    best.  This deliberately ignores queueing at the wave barrier and the
    reduce containers held for the whole job, so the true knee sits
    *below* this estimate — campaigns that want guaranteed overload
    multiply it by >= 1.5.
    """
    if num_slots < 1:
        raise ValueError("num_slots must be >= 1")
    mean_input = float(
        np.mean(
            [0.5 * (t.input_size_range[0] + t.input_size_range[1]) for t in tenants]
        )
    )
    per_job = mean_input / map_rate + mean_input * mean_shuffle_ratio / reduce_rate
    if per_job <= 0:
        raise ValueError("degenerate job mix: zero service demand")
    return num_slots / per_job


# ----------------------------------------------------------- trace round-trip
def save_arrival_trace(
    path: str | Path, arrivals: Iterable[tuple[float, int]]
) -> None:
    """Persist (time, tenant) instants as JSON lines."""
    lines = [
        json.dumps({"time": float(t), "tenant": int(tenant)})
        for t, tenant in arrivals
    ]
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_arrival_trace(path: str | Path) -> tuple[tuple[float, int], ...]:
    """Inverse of :func:`save_arrival_trace`; blank lines are skipped."""
    out: list[tuple[float, int]] = []
    for number, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"arrival trace line {number}: invalid JSON") from exc
        out.append((float(record["time"]), int(record["tenant"])))
    return tuple(out)
