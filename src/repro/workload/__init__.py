"""Open-loop (online) workload plane.

Everything the batch evaluation abstracts away lives here: *who* submits
jobs (tenants with weights and size mixes), *when* they arrive (seeded
Poisson, diurnal, bursty and trace-driven profiles), and *what happens when
the cluster cannot absorb them* (per-tenant admission queues, pluggable
admission policies, backpressure).  The engine consumes the plane through
two narrow seams — a list of :class:`~repro.mapreduce.job.JobSpec` with
tenant stamps and submit times, and a
:class:`~repro.workload.admission.AdmissionController` configured via
``SimulationConfig.admission`` — so batch-mode runs remain byte-identical.

The machine-checkable **overload contract** (every submitted job is exactly
one of completed / queued / rejected-with-reason, no silent drops, bounded
queues when bounded, no sim-time stall, byte-identical reruns) is graded by
:mod:`repro.experiments.online`; ``docs/workload.md`` spells it out.
"""

from .arrivals import (
    ARRIVAL_PROFILES,
    ArrivalConfig,
    TenantSpec,
    estimate_saturation_rate,
    generate_arrivals,
    load_arrival_trace,
    save_arrival_trace,
)
from .admission import (
    ADMISSION_POLICIES,
    REJECT_LOAD_SHED,
    REJECT_QUEUE_FULL,
    REJECT_THROTTLED,
    AdmissionConfig,
    AdmissionController,
)

__all__ = [
    "ARRIVAL_PROFILES",
    "ArrivalConfig",
    "TenantSpec",
    "estimate_saturation_rate",
    "generate_arrivals",
    "load_arrival_trace",
    "save_arrival_trace",
    "ADMISSION_POLICIES",
    "AdmissionConfig",
    "AdmissionController",
    "REJECT_LOAD_SHED",
    "REJECT_QUEUE_FULL",
    "REJECT_THROTTLED",
]
