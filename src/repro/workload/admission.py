"""Admission control and backpressure for the open-loop workload plane.

The controller sits between JOB_ARRIVAL events and the engine's slot-based
job start.  Every arriving job meets exactly one of three fates, and each
is recorded — the accounting half of the overload contract:

* **admitted to a per-tenant queue**, later started by the engine when
  slots free up (weighted-fair across tenants);
* **rejected** with a machine-readable reason code
  (:data:`REJECT_QUEUE_FULL`, :data:`REJECT_LOAD_SHED`,
  :data:`REJECT_THROTTLED`);
* **left queued** when the run ends before the backlog drains (still
  accounted, never silently dropped).

Four pluggable policies decide rejections:

``admit-all``
    Never rejects; queues grow without bound (the degenerate baseline).
``queue-bound``
    Rejects when the tenant's queue already holds ``queue_bound`` jobs —
    the bound the contract's "no unbounded growth" leg checks.
``load-threshold``
    Rejects while cluster occupancy is at or above ``load_threshold``
    (instantaneous load shedding, no per-tenant memory).
``token-bucket``
    Per-tenant token bucket (``bucket_rate`` tokens/time, ``bucket_depth``
    burst): sustained overload is throttled, short bursts pass.

Queues drain in weighted-fair order: each tenant carries a virtual-time
counter charged ``slots/weight`` per admitted job (slot demand, not job
count, so a tenant of many small jobs and a tenant of few large ones get
comparable shares).  The non-empty tenant with the smallest counter is
served next; ties break on tenant id.  Deterministic by construction — no
RNG anywhere in this module.

Backpressure is a hysteresis latch over two signals the engine supplies:
cluster occupancy and parked-flow count (flows with no live route under
faults).  While latched, the engine defers queue drain (grants) entirely —
it does not thrash the optimizer placing jobs that would immediately
contend — and releases once pressure falls below the low watermark.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..mapreduce.job import JobSpec

__all__ = [
    "ADMISSION_POLICIES",
    "REJECT_QUEUE_FULL",
    "REJECT_LOAD_SHED",
    "REJECT_THROTTLED",
    "AdmissionConfig",
    "AdmissionController",
]

#: Pluggable policy names (CLI choices validate against this).
ADMISSION_POLICIES: tuple[str, ...] = (
    "admit-all",
    "queue-bound",
    "load-threshold",
    "token-bucket",
)

#: Rejection reason codes — the accountable part of "no silent drops".
REJECT_QUEUE_FULL = "queue-full"
REJECT_LOAD_SHED = "load-shed"
REJECT_THROTTLED = "throttled"


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission policy plus backpressure watermarks.

    ``tenant_weights`` maps tenant ids to fair-share weights (unlisted
    tenants default to 1.0); a tuple of pairs so the config stays hashable
    and canonically serialisable.
    """

    policy: str = "admit-all"
    #: queue-bound policy: max *queued* (not running) jobs per tenant.
    queue_bound: int | None = None
    #: load-threshold policy: occupancy at or above this rejects.
    load_threshold: float = 0.95
    #: token-bucket policy: refill rate (tokens per simulated time unit)
    #: and burst depth; one job costs one token.
    bucket_rate: float = 1.0
    bucket_depth: float = 4.0
    #: Backpressure latch: defer grants at/above high, release below low.
    high_watermark: float = 0.98
    low_watermark: float = 0.85
    #: Parked flows saturating the pressure signal to 1.0.
    parked_pressure: int = 8
    tenant_weights: tuple[tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        if self.policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {self.policy!r}; "
                f"choose from {ADMISSION_POLICIES}"
            )
        if self.policy == "queue-bound" and self.queue_bound is None:
            raise ValueError("queue-bound policy needs an explicit queue_bound")
        if self.queue_bound is not None and self.queue_bound < 1:
            raise ValueError("queue_bound must be >= 1")
        if not 0.0 < self.load_threshold <= 1.0:
            raise ValueError("load_threshold must be in (0, 1]")
        if self.bucket_rate <= 0 or self.bucket_depth < 1:
            raise ValueError("token bucket needs rate > 0 and depth >= 1")
        if not 0.0 < self.low_watermark <= self.high_watermark <= 1.0:
            raise ValueError(
                "watermarks must satisfy 0 < low <= high <= 1"
            )
        if self.parked_pressure < 1:
            raise ValueError("parked_pressure must be >= 1")
        for tenant_id, weight in self.tenant_weights:
            if tenant_id < 0 or weight <= 0:
                raise ValueError(
                    f"bad tenant weight ({tenant_id}, {weight})"
                )


@dataclass
class _TenantState:
    queue: deque
    weight: float
    vtime: float = 0.0
    tokens: float = 0.0
    token_time: float = 0.0
    submitted: int = 0
    admitted: int = 0
    started: int = 0
    max_queue_len: int = 0
    rejected: dict = None  # reason -> count

    def __post_init__(self) -> None:
        if self.rejected is None:
            self.rejected = {}


class AdmissionController:
    """Per-tenant admission queues with pluggable policies.

    The engine drives it with four calls: :meth:`offer` at every
    JOB_ARRIVAL, :meth:`peek`/:meth:`commit` in its admission loop, and
    :meth:`drain_queued` at end of run.  All state transitions are pure
    functions of the call sequence — no RNG, no wall clock — so a rerun
    with the same event stream reproduces the controller bit for bit.
    """

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self._weights = dict(config.tenant_weights)
        self._tenants: dict[int, _TenantState] = {}
        #: Backpressure latch state plus how often drain was deferred.
        self.deferring = False
        self.deferrals = 0

    # ------------------------------------------------------------ tenant state
    def _tenant(self, tenant_id: int) -> _TenantState:
        state = self._tenants.get(tenant_id)
        if state is None:
            state = _TenantState(
                queue=deque(),
                weight=float(self._weights.get(tenant_id, 1.0)),
                tokens=self.config.bucket_depth,
            )
            self._tenants[tenant_id] = state
        return state

    # --------------------------------------------------------------- admission
    def offer(self, spec: JobSpec, now: float, occupancy: float) -> str | None:
        """Decide one arrival: ``None`` = queued, else a rejection reason."""
        state = self._tenant(spec.tenant)
        state.submitted += 1
        reason = self._decide(state, now, occupancy)
        if reason is not None:
            state.rejected[reason] = state.rejected.get(reason, 0) + 1
            return reason
        state.admitted += 1
        state.queue.append(spec)
        state.max_queue_len = max(state.max_queue_len, len(state.queue))
        return None

    def _decide(
        self, state: _TenantState, now: float, occupancy: float
    ) -> str | None:
        policy = self.config.policy
        if policy == "admit-all":
            return None
        if policy == "queue-bound":
            assert self.config.queue_bound is not None
            if len(state.queue) >= self.config.queue_bound:
                return REJECT_QUEUE_FULL
            return None
        if policy == "load-threshold":
            if occupancy >= self.config.load_threshold:
                return REJECT_LOAD_SHED
            return None
        # token-bucket
        elapsed = now - state.token_time
        state.token_time = now
        state.tokens = min(
            self.config.bucket_depth,
            state.tokens + elapsed * self.config.bucket_rate,
        )
        if state.tokens >= 1.0:
            state.tokens -= 1.0
            return None
        return REJECT_THROTTLED

    # ------------------------------------------------------------- fair drain
    def peek(self) -> JobSpec | None:
        """Next job in weighted-fair order, without removing it."""
        best: tuple[float, int] | None = None
        for tenant_id in sorted(self._tenants):
            state = self._tenants[tenant_id]
            if not state.queue:
                continue
            key = (state.vtime, tenant_id)
            if best is None or key < best:
                best = key
        if best is None:
            return None
        return self._tenants[best[1]].queue[0]

    def commit(self, spec: JobSpec) -> None:
        """Remove a peeked job and charge its tenant's virtual time."""
        state = self._tenants[spec.tenant]
        if not state.queue or state.queue[0] is not spec:
            raise ValueError(
                f"commit out of order: job {spec.job_id} is not the "
                f"fair-share head of tenant {spec.tenant}"
            )
        state.queue.popleft()
        state.started += 1
        cost = spec.num_maps + spec.num_reduces
        state.vtime += cost / state.weight

    # ------------------------------------------------------------ backpressure
    def pressure(self, occupancy: float, parked: int) -> float:
        """Combined pressure signal in [0, 1]."""
        parked_component = min(1.0, parked / self.config.parked_pressure)
        return max(occupancy, parked_component)

    def defer(self, occupancy: float, parked: int) -> bool:
        """Update the hysteresis latch; True = hold back queue drain."""
        signal = self.pressure(occupancy, parked)
        if self.deferring:
            if signal < self.config.low_watermark:
                self.deferring = False
        elif signal >= self.config.high_watermark:
            self.deferring = True
        if self.deferring:
            self.deferrals += 1
        return self.deferring

    # -------------------------------------------------------------- accounting
    def queued_jobs(self) -> list[JobSpec]:
        """Jobs still waiting, in deterministic (tenant, FIFO) order."""
        out: list[JobSpec] = []
        for tenant_id in sorted(self._tenants):
            out.extend(self._tenants[tenant_id].queue)
        return out

    def drain_queued(self) -> list[JobSpec]:
        """Remove and return every queued job (end-of-run accounting)."""
        out = self.queued_jobs()
        for state in self._tenants.values():
            state.queue.clear()
        return out

    def queue_depth(self, tenant_id: int | None = None) -> int:
        if tenant_id is not None:
            state = self._tenants.get(tenant_id)
            return len(state.queue) if state is not None else 0
        return sum(len(s.queue) for s in self._tenants.values())

    def counters(self) -> dict[str, int]:
        """Flat ``admission.*`` counters (sorted keys, plain ints)."""
        out: dict[str, int] = {
            "admission.deferrals": self.deferrals,
        }
        total_submitted = total_admitted = total_rejected = 0
        for tenant_id in sorted(self._tenants):
            state = self._tenants[tenant_id]
            prefix = f"admission.tenant.{tenant_id}"
            out[f"{prefix}.submitted"] = state.submitted
            out[f"{prefix}.admitted"] = state.admitted
            out[f"{prefix}.started"] = state.started
            out[f"{prefix}.queued"] = len(state.queue)
            out[f"{prefix}.max_queue_len"] = state.max_queue_len
            rejected = sum(state.rejected.values())
            out[f"{prefix}.rejected"] = rejected
            for reason in sorted(state.rejected):
                out[f"{prefix}.rejected.{reason}"] = state.rejected[reason]
            total_submitted += state.submitted
            total_admitted += state.admitted
            total_rejected += rejected
        out["admission.submitted"] = total_submitted
        out["admission.admitted"] = total_admitted
        out["admission.rejected"] = total_rejected
        out["admission.queued"] = self.queue_depth()
        return out

    def tenant_rows(self) -> list[dict[str, object]]:
        """Per-tenant rows for the CLI's standard table."""
        rows: list[dict[str, object]] = []
        for tenant_id in sorted(self._tenants):
            state = self._tenants[tenant_id]
            rows.append(
                {
                    "tenant": tenant_id,
                    "weight": state.weight,
                    "submitted": state.submitted,
                    "admitted": state.admitted,
                    "started": state.started,
                    "queued": len(state.queue),
                    "max_queue": state.max_queue_len,
                    "rejected": sum(state.rejected.values()),
                }
            )
        return rows

    def max_queue_len(self) -> int:
        """Peak queue length across tenants (bound-compliance check)."""
        if not self._tenants:
            return 0
        return max(s.max_queue_len for s in self._tenants.values())

    def provenance_context(self, tenant_id: int | None = None) -> dict[str, object]:
        """Queue/backpressure state for a decision record — pure read.

        Attached to admission-verdict records by the engine so ``repro
        explain`` can show *why* a job was rejected or held (policy, the
        tenant's queue depth against its bound, and the defer latch)."""
        return {
            "policy": self.config.policy,
            "queue_depth": self.queue_depth(tenant_id),
            "total_queued": self.queue_depth(),
            "queue_bound": self.config.queue_bound,
            "deferring": self.deferring,
        }
