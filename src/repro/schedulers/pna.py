"""Probabilistic Network-Aware scheduler baseline (Shen et al., CLUSTER'16).

The paper's strongest competitor: a transmission-cost-based placement that
*does* consult the network topology and link bandwidth, but with the two
simplifying assumptions the paper criticises (Sections 7.3-7.4):

1. **static cost** — the cost between two nodes is a fixed function of the
   topology (hop count weighted by nominal bandwidth), never of current load;
2. **single fixed path** — each flow is assumed to follow the one static
   shortest route; alternative equal-cost paths are invisible.

Placement itself is probabilistic: a Reduce task is assigned to server ``s``
with probability inversely proportional to its expected transmission cost
``sum_m size(m -> r) * static_cost(server(m), s)``, which load-balances
placements without ever reacting to actual congestion.  Map tasks are placed
by input locality (node-local replica first, then rack-local, then the
cheapest server by static cost) — this is why PNA beats Hit-Scheduler on the
*map* phase in Figure 6(b) while losing on shuffle-dominated totals.
"""

from __future__ import annotations

import numpy as np

from ..mapreduce.job import JobSpec
from ..obs.provenance import task_label
from .base import Scheduler, SchedulingContext

__all__ = ["PNAScheduler"]


class PNAScheduler(Scheduler):
    """Probabilistic placement on static network costs."""

    name = "pna"
    network_aware = False  # consults topology but never installs policies

    def __init__(self, beta: float = 16.0, seed: int = 0) -> None:
        """``beta`` sharpens the inverse-cost sampling distribution
        (``p(s) ∝ cost(s)**-beta``); larger values approach greedy."""
        if beta < 0:
            raise ValueError("beta must be >= 0")
        self.beta = beta
        self._rng = np.random.default_rng(seed)
        self._cost_cache: dict[tuple[int, int, int], float] = {}

    # ------------------------------------------------------------ static cost
    def static_cost(self, ctx: SchedulingContext, a: int, b: int) -> float:
        """Fixed node-pair cost: switches on the deterministic shortest path.

        Matches the paper's description of PNA ("simply decided by the number
        of switches it will traverse").  Static by definition, so memoised
        per topology and unordered pair.
        """
        if a == b:
            return 0.0
        topo = ctx.taa.topology
        key = (id(topo), a, b) if a < b else (id(topo), b, a)
        cached = self._cost_cache.get(key)
        if cached is None:
            path = topo.shortest_path(a, b)
            cached = float(len(topo.switches_on_path(path)))
            self._cost_cache[key] = cached
        return cached

    # -------------------------------------------------------------- placement
    def place_initial_wave(
        self,
        ctx: SchedulingContext,
        job: JobSpec,
        map_containers: list[int],
        reduce_containers: list[int],
    ) -> None:
        self._place_maps(ctx, job, map_containers)
        self._place_reduces(ctx, reduce_containers)

    def place_map_wave(
        self,
        ctx: SchedulingContext,
        job: JobSpec,
        map_containers: list[int],
    ) -> None:
        self._place_maps(ctx, job, map_containers)

    # ------------------------------------------------------------------ maps
    def _place_maps(
        self, ctx: SchedulingContext, job: JobSpec, map_containers: list[int]
    ) -> None:
        cluster = ctx.taa.cluster
        for cid in map_containers:
            container = cluster.container(cid)
            task = container.task
            replicas: tuple[int, ...] = ()
            if ctx.hdfs is not None and task is not None:
                blocks = ctx.hdfs.blocks_of(job.job_id)
                if task.index < len(blocks):
                    replicas = blocks[task.index].replicas
            sid, tier = self._map_target(ctx, cid, replicas)
            cluster.place(cid, sid)
            if ctx.provenance is not None and task is not None:
                self.emit_placement(
                    ctx,
                    tier,
                    job_id=job.job_id,
                    task=task_label(task.kind, task.index),
                    chosen=sid,
                    replicas=list(replicas),
                )

    def _map_target(
        self, ctx: SchedulingContext, cid: int, replicas: tuple[int, ...]
    ) -> tuple[int, str]:
        """Pick a map server; also names the locality tier that won (the
        provenance reason code — ``node-local``/``rack-local``/
        ``static-min-cost``)."""
        cluster = ctx.taa.cluster
        # 1. node-local replica with room.
        for sid in replicas:
            if cluster.fits(cid, sid):
                return sid, "node-local"
        # 2. rack-local server with room.
        if ctx.hdfs is not None and replicas:
            replica_racks = {ctx.hdfs.rack_of(s) for s in replicas}
            for sid in cluster.server_ids:
                if ctx.hdfs.rack_of(sid) in replica_racks and cluster.fits(cid, sid):
                    return sid, "rack-local"
        # 3. cheapest feasible server by static cost to the nearest replica.
        best_sid, best_cost = None, float("inf")
        for sid in cluster.server_ids:
            if not cluster.fits(cid, sid):
                continue
            cost = (
                min(self.static_cost(ctx, sid, r) for r in replicas)
                if replicas
                else 0.0
            )
            if cost < best_cost:
                best_cost, best_sid = cost, sid
        if best_sid is None:
            raise RuntimeError(f"PNA: no server can host map container {cid}")
        return best_sid, "static-min-cost"

    # --------------------------------------------------------------- reduces
    def _place_reduces(
        self, ctx: SchedulingContext, reduce_containers: list[int]
    ) -> None:
        cluster = ctx.taa.cluster
        for cid in reduce_containers:
            feasible = [s for s in cluster.server_ids if cluster.fits(cid, s)]
            if not feasible:
                raise RuntimeError(f"PNA: no server can host reduce container {cid}")
            costs = np.array(
                [self._expected_cost(ctx, cid, s) for s in feasible]
            )
            sid = self._sample(feasible, costs)
            cluster.place(cid, sid)
            if ctx.provenance is not None:
                task = cluster.container(cid).task
                zero = bool((costs <= 1e-12).any())
                self.emit_placement(
                    ctx,
                    "zero-cost" if zero else "inverse-cost-sample",
                    job_id=task.job_id if task is not None else -1,
                    task=(
                        task_label(task.kind, task.index)
                        if task is not None
                        else None
                    ),
                    chosen=sid,
                    candidates=len(feasible),
                    cost=float(costs[feasible.index(sid)]),
                    beta=self.beta,
                )

    def _expected_cost(self, ctx: SchedulingContext, cid: int, sid: int) -> float:
        """Expected transmission cost of hosting reduce container ``cid`` on
        ``sid``: shuffle sizes weighted by the *static* pairwise cost."""
        total = 0.0
        for flow in ctx.taa.flows_of_container(cid):
            if flow.dst_container != cid:
                continue
            src_server = ctx.taa.cluster.container(flow.src_container).server_id
            if src_server is None:
                continue
            total += flow.size * self.static_cost(ctx, src_server, sid)
        return total

    def _sample(self, feasible: list[int], costs: np.ndarray) -> int:
        """Inverse-cost-proportional sampling with zero-cost short-circuit."""
        zero = costs <= 1e-12
        if zero.any():
            # Zero-cost servers (co-located with every source) win outright.
            candidates = [s for s, z in zip(feasible, zero) if z]
            return int(candidates[0])
        weights = costs ** (-self.beta)
        weights = weights / weights.sum()
        return int(self._rng.choice(feasible, p=weights))
