"""Capacity placement + ECMP multipath routing.

The paper's baselines pin each flow to one static route; real fabrics with
redundant switches usually hash flows across the equal-cost path set (ECMP).
This variant isolates the question "how much of Hit's win is just *using*
the extra paths?": placement is the stock Capacity scheduler's, routing
spreads flows uniformly over shortest paths — load-blind, size-blind.
The remaining gap to Hit is the value of *load-aware* policy optimisation
plus task placement.
"""

from __future__ import annotations

import numpy as np

from ..core.taa import TAAInstance
from .capacity import CapacityScheduler

__all__ = ["EcmpCapacityScheduler"]


class EcmpCapacityScheduler(CapacityScheduler):
    """Topology-unaware placement; hash-spread multipath routing."""

    name = "capacity-ecmp"
    network_aware = False
    #: Engine hook: baselines with this flag get per-flow random equal-cost
    #: routes instead of the deterministic static shortest path.
    ecmp = True
    #: Route-provenance records for this scheduler carry the hash-spread
    #: reason code instead of the static-route default.
    route_reason = "ecmp-hash"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def route_flows(self, taa: TAAInstance) -> None:
        taa.install_ecmp_policies(seed=self.seed)

    def ecmp_rng(self) -> np.random.Generator:
        """The generator the simulator draws per-flow path choices from."""
        return self._rng
