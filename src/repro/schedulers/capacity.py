"""Capacity Scheduler baseline.

Models Hadoop YARN's stock Capacity Scheduler as it behaves for a single
queue: containers are granted FIFO as NodeManagers heartbeat in, so pending
tasks land on the next node in heartbeat order that has free resources.  The
net effect — and the property the paper's comparison hinges on — is that
placement is driven purely by resource availability, never by the network
topology: "Capacity Scheduler is unaware of the network architecture,
resulting in longer flow route path" (Section 7.2).

We model the heartbeat order as a round-robin cursor over servers, which
spreads a job's tasks across the cluster the way a lightly loaded YARN
cluster does (one container per node per heartbeat round).
"""

from __future__ import annotations

from ..mapreduce.job import JobSpec
from ..obs.provenance import task_label
from .base import Scheduler, SchedulingContext

__all__ = ["CapacityScheduler"]


class CapacityScheduler(Scheduler):
    """Topology-unaware FIFO + heartbeat round-robin placement."""

    name = "capacity"
    network_aware = False

    def __init__(self) -> None:
        self._cursor = 0

    def place_initial_wave(
        self,
        ctx: SchedulingContext,
        job: JobSpec,
        map_containers: list[int],
        reduce_containers: list[int],
    ) -> None:
        # YARN grants maps first (they are requested first by the AM), then
        # reduces; within each group, FIFO order.  Map requests carry data
        # locality (the AM names the block's replica hosts), which the
        # Capacity Scheduler honours when the node has headroom.
        self._place_maps(ctx, job, map_containers)
        self._round_robin(ctx, reduce_containers)

    def place_map_wave(
        self,
        ctx: SchedulingContext,
        job: JobSpec,
        map_containers: list[int],
    ) -> None:
        self._place_maps(ctx, job, map_containers)

    def _place_maps(
        self, ctx: SchedulingContext, job: JobSpec, map_containers: list[int]
    ) -> None:
        cluster = ctx.taa.cluster
        leftovers: list[int] = []
        for cid in map_containers:
            task = cluster.container(cid).task
            placed = False
            if ctx.hdfs is not None and task is not None:
                blocks = ctx.hdfs.blocks_of(job.job_id)
                if task.index < len(blocks):
                    for sid in blocks[task.index].replicas:
                        if cluster.fits(cid, sid):
                            cluster.place(cid, sid)
                            placed = True
                            self.emit_placement(
                                ctx,
                                "node-local",
                                job_id=job.job_id,
                                task=task_label(task.kind, task.index),
                                chosen=sid,
                                candidates=list(blocks[task.index].replicas),
                            )
                            break
            if not placed:
                leftovers.append(cid)
        self._round_robin(ctx, leftovers)

    def _round_robin(self, ctx: SchedulingContext, containers: list[int]) -> None:
        cluster = ctx.taa.cluster
        servers = cluster.server_ids
        n = len(servers)
        for cid in containers:
            placed = False
            for offset in range(n):
                sid = servers[(self._cursor + offset) % n]
                if cluster.fits(cid, sid):
                    cluster.place(cid, sid)
                    if ctx.provenance is not None:
                        task = cluster.container(cid).task
                        self.emit_placement(
                            ctx,
                            "round-robin",
                            job_id=task.job_id if task is not None else -1,
                            task=(
                                task_label(task.kind, task.index)
                                if task is not None
                                else None
                            ),
                            chosen=sid,
                            skipped=offset,
                            cursor=self._cursor,
                        )
                    self._cursor = (self._cursor + offset + 1) % n
                    placed = True
                    break
            if not placed:
                raise RuntimeError(
                    f"capacity scheduler: no server can host container {cid}"
                )
