"""Pluggable scheduling strategies: Hit-Scheduler and the paper's baselines."""

from .base import Scheduler, SchedulingContext
from .capacity import CapacityScheduler
from .ecmp import EcmpCapacityScheduler
from .hit import HitScheduler
from .pna import PNAScheduler
from .rackpack import RackPackScheduler
from .random_ import RandomScheduler

__all__ = [
    "Scheduler",
    "SchedulingContext",
    "CapacityScheduler",
    "EcmpCapacityScheduler",
    "HitScheduler",
    "PNAScheduler",
    "RackPackScheduler",
    "RandomScheduler",
]


def make_scheduler(name: str, seed: int = 0) -> Scheduler:
    """Factory used by experiment harnesses: ``capacity`` | ``pna`` | ``hit``
    | ``random`` | ``rackpack`` | ``hit-online`` | ``capacity-ecmp``."""
    from ..core.hit import HitConfig

    if name == "capacity":
        return CapacityScheduler()
    if name == "capacity-ecmp":
        return EcmpCapacityScheduler(seed=seed)
    if name == "pna":
        return PNAScheduler(seed=seed)
    if name == "hit":
        return HitScheduler(HitConfig(seed=seed))
    if name == "hit-online":
        from ..core.rebalance import RebalanceConfig

        scheduler = HitScheduler(
            HitConfig(seed=seed), online_rebalance=RebalanceConfig()
        )
        scheduler.name = "hit-online"
        return scheduler
    if name == "random":
        return RandomScheduler(seed=seed)
    if name == "rackpack":
        return RackPackScheduler()
    raise ValueError(f"unknown scheduler {name!r}")
