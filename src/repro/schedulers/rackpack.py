"""Rack-packing baseline (ShuffleWatcher / iShuffle-inspired).

The paper's related work (§8) discusses schedulers that "improve the
locality of the shuffle by scheduling both maps and reducers on the same set
of racks" (ShuffleWatcher [2], iShuffle [14]) but notes they "do not
explicitly take into account the cost caused by network for deciding the
placement".  This baseline implements exactly that idea: pack each job's
containers onto the smallest set of racks with free slots, preferring racks
that already host the job.  It is rack-aware but *path- and load-blind* —
no per-flow cost model, no policy optimisation — which makes it the natural
intermediate point between Capacity and Hit in ablation studies.
"""

from __future__ import annotations

from ..mapreduce.hdfs import rack_of_servers
from ..mapreduce.job import JobSpec
from ..obs.provenance import task_label
from .base import Scheduler, SchedulingContext

__all__ = ["RackPackScheduler"]


class RackPackScheduler(Scheduler):
    """Minimal-rack-footprint placement, shuffle-locality only."""

    name = "rackpack"
    network_aware = False

    def place_initial_wave(
        self,
        ctx: SchedulingContext,
        job: JobSpec,
        map_containers: list[int],
        reduce_containers: list[int],
    ) -> None:
        self._pack(ctx, job, map_containers + reduce_containers)

    def place_map_wave(
        self,
        ctx: SchedulingContext,
        job: JobSpec,
        map_containers: list[int],
    ) -> None:
        self._pack(ctx, job, map_containers)

    def _pack(self, ctx: SchedulingContext, job: JobSpec, containers: list[int]) -> None:
        cluster = ctx.taa.cluster
        racks = rack_of_servers(ctx.taa.topology)
        servers_by_rack: dict[int, list[int]] = {}
        for sid, rack in racks.items():
            servers_by_rack.setdefault(rack, []).append(sid)

        def rack_free_slots(rack: int) -> int:
            total = 0
            for sid in servers_by_rack[rack]:
                residual = cluster.residual(sid)
                demand = cluster.container(containers[0]).demand
                if demand.memory > 0:
                    total += int(residual.memory // demand.memory)
                else:
                    total += 1
            return total

        def racks_hosting_job() -> set[int]:
            mine = set()
            for c in cluster.containers():
                if (
                    c.task is not None
                    and c.task.job_id == job.job_id
                    and c.server_id is not None
                ):
                    mine.add(racks[c.server_id])
            return mine

        pending = list(containers)
        while pending:
            job_racks = racks_hosting_job()
            # Preference order: racks already hosting the job (most free
            # first), then the emptiest other racks — greedy set cover of the
            # job's slot demand.
            candidates = sorted(
                servers_by_rack,
                key=lambda r: (
                    r not in job_racks,       # already-used racks first
                    -rack_free_slots(r),      # then most head-room
                    r,
                ),
            )
            placed_any = False
            for rack in candidates:
                for sid in sorted(servers_by_rack[rack]):
                    while pending and cluster.fits(pending[0], sid):
                        cid = pending.pop(0)
                        cluster.place(cid, sid)
                        placed_any = True
                        if ctx.provenance is not None:
                            task = cluster.container(cid).task
                            self.emit_placement(
                                ctx,
                                "rack-pack",
                                job_id=job.job_id,
                                task=(
                                    task_label(task.kind, task.index)
                                    if task is not None
                                    else None
                                ),
                                chosen=sid,
                                rack=rack,
                                rack_reused=rack in job_racks,
                                rack_candidates=len(candidates),
                            )
                    if not pending:
                        return
                if placed_any:
                    break  # re-evaluate rack preference with updated state
            if not placed_any:
                raise RuntimeError(
                    f"rackpack: no rack can host container {pending[0]}"
                )
