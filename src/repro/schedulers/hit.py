"""Hit-Scheduler plugged into the scheduler interface.

Thin adapter: the optimisation lives in :mod:`repro.core.hit`; this class
maps the scheduler API's wave entry points onto the corresponding core
strategies and installs optimised policies (Algorithm 1) when routing.
"""

from __future__ import annotations

from ..core.hit import HitConfig, HitOptimizer, HitResult
from ..core.rebalance import RebalanceConfig
from ..core.taa import TAAInstance
from ..mapreduce.job import JobSpec
from ..obs.provenance import task_label
from ..speculation.placement import rank_backup_servers_by_cost
from .base import Scheduler, SchedulingContext

__all__ = ["HitScheduler"]


class HitScheduler(Scheduler):
    """Hierarchical-topology-aware scheduler (the paper's contribution)."""

    name = "hit"
    network_aware = True

    def __init__(
        self,
        config: HitConfig | None = None,
        online_rebalance: RebalanceConfig | None = None,
    ) -> None:
        self.config = config or HitConfig()
        #: Enables the simulator's live-flow rebalancing sweeps when set.
        self.online_rebalance = online_rebalance
        #: Result of the most recent optimisation (cost trace etc.), exposed
        #: for experiment harnesses.
        self.last_result: HitResult | None = None

    def place_initial_wave(
        self,
        ctx: SchedulingContext,
        job: JobSpec,
        map_containers: list[int],
        reduce_containers: list[int],
    ) -> None:
        optimizer = HitOptimizer(ctx.taa, self.config)
        self.last_result = optimizer.optimize_initial_wave(
            container_ids=map_containers + reduce_containers
        )
        self._emit_wave(ctx, job, map_containers + reduce_containers, "initial")

    def place_map_wave(
        self,
        ctx: SchedulingContext,
        job: JobSpec,
        map_containers: list[int],
    ) -> None:
        optimizer = HitOptimizer(ctx.taa, self.config)
        self.last_result = optimizer.optimize_subsequent_wave(map_containers)
        self._emit_wave(ctx, job, map_containers, "map")

    def _emit_wave(
        self,
        ctx: SchedulingContext,
        job: JobSpec,
        containers: list[int],
        wave: str,
    ) -> None:
        """Audit the wave that just ran: one job-level record carrying the
        optimiser's cost trace + matching tie-break path, then one record
        per container with its committed server.  Reads ``last_result`` and
        the cluster only — recomputes nothing, consumes no randomness."""
        if ctx.provenance is None or self.last_result is None:
            return
        result = self.last_result
        cluster = ctx.taa.cluster
        ctx.provenance.emit(
            "placement",
            "hit-wave",
            job=job.job_id,
            wave=wave,
            containers=len(containers),
            servers=len(cluster.server_ids),
            **result.to_provenance(),
        )
        for cid in containers:
            container = cluster.container(cid)
            task = container.task
            self.emit_placement(
                ctx,
                "alg2-stable-match",
                job_id=job.job_id,
                task=(
                    task_label(task.kind, task.index)
                    if task is not None
                    else None
                ),
                chosen=-1 if container.server_id is None else container.server_id,
            )

    def route_flows(self, taa: TAAInstance) -> None:
        """Install the optimal (capacity-aware) policies for every flow."""
        taa.install_all_policies()

    def rank_backup_servers(
        self,
        ctx: SchedulingContext,
        job: JobSpec,
        flows: list,
        candidates: list[int],
    ) -> list[int] | None:
        """Topology-aware speculation: grade each candidate by the marginal
        shuffle cost of the straggler's pending output flows (the Alg 1
        preference-matrix column restricted to this map), cheapest first."""
        return rank_backup_servers_by_cost(ctx.taa, flows, candidates)
