"""Hit-Scheduler plugged into the scheduler interface.

Thin adapter: the optimisation lives in :mod:`repro.core.hit`; this class
maps the scheduler API's wave entry points onto the corresponding core
strategies and installs optimised policies (Algorithm 1) when routing.
"""

from __future__ import annotations

from ..core.hit import HitConfig, HitOptimizer, HitResult
from ..core.rebalance import RebalanceConfig
from ..core.taa import TAAInstance
from ..mapreduce.job import JobSpec
from ..speculation.placement import rank_backup_servers_by_cost
from .base import Scheduler, SchedulingContext

__all__ = ["HitScheduler"]


class HitScheduler(Scheduler):
    """Hierarchical-topology-aware scheduler (the paper's contribution)."""

    name = "hit"
    network_aware = True

    def __init__(
        self,
        config: HitConfig | None = None,
        online_rebalance: RebalanceConfig | None = None,
    ) -> None:
        self.config = config or HitConfig()
        #: Enables the simulator's live-flow rebalancing sweeps when set.
        self.online_rebalance = online_rebalance
        #: Result of the most recent optimisation (cost trace etc.), exposed
        #: for experiment harnesses.
        self.last_result: HitResult | None = None

    def place_initial_wave(
        self,
        ctx: SchedulingContext,
        job: JobSpec,
        map_containers: list[int],
        reduce_containers: list[int],
    ) -> None:
        optimizer = HitOptimizer(ctx.taa, self.config)
        self.last_result = optimizer.optimize_initial_wave(
            container_ids=map_containers + reduce_containers
        )

    def place_map_wave(
        self,
        ctx: SchedulingContext,
        job: JobSpec,
        map_containers: list[int],
    ) -> None:
        optimizer = HitOptimizer(ctx.taa, self.config)
        self.last_result = optimizer.optimize_subsequent_wave(map_containers)

    def route_flows(self, taa: TAAInstance) -> None:
        """Install the optimal (capacity-aware) policies for every flow."""
        taa.install_all_policies()

    def rank_backup_servers(
        self,
        ctx: SchedulingContext,
        job: JobSpec,
        flows: list,
        candidates: list[int],
    ) -> list[int] | None:
        """Topology-aware speculation: grade each candidate by the marginal
        shuffle cost of the straggler's pending output flows (the Alg 1
        preference-matrix column restricted to this map), cheapest first."""
        return rank_backup_servers_by_cost(ctx.taa, flows, candidates)
