"""Hit-Scheduler plugged into the scheduler interface.

Thin adapter: the optimisation lives in :mod:`repro.core.hit`; this class
maps the scheduler API's wave entry points onto the corresponding core
strategies and installs optimised policies (Algorithm 1) when routing.
"""

from __future__ import annotations

from ..core.hit import HitConfig, HitOptimizer, HitResult
from ..core.rebalance import RebalanceConfig
from ..core.taa import TAAInstance
from ..mapreduce.job import JobSpec
from .base import Scheduler, SchedulingContext

__all__ = ["HitScheduler"]


class HitScheduler(Scheduler):
    """Hierarchical-topology-aware scheduler (the paper's contribution)."""

    name = "hit"
    network_aware = True

    def __init__(
        self,
        config: HitConfig | None = None,
        online_rebalance: RebalanceConfig | None = None,
    ) -> None:
        self.config = config or HitConfig()
        #: Enables the simulator's live-flow rebalancing sweeps when set.
        self.online_rebalance = online_rebalance
        #: Result of the most recent optimisation (cost trace etc.), exposed
        #: for experiment harnesses.
        self.last_result: HitResult | None = None

    def place_initial_wave(
        self,
        ctx: SchedulingContext,
        job: JobSpec,
        map_containers: list[int],
        reduce_containers: list[int],
    ) -> None:
        optimizer = HitOptimizer(ctx.taa, self.config)
        self.last_result = optimizer.optimize_initial_wave(
            container_ids=map_containers + reduce_containers
        )

    def place_map_wave(
        self,
        ctx: SchedulingContext,
        job: JobSpec,
        map_containers: list[int],
    ) -> None:
        optimizer = HitOptimizer(ctx.taa, self.config)
        self.last_result = optimizer.optimize_subsequent_wave(map_containers)

    def route_flows(self, taa: TAAInstance) -> None:
        """Install the optimal (capacity-aware) policies for every flow."""
        taa.install_all_policies()
