"""Random placement: the sanity-check lower bound.

Not a paper baseline, but useful for tests and ablations — any scheduler
worth its salt must beat uniform-random feasible placement on shuffle cost.
"""

from __future__ import annotations

import numpy as np

from ..mapreduce.job import JobSpec
from ..obs.provenance import task_label
from .base import Scheduler, SchedulingContext

__all__ = ["RandomScheduler"]


class RandomScheduler(Scheduler):
    """Uniform-random feasible placement."""

    name = "random"
    network_aware = False

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def place_initial_wave(
        self,
        ctx: SchedulingContext,
        job: JobSpec,
        map_containers: list[int],
        reduce_containers: list[int],
    ) -> None:
        cluster = ctx.taa.cluster
        for cid in map_containers + reduce_containers:
            servers = list(cluster.server_ids)
            self._rng.shuffle(servers)
            for sid in servers:
                if cluster.fits(cid, sid):
                    cluster.place(cid, sid)
                    if ctx.provenance is not None:
                        task = cluster.container(cid).task
                        self.emit_placement(
                            ctx,
                            "random",
                            job_id=job.job_id,
                            task=(
                                task_label(task.kind, task.index)
                                if task is not None
                                else None
                            ),
                            chosen=sid,
                            candidates=len(servers),
                        )
                    break
            else:
                raise RuntimeError(f"random scheduler: nowhere to put {cid}")
