"""Pluggable scheduler interface.

The paper implements Hit-Scheduler "as a pluggable module on Hadoop YARN" and
compares it against the stock Capacity Scheduler and the Probabilistic
Network-Aware scheduler.  This module defines the plug point: every scheduler
receives the same :class:`SchedulingContext` (the live TAA instance plus the
HDFS model and a seeded RNG) and decides where each job's containers go.

Two entry points mirror the paper's wave taxonomy (Section 5.3):

* :meth:`Scheduler.place_initial_wave` — Map *and* Reduce containers of a job
  are free;
* :meth:`Scheduler.place_map_wave` — a subsequent Map wave with the Reduce
  side already pinned.

``route_flows`` decides the network-policy side: topology-unaware schedulers
leave flows on the fabric's static shortest paths, while Hit-Scheduler
installs optimised policies (Algorithm 1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.taa import TAAInstance
from ..mapreduce.hdfs import HdfsModel
from ..mapreduce.job import JobSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.provenance import ProvenanceRecorder

__all__ = ["SchedulingContext", "Scheduler"]


@dataclass
class SchedulingContext:
    """Everything a scheduler may consult when placing containers."""

    taa: TAAInstance
    hdfs: HdfsModel | None = None
    rng: np.random.Generator | None = None
    #: Opt-in decision-audit sink (:class:`repro.obs.ProvenanceRecorder`).
    #: ``None`` in ordinary runs; when set, schedulers append one placement
    #: record per decision.  Emission must be a pure read of scheduler
    #: state — no RNG draws, no control-flow changes — so provenance-on
    #: runs stay byte-identical to provenance-off runs.
    provenance: "ProvenanceRecorder | None" = None

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = np.random.default_rng(0)


class Scheduler(ABC):
    """Base class for all scheduling strategies.

    Concrete schedulers must be stateless across jobs beyond what they read
    from the context — the simulator may interleave placements of many jobs.
    """

    #: Human-readable name used in experiment tables.
    name: str = "base"
    #: Whether the scheduler installs optimised network policies.
    network_aware: bool = False
    #: When set, the simulator runs periodic policy-rebalancing sweeps over
    #: live flows (Section 5.1.1's online rescheduling) with this config.
    online_rebalance = None
    #: Baseline multipath flag: the simulator routes this scheduler's flows
    #: on a random equal-cost shortest path (ECMP hashing) instead of the
    #: deterministic static route.
    ecmp: bool = False
    #: Reason code the engine stamps on this scheduler's route-provenance
    #: records when it is not network-aware (see ``repro.obs.provenance``).
    route_reason: str = "static-shortest"

    @staticmethod
    def emit_placement(
        ctx: SchedulingContext,
        reason: str,
        *,
        job_id: int,
        task: str | None,
        chosen: int,
        **detail,
    ) -> None:
        """Append one placement decision to the audit plane, if enabled.

        A no-op unless the run carries a provenance recorder; callers must
        invoke it *after* the placement is committed and pass only values
        they already computed (pure read — see ``SchedulingContext``).
        """
        if ctx.provenance is not None:
            ctx.provenance.emit(
                "placement",
                reason,
                job=job_id,
                task=task,
                chosen=chosen,
                **detail,
            )

    @abstractmethod
    def place_initial_wave(
        self,
        ctx: SchedulingContext,
        job: JobSpec,
        map_containers: list[int],
        reduce_containers: list[int],
    ) -> None:
        """Place the first wave: both task sides of ``job`` are unplaced."""

    def place_map_wave(
        self,
        ctx: SchedulingContext,
        job: JobSpec,
        map_containers: list[int],
    ) -> None:
        """Place a subsequent Map wave (Reduce side fixed).

        Default: treat it like an initial wave with no reduce containers —
        subclasses with a smarter strategy (Hit) override.
        """
        self.place_initial_wave(ctx, job, map_containers, [])

    def route_flows(self, taa: TAAInstance) -> None:
        """Install network policies for all flows of the instance.

        Topology-unaware baselines keep the static single path; overridden by
        network-policy-optimising schedulers.
        """
        taa.install_static_policies()

    def rank_backup_servers(
        self,
        ctx: SchedulingContext,
        job: JobSpec,
        flows: list,
        candidates: list[int],
    ) -> list[int] | None:
        """Rank candidate servers for a *speculative backup* attempt.

        ``flows`` are the straggling map's pending output flows and
        ``candidates`` the live servers with headroom (id-sorted, the
        straggler's own server excluded).  Returning ``None`` — the default
        — hands placement back to the engine's RM-style greedy re-grant;
        topology-aware schedulers override to order the candidates by
        marginal shuffle cost (``repro.speculation.placement``).  The hook
        must be deterministic and must not consume ``ctx.rng``.
        """
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
