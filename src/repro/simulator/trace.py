"""Simulation trace export: a flat, sorted event log of one run.

Turns a :class:`~repro.simulator.metrics.MetricsCollector` into the kind of
event trace Hadoop's job-history server produces — one record per job
submission/completion, task start/finish and flow start/finish — serialised
as JSON lines.  Downstream users can diff traces across schedulers, feed
them to external plotting, or regression-test against golden runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .metrics import MetricsCollector

__all__ = ["TraceEvent", "trace_from_metrics", "dump_trace", "save_trace_file", "load_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped trace record."""

    time: float
    kind: str
    job_id: int
    detail: dict

    def to_record(self) -> dict:
        return {
            "t": self.time,
            "kind": self.kind,
            "job": self.job_id,
            **self.detail,
        }


def trace_from_metrics(metrics: MetricsCollector) -> list[TraceEvent]:
    """Flatten a collector into a time-sorted event list."""
    events: list[TraceEvent] = []
    for job in metrics.jobs:
        events.append(
            TraceEvent(job.submit_time, "job_submit", job.job_id,
                       {"name": job.name, "class": job.shuffle_class})
        )
        events.append(
            TraceEvent(job.finish_time, "job_finish", job.job_id,
                       {"jct": job.completion_time,
                        "remote_map": job.remote_map_traffic})
        )
    for task in metrics.tasks:
        events.append(
            TraceEvent(task.start, f"{task.kind}_start", task.job_id,
                       {"index": task.index})
        )
        events.append(
            TraceEvent(task.finish, f"{task.kind}_finish", task.job_id,
                       {"index": task.index, "duration": task.duration})
        )
    for flow in metrics.flows:
        events.append(
            TraceEvent(flow.start, "flow_start", flow.job_id,
                       {"flow": flow.flow_id, "size": flow.size,
                        "switches": flow.num_switches})
        )
        events.append(
            TraceEvent(flow.finish, "flow_finish", flow.job_id,
                       {"flow": flow.flow_id, "duration": flow.duration,
                        "delay_us": flow.delay_us})
        )
    # Sort by time, then by a stable kind order so equal-time records don't
    # flap between runs.
    kind_order = {
        "job_submit": 0, "map_start": 1, "map_finish": 2, "flow_start": 3,
        "flow_finish": 4, "reduce_start": 5, "reduce_finish": 6,
        "job_finish": 7,
    }
    events.sort(key=lambda e: (e.time, kind_order.get(e.kind, 99), e.job_id))
    return events


def dump_trace(metrics: MetricsCollector) -> str:
    """Serialise a run's trace as JSON lines."""
    return "\n".join(
        json.dumps(e.to_record(), sort_keys=True)
        for e in trace_from_metrics(metrics)
    )


def save_trace_file(path: str | Path, metrics: MetricsCollector) -> None:
    Path(path).write_text(dump_trace(metrics) + "\n", encoding="utf-8")


def load_trace(text: str) -> list[dict]:
    """Parse a JSON-lines trace back into records."""
    records = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
