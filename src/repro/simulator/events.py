"""Event queue for the discrete-event simulation.

A thin, deterministic wrapper over :mod:`heapq`.  Events at equal timestamps
pop in a two-level deterministic order:

1. an explicit per-kind priority class (:data:`EVENT_PRIORITY`) — fault
   events are ordered *around* the normal simulation events: recoveries
   first (capacity returns before anything else that happens at the same
   instant), then failures (a completion that collides with a failure at the
   exact same timestamp is processed after the failure, i.e. the task is
   conservatively lost), then job arrivals (an arrival that collides with a
   completion sees the pre-completion cluster, never a half-updated one),
   then every other normal event kind;
2. insertion order (sequence-number tie-break) within a priority class,
   which keeps simulations bit-reproducible across runs regardless of
   payload types.

Completions and network checkpoints share one priority class, so
simulations without faults order exactly as they did before fault injection
existed.  JOB_ARRIVAL's dedicated class is equally backward compatible for
batch runs: batch workloads push every arrival before the first runtime
event, so the insertion tie-break already popped arrivals first — the
explicit class makes that ordering structural, which matters once the
online workload plane (:mod:`repro.workload`) injects arrivals mid-run.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Any

__all__ = ["EventKind", "Event", "EventQueue", "EVENT_PRIORITY"]


class EventKind(Enum):
    """The simulation's event taxonomy."""

    JOB_ARRIVAL = auto()
    MAP_DONE = auto()
    NETWORK = auto()        # tentative next-flow-completion checkpoint
    REDUCE_DONE = auto()
    # Fault-injection events (see repro.faults): infrastructure state flips.
    SERVER_FAIL = auto()
    SERVER_RECOVER = auto()
    SWITCH_FAIL = auto()
    SWITCH_RECOVER = auto()
    TASK_SLOWDOWN = auto()  # straggler injection: server speed multiplier
    LINK_FAIL = auto()      # physical link dies; payload (u, v)
    LINK_RECOVER = auto()
    LINK_DEGRADE = auto()   # fail-slow link; payload (u, v, capacity factor)
    # Failure-recovery retry: a task waiting out its placement backoff.
    TASK_RETRY = auto()
    # Speculative execution (see repro.speculation): the detector's periodic
    # straggler sweep, and the kill order for the losing attempt of a
    # speculation pair.
    SPECULATE = auto()
    KILL_ATTEMPT = auto()


#: Same-timestamp ordering class per kind (lower pops first).  Recoveries
#: (0) precede failures (1) precede job arrivals (2) precede all other
#: normal events (3) precede detector sweeps (4): at one instant the fabric
#: first heals, then breaks, then new work lands, then the running workload
#: reacts — so a task completion that collides with its server's failure is
#: lost, a placement retry that collides with a recovery sees the recovered
#: node, and an arrival that collides with a completion is admitted against
#: the pre-completion cluster regardless of which event was pushed first.
#: KILL_ATTEMPT shares the failure class: the winning attempt's commit
#: pushes it at the *same instant*, and it must invalidate the loser before
#: any queued normal event (in particular the loser's own MAP_DONE) can
#: pop.  SPECULATE sits *after* every normal event so a sweep never
#: speculates a map whose same-instant completion is already queued.
EVENT_PRIORITY: dict[EventKind, int] = {
    EventKind.SERVER_RECOVER: 0,
    EventKind.SWITCH_RECOVER: 0,
    EventKind.LINK_RECOVER: 0,
    EventKind.SERVER_FAIL: 1,
    EventKind.SWITCH_FAIL: 1,
    EventKind.LINK_FAIL: 1,
    EventKind.LINK_DEGRADE: 1,
    EventKind.TASK_SLOWDOWN: 1,
    EventKind.KILL_ATTEMPT: 1,
    EventKind.JOB_ARRIVAL: 2,
    EventKind.MAP_DONE: 3,
    EventKind.NETWORK: 3,
    EventKind.REDUCE_DONE: 3,
    EventKind.TASK_RETRY: 3,
    EventKind.SPECULATE: 4,
}


@dataclass(frozen=True, order=False)
class Event:
    """One scheduled occurrence; ``payload`` semantics depend on ``kind``."""

    time: float
    kind: EventKind
    payload: Any = None
    #: Epoch tag for tentative events (NETWORK): stale epochs are skipped.
    epoch: int = 0


class EventQueue:
    """Min-heap of events ordered by (time, kind priority, insertion seq)."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()

    def push(self, event: Event) -> None:
        if event.time < 0:
            raise ValueError("event time must be non-negative")
        heapq.heappush(
            self._heap,
            (
                event.time,
                EVENT_PRIORITY[event.kind],
                next(self._counter),
                event,
            ),
        )

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)[3]

    def peek_time(self) -> float | None:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
