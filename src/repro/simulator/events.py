"""Event queue for the discrete-event simulation.

A thin, deterministic wrapper over :mod:`heapq`: events at equal timestamps
pop in insertion order (sequence-number tie-break), which keeps simulations
bit-reproducible across runs regardless of payload types.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Any

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(Enum):
    """The simulation's event taxonomy."""

    JOB_ARRIVAL = auto()
    MAP_DONE = auto()
    NETWORK = auto()        # tentative next-flow-completion checkpoint
    REDUCE_DONE = auto()


@dataclass(frozen=True, order=False)
class Event:
    """One scheduled occurrence; ``payload`` semantics depend on ``kind``."""

    time: float
    kind: EventKind
    payload: Any = None
    #: Epoch tag for tentative events (NETWORK): stale epochs are skipped.
    epoch: int = 0


class EventQueue:
    """Min-heap of events ordered by (time, insertion sequence)."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()

    def push(self, event: Event) -> None:
        if event.time < 0:
            raise ValueError("event time must be non-negative")
        heapq.heappush(self._heap, (event.time, next(self._counter), event))

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)[2]

    def peek_time(self) -> float | None:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
