"""Flow-level network model with max-min fair bandwidth sharing.

Replaces the paper's Mininet + D-ITG measurement plane.  Active shuffle
flows share the fabric; each flow's instantaneous rate is the classic
max-min fair allocation (progressive filling) over two families of
capacitated resources:

* **directed links** — each undirected physical link offers its bandwidth
  independently per direction (full duplex);
* **switches** — a switch's ``capacity`` bounds the total rate it forwards,
  which is the paper's fifth constraint of Eq 3 and the mechanism behind the
  overloaded-``w_1`` motivation of Figure 2.

The model is a fluid simulation: rates stay constant between events; the
engine advances remaining sizes by ``rate * dt`` and asks for the earliest
completion.  A per-flow *packet delay* estimate (Figure 7b's metric) is
derived from an M/M/1-style utilisation curve on the switches the flow
traverses, evaluated when the flow starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..topology.base import Topology

__all__ = ["ActiveFlow", "FlowNetwork", "DelayModel"]


@dataclass(frozen=True)
class DelayModel:
    """Per-packet delay parameters (microseconds).

    ``switch_service_us`` is the nominal per-switch forwarding latency;
    queueing inflates it by ``1 / (1 - rho)`` with utilisation capped at
    ``max_utilisation``; ``link_propagation_us`` adds per-hop wire delay.
    """

    switch_service_us: float = 25.0
    link_propagation_us: float = 2.0
    max_utilisation: float = 0.9


@dataclass
class ActiveFlow:
    """A shuffle flow in flight."""

    flow_id: int
    path: tuple[int, ...]
    remaining: float
    resources: tuple[int, ...]
    rate: float = 0.0
    start_time: float = 0.0
    start_delay_us: float = 0.0
    num_switches: int = 0


class FlowNetwork:
    """Max-min fair fluid network over a topology."""

    def __init__(self, topology: Topology, delay_model: DelayModel | None = None) -> None:
        self.topology = topology
        self.delay_model = delay_model or DelayModel()
        # Resource index space: directed links first, then switches.
        self._link_index: dict[tuple[int, int], int] = {}
        caps: list[float] = []
        for link in topology.links:
            self._link_index[(link.u, link.v)] = len(caps)
            caps.append(link.bandwidth)
            self._link_index[(link.v, link.u)] = len(caps)
            caps.append(link.bandwidth)
        self._switch_resource: dict[int, int] = {}
        for w in topology.switch_ids:
            self._switch_resource[w] = len(caps)
            caps.append(topology.switch(w).capacity)
        self._caps = np.asarray(caps, dtype=np.float64)
        self._flows: dict[int, ActiveFlow] = {}
        self._dirty = True

    # ------------------------------------------------------------- resources
    def _path_resources(self, path: Sequence[int]) -> tuple[int, ...]:
        res: list[int] = []
        for a, b in zip(path, path[1:]):
            idx = self._link_index.get((a, b))
            if idx is None:
                raise ValueError(f"hop {a}->{b} is not a physical link")
            res.append(idx)
        for node in path:
            if node in self._switch_resource:
                res.append(self._switch_resource[node])
        return tuple(res)

    @property
    def resource_capacities(self) -> np.ndarray:
        """Capacity per resource index (directed links, then switches).

        Read-only view for verification code; mutating it would corrupt the
        allocator.
        """
        return self._caps

    def ensure_rates(self) -> None:
        """Recompute max-min rates if the flow set changed since the last
        allocation — lets external checks read consistent rates."""
        if self._dirty:
            self.recompute_rates()

    def switch_utilisation(self, switch_id: int) -> float:
        """Current rate through a switch divided by its capacity."""
        res = self._switch_resource[switch_id]
        used = sum(
            f.rate for f in self._flows.values() if res in f.resources
        )
        return used / self._caps[res] if self._caps[res] > 0 else 0.0

    def resource_rates(self) -> np.ndarray:
        """Aggregate allocated rate per resource index (read-only snapshot).

        Index space matches :attr:`resource_capacities` — directed links
        first, then switches.  Callers wanting a *consistent* snapshot (the
        telemetry plane) should call :meth:`ensure_rates` first; this method
        itself never recomputes, so it is side-effect free.
        """
        used = np.zeros(len(self._caps), dtype=np.float64)
        for f in self._flows.values():
            used[list(f.resources)] += f.rate
        return used

    def utilisation_by_switch(self) -> dict[int, float]:
        """``{switch_id: rate / capacity}`` over every switch of the fabric."""
        used = self.resource_rates()
        out: dict[int, float] = {}
        for w, res in self._switch_resource.items():
            cap = self._caps[res]
            out[w] = float(used[res] / cap) if cap > 0 else 0.0
        return out

    def utilisation_by_link(self) -> dict[tuple[int, int], float]:
        """``{(u, v): rate / bandwidth}`` per *directed* link."""
        used = self.resource_rates()
        out: dict[tuple[int, int], float] = {}
        for (u, v), res in self._link_index.items():
            cap = self._caps[res]
            out[(u, v)] = float(used[res] / cap) if cap > 0 else 0.0
        return out

    # ----------------------------------------------------------------- flows
    @property
    def active_flows(self) -> tuple[ActiveFlow, ...]:
        return tuple(self._flows[fid] for fid in sorted(self._flows))

    def _lookup(self, flow_id: int, operation: str) -> ActiveFlow:
        """Active flow by id, or a diagnosable KeyError naming the id and
        how many flows are live (typos and double-removals both surface as
        "unknown flow" — the count distinguishes an empty network from a
        wrong id)."""
        flow = self._flows.get(flow_id)
        if flow is None:
            raise KeyError(
                f"{operation}: unknown flow {flow_id} "
                f"({len(self._flows)} active flows)"
            )
        return flow

    def add_flow(
        self,
        flow_id: int,
        path: Sequence[int],
        size: float,
        now: float = 0.0,
        remaining: float | None = None,
    ) -> ActiveFlow:
        """Start a flow; co-located endpoints (single-node path) are
        rejected — the engine should complete them instantly instead.

        ``remaining`` (defaults to ``size``) lets the fault-recovery layer
        resume a parked flow with its transferred bytes preserved.
        """
        if flow_id in self._flows:
            raise ValueError(f"flow {flow_id} already active")
        if len(path) < 2:
            raise ValueError("network flows need a multi-node path")
        if size <= 0:
            raise ValueError("flow size must be positive")
        if remaining is None:
            remaining = size
        if not 0 < remaining <= size:
            raise ValueError("remaining must be in (0, size]")
        flow = ActiveFlow(
            flow_id=flow_id,
            path=tuple(path),
            remaining=remaining,
            resources=self._path_resources(path),
            start_time=now,
            num_switches=sum(
                1 for n in path if n in self._switch_resource
            ),
        )
        self._flows[flow_id] = flow
        self._dirty = True
        flow.start_delay_us = self._estimate_delay(flow)
        return flow

    def remove_flow(self, flow_id: int) -> ActiveFlow:
        flow = self._lookup(flow_id, "remove_flow")
        del self._flows[flow_id]
        self._dirty = True
        return flow

    def reroute_flow(self, flow_id: int, path: Sequence[int]) -> ActiveFlow:
        """Migrate a live flow onto a new path, preserving its remaining
        bytes (the online-rebalancing hook of Section 5.1.1)."""
        flow = self._lookup(flow_id, "reroute_flow")
        if len(path) < 2:
            raise ValueError("network flows need a multi-node path")
        if path[0] != flow.path[0] or path[-1] != flow.path[-1]:
            raise ValueError("reroute must preserve the flow's endpoints")
        flow.path = tuple(path)
        flow.resources = self._path_resources(path)
        flow.num_switches = sum(1 for n in path if n in self._switch_resource)
        self._dirty = True
        return flow

    def _estimate_delay(self, flow: ActiveFlow) -> float:
        """Packet-delay estimate (us) along the flow's path at start time."""
        dm = self.delay_model
        delay = dm.link_propagation_us * (len(flow.path) - 1)
        for node in flow.path:
            if node not in self._switch_resource:
                continue
            rho = min(self.switch_utilisation(node), dm.max_utilisation)
            delay += dm.switch_service_us / (1.0 - rho)
        return delay

    # ------------------------------------------------------------ rate logic
    def recompute_rates(self) -> None:
        """Progressive-filling max-min fair allocation over all resources."""
        flows = list(self._flows.values())
        self._dirty = False
        if not flows:
            return
        n = len(flows)
        m = len(self._caps)
        # Dense incidence: fine at simulation scale (hundreds x hundreds).
        incidence = np.zeros((m, n), dtype=bool)
        for j, f in enumerate(flows):
            incidence[list(f.resources), j] = True
        remaining = self._caps.copy()
        unfrozen = np.ones(n, dtype=bool)
        rates = np.zeros(n, dtype=np.float64)
        # Resources no flow uses can never bottleneck.
        while unfrozen.any():
            counts = (incidence[:, unfrozen]).sum(axis=1)
            with np.errstate(divide="ignore", invalid="ignore"):
                fair = np.where(counts > 0, remaining / counts, np.inf)
            bottleneck = int(np.argmin(fair))
            level = fair[bottleneck]
            if not np.isfinite(level):
                # Shouldn't happen (every flow uses >= 1 resource), but avoid
                # spinning if it does.
                rates[unfrozen] = np.inf
                break
            to_freeze = incidence[bottleneck] & unfrozen
            rates[to_freeze] = level
            # Charge the frozen flows against every resource they touch.
            remaining -= level * (incidence[:, to_freeze].sum(axis=1))
            remaining = np.maximum(remaining, 0.0)
            unfrozen &= ~to_freeze
        for f, r in zip(flows, rates):
            f.rate = float(r)

    def advance(self, dt: float) -> None:
        """Progress every active flow by ``dt`` at its current rate."""
        if dt < 0:
            raise ValueError("cannot advance time backwards")
        if self._dirty:
            self.recompute_rates()
        for f in self._flows.values():
            f.remaining -= f.rate * dt
            if f.remaining < 1e-12:
                f.remaining = 0.0

    def completed_flows(self) -> list[int]:
        return [fid for fid, f in self._flows.items() if f.remaining <= 0.0]

    def time_to_next_completion(self) -> float | None:
        """Earliest completion horizon at current rates (None when idle)."""
        if self._dirty:
            self.recompute_rates()
        best: float | None = None
        for f in self._flows.values():
            if f.rate <= 0:
                continue
            t = f.remaining / f.rate
            if best is None or t < best:
                best = t
        return best
