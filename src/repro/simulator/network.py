"""Flow-level network model with max-min fair bandwidth sharing.

Replaces the paper's Mininet + D-ITG measurement plane.  Active shuffle
flows share the fabric; each flow's instantaneous rate is the classic
max-min fair allocation (progressive filling) over two families of
capacitated resources:

* **directed links** — each undirected physical link offers its bandwidth
  independently per direction (full duplex);
* **switches** — a switch's ``capacity`` bounds the total rate it forwards,
  which is the paper's fifth constraint of Eq 3 and the mechanism behind the
  overloaded-``w_1`` motivation of Figure 2.

The model is a fluid simulation: rates stay constant between events; the
engine advances remaining sizes by ``rate * dt`` and asks for the earliest
completion.  A per-flow *packet delay* estimate (Figure 7b's metric) is
derived from an M/M/1-style utilisation curve on the switches the flow
traverses, evaluated when the flow starts.

Allocator architecture (the datacenter-scale rework):

Flow state lives in contiguous slot arrays (``remaining``/``rate``/per-slot
resource index rows) rather than per-object Python attributes, so
``advance``/``time_to_next_completion``/``completed_flows`` are single
vectorised passes.  ``recompute_rates`` is **incremental**: every
``add_flow``/``remove_flow``/``reroute_flow`` records the touched resource
indices as *seeds*, and the next recompute runs progressive filling only
over the connected component(s) of the flow↔resource sharing graph reachable
from those seeds.  Max-min fairness decomposes exactly over connected
components — a component's levels, freeze order and ``remaining -= level *
counts`` updates never read or write another component's state (the
cross-component subtractions of the monolithic fill are exact float no-ops,
``x - level * 0 == x``), and the bottleneck ``argmin`` tie-break (lowest
resource index) is preserved because component resources are kept sorted by
global index — so the restricted fill is **bit-identical** to a full
recompute (property-tested in ``tests/simulator/test_network_incremental``).
When the dirty closure exceeds ``incremental_threshold`` of the active
flows, the allocator falls back to one full fill, which is transparent for
the same reason.

An aggregate per-resource rate array is refreshed from the refilled
component at each recompute (and adjusted incrementally on remove/reroute in
between), serving ``switch_utilisation``/``resource_rates``/
``utilisation_by_*`` in O(1)/O(resources) instead of a per-flow scan — this
is what keeps flow admission (``_estimate_delay``) off the O(switches ×
flows) path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..topology.base import Topology

__all__ = ["ActiveFlow", "FlowNetwork", "DelayModel"]

#: Sub-this remaining bytes count as finished (absorbs rate*dt rounding).
_COMPLETION_EPS = 1e-12


@dataclass(frozen=True)
class DelayModel:
    """Per-packet delay parameters (microseconds).

    ``switch_service_us`` is the nominal per-switch forwarding latency;
    queueing inflates it by ``1 / (1 - rho)`` with utilisation capped at
    ``max_utilisation``; ``link_propagation_us`` adds per-hop wire delay.
    """

    switch_service_us: float = 25.0
    link_propagation_us: float = 2.0
    max_utilisation: float = 0.9


class ActiveFlow:
    """A shuffle flow in flight.

    ``remaining`` and ``rate`` are views into the owning network's slot
    arrays while the flow is active; :meth:`FlowNetwork.remove_flow`
    detaches the object, materialising both values so callers can keep
    reading them after removal (the engine records completion metrics off
    the returned object).
    """

    __slots__ = (
        "flow_id",
        "path",
        "resources",
        "start_time",
        "start_delay_us",
        "num_switches",
        "_net",
        "_slot",
        "_remaining",
        "_rate",
    )

    def __init__(
        self,
        flow_id: int,
        path: tuple[int, ...],
        resources: tuple[int, ...],
        start_time: float,
        num_switches: int,
        net: "FlowNetwork",
        slot: int,
    ) -> None:
        self.flow_id = flow_id
        self.path = path
        self.resources = resources
        self.start_time = start_time
        self.start_delay_us = 0.0
        self.num_switches = num_switches
        self._net: FlowNetwork | None = net
        self._slot = slot
        self._remaining = 0.0
        self._rate = 0.0

    @property
    def remaining(self) -> float:
        net = self._net
        if net is None:
            return self._remaining
        return float(net._rem[self._slot])

    @remaining.setter
    def remaining(self, value: float) -> None:
        net = self._net
        if net is None:
            self._remaining = value
        else:
            net._rem[self._slot] = value

    @property
    def rate(self) -> float:
        net = self._net
        if net is None:
            return self._rate
        return float(net._rate_arr[self._slot])

    @rate.setter
    def rate(self, value: float) -> None:
        net = self._net
        if net is None:
            self._rate = value
        else:
            net._rate_arr[self._slot] = value

    def _detach(self) -> None:
        """Freeze the array-backed fields into the object (on removal)."""
        net = self._net
        if net is not None:
            self._remaining = float(net._rem[self._slot])
            self._rate = float(net._rate_arr[self._slot])
            self._net = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ActiveFlow(flow_id={self.flow_id}, path={self.path}, "
            f"remaining={self.remaining}, rate={self.rate})"
        )


class FlowNetwork:
    """Max-min fair fluid network over a topology.

    ``incremental`` selects the component-restricted allocator (the
    default); ``incremental=False`` forces a full progressive fill on every
    recompute.  Both modes produce bit-identical rates and aggregate
    loads — the flag exists for verification and benchmarking.
    ``incremental_threshold`` is the dirty-closure fraction of active flows
    beyond which an incremental recompute falls back to one full fill.
    """

    def __init__(
        self,
        topology: Topology,
        delay_model: DelayModel | None = None,
        *,
        incremental: bool = True,
        incremental_threshold: float = 0.5,
    ) -> None:
        self.topology = topology
        self.delay_model = delay_model or DelayModel()
        self.incremental = incremental
        self.incremental_threshold = incremental_threshold
        # Resource index space: directed links first, then switches.
        self._link_index: dict[tuple[int, int], int] = {}
        caps: list[float] = []
        for link in topology.links:
            self._link_index[(link.u, link.v)] = len(caps)
            caps.append(link.bandwidth)
            self._link_index[(link.v, link.u)] = len(caps)
            caps.append(link.bandwidth)
        self._switch_resource: dict[int, int] = {}
        for w in topology.switch_ids:
            self._switch_resource[w] = len(caps)
            caps.append(topology.switch(w).capacity)
        self._caps = np.asarray(caps, dtype=np.float64)
        # Nominal capacities; ``_caps`` is ``_base_caps`` scaled by the
        # current per-link degradation factors (fault plane).
        self._base_caps = self._caps.copy()
        # Optional callback mapping a flow id to a human-readable owner
        # description ("job 3 map 7 -> reduce 1"); installed by the engine so
        # unknown-flow/duplicate-flow errors name the owning job/stage.
        self.flow_describer = None  # type: ignore[var-annotated]
        m = len(caps)
        # Aggregate allocated rate per resource (kept in lockstep with the
        # last recompute, minus the rates of flows removed/rerouted since).
        self._agg = np.zeros(m, dtype=np.float64)
        # Active-flow count per resource, for cheap emptiness tests.
        self._res_nflows = np.zeros(m, dtype=np.int64)
        # Slot-array flow state, grown by doubling; a freelist recycles
        # vacated slots so churny workloads stay compact.
        cap0 = 64
        self._rem = np.zeros(cap0, dtype=np.float64)
        self._rate_arr = np.zeros(cap0, dtype=np.float64)
        self._slot_seq = np.zeros(cap0, dtype=np.int64)
        self._slot_res: list[np.ndarray | None] = [None] * cap0
        self._slot_flow: list[ActiveFlow | None] = [None] * cap0
        # Padded resource-incidence matrix: row ``s`` holds slot ``s``'s
        # resource indices padded with the sentinel ``m``, so the closure
        # BFS runs as whole-array gathers instead of per-flow set walks.
        # ``_in_use`` gates vacated rows (their stale contents are ignored).
        self._inc_stride = 8
        self._inc = np.full((cap0, self._inc_stride), m, dtype=np.int64)
        self._in_use = np.zeros(cap0, dtype=bool)
        self._free: list[int] = []
        self._n_slots = 0
        self._seq = 0
        self._flows: dict[int, ActiveFlow] = {}
        # Dirty-tracking: resources touched since the last recompute.
        self._dirty = False
        self._seed_res: set[int] = set()
        # Lazy caches over the active flow set.
        self._order_slots: np.ndarray | None = None
        self._order_fids: np.ndarray | None = None
        self._active_cache: tuple[ActiveFlow, ...] | None = None

    # ------------------------------------------------------------- resources
    def _path_resources(self, path: Sequence[int]) -> tuple[int, ...]:
        res: list[int] = []
        for a, b in zip(path, path[1:]):
            idx = self._link_index.get((a, b))
            if idx is None:
                raise ValueError(f"hop {a}->{b} is not a physical link")
            res.append(idx)
        for node in path:
            if node in self._switch_resource:
                res.append(self._switch_resource[node])
        return tuple(res)

    @property
    def resource_capacities(self) -> np.ndarray:
        """Capacity per resource index (directed links, then switches).

        Read-only view for verification code; mutating it would corrupt the
        allocator.
        """
        return self._caps

    def set_link_capacity_factor(self, u: int, v: int, factor: float) -> None:
        """Scale the physical link ``u``—``v`` to ``factor`` × nominal.

        Applies to both directed resources of the link (full duplex degrades
        symmetrically).  Factor 0.0 models a dead link (flows still routed
        over it would allocate rate 0.0 — the engine reroutes or parks them
        instead), 1.0 restores nominal bandwidth.  The touched resources are
        seeded dirty so the next recompute refills the affected max-min
        component(s).
        """
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"link capacity factor must be in [0, 1], got {factor}")
        fwd = self._link_index.get((u, v))
        if fwd is None:
            raise ValueError(f"({u}, {v}) is not a physical link")
        rev = self._link_index[(v, u)]
        for res in (fwd, rev):
            self._caps[res] = self._base_caps[res] * factor
        self._seed_res.update((fwd, rev))
        self._dirty = True

    def link_capacity_factor(self, u: int, v: int) -> float:
        """Current capacity factor of the physical link ``u``—``v``."""
        res = self._link_index.get((u, v))
        if res is None:
            raise ValueError(f"({u}, {v}) is not a physical link")
        base = self._base_caps[res]
        return float(self._caps[res] / base) if base > 0 else 1.0

    def ensure_rates(self) -> None:
        """Recompute max-min rates if the flow set changed since the last
        allocation — lets external checks read consistent rates."""
        if self._dirty:
            self.recompute_rates()

    def switch_utilisation(self, switch_id: int) -> float:
        """Current rate through a switch divided by its capacity.

        Served from the allocator's aggregate-rate array — O(1), not a scan
        over active flows.
        """
        res = self._switch_resource[switch_id]
        cap = self._caps[res]
        return float(self._agg[res] / cap) if cap > 0 else 0.0

    def resource_rates(self) -> np.ndarray:
        """Aggregate allocated rate per resource index (read-only snapshot).

        Index space matches :attr:`resource_capacities` — directed links
        first, then switches.  Callers wanting a *consistent* snapshot (the
        telemetry plane) should call :meth:`ensure_rates` first; this method
        itself never recomputes, so it is side-effect free.
        """
        return self._agg.copy()

    def utilisation_by_switch(self) -> dict[int, float]:
        """``{switch_id: rate / capacity}`` over every switch of the fabric."""
        used = self._agg
        out: dict[int, float] = {}
        for w, res in self._switch_resource.items():
            cap = self._caps[res]
            out[w] = float(used[res] / cap) if cap > 0 else 0.0
        return out

    def utilisation_by_link(self) -> dict[tuple[int, int], float]:
        """``{(u, v): rate / bandwidth}`` per *directed* link."""
        used = self._agg
        out: dict[tuple[int, int], float] = {}
        for (u, v), res in self._link_index.items():
            cap = self._caps[res]
            out[(u, v)] = float(used[res] / cap) if cap > 0 else 0.0
        return out

    # ------------------------------------------------------------ slot admin
    def _alloc_slot(self) -> int:
        if self._free:
            return self._free.pop()
        slot = self._n_slots
        if slot == len(self._rem):
            new_cap = 2 * len(self._rem)
            for name in ("_rem", "_rate_arr", "_slot_seq", "_in_use"):
                old = getattr(self, name)
                grown = np.zeros(new_cap, dtype=old.dtype)
                grown[: len(old)] = old
                setattr(self, name, grown)
            inc = np.full(
                (new_cap, self._inc_stride), len(self._caps), dtype=np.int64
            )
            inc[: len(self._inc)] = self._inc
            self._inc = inc
            self._slot_res.extend([None] * (new_cap - len(self._slot_res)))
            self._slot_flow.extend([None] * (new_cap - len(self._slot_flow)))
        self._n_slots += 1
        return slot

    def _set_inc_row(self, slot: int, res_arr: np.ndarray) -> None:
        """Write a slot's incidence row, widening the padded matrix when a
        path touches more resources than any seen before."""
        k = res_arr.size
        m = len(self._caps)
        if k > self._inc_stride:
            stride = max(k, 2 * self._inc_stride)
            grown = np.full((len(self._inc), stride), m, dtype=np.int64)
            grown[:, : self._inc_stride] = self._inc
            self._inc, self._inc_stride = grown, stride
        row = self._inc[slot]
        row[:k] = res_arr
        row[k:] = m

    def _free_slot(self, slot: int) -> None:
        self._rem[slot] = 0.0
        self._rate_arr[slot] = 0.0
        self._slot_res[slot] = None
        self._slot_flow[slot] = None
        self._in_use[slot] = False
        self._free.append(slot)

    def _invalidate_flow_caches(self) -> None:
        self._order_slots = None
        self._order_fids = None
        self._active_cache = None

    def _ordered(self) -> tuple[np.ndarray, np.ndarray]:
        """(slots, flow_ids) of the active flows in insertion order."""
        if self._order_slots is None:
            n = len(self._flows)
            self._order_fids = np.fromiter(
                self._flows.keys(), dtype=np.int64, count=n
            )
            self._order_slots = np.fromiter(
                (f._slot for f in self._flows.values()),
                dtype=np.int64,
                count=n,
            )
        return self._order_slots, self._order_fids

    # ----------------------------------------------------------------- flows
    @property
    def active_flows(self) -> tuple[ActiveFlow, ...]:
        if self._active_cache is None:
            self._active_cache = tuple(
                self._flows[fid] for fid in sorted(self._flows)
            )
        return self._active_cache

    def _lookup(self, flow_id: int, operation: str) -> ActiveFlow:
        """Active flow by id, or a diagnosable KeyError naming the id and
        how many flows are live (typos and double-removals both surface as
        "unknown flow" — the count distinguishes an empty network from a
        wrong id)."""
        flow = self._flows.get(flow_id)
        if flow is None:
            raise KeyError(
                f"{operation}: unknown flow {flow_id}"
                f"{self._describe(flow_id)} "
                f"({len(self._flows)} active flows)"
            )
        return flow

    def _describe(self, flow_id: int) -> str:
        """`` [job …]`` suffix from :attr:`flow_describer`, or ``""``."""
        if self.flow_describer is None:
            return ""
        try:
            described = self.flow_describer(flow_id)
        except Exception:  # pragma: no cover - diagnostics must not mask
            return ""
        return f" [{described}]" if described else ""

    def add_flow(
        self,
        flow_id: int,
        path: Sequence[int],
        size: float,
        now: float = 0.0,
        remaining: float | None = None,
    ) -> ActiveFlow:
        """Start a flow; co-located endpoints (single-node path) are
        rejected — the engine should complete them instantly instead.

        ``remaining`` (defaults to ``size``) lets the fault-recovery layer
        resume a parked flow with its transferred bytes preserved.
        """
        if flow_id in self._flows:
            raise ValueError(
                f"flow {flow_id}{self._describe(flow_id)} already active"
            )
        if len(path) < 2:
            raise ValueError("network flows need a multi-node path")
        if size <= 0:
            raise ValueError("flow size must be positive")
        if remaining is None:
            remaining = size
        if not 0 < remaining <= size:
            raise ValueError("remaining must be in (0, size]")
        resources = self._path_resources(path)
        slot = self._alloc_slot()
        flow = ActiveFlow(
            flow_id=flow_id,
            path=tuple(path),
            resources=resources,
            start_time=now,
            num_switches=sum(1 for n in path if n in self._switch_resource),
            net=self,
            slot=slot,
        )
        self._rem[slot] = remaining
        self._rate_arr[slot] = 0.0
        self._slot_seq[slot] = self._seq
        self._seq += 1
        res_arr = np.asarray(resources, dtype=np.int64)
        self._slot_res[slot] = res_arr
        self._slot_flow[slot] = flow
        self._set_inc_row(slot, res_arr)
        self._in_use[slot] = True
        self._res_nflows[res_arr] += 1
        self._flows[flow_id] = flow
        self._seed_res.update(resources)
        self._dirty = True
        self._invalidate_flow_caches()
        # The new flow contributes rate 0.0 until the next recompute, so the
        # aggregate array already reflects the utilisation its own delay
        # estimate should see.
        flow.start_delay_us = self._estimate_delay(flow)
        return flow

    def remove_flow(self, flow_id: int) -> ActiveFlow:
        flow = self._lookup(flow_id, "remove_flow")
        slot = flow._slot
        rate = self._rate_arr[slot]
        res_arr = self._slot_res[slot]
        assert res_arr is not None
        if rate != 0.0:
            self._agg[res_arr] -= rate
        self._res_nflows[res_arr] -= 1
        self._seed_res.update(flow.resources)
        flow._detach()
        del self._flows[flow_id]
        self._free_slot(slot)
        self._dirty = True
        self._invalidate_flow_caches()
        return flow

    def reroute_flow(self, flow_id: int, path: Sequence[int]) -> ActiveFlow:
        """Migrate a live flow onto a new path, preserving its remaining
        bytes (the online-rebalancing hook of Section 5.1.1)."""
        flow = self._lookup(flow_id, "reroute_flow")
        if len(path) < 2:
            raise ValueError("network flows need a multi-node path")
        if path[0] != flow.path[0] or path[-1] != flow.path[-1]:
            raise ValueError("reroute must preserve the flow's endpoints")
        new_resources = self._path_resources(path)
        slot = flow._slot
        rate = self._rate_arr[slot]
        old_arr = self._slot_res[slot]
        assert old_arr is not None
        new_arr = np.asarray(new_resources, dtype=np.int64)
        if rate != 0.0:
            self._agg[old_arr] -= rate
            self._agg[new_arr] += rate
        self._res_nflows[old_arr] -= 1
        self._seed_res.update(flow.resources)
        flow.path = tuple(path)
        flow.resources = new_resources
        flow.num_switches = sum(
            1 for n in path if n in self._switch_resource
        )
        self._slot_res[slot] = new_arr
        self._set_inc_row(slot, new_arr)
        self._res_nflows[new_arr] += 1
        self._seed_res.update(new_resources)
        self._dirty = True
        return flow

    def _estimate_delay(self, flow: ActiveFlow) -> float:
        """Packet-delay estimate (us) along the flow's path at start time."""
        dm = self.delay_model
        delay = dm.link_propagation_us * (len(flow.path) - 1)
        if flow.num_switches == 0:
            return delay
        res_arr = self._slot_res[flow._slot]
        assert res_arr is not None
        # Switch resources sit after the per-hop link entries of the row.
        sw = res_arr[len(flow.path) - 1 :]
        caps = self._caps[sw]
        util = np.zeros(sw.size, dtype=np.float64)
        positive = caps > 0
        np.divide(self._agg[sw], caps, out=util, where=positive)
        # Aggregate entries can drift a few ulps below zero between
        # recomputes (float removal refunds); clamp like the capped side.
        rho = np.clip(util, 0.0, dm.max_utilisation)
        return float(delay + (dm.switch_service_us / (1.0 - rho)).sum())

    # ------------------------------------------------------------ rate logic
    def recompute_rates(self) -> None:
        """Max-min fair allocation via (incremental) progressive filling.

        Consumes the accumulated dirty-resource seeds: in incremental mode
        only the connected component(s) of the flow↔resource sharing graph
        reachable from a seed are refilled (falling back to one full fill
        when the closure covers more than ``incremental_threshold`` of the
        active flows); otherwise every active flow is refilled.  Both paths
        produce bit-identical rates and aggregates.
        """
        seeds = self._seed_res
        self._seed_res = set()
        self._dirty = False
        if not self._flows:
            if seeds:
                self._agg[np.fromiter(seeds, dtype=np.int64)] = 0.0
            return
        if self.incremental and seeds:
            slots = self._closure_slots(seeds)
            if slots.size > self.incremental_threshold * len(self._flows):
                slots = self._ordered()[0]
        else:
            slots = self._ordered()[0]
        self._fill(slots, seeds)

    def _closure_slots(self, seeds: set[int]) -> np.ndarray:
        """Slots of every flow in a sharing-graph component touching a seed
        resource, in insertion (sequence) order.

        Whole-array BFS over the padded incidence matrix: each round marks
        the in-use slots touching a visited resource, then marks those
        slots' resources visited.  Rounds are bounded by the sharing graph's
        diameter, and each one is a few vectorised gathers — no per-flow
        Python loop.
        """
        m = len(self._caps)
        inc = self._inc[: self._n_slots]
        in_use = self._in_use[: self._n_slots]
        # Entry ``m`` is the padding sentinel and must stay unvisited, or
        # every padded row would read as touching a visited resource.
        visited_res = np.zeros(m + 1, dtype=bool)
        visited_res[np.fromiter(seeds, dtype=np.int64, count=len(seeds))] = (
            True
        )
        visited_slot = np.zeros(self._n_slots, dtype=bool)
        while True:
            new = visited_res[inc].any(axis=1)
            new &= in_use
            new &= ~visited_slot
            if not new.any():
                break
            visited_slot |= new
            visited_res[inc[new]] = True
            visited_res[m] = False
        slots = np.flatnonzero(visited_slot)
        # Seq order == insertion order: keeps freeze bookkeeping and the
        # aggregate bincount accumulation order identical to a full fill.
        return slots[np.argsort(self._slot_seq[slots], kind="stable")]

    def _fill(self, slots: np.ndarray, seeds: set[int]) -> None:
        """Progressive filling restricted to ``slots`` (insertion order).

        ``seeds`` are the dirty resources accumulated since the previous
        recompute; any seed left without users is snapped to aggregate 0.0
        so incremental removal refunds cannot strand float drift on an
        otherwise idle resource.
        """
        if slots.size:
            # Row-major gather out of the padded incidence matrix ==
            # concatenating each slot's resource row in slot order.
            rows2d = self._inc[slots]
            pad = rows2d != len(self._caps)
            lengths = pad.sum(axis=1)
            flat_global = rows2d[pad]
            # Component resources sorted ascending: preserves the global
            # lowest-index argmin tie-break of the monolithic fill.
            res_ids, flat_local = np.unique(flat_global, return_inverse=True)
            n_res = res_ids.size
            n_flows = slots.size
            flow_col = np.repeat(np.arange(n_flows), lengths)
            flow_ptr = np.zeros(n_flows + 1, dtype=np.int64)
            np.cumsum(lengths, out=flow_ptr[1:])
            counts = np.bincount(flat_local, minlength=n_res)
            res_ptr = np.zeros(n_res + 1, dtype=np.int64)
            np.cumsum(counts, out=res_ptr[1:])
            res_flows = flow_col[np.argsort(flat_local, kind="stable")]

            remaining = self._caps[res_ids].copy()
            frozen = np.zeros(n_flows, dtype=bool)
            rates = np.zeros(n_flows, dtype=np.float64)
            unfrozen = n_flows
            with np.errstate(divide="ignore", invalid="ignore"):
                fair = np.where(counts > 0, remaining / counts, np.inf)
                while unfrozen:
                    bottleneck = int(fair.argmin())
                    level = fair[bottleneck]
                    if not np.isfinite(level):
                        # Shouldn't happen (every flow uses >= 1 resource),
                        # but avoid spinning if it does.
                        rates[~frozen] = np.inf
                        break
                    members = res_flows[
                        res_ptr[bottleneck] : res_ptr[bottleneck + 1]
                    ]
                    to_freeze = members[~frozen[members]]
                    rates[to_freeze] = level
                    frozen[to_freeze] = True
                    unfrozen -= to_freeze.size
                    # Gather the frozen flows' incidence segments with one
                    # repeat/cumsum indexing pass (no per-flow concatenate).
                    lens = lengths[to_freeze]
                    seg_end = np.cumsum(lens)
                    idx = np.repeat(
                        flow_ptr[to_freeze] - (seg_end - lens), lens
                    ) + np.arange(seg_end[-1])
                    drained = np.bincount(flat_local[idx], minlength=n_res)
                    counts -= drained
                    touched = np.flatnonzero(drained)
                    # Charge the frozen flows against every resource they
                    # touch.  A level of exactly 0.0 (zero-capacity or fully
                    # drained bottleneck) is skipped outright: the
                    # subtraction would be an exact no-op, and skipping it
                    # guarantees degenerate resources can never accumulate
                    # signed-zero/drift artefacts however often the
                    # incremental allocator reruns the loop.
                    if level > 0.0:
                        remaining[touched] = np.maximum(
                            remaining[touched] - level * drained[touched],
                            0.0,
                        )
                    # Only drained resources change their fair share; every
                    # other entry would divide the same floats to the same
                    # result, so the refresh is restricted to them.
                    tc = counts[touched]
                    fair[touched] = np.where(
                        tc > 0, remaining[touched] / tc, np.inf
                    )
            self._rate_arr[slots] = rates
            # Aggregate refresh for the refilled component: bincount
            # accumulates sequentially in input (insertion) order, so a
            # component-local refresh writes byte-identical sums to the ones
            # a full-network refresh would.
            self._agg[res_ids] = np.bincount(
                flat_local, weights=rates[flow_col], minlength=n_res
            )
        for r in seeds:
            if self._res_nflows[r] == 0:
                self._agg[r] = 0.0

    def advance(self, dt: float) -> None:
        """Progress every active flow by ``dt`` at its current rate."""
        if dt < 0:
            raise ValueError("cannot advance time backwards")
        if self._dirty:
            self.recompute_rates()
        rem = self._rem
        rem -= self._rate_arr * dt
        rem[rem < _COMPLETION_EPS] = 0.0

    def completed_flows(self) -> list[int]:
        slots, fids = self._ordered()
        return [int(fid) for fid in fids[self._rem[slots] <= 0.0]]

    def time_to_next_completion(self) -> float | None:
        """Earliest completion horizon at current rates (None when idle)."""
        if self._dirty:
            self.recompute_rates()
        slots, _ = self._ordered()
        rates = self._rate_arr[slots]
        positive = rates > 0.0
        if not positive.any():
            return None
        return float((self._rem[slots][positive] / rates[positive]).min())
