"""Discrete-event execution substrate: events, fluid network, engine,
metrics."""

from .engine import MapReduceSimulator, SimulationConfig, run_simulation
from .events import Event, EventKind, EventQueue
from .metrics import (
    FlowRecord,
    JobRecord,
    MetricsCollector,
    RejectionRecord,
    TaskRecord,
    jain_fairness,
)
from .network import ActiveFlow, DelayModel, FlowNetwork
from .trace import TraceEvent, dump_trace, load_trace, save_trace_file, trace_from_metrics

__all__ = [
    "MapReduceSimulator",
    "SimulationConfig",
    "run_simulation",
    "Event",
    "EventKind",
    "EventQueue",
    "MetricsCollector",
    "JobRecord",
    "TaskRecord",
    "FlowRecord",
    "RejectionRecord",
    "jain_fairness",
    "FlowNetwork",
    "ActiveFlow",
    "DelayModel",
    "TraceEvent",
    "trace_from_metrics",
    "dump_trace",
    "save_trace_file",
    "load_trace",
]
