"""Discrete-event MapReduce simulation.

Substitute for the paper's 9-node Hadoop YARN testbed: jobs arrive, a
pluggable scheduler places their containers on the hierarchical fabric, Map
tasks compute, each finished Map starts its shuffle flows into the max-min fair
:class:`~repro.simulator.network.FlowNetwork`, and Reduce tasks finish after
their last inbound flow plus compute time.  The collector then yields the
job/task/flow statistics behind Figures 6 and 7.

Execution model (simplifications are noted in DESIGN.md):

* A job is **admitted** FIFO when the cluster has slots for its first Map
  wave plus all its Reduce containers (Hadoop schedules reduces early —
  "well before the completed distribution of Map output is known").
* Map tasks of a wave run concurrently; the wave barrier releases the Map
  containers, and subsequent waves are placed by the scheduler's
  subsequent-wave entry point (Section 5.3.2).
* A Map's input read is node-local, rack-local or remote per the HDFS block
  placement; non-local reads add a fetch penalty to the task duration and are
  accounted as remote-Map traffic (Figure 1).
* Network-aware schedulers (Hit) route each starting flow through the live
  :class:`~repro.core.policy.PolicyController` (optimal, capacity-aware);
  baselines use the fabric's static shortest path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.container import Container, TaskKind, TaskRef
from ..cluster.resources import Resources
from ..cluster.state import ClusterState
from ..core.policy import CostModel, NoFeasiblePathError, PolicyController
from ..core.taa import TAAInstance
from ..mapreduce.hdfs import HdfsModel
from ..mapreduce.job import JobSpec, shuffle_matrix
from ..mapreduce.shuffle import ShuffleFlow
from ..obs.runtime import STATE as _OBS
from ..schedulers.base import Scheduler, SchedulingContext
from ..topology.base import Topology
from .events import Event, EventKind, EventQueue
from .metrics import FlowRecord, JobRecord, MetricsCollector, TaskRecord
from .network import DelayModel, FlowNetwork

__all__ = ["SimulationConfig", "MapReduceSimulator", "run_simulation"]


@dataclass(frozen=True)
class SimulationConfig:
    """Tunables of the execution model."""

    container_demand: Resources = Resources(1.0, 0.0)
    #: Cap on a single job's concurrent Map containers; None = as many as fit.
    map_slots_per_job: int | None = None
    #: Shuffle-rate normalisation: flow demand = size / rate_epoch.
    rate_epoch: float = 1.0
    #: Rack-local / remote input fetch penalties as multiples of
    #: split_size / server_link_bandwidth.  Input streaming overlaps map
    #: compute in Hadoop, so the penalty is a fraction of the full transfer.
    rack_read_factor: float = 0.25
    remote_read_factor: float = 0.5
    hdfs_replication: int = 3
    #: Server heterogeneity: compute speeds are sampled uniformly from
    #: ``[1 - spread, 1 + spread]`` (0 = homogeneous cluster).  Models the
    #: heterogeneous environments of the paper's related work (Tarazu, LATE).
    server_speed_spread: float = 0.0
    seed: int = 0
    delay_model: DelayModel = field(default_factory=DelayModel)
    cost_model: CostModel = field(default_factory=CostModel)
    max_events: int = 2_000_000


@dataclass
class _ReduceState:
    container_id: int
    index: int
    input_size: float
    pending_flows: set[int] = field(default_factory=set)
    start_time: float = 0.0
    scheduled: bool = False


@dataclass
class _JobState:
    spec: JobSpec
    matrix: np.ndarray
    submit_time: float
    start_time: float = -1.0
    wave_size: int = 0
    next_map_index: int = 0
    maps_running: int = 0
    maps_finished: int = 0
    map_containers: dict[int, int] = field(default_factory=dict)  # cid -> map idx
    reduces: dict[int, _ReduceState] = field(default_factory=dict)  # by index
    remote_map_traffic: float = 0.0
    reduces_finished: int = 0

    @property
    def all_maps_done(self) -> bool:
        return self.maps_finished >= self.spec.num_maps

    @property
    def done(self) -> bool:
        return self.all_maps_done and self.reduces_finished >= self.spec.num_reduces


class MapReduceSimulator:
    """One simulation run: a scheduler, a fabric, a stream of jobs."""

    def __init__(
        self,
        topology: Topology,
        scheduler: Scheduler,
        jobs: list[JobSpec],
        config: SimulationConfig | None = None,
    ) -> None:
        self.topology = topology
        self.scheduler = scheduler
        self.config = config or SimulationConfig()
        self.jobs = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        self.cluster = ClusterState(topology)
        self.controller = PolicyController(
            topology, cost_model=self.config.cost_model
        )
        self.network = FlowNetwork(topology, self.config.delay_model)
        self.metrics = MetricsCollector()
        self.hdfs = HdfsModel(
            topology,
            replication=self.config.hdfs_replication,
            seed=self.config.seed,
        )
        self._rng = np.random.default_rng(self.config.seed)
        # Separate stream for ECMP path draws: routing choices must not
        # perturb workload sampling (keeps flow sizes identical across
        # schedulers under one seed).
        self._ecmp_rng = np.random.default_rng(self.config.seed + 0x5EED)
        spread = self.config.server_speed_spread
        if not 0.0 <= spread < 1.0:
            raise ValueError("server_speed_spread must be in [0, 1)")
        #: Per-server compute speed multipliers (1.0 = nominal).
        self.server_speeds: dict[int, float] = {
            sid: (
                float(self._rng.uniform(1.0 - spread, 1.0 + spread))
                if spread > 0
                else 1.0
            )
            for sid in topology.server_ids
        }
        self._queue = EventQueue()
        self._pending: list[_JobState] = []  # FIFO admission queue
        self._jobs_by_id: dict[int, _JobState] = {}
        self._flow_index: dict[int, tuple[int, int]] = {}  # fid -> (job, reduce idx)
        self._flow_objects: dict[int, ShuffleFlow] = {}
        self._flow_by_endpoints: dict[tuple[int, int], int] = {}
        self._next_container_id = 0
        self._next_flow_id = 0
        self._net_epoch = 0
        self._net_time = 0.0

    # ------------------------------------------------------------------- run
    def run(self) -> MetricsCollector:
        """Execute to completion and return the metrics collector."""
        for spec in self.jobs:
            self._queue.push(
                Event(spec.submit_time, EventKind.JOB_ARRIVAL, payload=spec)
            )
        events = 0
        observed = _OBS.enabled
        if observed:
            _OBS.tracer.event(
                "sim.run.start",
                scheduler=self.scheduler.name,
                jobs=len(self.jobs),
                servers=self.topology.num_servers,
            )
        while self._queue:
            event = self._queue.pop()
            events += 1
            if events > self.config.max_events:
                raise RuntimeError("simulation exceeded max_events — livelock?")
            if observed:
                self._dispatch_traced(event)
                continue
            self._dispatch(event)
        unfinished = [j for j in self._jobs_by_id.values() if not j.done]
        if unfinished or self._pending:
            raise RuntimeError(
                f"simulation ended with {len(unfinished)} unfinished and "
                f"{len(self._pending)} unadmitted jobs"
            )
        if observed:
            _OBS.tracer.event(
                "sim.run.end", scheduler=self.scheduler.name, events=events
            )
            if _OBS.checker is not None:
                # End-of-run quiescence: every flow drained, every policy
                # released, switch loads back to exactly their base values.
                _OBS.checker.check_quiescent(
                    self.controller, self.network, where="sim.run.end"
                )
        return self.metrics

    def _dispatch(self, event: Event) -> None:
        """Process one event (the hot loop body)."""
        self._advance_network(event.time)
        if event.kind is EventKind.NETWORK and event.epoch != self._net_epoch:
            self._drain_completed(event.time)
            return
        if event.kind is EventKind.JOB_ARRIVAL:
            self._on_job_arrival(event.time, event.payload)
        elif event.kind is EventKind.MAP_DONE:
            self._on_map_done(event.time, *event.payload)
            self._maybe_rebalance()
        elif event.kind is EventKind.REDUCE_DONE:
            self._on_reduce_done(event.time, *event.payload)
        self._drain_completed(event.time)
        self._schedule_network_checkpoint(event.time)

    def _dispatch_traced(self, event: Event) -> None:
        """Observed-mode dispatch: event counters/timers plus the network
        and controller invariant checkpoints."""
        tracer = _OBS.tracer
        tracer.count(f"sim.event.{event.kind.name.lower()}")
        with tracer.timeit("sim.dispatch"):
            self._dispatch(event)

    # ---------------------------------------------------------- network glue
    def _advance_network(self, now: float) -> None:
        dt = now - self._net_time
        if dt > 0:
            self.network.advance(dt)
        self._net_time = now
        if _OBS.enabled and _OBS.checker is not None:
            # Checkpoint: the fluid allocation must stay feasible every time
            # simulated time moves.
            _OBS.checker.check_flow_conservation(
                self.network, where=f"advance t={now:.6g}"
            )

    def _schedule_network_checkpoint(self, now: float) -> None:
        self._net_epoch += 1
        horizon = self.network.time_to_next_completion()
        if horizon is not None:
            self._queue.push(
                Event(
                    now + horizon,
                    EventKind.NETWORK,
                    epoch=self._net_epoch,
                )
            )

    def _maybe_rebalance(self) -> None:
        """Online policy rebalancing sweep (Section 5.1.1), when enabled.

        Re-runs the optimal-path DP over live flows and migrates the ones
        that gain past the hysteresis threshold, then syncs the fluid
        network's paths with the controller's updated policies.
        """
        config = getattr(self.scheduler, "online_rebalance", None)
        if config is None:
            return
        active_ids = {f.flow_id for f in self.network.active_flows}
        if not active_ids:
            return
        from ..core.rebalance import rebalance_flows

        live = [self._flow_objects[fid] for fid in active_ids]
        rebalance_flows(self.controller, live, config)
        for fid in active_ids:
            policy = self.controller.policy_of(fid)
            if policy is None:
                continue
            current = next(
                f for f in self.network.active_flows if f.flow_id == fid
            )
            if policy.path != current.path:
                self.network.reroute_flow(fid, policy.path)

    def _drain_completed(self, now: float) -> None:
        for fid in self.network.completed_flows():
            active = self.network.remove_flow(fid)
            self.controller.release(fid)
            flow = self._flow_objects.pop(fid)
            self.metrics.record_flow(
                FlowRecord(
                    flow_id=fid,
                    job_id=flow.job_id,
                    size=flow.size,
                    start=active.start_time,
                    finish=now,
                    num_switches=active.num_switches,
                    delay_us=active.start_delay_us,
                )
            )
            self._flow_done(now, fid)
        if _OBS.enabled and _OBS.checker is not None:
            # Checkpoint: after completions are drained the controller's
            # bookkeeping and the shared cluster must be consistent.
            where = f"drain t={now:.6g}"
            _OBS.checker.check_controller(self.controller, where=where)
            _OBS.checker.check_server_capacity(self.cluster, where=where)

    def _flow_done(self, now: float, fid: int) -> None:
        job_id, reduce_index = self._flow_index.pop(fid)
        job = self._jobs_by_id[job_id]
        reduce_state = job.reduces[reduce_index]
        reduce_state.pending_flows.discard(fid)
        self._maybe_finish_reduce(now, job, reduce_state)

    def _maybe_finish_reduce(
        self, now: float, job: _JobState, reduce_state: _ReduceState
    ) -> None:
        if reduce_state.scheduled or not job.all_maps_done:
            return
        if reduce_state.pending_flows:
            return
        reduce_state.scheduled = True
        server = self.cluster.container(reduce_state.container_id).server_id
        speed = self.server_speeds[server] if server is not None else 1.0
        compute = job.spec.reduce_duration(reduce_state.input_size) / speed
        self._queue.push(
            Event(
                now + compute,
                EventKind.REDUCE_DONE,
                payload=(job.spec.job_id, reduce_state.index),
            )
        )

    # ------------------------------------------------------------- admission
    def _free_slots(self) -> int:
        demand = self.config.container_demand
        slots = 0
        for sid in self.cluster.server_ids:
            residual = self.cluster.residual(sid)
            if demand.memory > 0:
                by_mem = int(residual.memory // demand.memory)
            else:
                by_mem = self.topology.num_servers * 1000
            if demand.vcores > 0:
                by_cpu = int(residual.vcores // demand.vcores)
            else:
                by_cpu = by_mem
            slots += min(by_mem, by_cpu)
        return slots

    def _on_job_arrival(self, now: float, spec: JobSpec) -> None:
        state = _JobState(
            spec=spec,
            matrix=shuffle_matrix(spec, self._rng),
            submit_time=now,
        )
        self.hdfs.place_job_blocks(spec)
        self._jobs_by_id[spec.job_id] = state
        self._pending.append(state)
        self._try_admit(now)

    def _try_admit(self, now: float) -> None:
        while self._pending:
            job = self._pending[0]
            spec = job.spec
            free = self._free_slots()
            wave = spec.num_maps
            if self.config.map_slots_per_job is not None:
                wave = min(wave, self.config.map_slots_per_job)
            needed_min = 1 + spec.num_reduces  # at least one map slot
            if free < needed_min:
                return  # FIFO: head blocks the queue (no starvation)
            wave = min(wave, max(1, free - spec.num_reduces))
            self._pending.pop(0)
            job.wave_size = wave
            job.start_time = now
            self._start_job(now, job)

    # -------------------------------------------------------------- placement
    def _new_container(self, task: TaskRef) -> int:
        cid = self._next_container_id
        self._next_container_id += 1
        container = Container(
            container_id=cid, demand=self.config.container_demand, task=task
        )
        self.cluster.add_container(container)
        return cid

    def _make_flows(
        self, job: _JobState, map_cids: dict[int, int]
    ) -> list[ShuffleFlow]:
        """Flows from the given wave's maps to every reduce of the job."""
        flows = []
        for cid, mi in map_cids.items():
            for reduce_state in job.reduces.values():
                size = float(job.matrix[mi, reduce_state.index])
                if size <= 1e-12:
                    continue
                flows.append(
                    ShuffleFlow(
                        flow_id=self._next_flow_id,
                        job_id=job.spec.job_id,
                        map_index=mi,
                        reduce_index=reduce_state.index,
                        src_container=cid,
                        dst_container=reduce_state.container_id,
                        size=size,
                        rate=size / self.config.rate_epoch,
                    )
                )
                self._next_flow_id += 1
        return flows

    def _planning_context(
        self, flows: list[ShuffleFlow]
    ) -> SchedulingContext:
        """Per-job planning instance over the shared cluster state."""
        planner = PolicyController(
            self.topology, cost_model=self.config.cost_model
        )
        planner.base_loads_from(self.controller)
        taa = TAAInstance(
            self.topology,
            containers=[],
            flows=flows,
            cluster=self.cluster,
            controller=planner,
        )
        return SchedulingContext(taa=taa, hdfs=self.hdfs, rng=self._rng)

    def _start_job(self, now: float, job: _JobState) -> None:
        spec = job.spec
        for ri in range(spec.num_reduces):
            cid = self._new_container(TaskRef(spec.job_id, TaskKind.REDUCE, ri))
            job.reduces[ri] = _ReduceState(
                container_id=cid,
                index=ri,
                input_size=float(job.matrix[:, ri].sum()),
                start_time=now,
            )
        map_cids: dict[int, int] = {}
        for _ in range(min(job.wave_size, spec.num_maps)):
            mi = job.next_map_index
            job.next_map_index += 1
            cid = self._new_container(TaskRef(spec.job_id, TaskKind.MAP, mi))
            map_cids[cid] = mi
        job.map_containers = map_cids

        flows = self._make_flows(job, map_cids)
        self._register_flows(job, flows)
        ctx = self._planning_context(flows)
        self.scheduler.place_initial_wave(
            ctx,
            spec,
            list(map_cids),
            [r.container_id for r in job.reduces.values()],
        )
        self._launch_maps(now, job, map_cids)

    def _register_flows(self, job: _JobState, flows: list[ShuffleFlow]) -> None:
        for flow in flows:
            self._flow_objects[flow.flow_id] = flow
            self._flow_index[flow.flow_id] = (job.spec.job_id, flow.reduce_index)
            self._flow_by_endpoints[(flow.src_container, flow.dst_container)] = (
                flow.flow_id
            )
            job.reduces[flow.reduce_index].pending_flows.add(flow.flow_id)

    def _launch_maps(
        self, now: float, job: _JobState, map_cids: dict[int, int]
    ) -> None:
        spec = job.spec
        for cid, mi in map_cids.items():
            server = self.cluster.container(cid).server_id
            assert server is not None, "scheduler left a map container unplaced"
            duration = (
                spec.map_duration / self.server_speeds[server]
                + self._read_penalty(job, mi, server)
            )
            job.maps_running += 1
            self._queue.push(
                Event(
                    now + duration,
                    EventKind.MAP_DONE,
                    payload=(spec.job_id, cid, mi, now),
                )
            )

    def _read_penalty(self, job: _JobState, map_index: int, server: int) -> float:
        locality = self.hdfs.locality(job.spec.job_id, map_index, server)
        if locality == "node-local":
            return 0.0
        split = job.spec.map_input_size
        job.remote_map_traffic += split
        bandwidth = min(
            self.topology.link(server, n).bandwidth
            for n in self.topology.neighbors(server)
        )
        factor = (
            self.config.rack_read_factor
            if locality == "rack-local"
            else self.config.remote_read_factor
        )
        return factor * split / bandwidth

    # --------------------------------------------------------------- map side
    def _on_map_done(
        self, now: float, job_id: int, cid: int, map_index: int, started: float
    ) -> None:
        job = self._jobs_by_id[job_id]
        job.maps_running -= 1
        job.maps_finished += 1
        self.metrics.record_task(
            TaskRecord(
                job_id=job_id,
                kind="map",
                index=map_index,
                start=started,
                finish=now,
            )
        )
        self._start_flows_from(now, job, cid, map_index)

        if job.maps_running == 0:
            # Wave barrier: recycle the map containers.
            for done_cid in job.map_containers:
                if self.cluster.container(done_cid).is_placed:
                    self.cluster.unplace(done_cid)
            job.map_containers = {}
            if job.next_map_index < job.spec.num_maps:
                self._start_next_wave(now, job)
            else:
                for reduce_state in job.reduces.values():
                    self._maybe_finish_reduce(now, job, reduce_state)
            self._try_admit(now)

    def _start_next_wave(self, now: float, job: _JobState) -> None:
        spec = job.spec
        remaining = spec.num_maps - job.next_map_index
        count = min(job.wave_size, remaining)
        map_cids: dict[int, int] = {}
        for _ in range(count):
            mi = job.next_map_index
            job.next_map_index += 1
            cid = self._new_container(TaskRef(spec.job_id, TaskKind.MAP, mi))
            map_cids[cid] = mi
        job.map_containers = map_cids
        flows = self._make_flows(job, map_cids)
        self._register_flows(job, flows)
        ctx = self._planning_context(flows)
        self.scheduler.place_map_wave(ctx, spec, list(map_cids))
        self._launch_maps(now, job, map_cids)

    def _start_flows_from(
        self, now: float, job: _JobState, map_cid: int, map_index: int
    ) -> None:
        src = self.cluster.container(map_cid).server_id
        assert src is not None
        for reduce_state in job.reduces.values():
            fid = self._flow_by_endpoints.pop(
                (map_cid, reduce_state.container_id), None
            )
            if fid is None:
                continue
            flow = self._flow_objects[fid]
            dst = self.cluster.container(reduce_state.container_id).server_id
            assert dst is not None
            if src == dst:
                # Local shuffle: no network traversal, instant delivery.
                self.metrics.record_flow(
                    FlowRecord(
                        flow_id=fid,
                        job_id=job.spec.job_id,
                        size=flow.size,
                        start=now,
                        finish=now,
                        num_switches=0,
                        delay_us=0.0,
                    )
                )
                del self._flow_objects[fid]
                self._flow_done(now, fid)
                continue
            path = self._route(flow, src, dst)
            self.network.add_flow(fid, path, flow.size, now)

    def _route(self, flow: ShuffleFlow, src: int, dst: int) -> tuple[int, ...]:
        if self.scheduler.network_aware:
            try:
                policy = self.controller.route_flow(flow, src, dst)
                return policy.path
            except NoFeasiblePathError:
                # Fabric saturated: fall through to capacity-ignoring optimum
                # (the physical network still carries it, just congested).
                policy = self.controller.route_flow(
                    flow, src, dst, enforce_capacity=False
                )
                return policy.path
        if getattr(self.scheduler, "ecmp", False):
            # ECMP hashing: uniform choice over the equal-cost path set.
            from ..topology.routing import enumerate_paths

            candidates = enumerate_paths(self.topology, src, dst, slack=0,
                                         limit=64)
            return candidates[int(self._ecmp_rng.integers(len(candidates)))]
        return self.topology.shortest_path(src, dst)

    # ------------------------------------------------------------ reduce side
    def _on_reduce_done(self, now: float, job_id: int, reduce_index: int) -> None:
        job = self._jobs_by_id[job_id]
        reduce_state = job.reduces[reduce_index]
        self.metrics.record_task(
            TaskRecord(
                job_id=job_id,
                kind="reduce",
                index=reduce_index,
                start=reduce_state.start_time,
                finish=now,
            )
        )
        self.cluster.unplace(reduce_state.container_id)
        job.reduces_finished += 1
        if job.done:
            self.metrics.record_job(
                JobRecord(
                    job_id=job_id,
                    name=job.spec.name,
                    shuffle_class=job.spec.shuffle_class.value,
                    submit_time=job.submit_time,
                    start_time=job.start_time,
                    finish_time=now,
                    shuffle_volume=job.spec.shuffle_volume,
                    remote_map_traffic=job.remote_map_traffic,
                )
            )
        self._try_admit(now)


def run_simulation(
    topology: Topology,
    scheduler: Scheduler,
    jobs: list[JobSpec],
    config: SimulationConfig | None = None,
) -> MetricsCollector:
    """Convenience one-shot runner."""
    return MapReduceSimulator(topology, scheduler, jobs, config).run()
