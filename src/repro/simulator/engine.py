"""Discrete-event MapReduce simulation.

Substitute for the paper's 9-node Hadoop YARN testbed: jobs arrive, a
pluggable scheduler places their containers on the hierarchical fabric, Map
tasks compute, each finished Map starts its shuffle flows into the max-min fair
:class:`~repro.simulator.network.FlowNetwork`, and Reduce tasks finish after
their last inbound flow plus compute time.  The collector then yields the
job/task/flow statistics behind Figures 6 and 7.

Execution model (simplifications are noted in DESIGN.md):

* A job is **admitted** FIFO when the cluster has slots for its first Map
  wave plus all its Reduce containers (Hadoop schedules reduces early —
  "well before the completed distribution of Map output is known").
* Map tasks of a wave run concurrently; the wave barrier releases the Map
  containers, and subsequent waves are placed by the scheduler's
  subsequent-wave entry point (Section 5.3.2).
* A Map's input read is node-local, rack-local or remote per the HDFS block
  placement; non-local reads add a fetch penalty to the task duration and are
  accounted as remote-Map traffic (Figure 1).
* Network-aware schedulers (Hit) route each starting flow through the live
  :class:`~repro.core.policy.PolicyController` (optimal, capacity-aware);
  baselines use the fabric's static shortest path.
* When a fault timeline is configured (:mod:`repro.faults`), server and
  switch failures are simulator events: dead servers kill their resident
  tasks (re-executed with a retry budget), lost map output is regenerated on
  demand, and flows crossing a dead switch are rerouted or *parked* until a
  recovery restores a live path.  ``docs/fault_model.md`` spells out the
  recovery semantics; with an empty timeline none of these code paths run
  and the simulation is bit-identical to the fault-free build.
* When speculation is configured (:mod:`repro.speculation`), a LATE-style
  detector sweeps the running maps on a fixed cadence (SPECULATE events),
  launches duplicate *backup* attempts for stragglers, commits whichever
  copy finishes first and kills the loser (KILL_ATTEMPT events reusing the
  fault layer's attempt-counter invalidation).  Shuffle flows bind late to
  the winning attempt's output server, so reducers never fetch from a
  killed attempt.  Sweeps never advance the fluid network, so a
  speculation-enabled run in which the detector never fires is
  byte-identical to a speculation-off run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.container import Container, TaskKind, TaskRef
from ..cluster.resources import Resources
from ..cluster.state import ClusterState
from ..core.policy import CostModel, NoFeasiblePathError, PolicyController
from ..core.taa import TAAInstance
from ..faults.injector import FaultInjector
from ..faults.spec import FaultSpec
from ..mapreduce.hdfs import HdfsModel
from ..mapreduce.job import JobSpec, shuffle_matrix
from ..mapreduce.shuffle import ShuffleFlow
from ..obs.provenance import (
    ProvenanceConfig,
    ProvenanceRecorder,
    flow_label,
    task_label,
)
from ..obs.runtime import STATE as _OBS
from ..schedulers.base import Scheduler, SchedulingContext
from ..speculation.detector import AttemptProgress, SpeculationConfig
from ..speculation.runtime import SpeculationState
from ..topology.base import Topology
from ..topology.routing import invalidate_topology_caches
from ..workload.admission import AdmissionConfig, AdmissionController
from .events import Event, EventKind, EventQueue
from .metrics import (
    FlowRecord,
    JobRecord,
    MetricsCollector,
    RejectionRecord,
    TaskRecord,
)
from .network import DelayModel, FlowNetwork

__all__ = ["SimulationConfig", "MapReduceSimulator", "run_simulation"]


@dataclass(frozen=True)
class SimulationConfig:
    """Tunables of the execution model."""

    container_demand: Resources = Resources(1.0, 0.0)
    #: Cap on a single job's concurrent Map containers; None = as many as fit.
    map_slots_per_job: int | None = None
    #: Shuffle-rate normalisation: flow demand = size / rate_epoch.
    rate_epoch: float = 1.0
    #: Rack-local / remote input fetch penalties as multiples of
    #: split_size / server_link_bandwidth.  Input streaming overlaps map
    #: compute in Hadoop, so the penalty is a fraction of the full transfer.
    rack_read_factor: float = 0.25
    remote_read_factor: float = 0.5
    hdfs_replication: int = 3
    #: Server heterogeneity: compute speeds are sampled uniformly from
    #: ``[1 - spread, 1 + spread]`` (0 = homogeneous cluster).  Models the
    #: heterogeneous environments of the paper's related work (Tarazu, LATE).
    server_speed_spread: float = 0.0
    seed: int = 0
    delay_model: DelayModel = field(default_factory=DelayModel)
    cost_model: CostModel = field(default_factory=CostModel)
    max_events: int = 2_000_000
    #: Fault timeline (empty = fault-free run, no recovery code paths).
    faults: tuple[FaultSpec, ...] = ()
    #: How many failure-induced re-executions a single task may consume
    #: before the run aborts (placement backoffs do not count).
    max_task_retries: int = 3
    #: Base delay for re-placement backoff: attempt ``k`` waits
    #: ``retry_backoff * 2**(k-1)`` (capped) before trying again.
    retry_backoff: float = 0.05
    #: Speculative-execution config (None = speculation off; no SPECULATE
    #: events are scheduled and every speculation hook is skipped).
    speculation: SpeculationConfig | None = None
    #: Simulated-time telemetry sampling interval (None = recorder off; the
    #: run loop then skips the hook entirely).  When set, the simulator owns
    #: a :class:`~repro.obs.timeline.TimelineRecorder` sampling gauges every
    #: ``timeline_dt`` simulated time units — reads only, so a recorded run
    #: is byte-identical to an unrecorded one.
    timeline_dt: float | None = None
    #: In-memory cap on telemetry samples (None = unbounded buffering, the
    #: classic behaviour).  When the buffer reaches the cap, the oldest
    #: samples are spilled to ``timeline_spill_path`` as JSONL (or dropped
    #: when no path is configured) so ``--timeline`` survives fat-tree
    #: k=16 / 10k-flow runs; the recorder's running aggregates keep
    #: ``summary()`` exact either way.
    timeline_max_samples: int | None = None
    #: JSONL sink for spilled telemetry samples (None = drop on overflow).
    timeline_spill_path: str | None = None
    #: Decision-provenance plane (None = off: no recorder is constructed
    #: and every audit hook below is skipped).  Opt-in and non-perturbing —
    #: all hooks are pure reads that consume no randomness, so a
    #: provenance-on run is byte-identical to a provenance-off run
    #: (``tests/simulator/test_provenance.py``).
    provenance: ProvenanceConfig | None = None
    #: Use the incremental (dirty-component) max-min allocator.  Allocations
    #: are bit-identical either way — False forces a full progressive fill
    #: on every recompute, for verification and benchmarking.
    network_incremental: bool = True
    #: Online workload plane (None = classic batch intake: plain FIFO
    #: admission, a run that cannot finish every job raises, and none of
    #: the admission/backpressure code runs — byte-identical to the
    #: pre-online engine).  With a config, arrivals flow through per-tenant
    #: queues and pluggable admission policies (:mod:`repro.workload`), and
    #: a run may end with jobs still queued or explicitly rejected — every
    #: one accounted under the overload contract.
    admission: AdmissionConfig | None = None


@dataclass
class _ReduceState:
    container_id: int
    index: int
    input_size: float
    pending_flows: set[int] = field(default_factory=set)
    start_time: float = 0.0
    scheduled: bool = False
    #: Map indices whose shuffle data has been delivered to this reducer.
    #: Cleared on reducer restart (fetched data dies with the attempt).
    received: set[int] = field(default_factory=set)
    #: True once REDUCE_DONE committed — a finished reduce never re-runs.
    finished: bool = False
    #: Simulated time the (final) compute phase was scheduled — i.e. when
    #: the last inbound shuffle byte arrived.  Feeds the critical-path
    #: attribution; -1.0 until the reduce first becomes runnable.
    compute_start: float = -1.0


@dataclass
class _JobState:
    spec: JobSpec
    matrix: np.ndarray
    submit_time: float
    start_time: float = -1.0
    wave_size: int = 0
    next_map_index: int = 0
    maps_running: int = 0
    maps_finished: int = 0
    map_containers: dict[int, int] = field(default_factory=dict)  # cid -> map idx
    reduces: dict[int, _ReduceState] = field(default_factory=dict)  # by index
    remote_map_traffic: float = 0.0
    reduces_finished: int = 0
    #: map idx -> server holding its completed output (absent while the map
    #: runs, deleted again when a failure loses the output).
    map_output_server: dict[int, int] = field(default_factory=dict)
    #: map idx -> its container id; stable for the job's whole lifetime
    #: (re-executions reuse the cid, which keys all flow endpoints).
    map_cid_of: dict[int, int] = field(default_factory=dict)
    #: Map indices whose completed output was lost but whose re-execution
    #: was deferred because no unscheduled reduce needed the data; a later
    #: reducer restart may still pull them back into execution.
    lost_outputs: set[int] = field(default_factory=set)

    @property
    def all_maps_done(self) -> bool:
        return self.maps_finished >= self.spec.num_maps

    @property
    def done(self) -> bool:
        return self.all_maps_done and self.reduces_finished >= self.spec.num_reduces


class MapReduceSimulator:
    """One simulation run: a scheduler, a fabric, a stream of jobs."""

    def __init__(
        self,
        topology: Topology,
        scheduler: Scheduler,
        jobs: list[JobSpec],
        config: SimulationConfig | None = None,
    ) -> None:
        self.topology = topology
        self.scheduler = scheduler
        self.config = config or SimulationConfig()
        self.jobs = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        self.cluster = ClusterState(topology)
        self.controller = PolicyController(
            topology, cost_model=self.config.cost_model
        )
        self.network = FlowNetwork(
            topology,
            self.config.delay_model,
            incremental=self.config.network_incremental,
        )
        self.metrics = MetricsCollector()
        self.hdfs = HdfsModel(
            topology,
            replication=self.config.hdfs_replication,
            seed=self.config.seed,
        )
        self._rng = np.random.default_rng(self.config.seed)
        # Separate stream for ECMP path draws: routing choices must not
        # perturb workload sampling (keeps flow sizes identical across
        # schedulers under one seed).
        self._ecmp_rng = np.random.default_rng(self.config.seed + 0x5EED)
        spread = self.config.server_speed_spread
        if not 0.0 <= spread < 1.0:
            raise ValueError("server_speed_spread must be in [0, 1)")
        #: Per-server compute speed multipliers (1.0 = nominal).
        self.server_speeds: dict[int, float] = {
            sid: (
                float(self._rng.uniform(1.0 - spread, 1.0 + spread))
                if spread > 0
                else 1.0
            )
            for sid in topology.server_ids
        }
        #: Fault subsystem (None on fault-free runs: every recovery hook is
        #: then skipped, keeping the fast path bit-identical).
        self.faults: FaultInjector | None = (
            FaultInjector(topology, self.config.faults)
            if self.config.faults
            else None
        )
        # Unknown-/duplicate-flow errors out of the network name the owning
        # job and shuffle stage (diagnosable resume-after-recovery failures).
        self.network.flow_describer = self._describe_flow
        #: Speculation subsystem (None = off, same zero-overhead contract).
        self.speculation: SpeculationState | None = (
            SpeculationState(self.config.speculation)
            if self.config.speculation is not None
            else None
        )
        #: Simulated-time telemetry recorder (None = off; the import is
        #: deferred so a telemetry-free run never touches the module).
        if self.config.timeline_dt is not None:
            from ..obs.timeline import TimelineRecorder

            self.timeline: TimelineRecorder | None = TimelineRecorder(
                topology,
                self.config.timeline_dt,
                max_samples=self.config.timeline_max_samples,
                spill_path=self.config.timeline_spill_path,
            )
        else:
            self.timeline = None
        #: Decision-audit recorder (None = off; every provenance hook below
        #: is a no-op branch).  Emission is append-only into a bounded ring
        #: plus an incremental JSONL spill — see ``repro.obs.provenance``.
        self.provenance: ProvenanceRecorder | None = (
            ProvenanceRecorder.from_config(self.config.provenance, scheduler.name)
            if self.config.provenance is not None
            else None
        )
        if self.provenance is not None:
            # Pure annotation channel: the controller leaves a cost/slack
            # breadcrumb after each route_flow that the audit hook reads.
            self.controller.provenance_notes = True
        #: Events dispatched by the last :meth:`run` (non-perturbation tests
        #: compare this across recorded/unrecorded runs).
        self.events_processed = 0
        #: Jobs not yet finished; the SPECULATE sweep re-arms while > 0 so
        #: the detector's event chain drains with the workload.
        self._jobs_remaining = 0
        #: Nominal speeds, for restoring after slowdowns / recoveries.
        self._base_speeds = dict(self.server_speeds)
        #: cid -> live attempt number; completion events carry the attempt
        #: they belong to, so events of killed attempts are dropped stale.
        self._attempt: dict[int, int] = {}
        #: cid -> failure-induced re-executions, charged against
        #: ``config.max_task_retries``.
        self._retries: dict[int, int] = {}
        #: cid -> consecutive failed placement attempts (backoff exponent).
        self._backoff: dict[int, int] = {}
        #: cid -> token of its newest TASK_RETRY event (stale events no-op).
        self._retry_token: dict[int, int] = {}
        #: fid -> remaining bytes of a flow with no live path (parked until a
        #: switch recovery makes it routable again).
        self._parked: dict[int, float] = {}
        #: Admission controller of the online workload plane (None = batch
        #: FIFO intake; every plane hook below is then skipped).
        self.admission: AdmissionController | None = (
            AdmissionController(self.config.admission)
            if self.config.admission is not None
            else None
        )
        self._queue = EventQueue()
        self._pending: list[_JobState] = []  # FIFO admission queue
        self._jobs_by_id: dict[int, _JobState] = {}
        self._flow_index: dict[int, tuple[int, int]] = {}  # fid -> (job, reduce idx)
        self._flow_objects: dict[int, ShuffleFlow] = {}
        self._flow_by_endpoints: dict[tuple[int, int], int] = {}
        self._next_container_id = 0
        self._next_flow_id = 0
        self._net_epoch = 0
        self._net_time = 0.0

    # ------------------------------------------------------------------- run
    def run(self) -> MetricsCollector:
        """Execute to completion and return the metrics collector."""
        for spec in self.jobs:
            self._queue.push(
                Event(spec.submit_time, EventKind.JOB_ARRIVAL, payload=spec)
            )
        if self.faults is not None:
            self.faults.schedule(self._queue)
        if self.speculation is not None and self.jobs:
            self._jobs_remaining = len(self.jobs)
            first = min(spec.submit_time for spec in self.jobs)
            self._queue.push(
                Event(
                    first + self.speculation.config.check_interval,
                    EventKind.SPECULATE,
                )
            )
        events = 0
        observed = _OBS.enabled
        recorder = self.timeline
        prov = self.provenance
        if observed:
            _OBS.tracer.event(
                "sim.run.start",
                scheduler=self.scheduler.name,
                jobs=len(self.jobs),
                servers=self.topology.num_servers,
            )
        while self._queue:
            event = self._queue.pop()
            events += 1
            if events > self.config.max_events:
                raise RuntimeError("simulation exceeded max_events — livelock?")
            if recorder is not None:
                # Pre-dispatch sampling: state is piecewise constant since
                # the previous event, so the grid points covered by this
                # event's timestamp see exactly the live allocation.
                recorder.observe(self, event)
            if prov is not None:
                # Stamp the audit clock so hooks deep inside schedulers and
                # handlers never need one of their own.
                prov.now = event.time
            if observed:
                self._dispatch_traced(event)
                continue
            self._dispatch(event)
        self.events_processed = events
        if recorder is not None:
            recorder.finish(self, self._net_time)
        if prov is not None:
            prov.close()
        unfinished = [j for j in self._jobs_by_id.values() if not j.done]
        if self.admission is not None:
            # Online plane: jobs still sitting in admission queues when the
            # event stream drains are an *accounted* outcome ("queued"), not
            # an error — the overload contract's third leg.  Jobs that
            # actually started but did not finish remain fatal.
            queued_ids = {s.job_id for s in self.admission.queued_jobs()}
            unfinished = [
                j for j in unfinished if j.spec.job_id not in queued_ids
            ]
        if unfinished or self._pending:
            raise RuntimeError(
                f"simulation ended with {len(unfinished)} unfinished and "
                f"{len(self._pending)} unadmitted jobs"
            )
        if observed:
            _OBS.tracer.event(
                "sim.run.end", scheduler=self.scheduler.name, events=events
            )
            if self.admission is not None:
                for name, value in self.admission.counters().items():
                    _OBS.tracer.count(name, value)
            if self.faults is not None:
                for name, value in self.faults.summary().items():
                    _OBS.tracer.count(name, value)
            if self.speculation is not None:
                for name, value in self.speculation.summary().items():
                    _OBS.tracer.count(name, value)
            if _OBS.checker is not None:
                # End-of-run quiescence: every flow drained, every policy
                # released, switch loads back to exactly their base values.
                _OBS.checker.check_quiescent(
                    self.controller, self.network, where="sim.run.end"
                )
                if self.speculation is not None:
                    _OBS.checker.check_speculation(
                        self.speculation, where="sim.run.end"
                    )
                if self.admission is not None:
                    _OBS.checker.check_online_accounting(
                        self.admission, self.metrics, where="sim.run.end"
                    )
        return self.metrics

    def _dispatch(self, event: Event) -> None:
        """Process one event (the hot loop body)."""
        if event.kind is EventKind.SPECULATE:
            # Deliberately bypasses the network glue: a detector sweep never
            # touches the fluid network, and advancing it here would split
            # the allocation intervals differently from a speculation-off
            # run — breaking the no-straggler byte-identity contract
            # through float accumulation alone.
            self._on_speculate(event.time)
            return
        if event.kind is EventKind.KILL_ATTEMPT:
            # Same-instant kill order from a speculation commit; pure
            # bookkeeping, no network interaction (see EVENT_PRIORITY).
            self._on_kill_attempt(event.time, *event.payload)
            return
        self._advance_network(event.time)
        if event.kind is EventKind.NETWORK and event.epoch != self._net_epoch:
            self._drain_completed(event.time)
            return
        if event.kind is EventKind.JOB_ARRIVAL:
            self._on_job_arrival(event.time, event.payload)
        elif event.kind is EventKind.MAP_DONE:
            self._on_map_done(event.time, *event.payload)
            self._maybe_rebalance()
        elif event.kind is EventKind.REDUCE_DONE:
            self._on_reduce_done(event.time, *event.payload)
        elif event.kind is EventKind.SERVER_FAIL:
            self._on_server_fail(event.time, event.payload)
        elif event.kind is EventKind.SERVER_RECOVER:
            self._on_server_recover(event.time, event.payload)
        elif event.kind is EventKind.SWITCH_FAIL:
            self._on_switch_fail(event.time, event.payload)
        elif event.kind is EventKind.SWITCH_RECOVER:
            self._on_switch_recover(event.time, event.payload)
        elif event.kind is EventKind.LINK_FAIL:
            self._on_link_fail(event.time, *event.payload)
        elif event.kind is EventKind.LINK_RECOVER:
            self._on_link_recover(event.time, *event.payload)
        elif event.kind is EventKind.LINK_DEGRADE:
            self._on_link_degrade(event.time, *event.payload)
        elif event.kind is EventKind.TASK_SLOWDOWN:
            self._on_task_slowdown(event.time, *event.payload)
        elif event.kind is EventKind.TASK_RETRY:
            self._on_task_retry(event.time, *event.payload)
        self._drain_completed(event.time)
        self._schedule_network_checkpoint(event.time)

    def _dispatch_traced(self, event: Event) -> None:
        """Observed-mode dispatch: event counters/timers plus the network
        and controller invariant checkpoints."""
        tracer = _OBS.tracer
        tracer.count(f"sim.event.{event.kind.name.lower()}")
        with tracer.timeit("sim.dispatch"):
            self._dispatch(event)

    # ---------------------------------------------------------- network glue
    def _advance_network(self, now: float) -> None:
        dt = now - self._net_time
        if dt > 0:
            self.network.advance(dt)
        self._net_time = now
        if _OBS.enabled and _OBS.checker is not None:
            # Checkpoint: the fluid allocation must stay feasible every time
            # simulated time moves.
            _OBS.checker.check_flow_conservation(
                self.network, where=f"advance t={now:.6g}"
            )
            if self.faults is not None:
                # Fault-plane checkpoint: no active flow may be traversing a
                # failed switch or a dead link at this instant.
                _OBS.checker.check_path_liveness(
                    self.network, self.faults, where=f"advance t={now:.6g}"
                )

    def _schedule_network_checkpoint(self, now: float) -> None:
        self._net_epoch += 1
        horizon = self.network.time_to_next_completion()
        if horizon is not None:
            self._queue.push(
                Event(
                    now + horizon,
                    EventKind.NETWORK,
                    epoch=self._net_epoch,
                )
            )

    def _maybe_rebalance(self) -> None:
        """Online policy rebalancing sweep (Section 5.1.1), when enabled.

        Re-runs the optimal-path DP over live flows and migrates the ones
        that gain past the hysteresis threshold, then syncs the fluid
        network's paths with the controller's updated policies.
        """
        config = getattr(self.scheduler, "online_rebalance", None)
        if config is None:
            return
        ceiling = getattr(config, "pressure_ceiling", None)
        if ceiling is not None and self.cluster.occupancy() >= ceiling:
            # Backpressure: under saturation the sweep would thrash against
            # the admission churn; defer until occupancy drops.
            return
        active_ids = {f.flow_id for f in self.network.active_flows}
        if not active_ids:
            return
        from ..core.rebalance import rebalance_flows

        live = [self._flow_objects[fid] for fid in active_ids]
        rebalance_flows(self.controller, live, config)
        for fid in active_ids:
            policy = self.controller.policy_of(fid)
            if policy is None:
                continue
            current = next(
                f for f in self.network.active_flows if f.flow_id == fid
            )
            if policy.path != current.path:
                self.network.reroute_flow(fid, policy.path)

    def _drain_completed(self, now: float) -> None:
        for fid in self.network.completed_flows():
            active = self.network.remove_flow(fid)
            self.controller.release(fid)
            flow = self._flow_objects.pop(fid)
            self.metrics.record_flow(
                FlowRecord(
                    flow_id=fid,
                    job_id=flow.job_id,
                    size=flow.size,
                    start=active.start_time,
                    finish=now,
                    num_switches=active.num_switches,
                    delay_us=active.start_delay_us,
                    map_index=flow.map_index,
                    reduce_index=flow.reduce_index,
                )
            )
            self._flow_done(now, fid, flow.map_index)
        if _OBS.enabled and _OBS.checker is not None:
            # Checkpoint: after completions are drained the controller's
            # bookkeeping and the shared cluster must be consistent.
            where = f"drain t={now:.6g}"
            _OBS.checker.check_controller(self.controller, where=where)
            _OBS.checker.check_server_capacity(self.cluster, where=where)
            if self.speculation is not None:
                _OBS.checker.check_speculation(self.speculation, where=where)

    def _flow_done(self, now: float, fid: int, map_index: int) -> None:
        job_id, reduce_index = self._flow_index.pop(fid)
        job = self._jobs_by_id[job_id]
        reduce_state = job.reduces[reduce_index]
        reduce_state.pending_flows.discard(fid)
        reduce_state.received.add(map_index)
        self._maybe_finish_reduce(now, job, reduce_state)

    def _maybe_finish_reduce(
        self, now: float, job: _JobState, reduce_state: _ReduceState
    ) -> None:
        if reduce_state.finished or reduce_state.scheduled:
            return
        if not job.all_maps_done or reduce_state.pending_flows:
            return
        server = self.cluster.container(reduce_state.container_id).server_id
        if server is None:
            # Reducer awaiting re-placement after a failure; the retry path
            # re-checks once it lands on a live server.
            return
        reduce_state.scheduled = True
        reduce_state.compute_start = now
        speed = self.server_speeds[server]
        compute = job.spec.reduce_duration(reduce_state.input_size) / speed
        self._queue.push(
            Event(
                now + compute,
                EventKind.REDUCE_DONE,
                payload=(
                    job.spec.job_id,
                    reduce_state.index,
                    self._attempt.get(reduce_state.container_id, 0),
                ),
            )
        )

    # ------------------------------------------------------------- admission
    def _free_slots(self) -> int:
        demand = self.config.container_demand
        slots = 0
        for sid in self.cluster.server_ids:
            if self.cluster.is_failed(sid):
                continue
            residual = self.cluster.residual(sid)
            if demand.memory > 0:
                by_mem = int(residual.memory // demand.memory)
            else:
                by_mem = self.topology.num_servers * 1000
            if demand.vcores > 0:
                by_cpu = int(residual.vcores // demand.vcores)
            else:
                by_cpu = by_mem
            slots += min(by_mem, by_cpu)
        return slots

    def _on_job_arrival(self, now: float, spec: JobSpec) -> None:
        if self.admission is not None:
            # Online plane: decide *before* materialising any job state, so
            # a rejected job consumes no RNG draws or HDFS placements and
            # the accepted stream is policy-independent up to the decision.
            reason = self.admission.offer(spec, now, self.cluster.occupancy())
            if self.provenance is not None:
                self.provenance.emit(
                    "admission",
                    reason if reason is not None else "accepted",
                    job=spec.job_id,
                    tenant=spec.tenant,
                    occupancy=round(self.cluster.occupancy(), 9),
                    **self.admission.provenance_context(spec.tenant),
                )
            if reason is not None:
                self.metrics.record_rejection(
                    RejectionRecord(
                        job_id=spec.job_id,
                        name=spec.name,
                        tenant=spec.tenant,
                        time=now,
                        reason=reason,
                    )
                )
                if self.speculation is not None and self._jobs_remaining > 0:
                    # A rejected job will never complete; without this the
                    # detector's re-arm chain would wait for it forever.
                    self._jobs_remaining -= 1
                return
        elif self.provenance is not None:
            self.provenance.emit("admission", "batch-fifo", job=spec.job_id)
        state = _JobState(
            spec=spec,
            matrix=shuffle_matrix(spec, self._rng),
            submit_time=now,
        )
        self.hdfs.place_job_blocks(spec)
        self._jobs_by_id[spec.job_id] = state
        if self.admission is None:
            self._pending.append(state)
        self._try_admit(now)

    def _try_admit(self, now: float) -> None:
        if self.admission is not None:
            self._try_admit_online(now)
            return
        while self._pending:
            job = self._pending[0]
            spec = job.spec
            free = self._free_slots()
            wave = spec.num_maps
            if self.config.map_slots_per_job is not None:
                wave = min(wave, self.config.map_slots_per_job)
            needed_min = 1 + spec.num_reduces  # at least one map slot
            if free < needed_min:
                return  # FIFO: head blocks the queue (no starvation)
            wave = min(wave, max(1, free - spec.num_reduces))
            self._pending.pop(0)
            job.wave_size = wave
            job.start_time = now
            self._start_job(now, job)

    def _try_admit_online(self, now: float) -> None:
        """Online-plane queue drain: weighted-fair across tenant queues,
        deferred entirely while the backpressure latch holds.

        The fair-share head blocks its whole drain round exactly like the
        batch FIFO head blocks `_pending` — skipping past a big job to
        start a smaller one would starve it indefinitely under sustained
        load.
        """
        admission = self.admission
        assert admission is not None
        while True:
            if admission.defer(self.cluster.occupancy(), len(self._parked)):
                return
            spec = admission.peek()
            if spec is None:
                return
            free = self._free_slots()
            wave = spec.num_maps
            if self.config.map_slots_per_job is not None:
                wave = min(wave, self.config.map_slots_per_job)
            if free < 1 + spec.num_reduces:
                return
            wave = min(wave, max(1, free - spec.num_reduces))
            admission.commit(spec)
            job = self._jobs_by_id[spec.job_id]
            job.wave_size = wave
            job.start_time = now
            self._start_job(now, job)

    # -------------------------------------------------------------- placement
    def _new_container(self, task: TaskRef) -> int:
        cid = self._next_container_id
        self._next_container_id += 1
        container = Container(
            container_id=cid, demand=self.config.container_demand, task=task
        )
        self.cluster.add_container(container)
        return cid

    def _make_flows(
        self, job: _JobState, map_cids: dict[int, int]
    ) -> list[ShuffleFlow]:
        """Flows from the given wave's maps to every reduce of the job."""
        flows = []
        for cid, mi in map_cids.items():
            for reduce_state in job.reduces.values():
                size = float(job.matrix[mi, reduce_state.index])
                if size <= 1e-12:
                    continue
                flows.append(
                    ShuffleFlow(
                        flow_id=self._next_flow_id,
                        job_id=job.spec.job_id,
                        map_index=mi,
                        reduce_index=reduce_state.index,
                        src_container=cid,
                        dst_container=reduce_state.container_id,
                        size=size,
                        rate=size / self.config.rate_epoch,
                    )
                )
                self._next_flow_id += 1
        return flows

    def _planning_context(
        self, flows: list[ShuffleFlow]
    ) -> SchedulingContext:
        """Per-job planning instance over the shared cluster state."""
        planner = PolicyController(
            self.topology, cost_model=self.config.cost_model
        )
        planner.base_loads_from(self.controller)
        planner.sync_failures_from(self.controller)
        taa = TAAInstance(
            self.topology,
            containers=[],
            flows=flows,
            cluster=self.cluster,
            controller=planner,
        )
        return SchedulingContext(
            taa=taa,
            hdfs=self.hdfs,
            rng=self._rng,
            provenance=self.provenance,
        )

    def _start_job(self, now: float, job: _JobState) -> None:
        spec = job.spec
        if self.provenance is not None:
            context = (
                self.admission.provenance_context(spec.tenant)
                if self.admission is not None
                else {}
            )
            self.provenance.emit(
                "admission",
                "started",
                job=spec.job_id,
                wave_size=job.wave_size,
                maps=spec.num_maps,
                reduces=spec.num_reduces,
                free_slots=self._free_slots(),
                **context,
            )
        for ri in range(spec.num_reduces):
            cid = self._new_container(TaskRef(spec.job_id, TaskKind.REDUCE, ri))
            job.reduces[ri] = _ReduceState(
                container_id=cid,
                index=ri,
                input_size=float(job.matrix[:, ri].sum()),
                start_time=now,
            )
        map_cids: dict[int, int] = {}
        for _ in range(min(job.wave_size, spec.num_maps)):
            mi = job.next_map_index
            job.next_map_index += 1
            cid = self._new_container(TaskRef(spec.job_id, TaskKind.MAP, mi))
            map_cids[cid] = mi
            job.map_cid_of[mi] = cid
        job.map_containers = map_cids

        flows = self._make_flows(job, map_cids)
        self._register_flows(job, flows)
        ctx = self._planning_context(flows)
        self.scheduler.place_initial_wave(
            ctx,
            spec,
            list(map_cids),
            [r.container_id for r in job.reduces.values()],
        )
        if self.faults is not None:
            # A degraded fabric may leave reduces unplaced; park them on the
            # retry path (their inbound flows wait via the pending registry).
            for reduce_state in job.reduces.values():
                if not self.cluster.container(reduce_state.container_id).is_placed:
                    self._schedule_retry(now, reduce_state.container_id)
        self._launch_maps(now, job, map_cids)

    def _register_flows(self, job: _JobState, flows: list[ShuffleFlow]) -> None:
        for flow in flows:
            self._flow_objects[flow.flow_id] = flow
            self._flow_index[flow.flow_id] = (job.spec.job_id, flow.reduce_index)
            self._flow_by_endpoints[(flow.src_container, flow.dst_container)] = (
                flow.flow_id
            )
            job.reduces[flow.reduce_index].pending_flows.add(flow.flow_id)

    def _launch_maps(
        self, now: float, job: _JobState, map_cids: dict[int, int]
    ) -> None:
        spec = job.spec
        for cid, mi in map_cids.items():
            server = self.cluster.container(cid).server_id
            if server is None:
                # Only reachable on fault runs: the degraded fabric could not
                # host this map yet.  It still counts as running (the wave
                # barrier must wait for it) and launches via the retry path.
                assert self.faults is not None, (
                    "scheduler left a map container unplaced"
                )
                job.maps_running += 1
                self._schedule_retry(now, cid)
                continue
            duration, nominal = self._map_timing(job, mi, server)
            job.maps_running += 1
            if self.speculation is not None:
                self.speculation.tracker.note_start(
                    spec.job_id, mi, cid, now, duration, nominal
                )
            self._queue.push(
                Event(
                    now + duration,
                    EventKind.MAP_DONE,
                    payload=(spec.job_id, cid, mi, now, self._attempt.get(cid, 0)),
                )
            )

    def _map_timing(
        self, job: _JobState, map_index: int, server: int
    ) -> tuple[float, float]:
        """(actual, nominal) duration of a map attempt on ``server``.

        *Actual* uses the server's live speed (slowdowns included); *nominal*
        the fault-free base speed.  Both share one read-penalty computation —
        it has a traffic-accounting side effect — and when the server is
        healthy the two expressions are float-identical, which is what lets
        the straggler detector treat a normalised rate of exactly 1.0 as
        "not a straggler".
        """
        penalty = self._read_penalty(job, map_index, server, account=True)
        duration = job.spec.map_duration / self.server_speeds[server] + penalty
        nominal = job.spec.map_duration / self._base_speeds[server] + penalty
        return duration, nominal

    def _read_penalty(
        self,
        job: _JobState,
        map_index: int,
        server: int,
        account: bool = True,
    ) -> float:
        """Extra runtime of a non-local map read; ``account=False`` prices a
        hypothetical placement without charging the remote-traffic meter."""
        locality = self.hdfs.locality(job.spec.job_id, map_index, server)
        if locality == "node-local":
            return 0.0
        split = job.spec.map_input_size
        if account:
            job.remote_map_traffic += split
        bandwidth = min(
            self.topology.link(server, n).bandwidth
            for n in self.topology.neighbors(server)
        )
        factor = (
            self.config.rack_read_factor
            if locality == "rack-local"
            else self.config.remote_read_factor
        )
        return factor * split / bandwidth

    # --------------------------------------------------------------- map side
    def _on_map_done(
        self,
        now: float,
        job_id: int,
        cid: int,
        map_index: int,
        started: float,
        attempt: int = 0,
    ) -> None:
        if attempt != self._attempt.get(cid, 0):
            return  # completion of an attempt killed by a failure or a kill
        job = self._jobs_by_id[job_id]
        server = self.cluster.container(cid).server_id
        assert server is not None
        if self.speculation is not None:
            self.speculation.tracker.note_finish(cid)
            # First finisher of a speculation pair wins: dissolve the pair
            # and push the same-instant kill order for the losing attempt.
            self._settle_speculation(now, job, cid)
        job.maps_running -= 1
        job.maps_finished += 1
        job.map_output_server[map_index] = server
        if self.speculation is not None:
            self.speculation.note_commit(job_id, map_index, cid, attempt, server)
        self.metrics.record_task(
            TaskRecord(
                job_id=job_id,
                kind="map",
                index=map_index,
                start=started,
                finish=now,
                server=server,
                attempt=attempt,
                # A committing cid that differs from the map's stable cid is
                # by construction a speculative backup attempt.
                speculative=cid != job.map_cid_of[map_index],
                compute_start=started,
            )
        )
        # Flow endpoints stay keyed to the map's original container id even
        # when a backup attempt commits (map_cid_of is stable for the job's
        # lifetime); the source server is read back out of map_output_server.
        self._start_flows_from(now, job, job.map_cid_of[map_index], map_index)
        if cid not in job.map_containers and self.cluster.container(cid).is_placed:
            # Re-execution of a previous wave's map: its slot is not part of
            # the current wave barrier, release it immediately.
            self.cluster.unplace(cid)

        if job.maps_running == 0:
            # Wave barrier: recycle the map containers.
            for done_cid in job.map_containers:
                if self.cluster.container(done_cid).is_placed:
                    self.cluster.unplace(done_cid)
            job.map_containers = {}
            if job.next_map_index < job.spec.num_maps:
                self._start_next_wave(now, job)
            else:
                for reduce_state in job.reduces.values():
                    self._maybe_finish_reduce(now, job, reduce_state)
            self._try_admit(now)

    def _start_next_wave(self, now: float, job: _JobState) -> None:
        spec = job.spec
        remaining = spec.num_maps - job.next_map_index
        count = min(job.wave_size, remaining)
        map_cids: dict[int, int] = {}
        for _ in range(count):
            mi = job.next_map_index
            job.next_map_index += 1
            cid = self._new_container(TaskRef(spec.job_id, TaskKind.MAP, mi))
            map_cids[cid] = mi
            job.map_cid_of[mi] = cid
        job.map_containers = map_cids
        flows = self._make_flows(job, map_cids)
        self._register_flows(job, flows)
        ctx = self._planning_context(flows)
        self.scheduler.place_map_wave(ctx, spec, list(map_cids))
        self._launch_maps(now, job, map_cids)

    def _start_flows_from(
        self, now: float, job: _JobState, map_cid: int, map_index: int
    ) -> None:
        # Late binding: the source is wherever the *committed* output lives,
        # which is the completing container's server on the fault-free path
        # but the winning backup's server after a speculative win.
        src = job.map_output_server[map_index]
        if self.speculation is not None:
            self.speculation.note_flow(job.spec.job_id, map_index, src)
        for reduce_state in job.reduces.values():
            fid = self._flow_by_endpoints.pop(
                (map_cid, reduce_state.container_id), None
            )
            if fid is None:
                continue
            flow = self._flow_objects[fid]
            dst = self.cluster.container(reduce_state.container_id).server_id
            if dst is None:
                # Reducer awaiting re-placement: leave the flow pending; the
                # reducer's relaunch starts it once it lands somewhere.
                assert self.faults is not None
                self._flow_by_endpoints[
                    (map_cid, reduce_state.container_id)
                ] = fid
                continue
            if src == dst:
                self._deliver_local(now, job, fid, flow)
                continue
            self._launch_flow(now, flow, src, dst)

    def _deliver_local(
        self, now: float, job: _JobState, fid: int, flow: ShuffleFlow
    ) -> None:
        """Local shuffle: no network traversal, instant delivery."""
        self.metrics.record_flow(
            FlowRecord(
                flow_id=fid,
                job_id=job.spec.job_id,
                size=flow.size,
                start=now,
                finish=now,
                num_switches=0,
                delay_us=0.0,
                map_index=flow.map_index,
                reduce_index=flow.reduce_index,
            )
        )
        del self._flow_objects[fid]
        self._flow_done(now, fid, flow.map_index)

    def _launch_flow(
        self, now: float, flow: ShuffleFlow, src: int, dst: int
    ) -> None:
        """Route and start a shuffle flow, parking it when no live path
        exists (only possible while switches are failed)."""
        path = self._route(flow, src, dst)
        if path is None:
            self._park_flow(flow.flow_id, flow.size, now)
            return
        self.network.add_flow(flow.flow_id, path, flow.size, now)

    def _route(
        self, flow: ShuffleFlow, src: int, dst: int
    ) -> tuple[int, ...] | None:
        """Pick a path for a starting/restarting flow.

        Returns ``None`` (caller parks the flow) only when failed switches
        or dead links leave no live path at all; on fault-free runs the
        result is always a path and the logic is byte-for-byte the
        pre-fault behaviour.
        """
        faulty = self.faults is not None and bool(
            self.faults.failed_switches or self.faults.dead_links
        )
        path, reason, detail = self._route_impl(flow, src, dst, faulty)
        if path is not None and faulty:
            self.faults.assert_path_clear(path)
        if self.provenance is not None:
            self.provenance.emit(
                "route",
                reason,
                job=flow.job_id,
                task=flow_label(flow.map_index, flow.reduce_index),
                src=src,
                dst=dst,
                hops=0 if path is None else len(path) - 1,
                path=None if path is None else list(path),
                **detail,
            )
        return path

    def _route_impl(
        self, flow: ShuffleFlow, src: int, dst: int, faulty: bool
    ) -> tuple[tuple[int, ...] | None, str, dict]:
        """Route one flow; also names the branch that decided (the
        route-provenance reason code) and its evidence.  The extra return
        values are computed from work the routing already did — assembling
        them changes no control flow and consumes no randomness."""
        if self.scheduler.network_aware:
            try:
                policy = self.controller.route_flow(flow, src, dst)
                return policy.path, "policy-optimal", self._route_note()
            except NoFeasiblePathError:
                pass
            try:
                # Fabric saturated: fall through to capacity-ignoring optimum
                # (the physical network still carries it, just congested).
                policy = self.controller.route_flow(
                    flow, src, dst, enforce_capacity=False
                )
                return policy.path, "policy-uncapacitated", self._route_note()
            except NoFeasiblePathError:
                # Even uncapacitated routing found nothing — only possible
                # when failures disconnect the pair; park until recovery.
                if self.faults is not None:
                    return None, "no-path", {}
                raise
        if getattr(self.scheduler, "ecmp", False):
            # ECMP hashing: uniform choice over the equal-cost path set.
            from ..topology.routing import enumerate_paths

            if faulty:
                candidates = self._alive_paths(src, dst)
                if not candidates:
                    return None, "no-path", {}
            else:
                candidates = enumerate_paths(self.topology, src, dst, slack=0,
                                             limit=64)
            drawn = int(self._ecmp_rng.integers(len(candidates)))
            return (
                candidates[drawn],
                self.scheduler.route_reason,
                {"candidates": len(candidates), "drawn": drawn},
            )
        if faulty:
            candidates = self._alive_paths(src, dst)
            if not candidates:
                return None, "no-path", {}
            return (
                candidates[0],
                self.scheduler.route_reason,
                {"candidates": len(candidates)},
            )
        return (
            self.topology.shortest_path(src, dst),
            self.scheduler.route_reason,
            {},
        )

    def _route_note(self) -> dict:
        """The controller's post-install breadcrumb (cost, capacity mode),
        populated only when provenance enabled it — empty otherwise."""
        note = getattr(self.controller, "last_route", None)
        return dict(note) if note else {}

    def _alive_paths(
        self, src: int, dst: int, max_slack: int = 4
    ) -> list[tuple[int, ...]]:
        """Shortest live paths for the non-policy baselines under failures:
        the first slack level whose equal-cost set contains a path avoiding
        every failed switch and dead link (graceful degradation — any
        feasible path)."""
        from ..topology.routing import enumerate_paths

        assert self.faults is not None
        failed = self.faults.failed_switches
        dead = self.faults.dead_links

        def alive_path(p: tuple[int, ...]) -> bool:
            if any(node in failed for node in p):
                return False
            if dead:
                for a, b in zip(p, p[1:]):
                    if ((a, b) if a <= b else (b, a)) in dead:
                        return False
            return True

        for slack in range(max_slack + 1):
            alive = [
                p
                for p in enumerate_paths(
                    self.topology, src, dst, slack=slack, limit=64
                )
                if alive_path(p)
            ]
            if alive:
                return alive
        return []

    # ------------------------------------------------------------ fault layer
    # Everything below runs only when a fault timeline is configured.  The
    # handlers maintain one invariant: after each fault event the engine's
    # bookkeeping (wave counters, pending/parked flow registries, cluster
    # placements, controller policies) describes a state the remaining
    # simulation can drive to completion — no task or byte silently lost.

    def _on_server_fail(self, now: float, server_id: int) -> None:
        injector = self.faults
        assert injector is not None
        if not injector.mark_server_failed(server_id):
            return
        if self.provenance is not None:
            self.provenance.emit(
                "fault",
                "server-fail",
                server=server_id,
                **injector.provenance_context(),
            )
        hosted = self.cluster.hosted_on(server_id)  # sorted => deterministic
        self.cluster.fail_server(server_id)
        # Kill resident tasks.  Completed maps still holding their wave slot
        # are handled by the lost-output sweep below, not as running tasks.
        for cid in hosted:
            task = self.cluster.container(cid).task
            job = self._jobs_by_id[task.job_id]
            if task.kind is TaskKind.MAP:
                if task.index in job.map_output_server:
                    continue  # completed map: the lost-output sweep owns it
                sp = self.speculation
                if sp is not None and cid in sp.primary_of:
                    # The speculative copy died with its server: the
                    # original keeps running, no retry budget is charged.
                    self._cancel_backup(now, job, cid)
                elif sp is not None and cid in sp.backup_of:
                    # The original died but its backup lives: promote the
                    # backup to sole attempt instead of re-queueing.
                    self._promote_backup(now, job, cid)
                else:
                    self._kill_running_map(now, job, cid, task.index)
            else:
                self._restart_reduce(now, job, job.reduces[task.index])
        # Every completed map output stored on the dead server is lost.
        lost: list[tuple[_JobState, int, int]] = []
        for job_id in sorted(self._jobs_by_id):
            job = self._jobs_by_id[job_id]
            for mi in sorted(job.map_output_server):
                if job.map_output_server[mi] == server_id:
                    lost.append((job, job.map_cid_of[mi], mi))
        for job, cid, mi in lost:
            self._restart_map(now, job, cid, mi)

    def _on_server_recover(self, now: float, server_id: int) -> None:
        injector = self.faults
        assert injector is not None
        if not injector.mark_server_recovered(server_id):
            return
        if self.provenance is not None:
            self.provenance.emit(
                "fault",
                "server-recover",
                server=server_id,
                **injector.provenance_context(),
            )
        self.cluster.recover_server(server_id)
        self.server_speeds[server_id] = self._base_speeds[server_id]
        # Capacity returned: wake every task stuck in placement backoff (the
        # token bump inside _schedule_retry stales their backoff events).
        for cid in sorted(self._backoff):
            self._schedule_retry(now, cid)
        self._try_admit(now)

    def _on_switch_fail(self, now: float, switch_id: int) -> None:
        injector = self.faults
        assert injector is not None
        if not injector.mark_switch_failed(switch_id):
            return
        if self.provenance is not None:
            self.provenance.emit(
                "fault",
                "switch-fail",
                switch=switch_id,
                **injector.provenance_context(),
            )
        self.controller.fail_switch(switch_id)
        invalidate_topology_caches(self.topology)
        # Reroute every flow crossing the dead switch; park the ones with no
        # remaining live path until a recovery reconnects their endpoints.
        for active in self.network.active_flows:
            if switch_id not in active.path or active.remaining <= 0.0:
                continue  # unaffected, or already finished awaiting drain
            flow = self._flow_objects[active.flow_id]
            path = self._route(flow, active.path[0], active.path[-1])
            if self.provenance is not None:
                self.provenance.emit(
                    "reroute",
                    "switch-fail-reroute",
                    job=flow.job_id,
                    task=flow_label(flow.map_index, flow.reduce_index),
                    switch=switch_id,
                    outcome="parked" if path is None else "rerouted",
                    remaining=active.remaining,
                )
            if path is None:
                remaining = active.remaining
                self.network.remove_flow(active.flow_id)
                self.controller.release(active.flow_id)
                self._park_flow(active.flow_id, remaining, now)
            else:
                self.network.reroute_flow(active.flow_id, path)
                injector.count("faults.flows_rerouted")

    def _on_switch_recover(self, now: float, switch_id: int) -> None:
        injector = self.faults
        assert injector is not None
        if not injector.mark_switch_recovered(switch_id):
            return
        if self.provenance is not None:
            self.provenance.emit(
                "fault",
                "switch-recover",
                switch=switch_id,
                **injector.provenance_context(),
            )
        self.controller.recover_switch(switch_id)
        invalidate_topology_caches(self.topology)
        self._unpark_flows(now)

    def _on_link_fail(self, now: float, u: int, v: int) -> None:
        injector = self.faults
        assert injector is not None
        was_dead = ((u, v) if u <= v else (v, u)) in injector.dead_links
        if not injector.mark_link_failed(u, v):
            return
        if self.provenance is not None:
            self.provenance.emit(
                "fault",
                "link-fail",
                link=[u, v],
                **injector.provenance_context(),
            )
        self._sync_link_state(now, u, v, was_dead)

    def _on_link_recover(self, now: float, u: int, v: int) -> None:
        injector = self.faults
        assert injector is not None
        was_dead = ((u, v) if u <= v else (v, u)) in injector.dead_links
        if not injector.mark_link_recovered(u, v):
            return
        if self.provenance is not None:
            self.provenance.emit(
                "fault",
                "link-recover",
                link=[u, v],
                **injector.provenance_context(),
            )
        self._sync_link_state(now, u, v, was_dead)

    def _on_link_degrade(
        self, now: float, u: int, v: int, factor: float
    ) -> None:
        """Fail-slow link: scale capacity to ``factor`` × nominal.

        Factor 0.0 kills the link (flows reroute or park exactly as for a
        hard ``link-fail``), anything in (0, 1) just squeezes the max-min
        allocation, and 1.0 restores nominal bandwidth."""
        injector = self.faults
        assert injector is not None
        was_dead = ((u, v) if u <= v else (v, u)) in injector.dead_links
        if not injector.mark_link_degraded(u, v, factor):
            return
        if self.provenance is not None:
            self.provenance.emit(
                "fault",
                "link-degrade",
                link=[u, v],
                factor=factor,
                **injector.provenance_context(),
            )
        self._sync_link_state(now, u, v, was_dead)

    def _sync_link_state(
        self, now: float, u: int, v: int, was_dead: bool
    ) -> None:
        """Propagate a link-fault transition into network + controller.

        The injector is the source of truth: the fluid network's capacity
        follows :meth:`FaultInjector.link_capacity_factor` and the routing
        mask follows dead-link membership (failed, or degraded to factor
        0.0).  On a live→dead transition every flow crossing the link is
        rerouted or parked; dead→live recoveries retry the parking lot.
        """
        injector = self.faults
        assert injector is not None
        key = (u, v) if u <= v else (v, u)
        dead = key in injector.dead_links
        self.network.set_link_capacity_factor(
            u, v, injector.link_capacity_factor(u, v)
        )
        if dead == was_dead:
            return
        if dead:
            self.controller.fail_link(u, v)
            invalidate_topology_caches(self.topology)
            # Reroute every flow whose path crosses the dead link; park the
            # ones with no remaining live path until a recovery.
            for active in self.network.active_flows:
                if active.remaining <= 0.0:
                    continue  # already finished awaiting drain
                hops = zip(active.path, active.path[1:])
                if not any(((a, b) if a <= b else (b, a)) == key
                           for a, b in hops):
                    continue
                flow = self._flow_objects[active.flow_id]
                path = self._route(flow, active.path[0], active.path[-1])
                if self.provenance is not None:
                    self.provenance.emit(
                        "reroute",
                        "link-fail-reroute",
                        job=flow.job_id,
                        task=flow_label(flow.map_index, flow.reduce_index),
                        link=[u, v],
                        outcome="parked" if path is None else "rerouted",
                        remaining=active.remaining,
                    )
                if path is None:
                    remaining = active.remaining
                    self.network.remove_flow(active.flow_id)
                    self.controller.release(active.flow_id)
                    self._park_flow(active.flow_id, remaining, now)
                else:
                    self.network.reroute_flow(active.flow_id, path)
                    injector.count("faults.flows_rerouted")
        else:
            self.controller.recover_link(u, v)
            invalidate_topology_caches(self.topology)
            self._unpark_flows(now)

    def _on_task_slowdown(
        self, now: float, server_id: int, factor: float
    ) -> None:
        """Straggler injection: divide the server's speed by ``factor``.

        Affects tasks launched after the event (running tasks keep their
        scheduled completion); factor 1.0 — or a server recovery — restores
        nominal speed.  Restores are counted separately so a timed-slowdown
        timeline (``FaultSpec.duration``) is auditable: every restore the
        injector scheduled must eventually fire."""
        assert self.faults is not None
        self.server_speeds[server_id] = self._base_speeds[server_id] / factor
        if self.provenance is not None:
            self.provenance.emit(
                "fault", "task-slowdown", server=server_id, factor=factor
            )
        if factor == 1.0:
            self.faults.count("faults.slowdown_restore")
        else:
            self.faults.count("faults.slowdown")

    # --- flow parking -------------------------------------------------------
    def _park_flow(self, fid: int, remaining: float, now: float) -> None:
        assert self.faults is not None
        self._parked[fid] = remaining
        if self.provenance is not None:
            flow = self._flow_objects[fid]
            self.provenance.emit(
                "park",
                "flow-parked",
                job=flow.job_id,
                task=flow_label(flow.map_index, flow.reduce_index),
                remaining=remaining,
                parked=len(self._parked),
                **self.faults.provenance_context(),
            )
        self.faults.count("faults.flows_parked")
        self.faults.note_parked(fid, now)

    def _unpark_flows(self, now: float) -> None:
        for fid in sorted(self._parked):
            flow = self._flow_objects[fid]
            job = self._jobs_by_id[flow.job_id]
            src = job.map_output_server.get(flow.map_index)
            dst = self.cluster.container(
                job.reduces[flow.reduce_index].container_id
            ).server_id
            if src is None or dst is None:
                # An endpoint is itself mid-recovery; its restart path owns
                # the flow (and has already pulled it out of the parking lot
                # unless re-parked later).
                continue
            path = self._route(flow, src, dst)
            if path is None:
                continue  # still no live path — stays parked
            if self.speculation is not None:
                self.speculation.note_flow(flow.job_id, flow.map_index, src)
            remaining = self._parked.pop(fid)
            self.network.add_flow(fid, path, flow.size, now, remaining=remaining)
            if self.provenance is not None:
                self.provenance.emit(
                    "park",
                    "flow-resumed",
                    job=flow.job_id,
                    task=flow_label(flow.map_index, flow.reduce_index),
                    remaining=remaining,
                    parked=len(self._parked),
                )
            self.faults.count("faults.flows_resumed")
            self.faults.note_resumed(fid, now)

    def _describe_flow(self, fid: int) -> str:
        """Owner description for network-layer flow errors (job + stage)."""
        flow = self._flow_objects.get(fid)
        if flow is None:
            return ""
        return (
            f"job {flow.job_id} shuffle map {flow.map_index} "
            f"-> reduce {flow.reduce_index}"
        )

    def _cancel_flows(self, predicate, now: float) -> None:
        """Move every matching in-flight or parked flow back to the pending
        registry (its reducer still lists the fid in ``pending_flows``), so
        it restarts from zero when its endpoints are healthy again."""
        for fid in sorted(self._flow_objects):
            flow = self._flow_objects[fid]
            if not predicate(flow):
                continue
            endpoints = (flow.src_container, flow.dst_container)
            if endpoints in self._flow_by_endpoints:
                continue  # not started yet — already pending
            if fid in self._parked:
                del self._parked[fid]
                if self.faults is not None:
                    # The parked wait ends here: dwell stops accruing even
                    # though the flow restarts from zero later.
                    self.faults.note_resumed(fid, now)
            else:
                self.network.remove_flow(fid)
                self.controller.release(fid)
            self._flow_by_endpoints[endpoints] = fid
            if self.faults is not None:
                self.faults.count("faults.flows_killed")

    # --- task re-execution --------------------------------------------------
    def _kill_running_map(
        self, now: float, job: _JobState, cid: int, map_index: int
    ) -> None:
        """A running map died with its server; re-execute it elsewhere.

        ``maps_running`` is left alone — the attempt is still logically in
        flight, so the wave barrier waits for the re-execution."""
        self._attempt[cid] = self._attempt.get(cid, 0) + 1  # stales MAP_DONE
        if self.speculation is not None:
            self.speculation.tracker.note_kill(cid)
        self.cluster.unplace(cid)
        self._charge_retry(job, cid, "map")
        self._schedule_retry(now, cid)

    def _restart_map(
        self, now: float, job: _JobState, cid: int, map_index: int
    ) -> None:
        """A completed map's output was lost; re-execute it if any reduce
        that is not yet running still needs its data (Hadoop's policy for
        completed maps on failed nodes).  Data already delivered to reducers
        is safe and is never re-sent — only the undelivered flows restart.

        When every consumer is already running or finished the re-execution
        is *deferred* (parked in ``job.lost_outputs``) rather than skipped:
        a reducer that later dies mid-run re-fetches its inputs, and this
        same method then pulls the deferred map back into execution."""
        if map_index in job.map_output_server:
            del job.map_output_server[map_index]
            job.lost_outputs.add(map_index)
            if self.speculation is not None:
                # The committed attempt's output is gone; the ledger slot
                # reopens so the re-execution's commit is not a violation.
                self.speculation.note_output_lost(job.spec.job_id, map_index)
        if map_index not in job.lost_outputs:
            return  # still running, or already being re-executed
        if not self._map_output_needed(job, map_index):
            return  # stays in lost_outputs until a consumer reappears
        job.lost_outputs.discard(map_index)
        job.maps_finished -= 1
        job.maps_running += 1
        self._attempt[cid] = self._attempt.get(cid, 0) + 1
        self._cancel_flows(
            lambda f: f.job_id == job.spec.job_id and f.map_index == map_index,
            now,
        )
        if self.cluster.container(cid).is_placed:
            self.cluster.unplace(cid)
        self._charge_retry(job, cid, "map")
        self._schedule_retry(now, cid)

    def _restart_reduce(
        self, now: float, job: _JobState, reduce_state: _ReduceState
    ) -> None:
        """A reducer died with its server: every byte it fetched dies too.

        The container id is reused (it keys all flow endpoints); once
        re-placed, the reducer re-fetches from the surviving map outputs —
        lost sources (including deferred ones) re-execute first."""
        if reduce_state.finished:
            return  # committed output survives its server (written to HDFS)
        cid = reduce_state.container_id
        self._attempt[cid] = self._attempt.get(cid, 0) + 1  # stales REDUCE_DONE
        reduce_state.scheduled = False
        # In-flight/parked inbound transfers restart from zero later.
        self._cancel_flows(lambda f: f.dst_container == cid, now)
        # Re-fetch what had already been delivered: fresh flows with the
        # original endpoints and sizes.
        for mi in sorted(reduce_state.received):
            size = float(job.matrix[mi, reduce_state.index])
            if size <= 1e-12:
                continue
            src_cid = job.map_cid_of[mi]
            flow = ShuffleFlow(
                flow_id=self._next_flow_id,
                job_id=job.spec.job_id,
                map_index=mi,
                reduce_index=reduce_state.index,
                src_container=src_cid,
                dst_container=cid,
                size=size,
                rate=size / self.config.rate_epoch,
            )
            self._next_flow_id += 1
            self._flow_objects[flow.flow_id] = flow
            self._flow_index[flow.flow_id] = (job.spec.job_id, reduce_state.index)
            self._flow_by_endpoints[(src_cid, cid)] = flow.flow_id
            reduce_state.pending_flows.add(flow.flow_id)
            source = job.map_output_server.get(mi)
            if source is None or self.cluster.is_failed(source):
                self._restart_map(now, job, src_cid, mi)
        reduce_state.received.clear()
        if self.cluster.container(cid).is_placed:
            self.cluster.unplace(cid)
        self._charge_retry(job, cid, "reduce")
        self._schedule_retry(now, cid)

    def _map_output_needed(self, job: _JobState, map_index: int) -> bool:
        """True when some reduce that has *not yet started* still expects
        this map's data.  A running (``scheduled``) reduce already holds
        every byte it needs — reduces only start once all shuffle data is
        delivered — so losing an input's source does not disturb it."""
        if job.done:
            return False
        return any(
            not rs.finished
            and not rs.scheduled
            and float(job.matrix[map_index, rs.index]) > 1e-12
            for rs in job.reduces.values()
        )

    def _charge_retry(self, job: _JobState, cid: int, kind: str) -> None:
        count = self._retries.get(cid, 0) + 1
        if count > self.config.max_task_retries:
            raise RuntimeError(
                f"{kind} task of job {job.spec.job_id} (container {cid}) "
                f"exceeded max_task_retries={self.config.max_task_retries}"
            )
        self._retries[cid] = count
        if self.faults is not None:
            self.faults.count(f"retries.{kind}")

    # --- re-placement -------------------------------------------------------
    def _schedule_retry(self, now: float, cid: int, delay: float = 0.0) -> None:
        token = self._retry_token.get(cid, 0) + 1
        self._retry_token[cid] = token
        self._queue.push(
            Event(now + delay, EventKind.TASK_RETRY, payload=(cid, token))
        )

    def _on_task_retry(self, now: float, cid: int, token: int) -> None:
        if token != self._retry_token.get(cid):
            return  # superseded by a newer retry (e.g. after a recovery)
        container = self.cluster.container(cid)
        if container.is_placed:
            return
        task = container.task
        job = self._jobs_by_id[task.job_id]
        server = self._pick_retry_server(cid)
        if server is None:
            # No live server fits right now: exponential backoff (a server
            # recovery also re-triggers the retry immediately).
            exponent = self._backoff.get(cid, 0)
            self._backoff[cid] = exponent + 1
            delay = self.config.retry_backoff * (2.0 ** min(exponent, 20))
            if self.provenance is not None:
                self.provenance.emit(
                    "retry",
                    "retry-blocked",
                    job=task.job_id,
                    task=task_label(task.kind, task.index),
                    attempt=self._attempt.get(cid, 0),
                    backoff_exponent=exponent,
                    delay=delay,
                )
            self._schedule_retry(now, cid, delay)
            return
        self._backoff.pop(cid, None)
        self.cluster.place(cid, server)
        if self.provenance is not None:
            self.provenance.emit(
                "retry",
                "retry-placed",
                job=task.job_id,
                task=task_label(task.kind, task.index),
                attempt=self._attempt.get(cid, 0),
                chosen=server,
                retries_charged=self._retries.get(cid, 0),
            )
        if task.kind is TaskKind.MAP:
            self._relaunch_map(now, job, cid, task.index)
        else:
            self._relaunch_reduce(now, job, job.reduces[task.index])

    def _pick_retry_server(self, cid: int) -> int | None:
        """Deterministic greedy re-placement: the live fitting server with
        the most residual memory (then vcores), lowest id on ties.  Retry
        placement is deliberately scheduler-independent — it models the RM's
        emergency re-grant, not a fresh scheduling decision."""
        best: int | None = None
        best_key: tuple[float, float] | None = None
        for sid in self.cluster.candidate_servers(cid):
            if not self.cluster.fits(cid, sid):
                continue
            residual = self.cluster.residual(sid)
            key = (residual.memory, residual.vcores)
            if best_key is None or key > best_key:
                best, best_key = sid, key
        return best

    def _relaunch_map(
        self, now: float, job: _JobState, cid: int, map_index: int
    ) -> None:
        """Launch a re-placed map attempt (``maps_running`` already counts
        it, so this is :meth:`_launch_maps` minus the accounting)."""
        server = self.cluster.container(cid).server_id
        assert server is not None
        duration, nominal = self._map_timing(job, map_index, server)
        if self.speculation is not None:
            self.speculation.tracker.note_start(
                job.spec.job_id, map_index, cid, now, duration, nominal
            )
        self._queue.push(
            Event(
                now + duration,
                EventKind.MAP_DONE,
                payload=(
                    job.spec.job_id,
                    cid,
                    map_index,
                    now,
                    self._attempt.get(cid, 0),
                ),
            )
        )

    def _relaunch_reduce(
        self, now: float, job: _JobState, reduce_state: _ReduceState
    ) -> None:
        """A re-placed reducer pulls every pending inbound flow whose source
        output exists; flows from still-running (or re-executing) maps start
        on those maps' completion as usual."""
        cid = reduce_state.container_id
        server = self.cluster.container(cid).server_id
        assert server is not None
        ready = [
            fid
            for (src_cid, dst_cid), fid in sorted(self._flow_by_endpoints.items())
            if dst_cid == cid
        ]
        for fid in ready:
            flow = self._flow_objects[fid]
            source = job.map_output_server.get(flow.map_index)
            if source is None:
                continue
            if self.speculation is not None:
                self.speculation.note_flow(
                    job.spec.job_id, flow.map_index, source
                )
            del self._flow_by_endpoints[(flow.src_container, cid)]
            if source == server:
                self._deliver_local(now, job, fid, flow)
            else:
                self._launch_flow(now, flow, source, server)
        self._maybe_finish_reduce(now, job, reduce_state)

    # ------------------------------------------------------------ speculation
    # Everything below runs only when speculation is configured.  The
    # protocol: a SPECULATE sweep picks stragglers (LATE detector), a backup
    # attempt is launched on a scheduler-ranked server, whichever copy's
    # MAP_DONE pops first commits and pushes a same-instant KILL_ATTEMPT for
    # the loser (priority class 1, so it invalidates the loser before any
    # queued normal event).  map_cid_of never changes — backup containers
    # are ephemeral compute vehicles, and flows bind to the winning output
    # through map_output_server.

    def _on_speculate(self, now: float) -> None:
        sp = self.speculation
        assert sp is not None
        sp.count("spec.sweeps")
        excluded = sp.paired_cids()
        for cand in sp.tracker.candidates(now, sp.config, excluded):
            job = self._jobs_by_id[cand.job_id]
            if job.done or cand.map_index in job.map_output_server:
                continue
            allowed = sp.config.backups_allowed(job.spec.num_maps)
            if sp.live_backups.get(cand.job_id, 0) >= allowed:
                sp.count("spec.quota_denied")
                if self.provenance is not None:
                    self.provenance.emit(
                        "speculation",
                        "quota-denied",
                        job=cand.job_id,
                        task=task_label(TaskKind.MAP, cand.map_index),
                        rate=cand.rate,
                        allowed=allowed,
                        **sp.provenance_context(cand.job_id),
                    )
                continue
            self._launch_backup(now, job, cand)
        if self._jobs_remaining > 0 and (
            self.admission is None or bool(self._queue)
        ):
            # Online plane: jobs stranded in admission queues after the last
            # real event would otherwise keep the sweep re-arming forever —
            # once nothing but sweeps remains, nothing can change, so stop.
            self._queue.push(
                Event(now + sp.config.check_interval, EventKind.SPECULATE)
            )

    def _launch_backup(
        self, now: float, job: _JobState, cand: AttemptProgress
    ) -> None:
        """Duplicate a straggling attempt on a scheduler-ranked server.

        Backups are launched only when a slot fits *now* — no retry backoff
        (a straggler is by definition still making progress, so a backup
        that cannot start immediately is simply not worth queueing)."""
        sp = self.speculation
        assert sp is not None
        origin = self.cluster.container(cand.cid).server_id
        if origin is None:
            return  # straggler is mid-re-placement; nothing to duplicate
        candidates = self._backup_candidates(origin)
        if not candidates:
            sp.count("spec.no_slot")
            if self.provenance is not None:
                self.provenance.emit(
                    "speculation",
                    "no-slot",
                    job=job.spec.job_id,
                    task=task_label(TaskKind.MAP, cand.map_index),
                    origin=origin,
                    rate=cand.rate,
                    **sp.provenance_context(job.spec.job_id),
                )
            return
        map_index = cand.map_index
        flows = self._pending_output_flows(job, job.map_cid_of[map_index])
        ranked = None
        if flows:
            ctx = self._planning_context(flows)
            ranked = self.scheduler.rank_backup_servers(
                ctx, job.spec, flows, candidates
            )
        if ranked:
            server = ranked[0]
        else:
            server = self._greedy_backup_pick(candidates)
        # Too-late guard: a backup that cannot finish strictly before the
        # straggler's own expected completion can never win — launching it
        # would only burn a slot and guarantee a spec.loss.
        probe = (
            job.spec.map_duration / self.server_speeds[server]
            + self._read_penalty(job, map_index, server, account=False)
        )
        if now + probe >= cand.expected_finish:
            sp.count("spec.too_late")
            if self.provenance is not None:
                self.provenance.emit(
                    "speculation",
                    "too-late",
                    job=job.spec.job_id,
                    task=task_label(TaskKind.MAP, map_index),
                    chosen=server,
                    probe=probe,
                    expected_finish=cand.expected_finish,
                    rate=cand.rate,
                )
            return
        bcid = self._new_container(
            TaskRef(job.spec.job_id, TaskKind.MAP, map_index)
        )
        self.cluster.place(bcid, server)
        sp.pair(job.spec.job_id, cand.cid, bcid)
        duration, nominal = self._map_timing(job, map_index, server)
        sp.tracker.note_start(
            job.spec.job_id, map_index, bcid, now, duration, nominal
        )
        # maps_running is a count of *tasks*, not attempts: the wave barrier
        # must release exactly once whichever copy commits.
        self._queue.push(
            Event(
                now + duration,
                EventKind.MAP_DONE,
                payload=(
                    job.spec.job_id,
                    bcid,
                    map_index,
                    now,
                    self._attempt.get(bcid, 0),
                ),
            )
        )
        sp.count("spec.launched")
        if self.provenance is not None:
            self.provenance.emit(
                "speculation",
                "backup-launched",
                job=job.spec.job_id,
                task=task_label(TaskKind.MAP, map_index),
                attempt=self._attempt.get(bcid, 0),
                chosen=server,
                origin=origin,
                candidates=len(candidates),
                ranked=bool(ranked),
                rate=cand.rate,
                expected_finish=cand.expected_finish,
                **sp.provenance_context(job.spec.job_id),
            )

    def _backup_candidates(self, origin: int) -> list[int]:
        """Live servers with headroom, excluding the straggler's own."""
        demand = self.config.container_demand
        out = []
        for sid in self.cluster.server_ids:
            if sid == origin or self.cluster.is_failed(sid):
                continue
            if demand.fits_in(self.cluster.residual(sid)):
                out.append(sid)
        return out

    def _pending_output_flows(
        self, job: _JobState, map_cid: int
    ) -> list[ShuffleFlow]:
        """The map's not-yet-started shuffle flows (placement signal)."""
        flows = []
        for ri in sorted(job.reduces):
            fid = self._flow_by_endpoints.get(
                (map_cid, job.reduces[ri].container_id)
            )
            if fid is not None:
                flows.append(self._flow_objects[fid])
        return flows

    def _greedy_backup_pick(self, candidates: list[int]) -> int:
        """Baseline backup placement: the RM-style greedy re-grant (most
        residual memory, then vcores, lowest id) restricted to candidates."""
        best = candidates[0]
        best_key: tuple[float, float] | None = None
        for sid in candidates:
            residual = self.cluster.residual(sid)
            key = (residual.memory, residual.vcores)
            if best_key is None or key > best_key:
                best, best_key = sid, key
        return best

    def _settle_speculation(
        self, now: float, job: _JobState, winner_cid: int
    ) -> None:
        """Dissolve the winner's pair and order the loser killed."""
        sp = self.speculation
        assert sp is not None
        backup = sp.backup_of.get(winner_cid)
        if backup is not None:
            loser = backup
            sp.unpair(job.spec.job_id, winner_cid, backup)
            sp.count("spec.losses")
            verdict = "spec-loss"
        else:
            original = sp.primary_of.get(winner_cid)
            if original is None:
                return  # unpaired attempt: nothing to settle
            loser = original
            sp.unpair(job.spec.job_id, original, winner_cid)
            sp.count("spec.wins")
            verdict = "spec-win"
        if self.provenance is not None:
            task = self.cluster.container(winner_cid).task
            self.provenance.emit(
                "speculation",
                verdict,
                job=job.spec.job_id,
                task=(
                    task_label(task.kind, task.index)
                    if task is not None
                    else None
                ),
                winner=winner_cid,
                loser=loser,
            )
        self._queue.push(
            Event(
                now,
                EventKind.KILL_ATTEMPT,
                payload=(loser, self._attempt.get(loser, 0)),
            )
        )

    def _on_kill_attempt(
        self, now: float, cid: int, expected_attempt: int
    ) -> None:
        sp = self.speculation
        assert sp is not None
        if self._attempt.get(cid, 0) != expected_attempt:
            return  # already superseded (e.g. by a same-instant failure)
        self._attempt[cid] = expected_attempt + 1
        sp.note_kill(cid, expected_attempt)
        sp.tracker.note_kill(cid)
        # A kill also supersedes any in-flight retry/backoff for the cid.
        self._retry_token[cid] = self._retry_token.get(cid, 0) + 1
        self._backoff.pop(cid, None)
        if self.cluster.container(cid).is_placed:
            self.cluster.unplace(cid)
        sp.count("spec.kills")
        if self.provenance is not None:
            task = self.cluster.container(cid).task
            self.provenance.emit(
                "speculation",
                "backup-killed",
                job=task.job_id if task is not None else None,
                task=(
                    task_label(task.kind, task.index)
                    if task is not None
                    else None
                ),
                attempt=expected_attempt,
            )

    def _cancel_backup(self, now: float, job: _JobState, bcid: int) -> None:
        """The backup died with its server; the original runs on alone."""
        sp = self.speculation
        assert sp is not None
        original = sp.primary_of[bcid]
        sp.unpair(job.spec.job_id, original, bcid)
        attempt = self._attempt.get(bcid, 0)
        self._attempt[bcid] = attempt + 1
        sp.note_kill(bcid, attempt)
        sp.tracker.note_kill(bcid)
        self.cluster.unplace(bcid)
        sp.count("spec.backups_lost")

    def _promote_backup(
        self, now: float, job: _JobState, orig_cid: int
    ) -> None:
        """The original died with its server while its backup lives: the
        backup becomes the task's sole first-class attempt (no retry budget
        is charged — speculation already paid for the replacement)."""
        sp = self.speculation
        assert sp is not None
        bcid = sp.backup_of[orig_cid]
        sp.unpair(job.spec.job_id, orig_cid, bcid)
        attempt = self._attempt.get(orig_cid, 0)
        self._attempt[orig_cid] = attempt + 1
        sp.note_kill(orig_cid, attempt)
        sp.tracker.note_kill(orig_cid)
        self.cluster.unplace(orig_cid)
        sp.count("spec.promoted")

    # ------------------------------------------------------------ reduce side
    def _on_reduce_done(
        self, now: float, job_id: int, reduce_index: int, attempt: int = 0
    ) -> None:
        job = self._jobs_by_id[job_id]
        reduce_state = job.reduces[reduce_index]
        if attempt != self._attempt.get(reduce_state.container_id, 0):
            return  # completion of an attempt killed by a server failure
        reduce_state.finished = True
        server = self.cluster.container(reduce_state.container_id).server_id
        self.metrics.record_task(
            TaskRecord(
                job_id=job_id,
                kind="reduce",
                index=reduce_index,
                start=reduce_state.start_time,
                finish=now,
                server=server if server is not None else -1,
                attempt=attempt,
                compute_start=reduce_state.compute_start,
            )
        )
        self.cluster.unplace(reduce_state.container_id)
        job.reduces_finished += 1
        if job.done:
            self._jobs_remaining -= 1
            self.metrics.record_job(
                JobRecord(
                    job_id=job_id,
                    name=job.spec.name,
                    shuffle_class=job.spec.shuffle_class.value,
                    submit_time=job.submit_time,
                    start_time=job.start_time,
                    finish_time=now,
                    shuffle_volume=job.spec.shuffle_volume,
                    remote_map_traffic=job.remote_map_traffic,
                    tenant=job.spec.tenant,
                )
            )
        self._try_admit(now)


def run_simulation(
    topology: Topology,
    scheduler: Scheduler,
    jobs: list[JobSpec],
    config: SimulationConfig | None = None,
) -> MetricsCollector:
    """Convenience one-shot runner."""
    return MapReduceSimulator(topology, scheduler, jobs, config).run()
