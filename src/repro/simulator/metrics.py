"""Measurement plane of the simulator.

Collects exactly the quantities the paper's evaluation section reports:

* per-job completion times (Figure 6a's CDF),
* per-task Map / Reduce execution times (Figures 6b/6c),
* per-flow route length in switch hops and packet-delay estimate
  (Figures 7a/7b),
* shuffle traffic volume and shuffle *cost* in size x switch-hops units —
  the GB.T currency of the Section 2.3 case study (Figures 8 and 10),
* remote-Map traffic volume (Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "JobRecord",
    "FlowRecord",
    "P2Quantile",
    "RejectionRecord",
    "TaskRecord",
    "MetricsCollector",
    "jain_fairness",
]


class P2Quantile:
    """Streaming quantile estimator (P-squared, Jain & Chlamtac 1985).

    Maintains five markers — min, two intermediate quantiles, the target
    quantile and max — and adjusts their heights with a piecewise-parabolic
    fit as observations arrive, so a running p99 costs O(1) memory instead
    of retaining every sample.  Below five observations the estimate is the
    exact percentile of what has been seen.

    This is the memory-bounded *alternative* behind
    ``MetricsCollector(streaming_quantiles=True)``; the exact
    retain-everything computation stays the default, and the test suite
    cross-checks the two against each other.
    """

    __slots__ = ("q", "count", "_init", "_h", "_n", "_np", "_dn")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = float(q)
        self.count = 0
        self._init: list[float] = []
        self._h: list[float] = []  # marker heights
        self._n: list[float] = []  # actual marker positions (1-based)
        self._np: list[float] = []  # desired marker positions
        self._dn = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def add(self, x: float) -> None:
        """Fold one observation into the estimate."""
        x = float(x)
        self.count += 1
        if self.count <= 5:
            self._init.append(x)
            if self.count == 5:
                self._h = sorted(self._init)
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self._np = [
                    1.0,
                    1.0 + 2.0 * q,
                    1.0 + 4.0 * q,
                    3.0 + 2.0 * q,
                    5.0,
                ]
            return
        h, n = self._h, self._n
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self._np[i] += self._dn[i]
        for i in (1, 2, 3):
            d = self._np[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                d = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, d)
                if not h[i - 1] < candidate < h[i + 1]:
                    candidate = self._linear(i, d)
                h[i] = candidate
                n[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self._h, self._n
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, n = self._h, self._n
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current estimate of the target quantile; 0.0 with no data."""
        if self.count == 0:
            return 0.0
        if self.count < 5:
            return float(np.percentile(self._init, self.q * 100.0))
        return self._h[2]


def jain_fairness(values) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)`` over ``values``.

    1.0 = perfectly even, ``1/n`` = one value dominates.  Defined as 1.0
    for empty input or an all-zero vector (nothing to be unfair about), so
    report code can call it unconditionally.
    """
    x = np.asarray(list(values), dtype=float)
    if x.size == 0:
        return 1.0
    if np.any(x < 0):
        raise ValueError("fairness index is defined for non-negative values")
    square_sum = float(np.sum(x * x))
    if square_sum == 0.0:
        return 1.0
    return float(np.sum(x)) ** 2 / (x.size * square_sum)


@dataclass
class TaskRecord:
    """One finished task attempt."""

    job_id: int
    kind: str  # "map" | "reduce"
    index: int
    start: float
    finish: float
    #: Server that hosted the committing attempt (-1 when unknown).
    server: int = -1
    #: Attempt number of the committing execution (0 = first attempt;
    #: higher values mean failure-induced re-executions happened).
    attempt: int = 0
    #: True when a speculative backup attempt committed instead of the
    #: original (maps only).
    speculative: bool = False
    #: Simulated time the final attempt's compute started.  For reduces this
    #: is when the last inbound shuffle byte arrived (the compute phase's
    #: start); for maps it equals ``start``.  -1.0 when never scheduled.
    compute_start: float = -1.0

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class FlowRecord:
    """One completed shuffle flow."""

    flow_id: int
    job_id: int
    size: float
    start: float
    finish: float
    num_switches: int
    delay_us: float
    #: Endpoints in task-index space (-1 when the producer is unknown).
    map_index: int = -1
    reduce_index: int = -1

    @property
    def duration(self) -> float:
        return self.finish - self.start

    @property
    def cost(self) -> float:
        """Size x switch-hops: the paper's GB.T shuffle-cost unit."""
        return self.size * self.num_switches


@dataclass
class JobRecord:
    """One finished job."""

    job_id: int
    name: str
    shuffle_class: str
    submit_time: float
    start_time: float
    finish_time: float
    shuffle_volume: float
    remote_map_traffic: float
    #: Owning tenant (0 for single-tenant batch workloads).
    tenant: int = 0

    @property
    def completion_time(self) -> float:
        """JCT measured from *arrival* (submission), so it includes the
        admission-queue wait — the open-loop definition, not time since
        batch start."""
        return self.finish_time - self.submit_time

    @property
    def wait_time(self) -> float:
        """Time spent queued between arrival and admission."""
        return self.start_time - self.submit_time

    @property
    def service_time(self) -> float:
        """Time from admission to completion (the in-cluster portion)."""
        return self.finish_time - self.start_time

    @property
    def slowdown(self) -> float:
        """Queueing slowdown: arrival-relative JCT over service time.

        ``1.0`` means the job never waited; larger values measure how much
        the admission queue stretched the job.  A zero-duration service
        (degenerate instant job) is defined as slowdown ``1.0`` so the
        metric is always finite and NaN-free.
        """
        service = self.service_time
        if service <= 0.0:
            return 1.0
        return self.completion_time / service


@dataclass
class RejectionRecord:
    """One job explicitly rejected by the admission controller.

    ``reason`` is a machine-readable reason code (see
    :mod:`repro.workload.admission`); rejected jobs never produce a
    :class:`JobRecord`, but they stay accountable through these records —
    the overload contract's "no silent drops" leg.
    """

    job_id: int
    name: str
    tenant: int
    time: float
    reason: str


class MetricsCollector:
    """Accumulates records during a run and answers aggregate queries.

    ``streaming_quantiles=True`` opts the tail queries (``p99_jct`` /
    p99 slowdown) into O(1)-memory :class:`P2Quantile` estimators fed at
    record time instead of exact percentiles over the retained record
    lists.  The exact computation stays the default — streaming is for
    long open-loop runs where the record lists themselves get bounded or
    dropped.
    """

    def __init__(self, *, streaming_quantiles: bool = False) -> None:
        self.jobs: list[JobRecord] = []
        self.tasks: list[TaskRecord] = []
        self.flows: list[FlowRecord] = []
        self.rejections: list[RejectionRecord] = []
        self.streaming_quantiles = streaming_quantiles
        self._p2_jct = P2Quantile(0.99) if streaming_quantiles else None
        self._p2_slowdown = P2Quantile(0.99) if streaming_quantiles else None

    # -------------------------------------------------------------- recording
    def record_job(self, record: JobRecord) -> None:
        self.jobs.append(record)
        if self._p2_jct is not None and self._p2_slowdown is not None:
            self._p2_jct.add(record.completion_time)
            self._p2_slowdown.add(record.slowdown)

    def record_task(self, record: TaskRecord) -> None:
        self.tasks.append(record)

    def record_flow(self, record: FlowRecord) -> None:
        self.flows.append(record)

    def record_rejection(self, record: RejectionRecord) -> None:
        self.rejections.append(record)

    # ------------------------------------------------------------- aggregates
    def job_completion_times(self) -> np.ndarray:
        return np.array([j.completion_time for j in self.jobs])

    def task_durations(self, kind: str) -> np.ndarray:
        return np.array([t.duration for t in self.tasks if t.kind == kind])

    def mean_jct(self) -> float:
        times = self.job_completion_times()
        return float(times.mean()) if times.size else 0.0

    def jct_percentile(self, q: float) -> float:
        """JCT percentile ``q`` in [0, 100]; 0.0 on an empty record set.

        A single-sample distribution returns that sample for every ``q`` —
        never NaN — so report code can call this unconditionally.  With
        ``streaming_quantiles`` on, ``q == 99`` reads the :class:`P2Quantile`
        estimator; every other ``q`` stays exact.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if q == 99.0 and self._p2_jct is not None:
            return self._p2_jct.value()
        times = self.job_completion_times()
        return float(np.percentile(times, q)) if times.size else 0.0

    def p99_jct(self) -> float:
        """Tail (99th percentile) arrival-relative JCT; 0.0 with no jobs."""
        return self.jct_percentile(99.0)

    # ------------------------------------------- open-loop (online) aggregates
    def slowdowns(self) -> np.ndarray:
        """Per-job queueing slowdowns (arrival-relative JCT / service)."""
        return np.array([j.slowdown for j in self.jobs])

    def mean_slowdown(self) -> float:
        values = self.slowdowns()
        return float(values.mean()) if values.size else 0.0

    def slowdown_percentile(self, q: float) -> float:
        """Slowdown percentile ``q`` in [0, 100]; 0.0 on an empty set.

        Like :meth:`jct_percentile`, ``q == 99`` under
        ``streaming_quantiles`` reads the streaming estimator.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if q == 99.0 and self._p2_slowdown is not None:
            return self._p2_slowdown.value()
        values = self.slowdowns()
        return float(np.percentile(values, q)) if values.size else 0.0

    def mean_wait(self) -> float:
        """Mean admission-queue wait over completed jobs; 0.0 when none."""
        if not self.jobs:
            return 0.0
        return float(np.mean([j.wait_time for j in self.jobs]))

    def tenants(self) -> list[int]:
        """Sorted tenant ids present in completed or rejected records."""
        seen = {j.tenant for j in self.jobs}
        seen.update(r.tenant for r in self.rejections)
        return sorted(seen)

    def per_tenant_mean_slowdown(self) -> dict[int, float]:
        """Mean slowdown per tenant, over tenants that completed jobs."""
        by_tenant: dict[int, list[float]] = {}
        for job in self.jobs:
            by_tenant.setdefault(job.tenant, []).append(job.slowdown)
        return {
            tenant: float(np.mean(values))
            for tenant, values in sorted(by_tenant.items())
        }

    def tenant_fairness(self) -> float:
        """Jain fairness of per-tenant *mean slowdown* (1.0 = even stretch).

        Slowdown, not raw JCT, so tenants submitting bigger jobs are not
        counted as "unfairly" treated; 1.0 when at most one tenant ran.
        """
        return jain_fairness(self.per_tenant_mean_slowdown().values())

    def rejection_count(self) -> dict[str, int]:
        """Rejections grouped by reason code (sorted, deterministic)."""
        counts: dict[str, int] = {}
        for record in self.rejections:
            counts[record.reason] = counts.get(record.reason, 0) + 1
        return dict(sorted(counts.items()))

    def mean_task_duration(self, kind: str) -> float:
        """Mean duration of finished ``kind`` tasks; 0.0 when none ran."""
        durations = self.task_durations(kind)
        return float(durations.mean()) if durations.size else 0.0

    def average_route_length(self) -> float:
        """Mean switch count over *networked* shuffle flows (Figure 7a).

        Co-located (zero-switch) flows are included — a scheduler that
        co-locates endpoints legitimately shortens the average route.
        """
        if not self.flows:
            return 0.0
        return float(np.mean([f.num_switches for f in self.flows]))

    def average_shuffle_delay_us(self) -> float:
        """Mean packet-delay estimate over networked flows (Figure 7b)."""
        networked = [f.delay_us for f in self.flows if f.num_switches > 0]
        return float(np.mean(networked)) if networked else 0.0

    def average_flow_duration(self) -> float:
        networked = [f.duration for f in self.flows if f.num_switches > 0]
        return float(np.mean(networked)) if networked else 0.0

    def total_shuffle_cost(self) -> float:
        """Sum of size x switch-hops over all flows (GB.T units)."""
        return float(sum(f.cost for f in self.flows))

    def total_shuffle_volume(self) -> float:
        return float(sum(f.size for f in self.flows))

    def total_remote_map_traffic(self) -> float:
        return float(sum(j.remote_map_traffic for j in self.jobs))

    def throughput(self) -> float:
        """Shuffle bytes delivered per unit makespan.

        0.0 when no flows ran *or* every flow was an instant local delivery
        (zero makespan) — finite and NaN-free in both degenerate cases.
        """
        if not self.flows:
            return 0.0
        makespan = max(f.finish for f in self.flows) - min(
            f.start for f in self.flows
        )
        if makespan <= 0:
            return 0.0
        return self.total_shuffle_volume() / makespan

    def makespan(self) -> float:
        if not self.jobs:
            return 0.0
        return max(j.finish_time for j in self.jobs) - min(
            j.submit_time for j in self.jobs
        )

    def online_summary(self) -> dict[str, float]:
        """Open-loop aggregates for the online workload plane.

        Kept separate from :meth:`summary` so batch-mode artifacts (sweep
        cells, bench baselines, chaos fingerprints) stay byte-identical.
        """
        return {
            "jobs": float(len(self.jobs)),
            "rejected": float(len(self.rejections)),
            "mean_jct": self.mean_jct(),
            "p99_jct": self.p99_jct(),
            "mean_slowdown": self.mean_slowdown(),
            "p99_slowdown": self.slowdown_percentile(99.0),
            "mean_wait": self.mean_wait(),
            "tenant_fairness": self.tenant_fairness(),
        }

    def summary(self) -> dict[str, float]:
        """One-line dictionary for experiment tables."""
        return {
            "jobs": float(len(self.jobs)),
            "mean_jct": self.mean_jct(),
            "avg_route_hops": self.average_route_length(),
            "avg_shuffle_delay_us": self.average_shuffle_delay_us(),
            "avg_flow_duration": self.average_flow_duration(),
            "shuffle_cost": self.total_shuffle_cost(),
            "shuffle_volume": self.total_shuffle_volume(),
            "remote_map_traffic": self.total_remote_map_traffic(),
            "makespan": self.makespan(),
        }
