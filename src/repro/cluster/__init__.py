"""Compute substrate: resources, containers and cluster placement state."""

from .container import Container, TaskKind, TaskRef
from .resources import Resources
from .state import ClusterState

__all__ = ["Container", "TaskKind", "TaskRef", "Resources", "ClusterState"]
