"""Resource vectors for containers and servers.

The paper models each container ``c_i`` with a physical resource requirement
``r_i`` (memory, CPU cycles) and each server ``s_j`` with an available
resource ``q_j``; feasibility is ``sum(r_i for c_i hosted by s_j) <= q_j``
(Section 3.1).  :class:`Resources` is a small immutable vector with the
component-wise arithmetic and comparison that check encodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Resources"]


@dataclass(frozen=True, order=False)
class Resources:
    """An immutable (memory, vcores) resource vector.

    The two components mirror YARN's default resource model.  All arithmetic
    is component-wise; ``a.fits_in(b)`` is the partial order used by every
    capacity check in the library.
    """

    memory: float = 0.0
    vcores: float = 0.0

    def __post_init__(self) -> None:
        if self.memory < 0 or self.vcores < 0:
            raise ValueError(f"resources must be non-negative, got {self}")

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other: "Resources") -> "Resources":
        return Resources(self.memory + other.memory, self.vcores + other.vcores)

    def __sub__(self, other: "Resources") -> "Resources":
        # Clamp float-rounding residue (e.g. 0.7 + 0.5 - 0.7 - 0.5 != 0.0)
        # so repeated charge/refund cycles never trip the non-negativity
        # validator; genuinely negative results still raise.
        def clamp(value: float) -> float:
            return 0.0 if -1e-9 < value < 0.0 else value

        return Resources(
            clamp(self.memory - other.memory), clamp(self.vcores - other.vcores)
        )

    def __mul__(self, scalar: float) -> "Resources":
        return Resources(self.memory * scalar, self.vcores * scalar)

    __rmul__ = __mul__

    # ------------------------------------------------------------ comparison
    def fits_in(self, capacity: "Resources") -> bool:
        """Component-wise ``self <= capacity`` (the paper's capacity check)."""
        return self.memory <= capacity.memory and self.vcores <= capacity.vcores

    def dominates(self, other: "Resources") -> bool:
        """Component-wise ``self >= other``."""
        return self.memory >= other.memory and self.vcores >= other.vcores

    @property
    def is_zero(self) -> bool:
        return self.memory == 0 and self.vcores == 0

    # ------------------------------------------------------------- utilities
    def as_tuple(self) -> tuple[float, float]:
        return (self.memory, self.vcores)

    @classmethod
    def from_tuple(cls, values: tuple[float, ...]) -> "Resources":
        """Build from a generic tuple; missing components default to 0."""
        padded = tuple(values) + (0.0,) * (2 - len(values))
        return cls(memory=padded[0], vcores=padded[1])

    @classmethod
    def zero(cls) -> "Resources":
        return cls(0.0, 0.0)

    def __iter__(self) -> Iterator[float]:
        yield self.memory
        yield self.vcores

    def __repr__(self) -> str:
        return f"Resources(mem={self.memory:g}, vcores={self.vcores:g})"
