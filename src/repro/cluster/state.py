"""Mutable cluster state: placements of containers on servers.

:class:`ClusterState` couples an immutable
:class:`~repro.topology.base.Topology` with the run-time placement map
``A(c_i) -> s_j`` of the paper, enforcing the server-capacity constraint
``sum r_i <= q_j`` on every mutation.  It also implements Eq 8 — the set
``O(c_i)`` of candidate servers that could host a container — which both the
preference construction and the stable-matching assignment consume.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..topology.base import Topology
from .container import Container
from .resources import Resources

__all__ = ["ClusterState"]


class ClusterState:
    """Containers placed on the servers of a topology.

    The class owns the containers (keyed by id) and maintains, per server,
    the multiset of hosted containers plus a cached residual-resource vector
    so feasibility checks are O(1).
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._capacity: dict[int, Resources] = {
            s.node_id: Resources.from_tuple(s.resource_capacity)
            for s in topology.servers()
        }
        self._used: dict[int, Resources] = {
            sid: Resources.zero() for sid in self._capacity
        }
        self._hosted: dict[int, set[int]] = {sid: set() for sid in self._capacity}
        self._containers: dict[int, Container] = {}
        #: Servers currently failed (fault injection): excluded from every
        #: placement-feasibility query until they recover.
        self._failed: set[int] = set()

    # -------------------------------------------------------------- containers
    def add_container(self, container: Container) -> None:
        """Register a container; if it carries a ``server_id`` it is placed."""
        if container.container_id in self._containers:
            raise ValueError(f"duplicate container id {container.container_id}")
        self._containers[container.container_id] = container
        if container.server_id is not None:
            server_id = container.server_id
            container.server_id = None
            self.place(container.container_id, server_id)

    def add_containers(self, containers: Iterable[Container]) -> None:
        for c in containers:
            self.add_container(c)

    def container(self, container_id: int) -> Container:
        return self._containers[container_id]

    def containers(self) -> Iterator[Container]:
        for cid in sorted(self._containers):
            yield self._containers[cid]

    @property
    def num_containers(self) -> int:
        return len(self._containers)

    def unplaced_containers(self) -> list[Container]:
        """Containers with ``A(c_i) = 0`` — the work list of Algorithm 2."""
        return [c for c in self.containers() if not c.is_placed]

    # ----------------------------------------------------------------- servers
    @property
    def server_ids(self) -> tuple[int, ...]:
        return self.topology.server_ids

    def capacity(self, server_id: int) -> Resources:
        return self._capacity[server_id]

    def used(self, server_id: int) -> Resources:
        return self._used[server_id]

    def residual(self, server_id: int) -> Resources:
        return self._capacity[server_id] - self._used[server_id]

    def hosted_on(self, server_id: int) -> tuple[int, ...]:
        """Container ids hosted on a server — the paper's ``A(s_j)``."""
        return tuple(sorted(self._hosted[server_id]))

    def fits(self, container_id: int, server_id: int) -> bool:
        """True when the server has residual capacity for the container.

        Failed servers never fit anything — this is the single gate every
        scheduler's placement loop goes through, so marking a server failed
        blacklists it everywhere at once.
        """
        if server_id in self._failed:
            return False
        demand = self._containers[container_id].demand
        return demand.fits_in(self.residual(server_id))

    # ---------------------------------------------------------- failure state
    @property
    def failed_servers(self) -> frozenset[int]:
        """Servers currently marked failed (empty when no faults are live)."""
        return frozenset(self._failed)

    def is_failed(self, server_id: int) -> bool:
        return server_id in self._failed

    def fail_server(self, server_id: int) -> None:
        """Mark a server failed: no new placements until it recovers.

        Containers already hosted there are *not* evicted here — the caller
        (the simulator's recovery layer) owns task-level recovery and must
        unplace them explicitly, deciding what each lost task means.
        """
        if server_id not in self._capacity:
            raise KeyError(f"unknown server {server_id}")
        self._failed.add(server_id)

    def recover_server(self, server_id: int) -> None:
        """Return a failed server to service (idempotent)."""
        if server_id not in self._capacity:
            raise KeyError(f"unknown server {server_id}")
        self._failed.discard(server_id)

    # ------------------------------------------------------------- occupancy
    def total_capacity(self) -> Resources:
        """Aggregate capacity of the *live* (non-failed) servers."""
        total = Resources.zero()
        for sid, capacity in self._capacity.items():
            if sid not in self._failed:
                total = total + capacity
        return total

    def total_used(self) -> Resources:
        """Aggregate usage on the live servers."""
        total = Resources.zero()
        for sid, used in self._used.items():
            if sid not in self._failed:
                total = total + used
        return total

    def occupancy(self) -> float:
        """Fraction of live cluster capacity in use, in ``[0, 1]``.

        The maximum over resource components with non-zero capacity (the
        binding dimension is what admission control cares about).  Defined
        as 1.0 when every server is failed — no capacity means full
        pressure, so backpressure consumers defer instead of dividing by
        zero.
        """
        capacity = self.total_capacity()
        if capacity.is_zero:
            return 1.0
        used = self.total_used()
        fractions = [
            u / c for u, c in zip(used, capacity) if c > 0
        ]
        return min(1.0, max(fractions))

    def candidate_servers(self, container_id: int) -> list[int]:
        """Eq 8: servers able to host the container.

        A container's *current* server is always a candidate (moving a
        container "to where it already is" is a no-op with utility 0).
        """
        container = self._containers[container_id]
        out = []
        for sid in self.server_ids:
            if sid in self._failed:
                continue
            if sid == container.server_id or container.demand.fits_in(
                self.residual(sid)
            ):
                out.append(sid)
        return out

    # --------------------------------------------------------------- mutation
    def place(self, container_id: int, server_id: int) -> None:
        """Place an unplaced container, enforcing server capacity."""
        container = self._containers[container_id]
        if container.is_placed:
            raise ValueError(f"container {container_id} is already placed")
        if server_id not in self._capacity:
            raise KeyError(f"unknown server {server_id}")
        if server_id in self._failed:
            raise ValueError(
                f"server {server_id} is failed; cannot place "
                f"container {container_id}"
            )
        if not container.demand.fits_in(self.residual(server_id)):
            raise ValueError(
                f"server {server_id} lacks capacity for container {container_id}"
            )
        container.server_id = server_id
        self._hosted[server_id].add(container_id)
        self._used[server_id] = self._used[server_id] + container.demand

    def unplace(self, container_id: int) -> None:
        """Evict a container from its server (Algorithm 2's rejection step)."""
        container = self._containers[container_id]
        if not container.is_placed:
            raise ValueError(f"container {container_id} is not placed")
        server_id = container.server_id
        assert server_id is not None
        self._hosted[server_id].discard(container_id)
        self._used[server_id] = self._used[server_id] - container.demand
        container.server_id = None

    def move(self, container_id: int, server_id: int) -> None:
        """Relocate a container atomically (unplace + place)."""
        container = self._containers[container_id]
        if container.server_id == server_id:
            return
        previous = container.server_id
        if previous is not None:
            self.unplace(container_id)
        try:
            self.place(container_id, server_id)
        except ValueError:
            if previous is not None:
                self.place(container_id, previous)
            raise

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        """Re-derive per-server usage and compare with the caches."""
        for sid in self._capacity:
            total = Resources.zero()
            for cid in self._hosted[sid]:
                c = self._containers[cid]
                if c.server_id != sid:
                    raise AssertionError(
                        f"container {cid} bookkeeping mismatch on server {sid}"
                    )
                total = total + c.demand
            if total.as_tuple() != self._used[sid].as_tuple():
                raise AssertionError(f"usage cache drift on server {sid}")
            if not total.fits_in(self._capacity[sid]):
                raise AssertionError(f"server {sid} over capacity")

    def placement_snapshot(self) -> dict[int, Optional[int]]:
        """``{container_id: server_id}`` for logging and diffing."""
        return {c.container_id: c.server_id for c in self.containers()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        placed = sum(1 for c in self._containers.values() if c.is_placed)
        return (
            f"ClusterState(servers={len(self._capacity)}, "
            f"containers={len(self._containers)}, placed={placed})"
        )
