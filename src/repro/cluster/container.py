"""Containers: the unit of task hosting.

In the paper (Section 3.1) each container hosts at most one Map or Reduce
task (third constraint of Eq 3), demands a resource vector ``r_i`` and is
placed on exactly one server (first constraint).  A shuffle flow's endpoints
are containers: ``f.src`` runs the Map task, ``f.dst`` the Reduce task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from .resources import Resources

__all__ = ["TaskKind", "TaskRef", "Container"]


class TaskKind(Enum):
    """Whether a container hosts a Map or a Reduce task."""

    MAP = "map"
    REDUCE = "reduce"


@dataclass(frozen=True)
class TaskRef:
    """Reference to a task within a job: ``(job_id, kind, index)``.

    The binary assignment variables of the paper (``x_ij^m`` / ``x_ij^r``)
    become the association between a :class:`TaskRef` and the container that
    hosts it.
    """

    job_id: int
    kind: TaskKind
    index: int

    def __str__(self) -> str:
        tag = "M" if self.kind is TaskKind.MAP else "R"
        return f"j{self.job_id}.{tag}{self.index}"


@dataclass
class Container:
    """A container demanding ``demand`` resources and hosting ``task``.

    ``server_id`` is ``None`` while unplaced — the paper's ``A(c_i) = 0``
    state that Algorithm 2's main loop drains.
    """

    container_id: int
    demand: Resources
    task: Optional[TaskRef] = None
    server_id: Optional[int] = None

    @property
    def is_placed(self) -> bool:
        return self.server_id is not None

    @property
    def hosts_map(self) -> bool:
        return self.task is not None and self.task.kind is TaskKind.MAP

    @property
    def hosts_reduce(self) -> bool:
        return self.task is not None and self.task.kind is TaskKind.REDUCE

    def __repr__(self) -> str:
        where = f"@s{self.server_id}" if self.is_placed else "@?"
        what = str(self.task) if self.task else "idle"
        return f"Container({self.container_id}, {what}, {where})"
