"""LATE-style straggler detection (Zaharia et al., OSDI'08).

The simulator's tasks progress linearly, so the estimator does not need
sampled progress reports: an attempt's observed rate is known the moment it
launches.  Raw rates, however, mix *expected* variance (remote-read
penalties, hardware heterogeneity) with *unexpected* degradation — exactly
the confusion LATE's authors warn about on heterogeneous clusters.  The
tracker therefore normalises every attempt by its own placement's nominal
duration (compute at the server's fault-free speed plus the read penalty
from where it actually sits): a healthy attempt scores exactly ``1.0`` no
matter how unlucky its data locality, and a degraded server depresses the
score by its slowdown share.  What makes an attempt a straggler is then the
LATE rule, evaluated against its own job:

* **age guard** — the attempt has run at least ``min_age`` (brand-new tasks
  have no meaningful rate);
* **slowness** — its normalised rate is below ``threshold`` times the job's
  mean (running and finished attempts both contribute to the mean, so a job
  whose every map is equally degraded speculates conservatively);
* **ranking** — candidates are ordered by estimated time remaining,
  longest first (LATE's "longest approximate time to end"), so the backup
  that can save the most wall-clock launches first.

Because healthy scores are *exactly* 1.0 (the nominal duration is computed
by the same expression the engine timed the attempt with), a fault-free run
can never produce a candidate — speculation-enabled runs without faults stay
bit-identical to speculation-off runs.

The per-job **quota** (a fraction of ``num_maps``, at least 1) caps how many
backups may run concurrently; the engine enforces it at launch time so a
sweep can partially drain the candidate list.  Everything here is pure
bookkeeping over event timestamps — no randomness, no engine state — which
keeps speculative runs bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SpeculationConfig", "AttemptProgress", "ProgressTracker"]

#: Guard against zero-duration attempts when deriving rates.
_MIN_DURATION = 1e-12


@dataclass(frozen=True)
class SpeculationConfig:
    """Tunables of the LATE detector and the backup launcher."""

    #: Concurrent-backup cap per job, as a fraction of its map count
    #: (``max(1, int(quota * num_maps))`` backups may run at once).
    quota: float = 0.2
    #: An attempt is slow when its normalised progress rate is below
    #: ``threshold`` times its job's mean.  Healthy attempts score exactly
    #: 1.0, so with the default a map must run at well under nominal speed
    #: (e.g. a compute slowdown of 4x behind a typical remote-read penalty)
    #: before it is speculated.
    threshold: float = 0.7
    #: Minimum age before an attempt may be speculated.
    min_age: float = 0.05
    #: Cadence of the detector's SPECULATE sweeps.
    check_interval: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.quota <= 1.0:
            raise ValueError(f"quota must be in (0, 1], got {self.quota}")
        if not 0.0 < self.threshold < 1.0:
            raise ValueError(
                f"threshold must be in (0, 1), got {self.threshold}"
            )
        if self.min_age < 0.0:
            raise ValueError(f"min_age must be non-negative, got {self.min_age}")
        if self.check_interval <= 0.0:
            raise ValueError(
                f"check_interval must be positive, got {self.check_interval}"
            )

    def backups_allowed(self, num_maps: int) -> int:
        """Concurrent-backup cap for a job with ``num_maps`` map tasks."""
        return max(1, int(self.quota * num_maps))


@dataclass(frozen=True)
class AttemptProgress:
    """One running map attempt as the progress estimator sees it."""

    job_id: int
    map_index: int
    cid: int
    start: float
    #: Expected wall-clock duration at launch (the engine's own timing).
    duration: float
    #: Duration this attempt would take at its server's fault-free speed
    #: from its actual placement (read penalty included).
    nominal_duration: float

    @property
    def rate(self) -> float:
        """Normalised progress rate: 1.0 = running exactly at nominal.

        Derived from the two duration floats directly — never from
        timestamp differences, whose rounding would smudge the healthy
        case off 1.0 and soften the fires-only-under-faults guarantee.
        """
        return self.nominal_duration / max(self.duration, _MIN_DURATION)

    @property
    def expected_finish(self) -> float:
        return self.start + self.duration

    def remaining(self, now: float) -> float:
        """Estimated time to completion (LATE's ranking key)."""
        return max(self.expected_finish - now, 0.0)

    def age(self, now: float) -> float:
        return now - self.start


@dataclass
class ProgressTracker:
    """Per-attempt progress rates plus per-job rate statistics.

    The engine feeds it attempt lifecycle events (:meth:`note_start` /
    :meth:`note_finish` / :meth:`note_kill`); :meth:`candidates` answers one
    detector sweep.  Killed attempts leave no statistical trace — a backup
    cancelled by a server failure must not drag its job's mean down.
    """

    #: cid -> its live attempt (originals and backups alike).
    running: dict[int, AttemptProgress] = field(default_factory=dict)
    #: job id -> (sum of finished-attempt rates, finished-attempt count).
    _finished: dict[int, tuple[float, int]] = field(default_factory=dict)

    def note_start(
        self,
        job_id: int,
        map_index: int,
        cid: int,
        start: float,
        duration: float,
        nominal_duration: float,
    ) -> None:
        self.running[cid] = AttemptProgress(
            job_id=job_id,
            map_index=map_index,
            cid=cid,
            start=start,
            duration=duration,
            nominal_duration=nominal_duration,
        )

    def note_finish(self, cid: int) -> None:
        attempt = self.running.pop(cid, None)
        if attempt is None:
            return
        # An uninterrupted attempt runs exactly its expected duration (kills
        # never reach here), so its finished rate equals its running rate.
        total, count = self._finished.get(attempt.job_id, (0.0, 0))
        self._finished[attempt.job_id] = (total + attempt.rate, count + 1)

    def note_kill(self, cid: int) -> None:
        self.running.pop(cid, None)

    def mean_rate(self, job_id: int) -> float:
        """Mean progress rate over the job's running + finished attempts."""
        total, count = self._finished.get(job_id, (0.0, 0))
        for attempt in self.running.values():
            if attempt.job_id == job_id:
                total += attempt.rate
                count += 1
        return total / count if count else 0.0

    def candidates(
        self,
        now: float,
        config: SpeculationConfig,
        excluded: frozenset[int] = frozenset(),
    ) -> list[AttemptProgress]:
        """Stragglers eligible for a backup, longest-remaining first.

        ``excluded`` holds cids already on either side of a speculation pair.
        Ties break on (job id, map index) for determinism.
        """
        out: list[AttemptProgress] = []
        means: dict[int, float] = {}
        for cid in sorted(self.running):
            attempt = self.running[cid]
            if cid in excluded:
                continue
            if attempt.age(now) < config.min_age:
                continue
            mean = means.get(attempt.job_id)
            if mean is None:
                mean = means[attempt.job_id] = self.mean_rate(attempt.job_id)
            if attempt.rate >= config.threshold * mean:
                continue
            out.append(attempt)
        out.sort(key=lambda a: (-a.remaining(now), a.job_id, a.map_index))
        return out
