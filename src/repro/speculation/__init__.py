"""Speculative execution: straggler detection and backup attempts.

The paper's Hadoop testbed runs with speculation on (Hadoop's default), yet
a straggler model without mitigation lets a single slowed server hold an
entire job's shuffle and final wave hostage — drowning exactly the
scheduling gains the paper measures.  This subsystem closes the loop opened
by :mod:`repro.faults`' ``TASK_SLOWDOWN`` injection with a LATE-style
(Zaharia et al., OSDI'08) mitigation pipeline:

* **detector** (:mod:`repro.speculation.detector`) — per-attempt progress
  estimation and the LATE candidate rule: speculate the running map with
  the longest estimated time remaining whose progress rate falls below a
  threshold fraction of its job's mean rate, after a minimum age, under a
  per-job backup quota.
* **runtime** (:mod:`repro.speculation.runtime`) — the per-run bookkeeping
  the simulator engine drives: original/backup pairings, quota accounting,
  the committed/killed attempt ledgers behind the one-committed-attempt and
  no-killed-flow invariants, and the ``spec.*`` counters.
* **placement** (:mod:`repro.speculation.placement`) — topology-aware
  backup placement: rank candidate servers by the marginal shuffle cost of
  the straggler's pending output flows (the Eq 9/10 preference-matrix
  grading), used by :class:`~repro.schedulers.hit.HitScheduler`.

The launcher itself — duplicate attempt, first finisher commits, loser is
killed — lives in :mod:`repro.simulator.engine`, reusing the fault layer's
attempt-counter invalidation so shuffle flows bind late to the winning map
output and reducers never fetch from a killed attempt.  See
``docs/fault_model.md`` for the protocol.
"""

from .detector import AttemptProgress, ProgressTracker, SpeculationConfig
from .placement import rank_backup_servers_by_cost
from .runtime import SpeculationState

__all__ = [
    "AttemptProgress",
    "ProgressTracker",
    "SpeculationConfig",
    "SpeculationState",
    "rank_backup_servers_by_cost",
]
