"""Topology-aware backup placement (the Hit answer to "where to speculate").

A backup attempt will, if it wins, source the straggler's entire shuffle
fan-out — so the right slot is not "any free server" but the one from which
the map's pending output flows are cheapest to ship, priced exactly like
Algorithm 1's grading pass: the relaxed-capacity optimal-route unit cost to
each consumer, weighted by the flow's rate (the Eq 9/10 preference-matrix
column restricted to this one map's flows).

The ranking reuses the vectorised all-pairs unit-cost matrix
(:class:`~repro.core.preference.PairCostCache`): each consumer contributes
one ``rate * column`` gather, so a sweep costs O(flows x candidates) adds on
top of the shared matrix build.  No randomness is consumed; ties break
toward the lower server id (candidates arrive id-sorted, argsort is stable).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..core.preference import PairCostCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.taa import TAAInstance
    from ..mapreduce.shuffle import ShuffleFlow

__all__ = ["rank_backup_servers_by_cost"]


def rank_backup_servers_by_cost(
    taa: "TAAInstance",
    flows: Sequence["ShuffleFlow"],
    candidates: Sequence[int],
) -> list[int]:
    """Candidates ordered by the shuffle cost of hosting the map there.

    ``flows`` are the straggler's pending output flows; consumers that are
    themselves awaiting re-placement (no server) contribute nothing, exactly
    as the grading pass skips unplaced endpoints.  Candidates with equal
    cost keep their input order.
    """
    if not candidates:
        return []
    cache = PairCostCache(taa)
    index = cache.server_index
    rows = np.fromiter(
        (index[s] for s in candidates), dtype=np.int64, count=len(candidates)
    )
    totals = np.zeros(len(candidates), dtype=np.float64)
    priced = False
    for flow in flows:
        dst = taa.cluster.container(flow.dst_container).server_id
        if dst is None:
            continue
        totals += flow.rate * cache.column(dst)[rows]
        priced = True
    if not priced:
        return list(candidates)
    order = np.argsort(totals, kind="stable")
    return [candidates[i] for i in order]
