"""Per-run speculation bookkeeping driven by the simulator engine.

:class:`SpeculationState` owns everything the kill-loser commit protocol
needs outside the engine's own structures:

* the **pairing** between an original attempt and its backup (both
  directions, plus the per-job live-backup count the quota binds on);
* the **ledgers** behind the two new invariants — ``committed`` records the
  winning (cid, attempt, server) per map output, ``killed`` records every
  attempt the protocol killed — and the violation list
  :meth:`~repro.obs.invariants.InvariantChecker.check_speculation` drains:

  - *one-committed-attempt*: a map output may only be committed once while
    a previous commit is still live (losing the output to a failure clears
    the slot for the re-execution's commit);
  - *no-killed-flow*: a shuffle flow must read from the committed output's
    server and never from an attempt the protocol killed;

* the ``spec.*`` counters the CLI prints and the tracer mirrors.

Like :class:`~repro.faults.injector.FaultInjector`, this class applies no
effects itself — the engine kills attempts and moves containers; the state
only answers "who is paired with whom" and "what would violate the
protocol".
"""

from __future__ import annotations

from .detector import ProgressTracker, SpeculationConfig

__all__ = ["SpeculationState"]


class SpeculationState:
    """Pairings, quota accounting, invariant ledgers and counters."""

    def __init__(self, config: SpeculationConfig) -> None:
        self.config = config
        self.tracker = ProgressTracker()
        #: original cid -> backup cid (live pairs only).
        self.backup_of: dict[int, int] = {}
        #: backup cid -> original cid (inverse of :attr:`backup_of`).
        self.primary_of: dict[int, int] = {}
        #: job id -> number of currently running backups (quota subject).
        self.live_backups: dict[int, int] = {}
        #: (job id, map index) -> (cid, attempt, server) of the live commit.
        self.committed: dict[tuple[int, int], tuple[int, int, int]] = {}
        #: (cid, attempt) pairs the kill-loser protocol terminated.
        self.killed: set[tuple[int, int]] = set()
        self._violations: list[tuple[str, str]] = []
        self.counters: dict[str, int] = {}

    # ---------------------------------------------------------------- pairing
    def pair(self, job_id: int, original_cid: int, backup_cid: int) -> None:
        self.backup_of[original_cid] = backup_cid
        self.primary_of[backup_cid] = original_cid
        self.live_backups[job_id] = self.live_backups.get(job_id, 0) + 1

    def unpair(self, job_id: int, original_cid: int, backup_cid: int) -> None:
        self.backup_of.pop(original_cid, None)
        self.primary_of.pop(backup_cid, None)
        self.live_backups[job_id] = self.live_backups.get(job_id, 0) - 1

    def paired_cids(self) -> frozenset[int]:
        """Every cid currently on either side of a pair (detector exclusion)."""
        return frozenset(self.backup_of) | frozenset(self.primary_of)

    # ---------------------------------------------------------------- ledgers
    def note_commit(
        self, job_id: int, map_index: int, cid: int, attempt: int, server: int
    ) -> None:
        key = (job_id, map_index)
        previous = self.committed.get(key)
        if previous is not None:
            self._violations.append(
                (
                    "one-committed-attempt",
                    f"map {map_index} of job {job_id}: attempt "
                    f"(cid={cid}, attempt={attempt}) committed while "
                    f"(cid={previous[0]}, attempt={previous[1]}) is live",
                )
            )
        self.committed[key] = (cid, attempt, server)

    def note_output_lost(self, job_id: int, map_index: int) -> None:
        """The committed output died with its server; the slot reopens."""
        self.committed.pop((job_id, map_index), None)

    def note_kill(self, cid: int, attempt: int) -> None:
        self.killed.add((cid, attempt))

    def note_flow(self, job_id: int, map_index: int, src_server: int) -> None:
        """A shuffle flow is reading map output from ``src_server``."""
        entry = self.committed.get((job_id, map_index))
        if entry is None:
            self._violations.append(
                (
                    "no-killed-flow",
                    f"flow reads map {map_index} of job {job_id} from server "
                    f"{src_server} but no attempt is committed",
                )
            )
            return
        cid, attempt, server = entry
        if server != src_server:
            self._violations.append(
                (
                    "no-killed-flow",
                    f"flow reads map {map_index} of job {job_id} from server "
                    f"{src_server}; the committed output lives on {server}",
                )
            )
        if (cid, attempt) in self.killed:
            self._violations.append(
                (
                    "no-killed-flow",
                    f"flow reads map {map_index} of job {job_id} from killed "
                    f"attempt (cid={cid}, attempt={attempt})",
                )
            )

    def drain_violations(self) -> list[tuple[str, str]]:
        """Hand accumulated (invariant, detail) pairs to the checker."""
        found, self._violations = self._violations, []
        return found

    def gauges(self) -> dict[str, float]:
        """Instantaneous speculation gauges for the telemetry plane.

        Pure reads — sampling never mutates pairings or ledgers (the
        non-perturbation contract of :mod:`repro.obs.timeline`).
        """
        return {
            "live_backups": float(sum(self.live_backups.values())),
            "live_pairs": float(len(self.backup_of)),
        }

    def provenance_context(self, job_id: int) -> dict[str, object]:
        """Quota state for a speculation decision record — pure read."""
        return {
            "job_live_backups": int(self.live_backups.get(job_id, 0)),
            "live_pairs": len(self.backup_of),
            "quota": self.config.quota,
        }

    # --------------------------------------------------------------- counters
    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def summary(self) -> dict[str, int]:
        """Counter snapshot (sorted keys, for stable reports)."""
        return dict(sorted(self.counters.items()))
