"""Utility functions of the separable optimisation (Eqs 5-11).

The paper defines *utility* as the shuffle-traffic-cost reduction gained by a
single reschedule — of one switch on a flow's policy (Eq 5 for intermediate
switches, Eq 7 for end access switches) or of the server hosting a container
(Eq 10) — and proves the utilities of independent reschedules add (Eqs 6 and
11).  In our per-switch cost model the segment algebra collapses nicely: a
flow's cost is ``rate * sum(switch_cost(w))`` over its switches, so replacing
switch ``w`` by ``w_hat`` yields utility ``rate * (cost(w) - cost(w_hat))``
provided ``w_hat`` is physically connectable at that position; additivity is
then exact, which the property-based tests verify.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..cluster.state import ClusterState
from ..mapreduce.shuffle import ShuffleFlow
from .policy import NoFeasiblePathError, Policy, PolicyController

__all__ = [
    "switch_reschedule_utility",
    "joint_switch_reschedule_utility",
    "container_cost",
    "container_reschedule_utility",
]

_NEG_INF = float("-inf")


def _position_connectable(
    controller: PolicyController, policy: Policy, position: int, new_switch: int
) -> bool:
    """True when ``new_switch`` can physically replace the switch at
    ``position``: it must link to the path neighbours on both sides."""
    path = policy.path
    path_index = _path_index_of_switch(controller, policy, position)
    before = path[path_index - 1]
    after = path[path_index + 1]
    topo = controller.topology
    return topo.has_link(before, new_switch) and topo.has_link(new_switch, after)


def _path_index_of_switch(
    controller: PolicyController, policy: Policy, position: int
) -> int:
    """Index within ``policy.path`` of the ``position``-th switch."""
    seen = -1
    for idx, node in enumerate(policy.path):
        if controller.topology.is_switch(node):
            seen += 1
            if seen == position:
                return idx
    raise IndexError(f"policy has no switch position {position}")


def switch_reschedule_utility(
    controller: PolicyController,
    flow: ShuffleFlow,
    position: int,
    new_switch: int,
) -> float:
    """Eq 5 / Eq 7: utility of rescheduling one switch of a flow's policy.

    Position 0 and the last position are the end access switches (Eq 7);
    everything between is an intermediate switch (Eq 5) — both reduce to the
    same expression in the per-switch cost model.  Returns ``-inf`` when the
    replacement is not connectable, violates the type requirement, or lacks
    residual capacity.
    """
    policy = controller.policy_of(flow.flow_id)
    if policy is None:
        raise KeyError(f"flow {flow.flow_id} has no installed policy")
    if not 0 <= position < policy.length:
        raise IndexError(f"position {position} out of range for {policy.length}")
    old_switch = policy.switch_list[position]
    if new_switch == old_switch:
        return 0.0
    topo = controller.topology
    if topo.switch(new_switch).switch_type != policy.types[position]:
        return _NEG_INF
    if controller.residual(new_switch) < flow.rate:
        return _NEG_INF
    if not _position_connectable(controller, policy, position, new_switch):
        return _NEG_INF
    model = controller.cost_model
    # Exclude the flow's own contribution from the old switch's load so the
    # comparison is between states "flow on old" vs "flow on new".
    old_cost = model.switch_cost(
        topo, old_switch, controller.load(old_switch) - flow.rate
    )
    new_cost = model.switch_cost(topo, new_switch, controller.load(new_switch))
    return flow.rate * (old_cost - new_cost)


def joint_switch_reschedule_utility(
    controller: PolicyController,
    flow: ShuffleFlow,
    replacements: Mapping[int, int],
) -> float:
    """Eq 6: utility of rescheduling several switches of one flow at once.

    Computed directly (cost of the jointly-modified policy minus the current
    cost) rather than by summing singles, so tests can check the additivity
    claim ``U(joint) == sum(U(single))``.  Returns ``-inf`` when any
    replacement is individually infeasible or when two replacements collide
    on the same target switch.
    """
    policy = controller.policy_of(flow.flow_id)
    if policy is None:
        raise KeyError(f"flow {flow.flow_id} has no installed policy")
    targets = list(replacements.values())
    if len(set(targets)) != len(targets):
        return _NEG_INF
    new_list = list(policy.switch_list)
    for position, new_switch in replacements.items():
        if switch_reschedule_utility(controller, flow, position, new_switch) == _NEG_INF:
            return _NEG_INF
        new_list[position] = new_switch
    model = controller.cost_model
    topo = controller.topology
    old_cost = sum(
        model.switch_cost(topo, w, controller.load(w) - flow.rate)
        for w in policy.switch_list
    )
    new_cost = 0.0
    for w in new_list:
        load = controller.load(w)
        if w in policy.switch_list:
            load -= flow.rate
        new_cost += model.switch_cost(topo, w, load)
    return flow.rate * (old_cost - new_cost)


def container_cost(
    controller: PolicyController,
    cluster: ClusterState,
    container_id: int,
    server_id: int,
    flows: Sequence[ShuffleFlow],
) -> float:
    """Generalised Eq 9: shuffle cost induced by hosting a container on a
    server.

    Sums, over every flow incident to the container, the optimal-route cost
    with the container's endpoint moved to ``server_id`` and the opposite
    endpoint at its current server.  Flows whose opposite endpoint is not yet
    placed contribute nothing (their cost is decided by the later placement).
    Routes are evaluated without the capacity constraint — this is a grading
    pass; feasibility is enforced when policies are finally installed.
    """
    total = 0.0
    for flow in flows:
        if flow.src_container == container_id:
            other = cluster.container(flow.dst_container).server_id
            if other is None:
                continue
            src, dst = server_id, other
        elif flow.dst_container == container_id:
            other = cluster.container(flow.src_container).server_id
            if other is None:
                continue
            src, dst = other, server_id
        else:
            continue
        try:
            _, cost = controller.optimal_path(
                src, dst, flow.rate, enforce_capacity=False
            )
        except NoFeasiblePathError:  # pragma: no cover - disconnected fabric
            return float("inf")
        total += cost
    return total


def container_reschedule_utility(
    controller: PolicyController,
    cluster: ClusterState,
    container_id: int,
    new_server: int,
    flows: Sequence[ShuffleFlow],
) -> float:
    """Eq 10: ``U(A(c_i) -> s_hat) = C_i(A(c_i)) - C_i(s_hat)``.

    Requires the container to be currently placed; positive utility means the
    move reduces shuffle cost.
    """
    container = cluster.container(container_id)
    if container.server_id is None:
        raise ValueError(f"container {container_id} is not placed")
    current = container_cost(
        controller, cluster, container_id, container.server_id, flows
    )
    moved = container_cost(controller, cluster, container_id, new_server, flows)
    return current - moved
