"""Hit-Scheduler core: the synergistic TAA optimisation loop (Section 5).

Ties the pieces together exactly as the paper describes:

* **Initial-wave scheduling** (Section 5.3.1): Map and Reduce containers are
  unplaced (or randomly placed, per the paper's assumption), so both flow
  endpoints are free.  Each optimisation round runs Algorithm 1 (optimal
  policies + preference matrix) followed by Algorithm 2 (stable matching of
  containers onto servers); rounds repeat until the total shuffle cost stops
  improving.  The best placement seen is kept — the matching is stable, not
  monotone, so a guard against regression is cheap insurance.
* **Subsequent-wave scheduling** (Section 5.3.2): Reduce endpoints are fixed;
  the new wave's Map containers are placed greedily, heaviest shuffle output
  first, onto the feasible server with the lowest total route cost — the
  O(n^2) strategy of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.state import ClusterState
from ..obs.runtime import STATE as _OBS
from .matching import MatchingResult, stable_match
from .preference import PairCostCache, PreferenceMatrix, build_preference_matrix
from .taa import TAAInstance

__all__ = ["HitConfig", "HitResult", "HitOptimizer"]


@dataclass(frozen=True)
class HitConfig:
    """Knobs of the optimisation loop.

    ``max_rounds`` bounds the Algorithm1+Algorithm2 iterations;
    ``tolerance`` is the minimum relative cost improvement that counts as
    progress; ``seed`` drives the random initial placement.
    """

    max_rounds: int = 4
    tolerance: float = 1e-6
    seed: int = 0


@dataclass
class HitResult:
    """Outcome of an optimisation: per-round cost trace and final placement."""

    cost_trace: list[float]
    placement: dict[int, int | None]
    matchings: list[MatchingResult] = field(default_factory=list)

    @property
    def initial_cost(self) -> float:
        return self.cost_trace[0]

    @property
    def final_cost(self) -> float:
        return self.cost_trace[-1]

    @property
    def improvement(self) -> float:
        """Fractional cost reduction relative to the initial placement."""
        if self.initial_cost == 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost

    def to_provenance(self) -> dict[str, object]:
        """Wave-level optimisation evidence for the decision-audit plane:
        cost trace endpoints plus each matching round's tie-break path."""
        return {
            "rounds": max(len(self.cost_trace) - 1, 0),
            "initial_cost": float(self.cost_trace[0]) if self.cost_trace else 0.0,
            "final_cost": float(self.cost_trace[-1]) if self.cost_trace else 0.0,
            "improvement": float(self.improvement) if self.cost_trace else 0.0,
            "matchings": [m.to_provenance() for m in self.matchings],
        }


class HitOptimizer:
    """Runs Hit-Scheduler's TAA optimisation over a live instance."""

    def __init__(self, taa: TAAInstance, config: HitConfig | None = None) -> None:
        self.taa = taa
        self.config = config or HitConfig()
        self._rng = np.random.default_rng(self.config.seed)
        # One pair-cost cache for the optimiser's lifetime: it tracks the
        # controller's load version, so the all-pairs matrix is built at most
        # once per sweep and shared by the grading pass, the matching
        # fallback and subsequent-wave placement.
        self._pair_cache = PairCostCache(taa)

    # ------------------------------------------------------------- placement
    def random_initial_placement(
        self, container_ids: list[int] | None = None
    ) -> None:
        """Place unplaced containers on random feasible servers.

        Mirrors the paper's starting assumption ("we assume that they are
        randomly assigned in the beginning").  Raises when the cluster lacks
        aggregate capacity.  ``container_ids`` restricts the pass to a
        subset; by default every unplaced container is treated.
        """
        cluster = self.taa.cluster
        targets = cluster.unplaced_containers()
        if container_ids is not None:
            allowed = set(container_ids)
            targets = [c for c in targets if c.container_id in allowed]
        for container in targets:
            servers = list(cluster.server_ids)
            self._rng.shuffle(servers)
            for sid in servers:
                if cluster.fits(container.container_id, sid):
                    cluster.place(container.container_id, sid)
                    break
            else:
                raise RuntimeError(
                    f"no server can host container {container.container_id}"
                )

    def _apply_assignment(self, matching: MatchingResult) -> bool:
        """Re-pack the cluster according to a matching.

        All matched containers are unplaced first (so capacity is never
        transiently violated by order-of-moves), then placed at their target.
        Unmatched containers fall back to cheapest-feasible placement.

        Returns whether anything moved: when every matched container already
        sits on its target and nothing is unmatched, the cluster is left
        untouched and the caller can skip the (expensive) policy reinstall —
        reinstalling over an identical placement reproduces the identical
        policies and loads, so skipping it never changes results.
        """
        cluster = self.taa.cluster
        if not matching.unmatched and all(
            cluster.container(cid).server_id == sid
            for cid, sid in matching.assignment.items()
        ):
            return False
        touched = set(matching.assignment) | set(matching.unmatched)
        for cid in touched:
            if cluster.container(cid).is_placed:
                cluster.unplace(cid)
        for cid, sid in matching.assignment.items():
            cluster.place(cid, sid)
        for cid in matching.unmatched:
            self._fallback_place(cid)
        return True

    def _fallback_place(self, container_id: int) -> None:
        """First-fit by route cost for a container the matching rejected."""
        cluster = self.taa.cluster
        cache = self._pair_cache
        best_sid: int | None = None
        best_cost = float("inf")
        for sid in cluster.server_ids:
            if not cluster.fits(container_id, sid):
                continue
            cost = 0.0
            for flow in self.taa.flows_of_container(container_id):
                other_cid = (
                    flow.dst_container
                    if flow.src_container == container_id
                    else flow.src_container
                )
                other = cluster.container(other_cid).server_id
                if other is None:
                    continue
                cost += flow.rate * cache.unit_cost(sid, other)
            if cost < best_cost:
                best_cost, best_sid = cost, sid
        if best_sid is None:
            raise RuntimeError(
                f"no feasible fallback server for container {container_id}"
            )
        cluster.place(container_id, best_sid)

    # ---------------------------------------------------------- initial wave
    def optimize_initial_wave(
        self, container_ids: list[int] | None = None
    ) -> HitResult:
        """Section 5.3.1: joint optimisation of Map and Reduce placement.

        Both flow endpoints are free, which makes a single simultaneous
        matching prone to endpoint swapping (maps chase the reduces' old
        servers while the reduces chase the maps').  The loop therefore
        alternates the matched side — Reduce containers first (they aggregate
        many flows), then Map containers — which is coordinate descent on the
        separable objective of Section 5.1.3; each sweep is an
        Algorithm 1 + Algorithm 2 pass over one side with the other fixed.
        Cost is monitored after every sweep and the best placement wins.

        ``container_ids`` restricts the optimisation to a subset of
        containers (e.g. one newly arrived job in a busy cluster); containers
        outside the subset are never moved, and their resource usage and
        switch loads constrain the optimisation.
        """
        taa = self.taa
        if taa.cluster.unplaced_containers():
            self.random_initial_placement(container_ids)
        taa.install_all_policies()
        best_cost = taa.total_shuffle_cost()
        best_placement = taa.cluster.placement_snapshot()
        trace = [best_cost]
        matchings: list[MatchingResult] = []

        reduce_ids = [c.container_id for c in taa.reduce_containers()]
        map_ids = [c.container_id for c in taa.map_containers()]
        if container_ids is not None:
            allowed = set(container_ids)
            reduce_ids = [cid for cid in reduce_ids if cid in allowed]
            map_ids = [cid for cid in map_ids if cid in allowed]
        sides = [reduce_ids, map_ids]
        stale_sweeps = 0
        # Sweep-to-sweep reuse: each side keeps its last preference matrix
        # together with the (load_version, placement_epoch) state it was
        # graded under.  When a sweep comes back to an unchanged state the
        # matrix is reused outright (the grading pass is a pure function of
        # that state); otherwise the stale matrix is chained as a rank-reuse
        # donor for the rebuild.  Either way results are bit-identical to
        # rebuilding from scratch every sweep.
        placement_epoch = 0
        side_matrices: dict[
            int, tuple[tuple[int, ...], tuple[int, int], PreferenceMatrix]
        ] = {}

        for round_idx in range(self.config.max_rounds * len(sides)):
            side_idx = round_idx % len(sides)
            side = sides[side_idx]
            side = [cid for cid in side if taa.flows_of_container(cid)]
            if not side:
                continue
            with _OBS.tracer.span(
                "hit.sweep", round=round_idx, containers=len(side)
            ):
                side_key = tuple(side)
                state_key = (taa.controller.load_version, placement_epoch)
                cached = side_matrices.get(side_idx)
                if (
                    cached is not None
                    and cached[0] == side_key
                    and cached[1] == state_key
                ):
                    preferences = cached[2]
                else:
                    previous = (
                        cached[2]
                        if cached is not None and cached[0] == side_key
                        else None
                    )
                    preferences = build_preference_matrix(
                        taa,
                        container_ids=side,
                        cache=self._pair_cache,
                        previous=previous,
                    )
                    side_matrices[side_idx] = (side_key, state_key, preferences)
                matching = stable_match(preferences, taa.cluster)
                matchings.append(matching)
                if self._apply_assignment(matching):
                    placement_epoch += 1
                    taa.install_all_policies()
            cost = taa.total_shuffle_cost()
            trace.append(cost)
            if _OBS.enabled and _OBS.checker is not None:
                _OBS.checker.check_taa(taa, where=f"hit.sweep[{round_idx}]")
            if cost < best_cost * (1 - self.config.tolerance):
                best_cost = cost
                best_placement = taa.cluster.placement_snapshot()
                stale_sweeps = 0
            else:
                stale_sweeps += 1
                if stale_sweeps >= len(sides):
                    break

        # Restore the best placement seen (a later sweep may have regressed).
        if taa.cluster.placement_snapshot() != best_placement:
            self._restore(best_placement)
            taa.install_all_policies()
        trace.append(taa.total_shuffle_cost())
        return HitResult(
            cost_trace=trace,
            placement=taa.cluster.placement_snapshot(),
            matchings=matchings,
        )

    def _restore(self, placement: dict[int, int | None]) -> None:
        cluster = self.taa.cluster
        for cid in placement:
            if cluster.container(cid).is_placed:
                cluster.unplace(cid)
        for cid, sid in placement.items():
            if sid is not None:
                cluster.place(cid, sid)

    # ------------------------------------------------------- subsequent wave
    def optimize_subsequent_wave(self, map_container_ids: list[int]) -> HitResult:
        """Section 5.3.2: Reduce endpoints fixed, place new Map containers.

        Maps are handled heaviest-outgoing-shuffle first; each goes to the
        feasible server minimising its total route cost to the (fixed)
        reduce-side servers.  Runs in O(n^2) route-cost evaluations thanks to
        the pair-cost cache.
        """
        taa = self.taa
        cluster = taa.cluster
        cache = self._pair_cache

        def outgoing_rate(cid: int) -> float:
            return sum(
                f.rate
                for f in taa.flows_of_container(cid)
                if f.src_container == cid
            )

        order = sorted(map_container_ids, key=outgoing_rate, reverse=True)
        for cid in order:
            if cluster.container(cid).is_placed:
                cluster.unplace(cid)
        for cid in order:
            best_sid: int | None = None
            best_cost = float("inf")
            for sid in cluster.server_ids:
                if not cluster.fits(cid, sid):
                    continue
                cost = 0.0
                for flow in taa.flows_of_container(cid):
                    if flow.src_container != cid:
                        continue
                    dst = cluster.container(flow.dst_container).server_id
                    if dst is None:
                        continue
                    cost += flow.rate * cache.unit_cost(sid, dst)
                if cost < best_cost:
                    best_cost, best_sid = cost, sid
            if best_sid is None:
                raise RuntimeError(f"no feasible server for map container {cid}")
            cluster.place(cid, best_sid)
        taa.install_all_policies()
        if _OBS.enabled and _OBS.checker is not None:
            _OBS.checker.check_taa(taa, where="hit.subsequent_wave")
        final = taa.total_shuffle_cost()
        return HitResult(
            cost_trace=[final],
            placement=cluster.placement_snapshot(),
        )
