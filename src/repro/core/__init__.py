"""The paper's contribution: TAA formulation, policy optimisation (Alg 1),
stable-matching task assignment (Alg 2) and the Hit-Scheduler loop."""

from .exact import ExactResult, solve_exact
from .hit import HitConfig, HitOptimizer, HitResult
from .localsearch import LocalSearchConfig, LocalSearchOptimizer, LocalSearchResult
from .matching import MatchingResult, find_blocking_pairs, stable_match
from .policy import CostModel, NoFeasiblePathError, Policy, PolicyController
from .preference import PairCostCache, PreferenceMatrix, build_preference_matrix
from .rebalance import RebalanceConfig, RebalanceReport, rebalance_flows
from .taa import ConstraintViolation, TAAInstance
from .utility import (
    container_cost,
    container_reschedule_utility,
    joint_switch_reschedule_utility,
    switch_reschedule_utility,
)

__all__ = [
    "TAAInstance",
    "ConstraintViolation",
    "Policy",
    "CostModel",
    "PolicyController",
    "NoFeasiblePathError",
    "PreferenceMatrix",
    "PairCostCache",
    "build_preference_matrix",
    "LocalSearchConfig",
    "LocalSearchOptimizer",
    "LocalSearchResult",
    "RebalanceConfig",
    "RebalanceReport",
    "rebalance_flows",
    "MatchingResult",
    "stable_match",
    "find_blocking_pairs",
    "HitConfig",
    "HitOptimizer",
    "HitResult",
    "ExactResult",
    "solve_exact",
    "switch_reschedule_utility",
    "joint_switch_reschedule_utility",
    "container_cost",
    "container_reschedule_utility",
]
