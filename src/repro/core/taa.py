"""Topology Aware Assignment (TAA) problem instances.

A TAA instance (Section 3/4 of the paper) bundles the four sets of the
formulation — containers ``C`` (with tasks), servers ``S``, flows ``F`` and
switches ``W`` (via the policy controller) — and exposes the objective and
the constraint checks of Eq 3.  Schedulers mutate the instance (placing
containers, installing policies); :meth:`TAAInstance.verify_constraints`
asserts the invariants after any strategy has run, and
:meth:`TAAInstance.total_shuffle_cost` is the quantity every experiment
reports.

The problem is NP-hard (the paper reduces Multiple Knapsack to it), which is
why the library pairs this exact formulation with the stable-matching
heuristic of Section 5 and a brute-force solver
(:mod:`repro.core.exact`) for small-instance validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..cluster.container import Container, TaskKind
from ..cluster.state import ClusterState
from ..mapreduce.shuffle import ShuffleFlow
from ..topology.base import Topology
from .policy import CostModel, NoFeasiblePathError, Policy, PolicyController

__all__ = ["ConstraintViolation", "TAAInstance"]


@dataclass(frozen=True)
class ConstraintViolation:
    """One violated constraint of Eq 3, for diagnostics."""

    constraint: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.constraint}] {self.detail}"


class TAAInstance:
    """A live TAA optimisation instance.

    Parameters
    ----------
    topology:
        The hierarchical fabric (servers + typed, capacitated switches).
    containers:
        The container set ``C``; each optionally carries a task reference.
    flows:
        The shuffle flow set ``F`` with container endpoints.
    cost_model:
        Per-switch traversal pricing; defaults to the paper's uniform
        ``c_s = 1`` with a small congestion tie-breaker.
    """

    def __init__(
        self,
        topology: Topology,
        containers: Iterable[Container],
        flows: Sequence[ShuffleFlow],
        cost_model: CostModel | None = None,
        max_slack: int = 2,
        cluster: ClusterState | None = None,
        controller: PolicyController | None = None,
    ) -> None:
        """``cluster``/``controller`` let a caller wrap shared state.

        The simulator builds per-job *planning* instances over the live
        shared :class:`ClusterState` (so other jobs' containers constrain
        capacity) but with a private controller pre-loaded with the live
        switch loads — optimising one job must not clear another job's
        installed policies.
        """
        self.topology = topology
        self.cluster = cluster if cluster is not None else ClusterState(topology)
        self.cluster.add_containers(containers)
        self.flows: tuple[ShuffleFlow, ...] = tuple(flows)
        self.controller = controller or PolicyController(
            topology, cost_model=cost_model, max_slack=max_slack
        )
        self._flows_by_container: dict[int, list[ShuffleFlow]] = {}
        for flow in self.flows:
            self._flows_by_container.setdefault(flow.src_container, []).append(flow)
            self._flows_by_container.setdefault(flow.dst_container, []).append(flow)

    # ------------------------------------------------------------- accessors
    def flows_of_container(self, container_id: int) -> list[ShuffleFlow]:
        """Flows incident to a container (source or destination side)."""
        return list(self._flows_by_container.get(container_id, ()))

    @property
    def num_containers(self) -> int:
        return self.cluster.num_containers

    # ------------------------------------------------------------- objective
    def total_shuffle_cost(self) -> float:
        """Objective of Eq 3 over the currently installed policies."""
        return self.controller.total_cost(self.flows)

    def install_all_policies(self, enforce_capacity: bool = True) -> None:
        """(Re)route every flow optimally for the current placement.

        Flows between co-located containers get an empty policy (zero
        switches, zero cost).  Flows are routed in decreasing-rate order so
        heavy flows grab the cheap routes first — the natural greedy order
        for the knapsack-like capacity constraints.  Flows with an unplaced
        endpoint are skipped (their routing is decided when the endpoint
        lands).
        """
        self.controller.clear()
        for flow in sorted(self.flows, key=lambda f: -f.rate):
            src = self.cluster.container(flow.src_container).server_id
            dst = self.cluster.container(flow.dst_container).server_id
            if src is None or dst is None:
                continue
            try:
                self.controller.route_flow(flow, src, dst, enforce_capacity)
            except NoFeasiblePathError:
                # Fabric saturated for this flow: carry it anyway on the
                # least-cost route.  The congestion term in the cost model
                # prices the overload; hard-failing would make high-load
                # experiments (Figure 10's saturation knee) impossible.
                try:
                    self.controller.route_flow(
                        flow, src, dst, enforce_capacity=False
                    )
                except NoFeasiblePathError:
                    # Even uncapacitated routing failed: failures have
                    # disconnected the pair (only reachable on partitioned
                    # fabrics).  Leave the flow unrouted — the engine
                    # routes it at launch and parks it until recovery.
                    continue

    def install_static_policies(self) -> None:
        """Route every flow on the deterministic static shortest path.

        This models the topology-unaware baselines (Capacity, Probabilistic
        Network-Aware): each flow follows the single fixed route the fabric's
        forwarding tables would give it, with no load awareness and no
        capacity negotiation.  Switch loads are still charged so the cost
        accounting (and any later Hit optimisation) sees the congestion the
        baseline creates.
        """
        self.controller.clear()
        for flow in self.flows:
            src = self.cluster.container(flow.src_container).server_id
            dst = self.cluster.container(flow.dst_container).server_id
            if src is None or dst is None:
                continue
            if src == dst:
                self.controller.assign(
                    flow, self.controller.make_policy(flow, (src,))
                )
                continue
            path = self.topology.shortest_path(src, dst)
            policy = self.controller.make_policy(flow, path)
            self.controller.assign(flow, policy, capacitated=False)

    def install_ecmp_policies(self, seed: int = 0) -> None:
        """Route every flow on a uniformly random equal-cost shortest path.

        Models ECMP hashing: the fabric spreads flows across the shortest-
        path set by header hash, blind to load and flow size.  This is the
        "network does multipath, scheduler does nothing" baseline — better
        than a single static path on redundant fabrics, but it cannot react
        to congestion the way Algorithm 1 does.
        """
        import numpy as np

        from ..topology.routing import enumerate_paths

        rng = np.random.default_rng(seed)
        self.controller.clear()
        for flow in self.flows:
            src = self.cluster.container(flow.src_container).server_id
            dst = self.cluster.container(flow.dst_container).server_id
            if src is None or dst is None:
                continue
            if src == dst:
                self.controller.assign(
                    flow, self.controller.make_policy(flow, (src,))
                )
                continue
            candidates = enumerate_paths(self.topology, src, dst, slack=0,
                                         limit=64)
            path = candidates[int(rng.integers(len(candidates)))]
            self.controller.assign(
                flow, self.controller.make_policy(flow, path), capacitated=False
            )

    # ------------------------------------------------------------ validation
    def verify_constraints(self) -> list[ConstraintViolation]:
        """Check every constraint of Eq 3; returns the violations (empty =
        feasible)."""
        violations: list[ConstraintViolation] = []

        # (1) every container deployed on exactly one server.
        for container in self.cluster.containers():
            if container.server_id is None:
                violations.append(
                    ConstraintViolation(
                        "placement",
                        f"container {container.container_id} is unplaced",
                    )
                )

        # (2)+(3) each task in one container; each container <= one task.
        seen_tasks: dict[str, int] = {}
        for container in self.cluster.containers():
            if container.task is None:
                continue
            key = str(container.task)
            if key in seen_tasks:
                violations.append(
                    ConstraintViolation(
                        "task-hosting",
                        f"task {key} hosted by containers "
                        f"{seen_tasks[key]} and {container.container_id}",
                    )
                )
            seen_tasks[key] = container.container_id

        # (4) server capacity.
        try:
            self.cluster.validate()
        except AssertionError as exc:
            violations.append(ConstraintViolation("server-capacity", str(exc)))

        # (5) switch capacity.
        for w in self.topology.switch_ids:
            load = self.controller.load(w)
            capacity = self.topology.switch(w).capacity
            if load > capacity + 1e-9:
                violations.append(
                    ConstraintViolation(
                        "switch-capacity",
                        f"switch {w} loaded {load:g} > capacity {capacity:g}",
                    )
                )

        # (6) policy satisfaction: types match, path endpoints match the
        # hosting servers, and the path is physically connected.
        for flow in self.flows:
            policy = self.controller.policy_of(flow.flow_id)
            if policy is None:
                continue
            if not policy.is_satisfied_by(self.topology):
                violations.append(
                    ConstraintViolation(
                        "policy-type",
                        f"flow {flow.flow_id}: switch types diverge from policy",
                    )
                )
            src = self.cluster.container(flow.src_container).server_id
            dst = self.cluster.container(flow.dst_container).server_id
            if policy.path[0] != src or policy.path[-1] != dst:
                violations.append(
                    ConstraintViolation(
                        "policy-endpoints",
                        f"flow {flow.flow_id}: path endpoints "
                        f"{policy.path[0]}->{policy.path[-1]} but containers on "
                        f"{src}->{dst}",
                    )
                )
            for a, b in zip(policy.path, policy.path[1:]):
                if not self.topology.has_link(a, b):
                    violations.append(
                        ConstraintViolation(
                            "policy-connectivity",
                            f"flow {flow.flow_id}: hop {a}->{b} is not a link",
                        )
                    )
                    break
        return violations

    def assert_feasible(self) -> None:
        violations = self.verify_constraints()
        if violations:
            summary = "; ".join(str(v) for v in violations[:5])
            raise AssertionError(
                f"TAA instance has {len(violations)} constraint violations: {summary}"
            )

    # ----------------------------------------------------------- conveniences
    def map_containers(self) -> list[Container]:
        return [c for c in self.cluster.containers() if c.hosts_map]

    def reduce_containers(self) -> list[Container]:
        return [c for c in self.cluster.containers() if c.hosts_reduce]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TAAInstance(containers={self.num_containers}, "
            f"flows={len(self.flows)}, topology={self.topology.name})"
        )
