"""Network policies and the Policy Optimization Algorithm (Algorithm 1).

A *policy* ``p_k`` (Section 3.1) is the ordered list of switches a shuffle
flow must traverse, each with a required type; a policy is **satisfied** when
every allocated switch matches its required type in order.  Policies and
flows are one-to-one.

The :class:`PolicyController` plays the role of the paper's centralised
OpenFlow controller: it tracks the rate load ``sum(f.rate for p in A(w))`` on
every switch, exposes the candidate-switch set of Eq 4, and computes the
optimal routing path of a flow (Algorithm 1, line 5) as a shortest-path
dynamic program over the equal-cost stage DAG between the two end servers.
Rescheduling a switch ``p.list[i] -> w_hat`` (Eq 5) falls out of the DP: the
returned path differs from the current one exactly in the switches whose
replacement has positive utility.

Cost model: traversing switch ``w`` costs ``rate * unit_cost(w)`` where
``unit_cost`` is the per-switch delay unit ``c_s`` (1 T in the case study of
Section 2.3) times an optional tier weight, plus an optional congestion term
proportional to the switch's current utilisation.  With the defaults the
model reduces to the paper's "cost = rate x number of switches traversed",
and the congestion term only breaks ties toward less-loaded switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..mapreduce.shuffle import ShuffleFlow
from ..obs.runtime import STATE as _OBS
from ..topology.base import Tier, Topology
from ..topology.routing import enumerate_paths, stage_adjacency

__all__ = ["Policy", "CostModel", "PolicyController", "NoFeasiblePathError"]

_INF = float("inf")


def _link_key(u: int, v: int) -> tuple[int, int]:
    """Canonical (min, max) key of an undirected physical link."""
    return (u, v) if u <= v else (v, u)


class NoFeasiblePathError(RuntimeError):
    """Raised when no policy can carry a flow within switch capacities."""


@dataclass(frozen=True)
class Policy:
    """A satisfied policy: the route of one flow.

    ``path`` is the full node sequence (servers included); ``switch_list``
    the switches in traversal order (the paper's ``p.list``) and ``types``
    their required types (``p.type``).
    """

    flow_id: int
    path: tuple[int, ...]
    switch_list: tuple[int, ...]
    types: tuple[str, ...]

    @property
    def length(self) -> int:
        """``p.len`` — the number of switches on the route."""
        return len(self.switch_list)

    def is_satisfied_by(self, topology: Topology) -> bool:
        """Sixth constraint of Eq 3: every switch matches its required type."""
        return all(
            topology.switch(w).switch_type == t
            for w, t in zip(self.switch_list, self.types)
        )


@dataclass(frozen=True)
class CostModel:
    """Per-switch traversal cost parameters.

    ``unit_cost`` is ``c_s``; ``tier_weights`` lets experiments price core
    switches differently; ``congestion_weight`` adds
    ``congestion_weight * load / capacity`` per switch so that, at equal hop
    count, the optimiser prefers idle switches (this is what makes policy
    optimisation useful on symmetric fabrics, mirroring Figure 2's overloaded
    ``w_1``).
    """

    unit_cost: float = 1.0
    tier_weights: Mapping[Tier, float] = field(
        default_factory=lambda: {
            Tier.ACCESS: 1.0,
            Tier.AGGREGATION: 1.0,
            Tier.CORE: 1.0,
        }
    )
    congestion_weight: float = 0.25

    def switch_cost(self, topology: Topology, switch_id: int, load: float) -> float:
        """Cost contribution of traversing one switch at the given load."""
        switch = topology.switch(switch_id)
        base = self.unit_cost * self.tier_weights.get(switch.tier, 1.0)
        if self.congestion_weight > 0 and switch.capacity > 0:
            base += self.congestion_weight * (load / switch.capacity)
        return base


class PolicyController:
    """Central policy manager: switch loads, Eq 4 candidates, Algorithm 1.

    The controller owns the mutable network side of a TAA instance.  The
    compute side (container placement) lives in
    :class:`~repro.cluster.state.ClusterState`; the two meet in
    :class:`~repro.core.taa.TAAInstance`.
    """

    def __init__(
        self,
        topology: Topology,
        cost_model: CostModel | None = None,
        max_slack: int = 2,
    ) -> None:
        self.topology = topology
        self.cost_model = cost_model or CostModel()
        self.max_slack = max_slack
        self._load: dict[int, float] = {w: 0.0 for w in topology.switch_ids}
        self._base_load: dict[int, float] = {w: 0.0 for w in topology.switch_ids}
        self._policies: dict[int, Policy] = {}
        self._flow_rates: dict[int, float] = {}
        # Per-switch count of installed flows traversing it: when a switch
        # empties, its incremental load is snapped back to exactly 0.0 so
        # repeated assign/release round-trips cannot accumulate float drift.
        self._flows_on: dict[int, int] = {w: 0 for w in topology.switch_ids}
        # Capacity-negotiated accounting (Eq 4): flows routed with the
        # capacity constraint enforced.  Baseline policies (static/ECMP) and
        # the saturation fallback are installed uncapacitated and are exempt
        # from the switch-capacity invariant by design.
        self._capacitated: set[int] = set()
        self._cap_load: dict[int, float] = {w: 0.0 for w in topology.switch_ids}
        self._cap_flows_on: dict[int, int] = {w: 0 for w in topology.switch_ids}
        # Monotone counter bumped on every load mutation; consumers that
        # cache load-derived quantities (the all-pairs unit-cost matrix)
        # compare it to decide when to invalidate.
        self._load_version: int = 0
        # Switches currently failed (fault injection).  A failed switch is
        # unroutable for *every* path computation — including the
        # capacity-relaxed fallback: saturation degrades a route, a dead
        # switch forbids it.  Kept as both a set (queries) and a node mask
        # (the vectorised DP); empty in normal operation so the hot path
        # pays one truthiness check.
        self._failed_switches: set[int] = set()
        self._failed_mask = np.zeros(topology.num_nodes, dtype=bool)
        # Decision-provenance breadcrumb channel: when the engine's audit
        # plane enables `provenance_notes`, every `route_flow` leaves the
        # path cost and capacity mode it decided with in `last_route`.  A
        # pure annotation — routing never reads it — so enabling it cannot
        # perturb a run.
        self.provenance_notes = False
        self.last_route: dict[str, object] | None = None
        # Physical links currently failed (canonical (min, max) keys) plus a
        # dense (n, n) boolean hop mask for the vectorised DP.  The mask is
        # allocated lazily on the first link failure, so fabrics that never
        # see link faults pay nothing.
        self._failed_links: set[tuple[int, int]] = set()
        self._failed_link_mask: np.ndarray | None = None
        # Node-indexed mirrors of the `_load`/`_base_load` dicts (servers
        # stay 0.0) plus the static per-node cost-model terms, so the DP can
        # gather whole stages without per-node dict/attribute chasing.  The
        # dicts remain the canonical accounting; mirrors are re-assigned from
        # them after every mutation.
        n = topology.num_nodes
        self._load_arr = np.zeros(n, dtype=np.float64)
        self._base_arr = np.zeros(n, dtype=np.float64)
        self._switch_mask = np.zeros(n, dtype=bool)
        self._cost_base = np.zeros(n, dtype=np.float64)
        self._switch_cap = np.zeros(n, dtype=np.float64)
        cm = self.cost_model
        for w in topology.switch_ids:
            switch = topology.switch(w)
            self._switch_mask[w] = True
            self._cost_base[w] = cm.unit_cost * cm.tier_weights.get(switch.tier, 1.0)
            self._switch_cap[w] = switch.capacity
        # Per-node traversal cost under *current* loads, maintained
        # incrementally: only the switches a mutation touches are re-priced,
        # so cost queries (the DP stage gathers, path_cost) never rebuild
        # per-node costs from the load dicts.  Failed switches keep their
        # finite price here — the infinite mask is applied at gather time.
        self._cost_arr = self._cost_base.copy()

    @property
    def load_version(self) -> int:
        """Bumped whenever any switch load changes (install/release/base)."""
        return self._load_version

    # ------------------------------------------------------------------ state
    def load(self, switch_id: int) -> float:
        """Aggregate rate currently routed through a switch (incl. base load)."""
        return self._load[switch_id] + self._base_load[switch_id]

    def base_load(self, switch_id: int) -> float:
        """The external (background) component of a switch's load."""
        return self._base_load[switch_id]

    def capacitated_load(self, switch_id: int) -> float:
        """Load from capacity-negotiated flows only (what Eq 4 bounds),
        including the base load the negotiation had to route around."""
        return self._cap_load[switch_id] + self._base_load[switch_id]

    def is_capacitated(self, flow_id: int) -> bool:
        """Whether a flow's policy was installed under the Eq 4 constraint."""
        return flow_id in self._capacitated

    def flow_rate(self, flow_id: int) -> float:
        """Rate an installed flow is charged at (KeyError when absent)."""
        return self._flow_rates[flow_id]

    def recomputed_loads(self) -> dict[int, float]:
        """Per-switch load re-derived from scratch off the installed
        policies — the ground truth the incremental ``_load`` accounting is
        verified against by the switch-load-consistency invariant."""
        loads = {w: 0.0 for w in self.topology.switch_ids}
        for fid, policy in self._policies.items():
            rate = self._flow_rates[fid]
            for w in policy.switch_list:
                loads[w] += rate
        return loads

    def _reprice(self, switches: Iterable[int]) -> None:
        """Refresh ``_cost_arr`` for the switches whose load just changed.

        The scalar expression mirrors :meth:`CostModel.switch_cost` (and the
        vectorised form it replaced) operation for operation, so the stored
        floats stay bit-identical to a from-scratch pricing.
        """
        cw = self.cost_model.congestion_weight
        if cw <= 0:
            return
        for w in switches:
            cap = self._switch_cap[w]
            if cap > 0:
                self._cost_arr[w] = self._cost_base[w] + cw * (
                    (self._load_arr[w] + self._base_arr[w]) / cap
                )

    def set_base_load(self, switch_id: int, rate: float) -> None:
        """External (background) load on a switch.

        Planning instances use this to mirror the traffic other jobs already
        impose on the fabric without importing their flows.
        """
        if rate < 0:
            raise ValueError("base load must be non-negative")
        self._base_load[switch_id] = rate
        self._base_arr[switch_id] = rate
        self._reprice((switch_id,))
        self._load_version += 1

    def base_loads_from(self, other: "PolicyController") -> None:
        """Copy another controller's *total* loads in as base load."""
        for w in self.topology.switch_ids:
            self._base_load[w] = other.load(w)
            self._base_arr[w] = self._base_load[w]
        self._reprice(self.topology.switch_ids)
        self._load_version += 1

    def residual(self, switch_id: int) -> float:
        if switch_id in self._failed_switches:
            return float("-inf")
        return self.topology.switch(switch_id).capacity - self.load(switch_id)

    # --------------------------------------------------------- failure state
    @property
    def failed_switches(self) -> frozenset[int]:
        """Switches currently failed (empty when no faults are live)."""
        return frozenset(self._failed_switches)

    def is_switch_failed(self, switch_id: int) -> bool:
        return switch_id in self._failed_switches

    def fail_switch(self, switch_id: int) -> None:
        """Mark a switch failed: every path query routes around it.

        Bumps :attr:`load_version` so cached load/cost-derived structures
        (the all-pairs unit-cost matrix behind the preference grading) are
        rebuilt with the switch priced unroutable.  Installed policies that
        traverse the switch are *not* touched here — the simulator's
        recovery layer reroutes or parks the affected flows.
        """
        if switch_id not in self._load:
            raise KeyError(f"unknown switch {switch_id}")
        if switch_id in self._failed_switches:
            return
        self._failed_switches.add(switch_id)
        self._failed_mask[switch_id] = True
        self._load_version += 1

    def recover_switch(self, switch_id: int) -> None:
        """Return a failed switch to service (idempotent)."""
        if switch_id not in self._load:
            raise KeyError(f"unknown switch {switch_id}")
        if switch_id not in self._failed_switches:
            return
        self._failed_switches.discard(switch_id)
        self._failed_mask[switch_id] = False
        self._load_version += 1

    # ------------------------------------------------------ link failure state
    @property
    def failed_links(self) -> frozenset[tuple[int, int]]:
        """Physical links currently failed, as canonical (min, max) keys."""
        return frozenset(self._failed_links)

    def is_link_failed(self, u: int, v: int) -> bool:
        return _link_key(u, v) in self._failed_links

    def fail_link(self, u: int, v: int) -> None:
        """Mark the physical link ``u``—``v`` unroutable.

        Every path computation — the stage DP, the slack fallback, ECMP
        candidate filtering — routes around it.  (Preference *grading* keeps
        using the unit-cost matrix, which only prices dead switches; the
        grading may rank an affected pairing optimistically, but installed
        routes are always link-safe because routing itself is masked.)
        Bumps :attr:`load_version`; installed policies over the link are
        rerouted or parked by the simulator's recovery layer.
        """
        if not self.topology.has_link(u, v):
            raise KeyError(f"no physical link between {u} and {v}")
        key = _link_key(u, v)
        if key in self._failed_links:
            return
        self._failed_links.add(key)
        if self._failed_link_mask is None:
            n = self.topology.num_nodes
            self._failed_link_mask = np.zeros((n, n), dtype=bool)
        self._failed_link_mask[key[0], key[1]] = True
        self._failed_link_mask[key[1], key[0]] = True
        self._load_version += 1

    def recover_link(self, u: int, v: int) -> None:
        """Return a failed link to service (idempotent)."""
        if not self.topology.has_link(u, v):
            raise KeyError(f"no physical link between {u} and {v}")
        key = _link_key(u, v)
        if key not in self._failed_links:
            return
        self._failed_links.discard(key)
        if self._failed_link_mask is not None:
            self._failed_link_mask[key[0], key[1]] = False
            self._failed_link_mask[key[1], key[0]] = False
        self._load_version += 1

    def sync_failures_from(self, other: "PolicyController") -> None:
        """Mirror another controller's failed-switch/failed-link sets
        (planning instances must see the same dead fabric as the live
        controller)."""
        if (
            other._failed_switches == self._failed_switches
            and other._failed_links == self._failed_links
        ):
            return
        self._failed_switches = set(other._failed_switches)
        self._failed_mask[:] = False
        for w in self._failed_switches:
            self._failed_mask[w] = True
        self._failed_links = set(other._failed_links)
        if self._failed_link_mask is not None:
            self._failed_link_mask[:] = False
        if self._failed_links:
            if self._failed_link_mask is None:
                n = self.topology.num_nodes
                self._failed_link_mask = np.zeros((n, n), dtype=bool)
            for a, b in self._failed_links:
                self._failed_link_mask[a, b] = True
                self._failed_link_mask[b, a] = True
        self._load_version += 1

    def policy_of(self, flow_id: int) -> Policy | None:
        return self._policies.get(flow_id)

    def policies(self) -> dict[int, Policy]:
        return dict(self._policies)

    # ------------------------------------------------------------ Eq 4 helper
    def candidate_switches(self, policy: Policy, position: int, rate: float) -> list[int]:
        """Eq 4: same-type switches with residual capacity for the flow.

        ``position`` indexes ``policy.switch_list``.  The current switch is
        excluded, exactly as in the paper (``w_hat in W \\ p.list[i]``).
        """
        required_type = policy.types[position]
        current = policy.switch_list[position]
        return [
            w
            for w in self.topology.switch_ids
            if w != current
            and self.topology.switch(w).switch_type == required_type
            and self.residual(w) >= rate
        ]

    # -------------------------------------------------------------- mutation
    def assign(
        self, flow: ShuffleFlow, policy: Policy, *, capacitated: bool = True
    ) -> None:
        """Install a policy for a flow, charging its rate to the switches.

        ``capacitated`` records whether the route was negotiated under the
        Eq 4 capacity constraint; uncapacitated installs (baselines, the
        saturation fallback) are exempt from the switch-capacity invariant.
        """
        if flow.flow_id in self._policies:
            self.release(flow.flow_id)
        for w in policy.switch_list:
            self._load[w] += flow.rate
            self._load_arr[w] = self._load[w]
            self._flows_on[w] += 1
        self._reprice(policy.switch_list)
        self._load_version += 1
        if capacitated:
            self._capacitated.add(flow.flow_id)
            for w in policy.switch_list:
                self._cap_load[w] += flow.rate
                self._cap_flows_on[w] += 1
        self._policies[flow.flow_id] = policy
        self._flow_rates[flow.flow_id] = flow.rate
        if _OBS.enabled:
            _OBS.tracer.count("alg1.assign")
            if _OBS.checker is not None:
                _OBS.checker.check_switch_capacity(
                    self,
                    where=f"assign flow {flow.flow_id}",
                    switches=policy.switch_list,
                )

    def release(self, flow_id: int) -> None:
        """Remove a flow's policy, refunding its rate.

        Loads are snapped back to exactly ``0.0`` whenever a switch's last
        flow leaves, so assign→release round-trips restore ``_load`` to its
        base value bit-for-bit (no float drift, no stale entries).
        """
        policy = self._policies.pop(flow_id, None)
        if policy is None:
            return
        rate = self._flow_rates.pop(flow_id)
        capacitated = flow_id in self._capacitated
        if capacitated:
            self._capacitated.discard(flow_id)
        for w in policy.switch_list:
            self._flows_on[w] -= 1
            if self._flows_on[w] <= 0:
                self._flows_on[w] = 0
                self._load[w] = 0.0
            else:
                self._load[w] = max(self._load[w] - rate, 0.0)
            self._load_arr[w] = self._load[w]
            if capacitated:
                self._cap_flows_on[w] -= 1
                if self._cap_flows_on[w] <= 0:
                    self._cap_flows_on[w] = 0
                    self._cap_load[w] = 0.0
                else:
                    self._cap_load[w] = max(self._cap_load[w] - rate, 0.0)
        self._reprice(policy.switch_list)
        self._load_version += 1
        if _OBS.enabled:
            _OBS.tracer.count("alg1.release")

    def clear(self) -> None:
        """Drop every installed policy and reset loads to exactly zero."""
        self._policies.clear()
        self._flow_rates.clear()
        self._capacitated.clear()
        for w in self.topology.switch_ids:
            self._load[w] = 0.0
            self._cap_load[w] = 0.0
            self._flows_on[w] = 0
            self._cap_flows_on[w] = 0
        self._load_arr[:] = 0.0
        self._reprice(self.topology.switch_ids)
        self._load_version += 1

    # --------------------------------------------------------- cost queries
    def path_cost(self, path: Sequence[int], rate: float) -> float:
        """Cost of carrying ``rate`` along a node path under current loads."""
        arr = self._cost_arr
        mask = self._switch_mask
        total = 0.0
        for n in path:
            if mask[n]:
                total += arr[n]
        return float(rate * total)

    def node_cost_vector(self, nodes: np.ndarray) -> np.ndarray:
        """Per-node traversal costs under current loads.

        A gather from the incrementally-maintained ``_cost_arr`` — element
        for element exactly what :meth:`CostModel.switch_cost` returns
        (servers contribute 0.0), with failed switches priced infinite.
        """
        costs = self._cost_arr[nodes]
        if self._failed_switches:
            # Dead switches are unroutable at any price — pricing them
            # infinite makes every DP (capacitated or not) route around
            # them, and leaves unreachable destinations at cost inf.
            costs[self._failed_mask[nodes]] = _INF
        return costs

    def all_node_costs(self) -> np.ndarray:
        """Traversal-cost vector over every node id (the batched solver's
        input); recompute after any load mutation (see :attr:`load_version`)."""
        costs = self._cost_arr.copy()
        if self._failed_switches:
            costs[self._failed_mask] = _INF
        return costs

    def policy_cost(self, flow: ShuffleFlow) -> float:
        """Shuffle cost of a flow under its installed policy (Eq 2).

        The flow's own load is excluded from the congestion term so the cost
        is comparable with candidate paths it is *not* yet installed on.
        """
        policy = self._policies.get(flow.flow_id)
        if policy is None:
            raise KeyError(f"flow {flow.flow_id} has no policy")
        total = 0.0
        for w in policy.switch_list:
            total += self.cost_model.switch_cost(
                self.topology, w, self.load(w) - flow.rate
            )
        return flow.rate * total

    # ------------------------------------------------- Algorithm 1 machinery
    def optimal_path(
        self,
        src_server: int,
        dst_server: int,
        rate: float,
        enforce_capacity: bool = True,
    ) -> tuple[tuple[int, ...], float]:
        """Optimal shuffle path between two servers (Algorithm 1, line 5).

        Runs a forward DP over the equal-cost stage DAG; when capacities
        prune every shortest path, retries slack-extended paths up to
        ``max_slack`` extra hops before raising
        :class:`NoFeasiblePathError`.  Returns ``(path, cost)`` where cost is
        ``rate``-scaled per the cost model.
        """
        if src_server == dst_server:
            return ((src_server,), 0.0)
        if _OBS.enabled:
            return self._optimal_path_traced(
                src_server, dst_server, rate, enforce_capacity
            )
        return self._optimal_path_impl(
            src_server, dst_server, rate, enforce_capacity
        )

    def _optimal_path_traced(
        self, src_server: int, dst_server: int, rate: float,
        enforce_capacity: bool,
    ) -> tuple[tuple[int, ...], float]:
        tracer = _OBS.tracer
        tracer.count("alg1.optimal_path")
        with tracer.timeit("alg1.optimal_path"):
            try:
                return self._optimal_path_impl(
                    src_server, dst_server, rate, enforce_capacity
                )
            except NoFeasiblePathError:
                tracer.count("alg1.no_feasible_path")
                raise

    def _optimal_path_impl(
        self, src_server: int, dst_server: int, rate: float,
        enforce_capacity: bool,
    ) -> tuple[tuple[int, ...], float]:
        path = self._dag_best_path(src_server, dst_server, rate, enforce_capacity)
        if path is not None:
            return path, self.path_cost(path, rate)
        # Slack-extended retry: normally only worth it when capacity pruning
        # emptied the DAG, but with failed switches even the *uncapacitated*
        # DP can come back empty (every shortest path crosses a dead switch)
        # while a slightly longer live detour exists.
        if enforce_capacity or self._failed_switches or self._failed_links:
            if _OBS.enabled:
                _OBS.tracer.count("alg1.slack_fallback")
            broken = bool(self._failed_switches or self._failed_links)
            for slack in range(1, self.max_slack + 1):
                best: tuple[int, ...] | None = None
                best_cost = _INF
                for candidate in enumerate_paths(
                    self.topology, src_server, dst_server, slack=slack, limit=512
                ):
                    if broken and not self._path_alive(candidate):
                        continue
                    if enforce_capacity and not self._path_feasible(candidate, rate):
                        continue
                    cost = self.path_cost(candidate, rate)
                    if cost < best_cost:
                        best, best_cost = candidate, cost
                if best is not None:
                    return best, best_cost
        raise NoFeasiblePathError(
            f"no feasible path for rate {rate} between servers "
            f"{src_server} and {dst_server}"
        )

    def _path_alive(self, path: Sequence[int]) -> bool:
        """True when the path crosses no failed switch and no failed link."""
        if any(n in self._failed_switches for n in path):
            return False
        if self._failed_links:
            for a, b in zip(path, path[1:]):
                if _link_key(a, b) in self._failed_links:
                    return False
        return True

    def _path_feasible(self, path: Sequence[int], rate: float) -> bool:
        return all(
            self.residual(n) >= rate
            for n in path
            if self.topology.is_switch(n)
        )

    def _dag_best_path(
        self,
        src: int,
        dst: int,
        rate: float,
        enforce_capacity: bool,
    ) -> tuple[int, ...] | None:
        """Masked-array min-plus DP over the cached stage adjacency.

        Vectorised replacement for the frontier×stage scalar DP: per stage
        transition, candidate totals are a ``(prev, cur)`` matrix built from
        the cached boolean adjacency (:func:`stage_adjacency`), capacity
        pruning is a boolean mask, and ``argmin`` over the prev axis both
        selects parents and reproduces the scalar tie-break (lowest prev node
        id — stages are ascending).  Returns ``None`` when pruning empties a
        stage or ``dst`` ends unreachable.
        """
        stages, mats = stage_adjacency(self.topology, src, dst)
        if len(stages) == 1:
            return (src,)
        parent_idx: list[np.ndarray] = []
        current = np.zeros(1, dtype=np.float64)
        for k in range(1, len(stages)):
            nodes = stages[k]
            costs = self.node_cost_vector(nodes)
            trans = mats[k - 1]
            if self._failed_links:
                # Hop-level masking: a transition over a failed physical
                # link is as unroutable as one into a failed switch.
                trans = trans & ~self._failed_link_mask[
                    np.ix_(stages[k - 1], nodes)
                ]
            totals = (
                np.where(trans, current[:, None], _INF) + costs[None, :]
            )
            best = totals.min(axis=0)
            parents = totals.argmin(axis=0)
            if enforce_capacity:
                switches = self._switch_mask[nodes]
                if switches.any():
                    loads = self._load_arr[nodes] + self._base_arr[nodes]
                    infeasible = switches & (
                        self._switch_cap[nodes] - loads < rate
                    )
                    best[infeasible] = _INF
            if not np.isfinite(best).any():
                return None
            parent_idx.append(parents)
            current = best
        # Last stage is (dst,) alone; backtrack through the parent indices.
        path = [dst]
        idx = 0
        for k in range(len(stages) - 1, 0, -1):
            idx = int(parent_idx[k - 1][idx])
            path.append(int(stages[k - 1][idx]))
        return tuple(reversed(path))

    # --------------------------------------------------------- policy builds
    def make_policy(self, flow: ShuffleFlow, path: Sequence[int]) -> Policy:
        """Wrap a node path as a satisfied policy for a flow."""
        switch_list = tuple(n for n in path if self.topology.is_switch(n))
        types = tuple(self.topology.switch(w).switch_type for w in switch_list)
        return Policy(
            flow_id=flow.flow_id,
            path=tuple(path),
            switch_list=switch_list,
            types=types,
        )

    def route_flow(
        self,
        flow: ShuffleFlow,
        src_server: int,
        dst_server: int,
        enforce_capacity: bool = True,
    ) -> Policy:
        """Compute + install the optimal policy for a flow (Algorithm 1 body)."""
        self.release(flow.flow_id)
        path, cost = self.optimal_path(
            src_server, dst_server, flow.rate, enforce_capacity
        )
        policy = self.make_policy(flow, path)
        self.assign(flow, policy, capacitated=enforce_capacity)
        if self.provenance_notes:
            self.last_route = {
                "cost": float(cost),
                "capacitated": enforce_capacity,
            }
        return policy

    def total_cost(self, flows: Iterable[ShuffleFlow]) -> float:
        """Objective of Eq 3 over installed policies."""
        return sum(
            self.policy_cost(f) for f in flows if f.flow_id in self._policies
        )
