"""Tasks Assignment Algorithm (Algorithm 2): modified Gale-Shapley.

The preferences of containers and servers can conflict, which the paper casts
as a many-to-one stable matching (college-admissions / hospital-residents
with capacities).  Containers propose; a server accepts while it has residual
resource capacity and otherwise evicts its least-preferred tenants.  Two
refinements from the paper's pseudo-code are implemented faithfully:

* **rejected-top** — each server remembers the best (highest) preference rank
  it has ever rejected;
* **blacklists** — every container the server ranks at-or-below that
  rejected-top treats the server as unavailable from then on.  (We realise
  the blacklist lazily: a proposal to ``s`` is skipped when the proposer's
  rank on ``s`` is no better than ``s``'s rejected-top.  This is equivalent
  to the eager set-union of the pseudo-code and keeps the loop O(M x N).)

A matching is *stable* when no container-server pair ``(c, s)`` both prefer
each other over their current situation; :func:`find_blocking_pairs` checks
that definition directly and is used by the test suite to validate the
implementation on random instances.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..cluster.resources import Resources
from ..cluster.state import ClusterState
from ..obs.runtime import STATE as _OBS
from .preference import PreferenceMatrix

__all__ = ["MatchingResult", "stable_match", "find_blocking_pairs"]


@dataclass
class MatchingResult:
    """Outcome of Algorithm 2.

    ``assignment`` maps container id -> server id for every matched
    container; ``unmatched`` lists containers whose preference list was
    exhausted (possible when capacities are tight — the caller decides on a
    fallback).  ``proposals`` counts loop iterations, the quantity the
    O(M x N) complexity claim bounds.
    """

    assignment: dict[int, int]
    unmatched: list[int]
    proposals: int
    evictions: int

    def to_provenance(self) -> dict[str, int]:
        """Tie-break path of one matching round, as a decision-record
        payload (see ``repro.obs.provenance``)."""
        return {
            "matched": len(self.assignment),
            "unmatched": len(self.unmatched),
            "proposals": self.proposals,
            "evictions": self.evictions,
        }


def stable_match(
    preferences: PreferenceMatrix,
    cluster: ClusterState,
) -> MatchingResult:
    """Run Algorithm 2 and return the stable assignment.

    ``cluster`` supplies container demands and server capacities; the
    matching works on scratch state and does **not** mutate the cluster —
    the caller applies the assignment (see
    :meth:`~repro.core.hit.HitOptimizer`), since an application step may also
    need to handle unmatched containers.
    """
    container_ids = list(preferences.container_ids)
    server_ids = list(preferences.server_ids)
    in_matrix = set(container_ids)

    # Containers outside this matching round (e.g. the fixed side of an
    # alternating sweep) keep occupying their servers: charge their demand
    # up-front so the matching never oversubscribes around them.
    fixed_used: dict[int, Resources] = {s: Resources.zero() for s in server_ids}
    for other in cluster.containers():
        if other.container_id in in_matrix or other.server_id is None:
            continue
        if other.server_id in fixed_used:
            fixed_used[other.server_id] = (
                fixed_used[other.server_id] + other.demand
            )

    # Container-side preference lists and cursors.
    pref_lists: dict[int, list[int]] = {
        c: preferences.container_ranking(c) for c in container_ids
    }
    cursors: dict[int, int] = {c: 0 for c in container_ids}

    # Server-side ranking (0 = most preferred container): lazy argsort-backed
    # arrays, materialised per server on first proposal — most servers on a
    # large fabric are never proposed to.  ``rank_of(s)[cidx[c]]`` is the
    # rank of container ``c``, with infeasible pairs at the sentinel value
    # ``n + 1`` (always at-or-beyond any rejected-top threshold).
    cidx = preferences.container_index
    rank_of = preferences.server_rank_array
    rejected_top: dict[int, int] = {s: len(container_ids) + 1 for s in server_ids}

    capacity: dict[int, Resources] = {
        s: cluster.capacity(s) - fixed_used[s] for s in server_ids
    }
    used: dict[int, Resources] = {s: Resources.zero() for s in server_ids}
    accepted: dict[int, set[int]] = {s: set() for s in server_ids}
    matched_to: dict[int, int] = {}

    demand = {c: cluster.container(c).demand for c in container_ids}

    free: deque[int] = deque(container_ids)
    proposals = 0
    evictions = 0

    while free:
        c = free.popleft()
        while cursors[c] < len(pref_lists[c]):
            s = pref_lists[c][cursors[c]]
            cursors[c] += 1
            ranks = rank_of(s)
            if int(ranks[cidx[c]]) >= rejected_top[s]:
                # Blacklisted (or infeasible): s already rejected a container
                # it prefers to c.
                continue
            proposals += 1
            # Tentatively accept, then evict least-preferred until feasible.
            accepted[s].add(c)
            matched_to[c] = s
            used[s] = used[s] + demand[c]
            while not used[s].fits_in(capacity[s]):
                worst = max(accepted[s], key=lambda x: ranks[cidx[x]])
                accepted[s].discard(worst)
                used[s] = used[s] - demand[worst]
                del matched_to[worst]
                evictions += 1
                rejected_top[s] = min(rejected_top[s], int(ranks[cidx[worst]]))
                if worst != c:
                    free.append(worst)
            if c in accepted[s]:
                break
            # c itself was evicted: continue down its list.
    unmatched = [c for c in container_ids if c not in matched_to]
    result = MatchingResult(
        assignment=dict(matched_to),
        unmatched=unmatched,
        proposals=proposals,
        evictions=evictions,
    )
    if _OBS.enabled:
        tracer = _OBS.tracer
        tracer.count("alg2.match")
        tracer.count("alg2.proposals", proposals)
        tracer.count("alg2.evictions", evictions)
        tracer.event(
            "alg2.match",
            containers=len(container_ids),
            servers=len(server_ids),
            proposals=proposals,
            evictions=evictions,
            unmatched=len(unmatched),
        )
        if _OBS.checker is not None:
            _OBS.checker.check_matching_stability(
                result, preferences, cluster, where="stable_match"
            )
    return result


def find_blocking_pairs(
    result: MatchingResult,
    preferences: PreferenceMatrix,
    cluster: ClusterState,
    tolerance: float = 1e-9,
) -> list[tuple[int, int]]:
    """All blocking pairs of a matching (empty list == stable).

    ``(c, s)`` blocks when ``c`` strictly prefers ``s`` to its current match
    (strictly lower cost, beyond ``tolerance``) **and** ``s`` can be made to
    accommodate ``c`` profitably: either it has residual capacity for ``c``,
    or it strictly prefers ``c`` to some accepted container whose eviction
    would free enough room.
    """
    container_ids = list(preferences.container_ids)
    server_ids = list(preferences.server_ids)
    demand = {c: cluster.container(c).demand for c in container_ids}

    used: dict[int, Resources] = {s: Resources.zero() for s in server_ids}
    accepted: dict[int, list[int]] = {s: [] for s in server_ids}
    in_matrix = set(container_ids)
    for other in cluster.containers():
        # Fixed containers occupy space but are never evictable.
        if other.container_id in in_matrix or other.server_id is None:
            continue
        if other.server_id in used:
            used[other.server_id] = used[other.server_id] + other.demand
    for c, s in result.assignment.items():
        used[s] = used[s] + demand[c]
        accepted[s].append(c)

    sidx = preferences.server_index
    cidx = preferences.container_index
    num_containers = len(container_ids)
    blocking: list[tuple[int, int]] = []
    for c in container_ids:
        current = result.assignment.get(c)
        j = cidx[c]
        current_cost = (
            preferences.cost[sidx[current], j]
            if current is not None
            else float("inf")
        )
        for s in server_ids:
            if s == current:
                continue
            cost = preferences.cost[sidx[s], j]
            if not cost < current_cost - tolerance:
                continue  # c does not strictly prefer s
            ranks = preferences.server_rank_array(s)
            rank_c = int(ranks[j])
            if rank_c >= num_containers:
                continue  # infeasible on s (sentinel rank)
            residual = cluster.capacity(s) - used[s]
            if demand[c].fits_in(residual):
                blocking.append((c, s))
                continue
            # Would evicting strictly-worse tenants make room?
            worse = [a for a in accepted[s] if ranks[cidx[a]] > rank_c]
            freed = residual
            for a in sorted(worse, key=lambda x: -int(ranks[cidx[x]])):
                freed = freed + demand[a]
                if demand[c].fits_in(freed):
                    blocking.append((c, s))
                    break
    return blocking
