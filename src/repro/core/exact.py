"""Brute-force exact TAA solver for small instances.

The TAA problem is NP-hard (Section 4 reduces Multiple Knapsack to it), so
no polynomial exact algorithm exists; this module provides an exponential
one for validation: depth-first enumeration of all capacity-feasible
container->server assignments with branch-and-bound pruning, scoring each
complete assignment by optimally routing every flow.  The ablation benchmark
``bench_ablation_exact_gap`` and the unit tests use it to measure how close
the stable-matching heuristic gets to the optimum on instances the
enumeration can still afford (roughly <= 8 containers on <= 6 servers).

With the congestion term disabled and capacities slack, per-flow optimal
routing is globally optimal (flows do not interact), so the returned cost is
the true optimum.  With tight switch capacities the policy side is itself a
knapsack and per-flow routing in decreasing-rate order is a greedy bound —
the solver then reports the best assignment under that same policy rule,
which is exactly how the heuristic scores placements, keeping the comparison
apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.resources import Resources
from .policy import NoFeasiblePathError
from .taa import TAAInstance

__all__ = ["ExactResult", "solve_exact"]


@dataclass(frozen=True)
class ExactResult:
    """Optimal assignment and its cost, plus search statistics."""

    assignment: dict[int, int]
    cost: float
    nodes_explored: int
    complete_assignments: int


def _score(taa: TAAInstance, assignment: dict[int, int]) -> float:
    """Cost of a complete assignment under optimal per-flow routing."""
    controller = taa.controller
    controller.clear()
    total = 0.0
    for flow in sorted(taa.flows, key=lambda f: -f.rate):
        src = assignment[flow.src_container]
        dst = assignment[flow.dst_container]
        try:
            policy = controller.route_flow(flow, src, dst)
        except NoFeasiblePathError:
            controller.clear()
            return float("inf")
        del policy
        total += controller.policy_cost(flow)
    controller.clear()
    return total


def solve_exact(
    taa: TAAInstance,
    max_containers: int = 10,
    max_servers: int = 8,
) -> ExactResult:
    """Enumerate all feasible assignments and return the cheapest.

    Guards with ``max_containers`` / ``max_servers`` so a mistaken call on a
    big instance fails fast instead of burning hours.  The instance's current
    placement and policies are left untouched (state is snapshotted and
    restored around the search).
    """
    cluster = taa.cluster
    container_ids = [c.container_id for c in cluster.containers()]
    server_ids = list(cluster.server_ids)
    if len(container_ids) > max_containers:
        raise ValueError(
            f"{len(container_ids)} containers exceed exact-solver limit "
            f"{max_containers}"
        )
    if len(server_ids) > max_servers:
        raise ValueError(
            f"{len(server_ids)} servers exceed exact-solver limit {max_servers}"
        )

    snapshot = cluster.placement_snapshot()
    saved_policies = taa.controller.policies()
    demand = {c: cluster.container(c).demand for c in container_ids}
    capacity = {s: cluster.capacity(s) for s in server_ids}

    best_cost = float("inf")
    best_assignment: dict[int, int] = {}
    nodes = 0
    complete = 0
    used: dict[int, Resources] = {s: Resources.zero() for s in server_ids}
    assignment: dict[int, int] = {}

    def dfs(index: int) -> None:
        nonlocal best_cost, best_assignment, nodes, complete
        if index == len(container_ids):
            complete += 1
            cost = _score(taa, assignment)
            if cost < best_cost:
                best_cost = cost
                best_assignment = dict(assignment)
            return
        cid = container_ids[index]
        for sid in server_ids:
            new_used = used[sid] + demand[cid]
            if not new_used.fits_in(capacity[sid]):
                continue
            nodes += 1
            used[sid] = new_used
            assignment[cid] = sid
            dfs(index + 1)
            del assignment[cid]
            used[sid] = used[sid] - demand[cid]

    try:
        dfs(0)
    finally:
        # Restore the caller's placement and policies.
        for cid in container_ids:
            if cluster.container(cid).is_placed:
                cluster.unplace(cid)
        for cid, sid in snapshot.items():
            if sid is not None:
                cluster.place(cid, sid)
        taa.controller.clear()
        for flow in taa.flows:
            policy = saved_policies.get(flow.flow_id)
            if policy is not None:
                taa.controller.assign(flow, policy)

    if not best_assignment and container_ids:
        raise RuntimeError("no capacity-feasible assignment exists")
    return ExactResult(
        assignment=best_assignment,
        cost=best_cost,
        nodes_explored=nodes,
        complete_assignments=complete,
    )
