"""Online policy rebalancing for live flows.

Section 5.1.1 frames policy optimisation as rescheduling the switches of an
*existing* policy (``p.list[i] -> w_hat``): the flow keeps running while the
controller migrates it to a less-loaded route.  In the dynamic simulator,
flows start and finish continuously, so the loads Algorithm 1 optimised
against drift; this module provides the controller-side periodic sweep that
re-runs the optimal-path DP for each live flow and migrates the ones whose
cost saving clears a hysteresis threshold (migrating for epsilon gains would
thrash).

The ``hit-online`` scheduler variant enables the sweep inside the simulator;
``bench_ablation_rebalance`` measures what it buys over place-once routing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mapreduce.shuffle import ShuffleFlow
from .policy import NoFeasiblePathError, PolicyController

__all__ = ["RebalanceConfig", "RebalanceReport", "rebalance_flows"]


@dataclass(frozen=True)
class RebalanceConfig:
    """Sweep parameters.

    ``min_relative_gain`` is the hysteresis: a flow migrates only when the
    new route costs at most ``(1 - min_relative_gain)`` of the current one.
    ``max_migrations`` bounds one sweep so a pathological state cannot stall
    the simulation.

    ``pressure_ceiling`` is the overload guard for open-loop (online)
    workloads: when set, the simulator skips the sweep entirely while
    cluster occupancy is at or above the ceiling — under sustained
    saturation nearly every placement is contended, so DP sweeps burn time
    migrating flows whose routes are invalidated by the next admission
    anyway.  ``None`` (the default) keeps the sweep unconditional, which is
    byte-identical to the pre-backpressure behaviour.
    """

    min_relative_gain: float = 0.10
    max_migrations: int = 1_000
    pressure_ceiling: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_relative_gain < 1.0:
            raise ValueError("min_relative_gain must be in [0, 1)")
        if self.max_migrations < 1:
            raise ValueError("max_migrations must be >= 1")
        if self.pressure_ceiling is not None and not (
            0.0 < self.pressure_ceiling <= 1.0
        ):
            raise ValueError("pressure_ceiling must be in (0, 1]")


@dataclass
class RebalanceReport:
    """What one sweep did."""

    flows_considered: int
    migrations: int
    cost_before: float
    cost_after: float

    @property
    def gain(self) -> float:
        if self.cost_before == 0:
            return 0.0
        return 1.0 - self.cost_after / self.cost_before


def rebalance_flows(
    controller: PolicyController,
    flows: list[ShuffleFlow],
    config: RebalanceConfig | None = None,
) -> RebalanceReport:
    """One rebalancing sweep over the given live flows.

    Flows are visited heaviest-rate first (migrating a heavy flow frees the
    most contended capacity for everyone after it).  A flow migrates when the
    DP finds a route whose cost, under current loads *excluding the flow
    itself*, beats its current cost by the hysteresis margin.
    """
    config = config or RebalanceConfig()
    live = [f for f in flows if controller.policy_of(f.flow_id) is not None]
    cost_before = sum(controller.policy_cost(f) for f in live)
    migrations = 0

    for flow in sorted(live, key=lambda f: -f.rate):
        if migrations >= config.max_migrations:
            break
        policy = controller.policy_of(flow.flow_id)
        assert policy is not None
        if len(policy.path) < 2:
            continue  # co-located
        current_cost = controller.policy_cost(flow)
        if current_cost <= 0:
            continue
        src, dst = policy.path[0], policy.path[-1]
        # Release first so the flow's own load doesn't bias the DP, then
        # reinstall either the better route or the original one.
        controller.release(flow.flow_id)
        try:
            path, new_cost = controller.optimal_path(src, dst, flow.rate)
        except NoFeasiblePathError:
            controller.assign(flow, policy)
            continue
        if new_cost <= current_cost * (1.0 - config.min_relative_gain):
            controller.assign(flow, controller.make_policy(flow, path))
            migrations += 1
        else:
            controller.assign(flow, policy)

    cost_after = sum(controller.policy_cost(f) for f in live)
    return RebalanceReport(
        flows_considered=len(live),
        migrations=migrations,
        cost_before=cost_before,
        cost_after=cost_after,
    )
