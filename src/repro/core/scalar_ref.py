"""Scalar reference implementations of the vectorised hot-path kernels.

The routing/preference hot path (`PolicyController._dag_best_path`, the
pair-cost cache, `build_preference_matrix`) is implemented with NumPy array
kernels; this module preserves the original per-pair / per-node scalar
implementations verbatim.  They are **not** used by the library at runtime —
they exist so that

* the equivalence suite (``tests/core/test_vector_equivalence.py``) can
  assert the vectorised kernels produce identical paths, costs and matchings
  on randomized instances, and
* ``benchmarks/bench_perf_hotpath.py`` can time the pre-vectorisation code
  against the shipped kernels and record both numbers.

Do not "optimise" these: their value is being the straightforward,
obviously-correct transcription of Algorithm 1's grading pass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..topology.routing import enumerate_paths, shortest_path_stages
from .policy import NoFeasiblePathError
from .preference import PreferenceMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from .policy import PolicyController
    from .taa import TAAInstance

__all__ = [
    "dag_best_path_scalar",
    "optimal_path_scalar",
    "ScalarPairCostCache",
    "build_preference_matrix_scalar",
]

_INF = float("inf")


def dag_best_path_scalar(
    controller: "PolicyController",
    src: int,
    dst: int,
    rate: float,
    enforce_capacity: bool,
) -> tuple[int, ...] | None:
    """The original frontier-dict DP over :func:`shortest_path_stages`."""
    stages = shortest_path_stages(controller.topology, src, dst)
    topo = controller.topology
    # frontier[node] = cumulative cost at the previous stage.
    frontier: dict[int, float] = {src: 0.0}
    parents: dict[int, int] = {}
    for stage in stages[1:]:
        nxt: dict[int, float] = {}
        for node in stage:
            if (
                enforce_capacity
                and topo.is_switch(node)
                and controller.residual(node) < rate
            ):
                continue
            node_cost = (
                controller.cost_model.switch_cost(
                    topo, node, controller.load(node)
                )
                if topo.is_switch(node)
                else 0.0
            )
            best_total = _INF
            best_prev: int | None = None
            for prev, prev_cost in frontier.items():
                if not topo.has_link(prev, node):
                    continue
                total = prev_cost + node_cost
                if total < best_total or (
                    total == best_total
                    and best_prev is not None
                    and prev < best_prev
                ):
                    best_total = total
                    best_prev = prev
            if best_prev is not None:
                nxt[node] = best_total
                parents[node] = best_prev
        if not nxt:
            return None
        frontier = nxt
    if dst not in frontier:
        return None
    # Backtrack.
    path = [dst]
    node = dst
    while node != src:
        node = parents[node]
        path.append(node)
    return tuple(reversed(path))


def optimal_path_scalar(
    controller: "PolicyController",
    src_server: int,
    dst_server: int,
    rate: float,
    enforce_capacity: bool = True,
) -> tuple[tuple[int, ...], float]:
    """Scalar counterpart of :meth:`PolicyController.optimal_path`."""
    if src_server == dst_server:
        return ((src_server,), 0.0)
    path = dag_best_path_scalar(
        controller, src_server, dst_server, rate, enforce_capacity
    )
    if path is not None:
        return path, controller.path_cost(path, rate)
    if enforce_capacity:
        for slack in range(1, controller.max_slack + 1):
            best: tuple[int, ...] | None = None
            best_cost = _INF
            for candidate in enumerate_paths(
                controller.topology, src_server, dst_server, slack=slack,
                limit=512,
            ):
                if not controller._path_feasible(candidate, rate):
                    continue
                cost = controller.path_cost(candidate, rate)
                if cost < best_cost:
                    best, best_cost = candidate, cost
            if best is not None:
                return best, best_cost
    raise NoFeasiblePathError(
        f"no feasible path for rate {rate} between servers "
        f"{src_server} and {dst_server}"
    )


class ScalarPairCostCache:
    """The original per-pair memoised cache, one scalar DP per server pair.

    Pairs are priced **from the fixed endpoint** (the second argument) —
    the same canonical orientation the vectorised
    :class:`~repro.core.preference.PairCostCache` uses for its lazy
    per-column pricing — so the two implementations remain bit-identical
    term by term.  (Costs are mathematically symmetric; the orientation
    only pins the floating-point summation order.)
    """

    def __init__(self, taa: "TAAInstance") -> None:
        self._taa = taa
        self._cache: dict[tuple[int, int], float] = {}

    def unit_cost(self, a: int, b: int) -> float:
        if a == b:
            return 0.0
        cached = self._cache.get((a, b))
        if cached is None:
            _, cached = optimal_path_scalar(
                self._taa.controller, b, a, rate=1.0,
                enforce_capacity=False,
            )
            self._cache[(a, b)] = cached
        return cached

    def __len__(self) -> int:
        return len(self._cache)


def build_preference_matrix_scalar(
    taa: "TAAInstance",
    container_ids: list[int] | None = None,
    cache: ScalarPairCostCache | None = None,
    previous: PreferenceMatrix | None = None,
) -> PreferenceMatrix:
    """The original grading pass: per-server-pair scalar DPs, Python loops.

    ``previous`` is accepted for call-compatibility with the vectorised
    builder and deliberately ignored: the reference always rebuilds from
    scratch (no reuse to go wrong).
    """
    cluster = taa.cluster
    if container_ids is None:
        container_ids = [
            c.container_id
            for c in cluster.containers()
            if taa.flows_of_container(c.container_id)
        ]
    server_ids = cluster.server_ids
    if cache is None:
        cache = ScalarPairCostCache(taa)

    m, n = len(server_ids), len(container_ids)
    cost = np.zeros((m, n), dtype=np.float64)
    current = np.full(n, np.inf, dtype=np.float64)
    server_index = {s: i for i, s in enumerate(server_ids)}

    for j, cid in enumerate(container_ids):
        container = cluster.container(cid)
        column = np.zeros(m, dtype=np.float64)
        for flow in taa.flows_of_container(cid):
            other_cid = (
                flow.dst_container
                if flow.src_container == cid
                else flow.src_container
            )
            other_server = cluster.container(other_cid).server_id
            if other_server is None:
                continue
            unit = np.array(
                [cache.unit_cost(s, other_server) for s in server_ids]
            )
            column += flow.rate * unit
        for i, sid in enumerate(server_ids):
            if not container.demand.fits_in(cluster.capacity(sid)):
                column[i] = np.inf
        cost[:, j] = column
        if container.server_id is not None:
            current[j] = column[server_index[container.server_id]]

    return PreferenceMatrix(
        server_ids=server_ids,
        container_ids=tuple(container_ids),
        cost=cost,
        current_cost=current,
    )
