"""Preference construction for the stable matching (Sections 5.2.1-5.2.2).

Algorithm 1 ends with an ``M x N`` preference matrix ``P``: for every server
``s`` and container-hosting-task ``c``, ``P(s, c)`` grades the assignment of
``c`` onto ``s``.  We materialise the matrix from the cost side:

* ``cost[s, c]`` — the shuffle cost ``C_c(s)`` of hosting container ``c`` on
  server ``s`` (generalised Eq 9): the sum over incident flows of the
  optimal-route cost to the opposite endpoint's current server.
* A **container** ranks servers by ``cost[s, c]`` ascending — identical to
  ranking by utility ``U(A(c) -> s) = C_c(A(c)) - C_c(s)`` descending
  (Eq 10), since the first term is constant per container.
* A **server** ranks containers by that same utility descending: it prefers
  the tenants that gain the most traffic-cost reduction from living there.
  (This is the asymmetry that makes the matching problem non-trivial: the
  container term ``C_c(A(c))`` varies across containers.)

Route costs are evaluated with the capacity constraint relaxed (grading
pass — feasibility is enforced at matching and policy-installation time).
With capacities relaxed the optimal route between two servers is independent
of the flow's rate, so the costs depend only on the server pair — and the
grading pass prices them **by fixed endpoint**: one batched layered min-plus
DP (:func:`~repro.topology.routing.single_source_unit_costs`) rooted at each
server that hosts an opposite flow endpoint yields that server's unit-cost
column over all ``S`` candidates, and each preference column is assembled as
``column += rate * cache.column(other)`` array gathers.  Only the columns
actually referenced are ever priced — a handful out of ``S`` on large
fabrics — and they are keyed to the controller's load version and re-priced
only when switch loads actually change, so every consumer in a sweep
(grading, the matching fallback, subsequent-wave placement) shares one set
of builds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.runtime import STATE as _OBS
from ..topology.routing import single_source_unit_costs
from .taa import TAAInstance

__all__ = ["PreferenceMatrix", "build_preference_matrix", "PairCostCache"]


class PairCostCache:
    """Unit-rate optimal route costs between server pairs, column-backed.

    ``column(b)[i]`` is the relaxed-capacity optimal route cost between
    servers ``server_ids[i]`` and ``b`` at rate 1, priced by one batched
    layered min-plus pass *from* ``b``
    (:func:`~repro.topology.routing.single_source_unit_costs`).  Costs are
    mathematically symmetric — reversing an undirected path traverses the
    same switches — so the pricing direction only fixes the floating-point
    summation order; every consumer (this cache, the grading pass, and the
    scalar reference in :mod:`repro.core.scalar_ref`) prices from the
    *fixed* endpoint (the second argument / the column server), which keeps
    the vectorised and scalar implementations bit-identical.

    Columns are priced **lazily**: the grading pass only needs the columns
    of servers that currently host an opposite flow endpoint — on a large
    fabric a tiny subset of all ``S`` columns — so an all-pairs build would
    be almost entirely wasted work.  Priced columns are invalidated
    automatically whenever the controller's switch loads change
    (:attr:`PolicyController.load_version`), so one long-lived cache can be
    shared across sweeps.
    """

    def __init__(self, taa: TAAInstance) -> None:
        self._taa = taa
        self._server_ids: tuple[int, ...] = taa.cluster.server_ids
        self._server_index: dict[int, int] = {
            s: i for i, s in enumerate(self._server_ids)
        }
        self._servers_arr = np.asarray(self._server_ids, dtype=np.int64)
        self._columns: dict[int, np.ndarray] = {}
        self._node_costs: np.ndarray | None = None
        self._version: int = -1

    # --------------------------------------------------------------- building
    def _sync(self) -> None:
        """Drop stale columns when the controller's switch loads changed."""
        controller = self._taa.controller
        if self._node_costs is None or self._version != controller.load_version:
            self._columns.clear()
            self._node_costs = controller.all_node_costs()
            self._version = controller.load_version

    def _price_column(self, server_id: int) -> np.ndarray:
        column = single_source_unit_costs(
            self._taa.topology, server_id, self._node_costs
        )[self._servers_arr]
        column.setflags(write=False)
        return column

    # -------------------------------------------------------------- accessors
    @property
    def matrix(self) -> np.ndarray:
        """The ``S x S`` all-pairs unit-cost matrix (prices every column).

        ``matrix[i, j]`` is priced from ``server_ids[j]``; use only when all
        pairs are genuinely needed — consumers that touch a handful of fixed
        endpoints should use :meth:`column` and keep the build lazy.
        """
        return np.stack(
            [self.column(s) for s in self._server_ids], axis=1
        )

    @property
    def server_ids(self) -> tuple[int, ...]:
        return self._server_ids

    @property
    def server_index(self) -> dict[int, int]:
        """``{server_id: row/column index}`` into :attr:`matrix`."""
        return self._server_index

    def unit_cost(self, a: int, b: int) -> float:
        """Optimal route cost between servers ``a`` and ``b`` at rate 1.

        Priced from ``b`` (see the class docstring); ``unit_cost(a, b)`` and
        ``unit_cost(b, a)`` are equal up to summation order.
        """
        if a == b:
            return 0.0
        return float(self.column(b)[self._server_index[a]])

    def column(self, server_id: int) -> np.ndarray:
        """Unit costs between *every* server and ``server_id``, from one
        single-source pass rooted at ``server_id`` (priced lazily, memoised
        per load version)."""
        self._sync()
        cached = self._columns.get(server_id)
        if cached is None:
            if _OBS.enabled:
                _OBS.tracer.count("pref.unit_matrix.build")
                with _OBS.tracer.timeit("pref.unit_matrix"):
                    cached = self._price_column(server_id)
            else:
                cached = self._price_column(server_id)
            self._columns[server_id] = cached
        return cached

    def __len__(self) -> int:
        """Number of source columns currently priced (0 until first use)."""
        return len(self._columns)


@dataclass
class PreferenceMatrix:
    """The graded ``M x N`` matrix and both sides' derived rankings."""

    server_ids: tuple[int, ...]
    container_ids: tuple[int, ...]
    #: ``cost[i, j]`` = C of hosting container ``container_ids[j]`` on server
    #: ``server_ids[i]``; ``inf`` marks statically infeasible pairs (demand
    #: exceeds the server's total capacity).
    cost: np.ndarray
    #: Per container: cost at its current placement (``inf`` when unplaced).
    current_cost: np.ndarray

    def __post_init__(self) -> None:
        self._server_index = {s: i for i, s in enumerate(self.server_ids)}
        self._container_index = {c: j for j, c in enumerate(self.container_ids)}
        #: Lazily filled per-server rank arrays (see :meth:`server_rank_array`).
        self._rank_arrays: dict[int, np.ndarray] = {}
        #: Memoised container rankings (column argsorts), by column index.
        self._ranking_cache: dict[int, list[int]] = {}
        #: Predecessor matrix (previous sweep of the same Alg-2 loop) whose
        #: cached rankings/rank arrays can be reused for rows/columns whose
        #: inputs are bit-identical.  See :meth:`chain_previous`.
        self._prev: "PreferenceMatrix | None" = None
        self._prev_current_equal = False

    def chain_previous(self, previous: "PreferenceMatrix | None") -> None:
        """Adopt a previous sweep's matrix as a rank-reuse donor.

        Ranking reuse is purely equality-gated — a ranking is taken from the
        donor only when every float it depends on is bit-identical — so
        chaining never changes results, it only skips recomputing argsorts
        for unchanged rows/columns (the common case in the stale tail of the
        Alg-2 sweep loop, where consecutive sweeps see identical loads and
        placement).  The donor's own chain is cut to bound the reuse walk at
        depth one.
        """
        if previous is None or previous is self:
            return
        previous._prev = None
        if (
            previous.server_ids != self.server_ids
            or previous.container_ids != self.container_ids
        ):
            return
        self._prev = previous
        self._prev_current_equal = np.array_equal(
            self.current_cost, previous.current_cost
        )

    # ------------------------------------------------------------- accessors
    @property
    def server_index(self) -> dict[int, int]:
        """``{server_id: row index}`` into :attr:`cost`."""
        return self._server_index

    @property
    def container_index(self) -> dict[int, int]:
        """``{container_id: column index}`` into :attr:`cost`."""
        return self._container_index

    def grade(self, server_id: int, container_id: int) -> float:
        """The paper's ``P(s, c)``: higher is better (negated cost)."""
        return -float(
            self.cost[self._server_index[server_id], self._container_index[container_id]]
        )

    def utility(self, server_id: int, container_id: int) -> float:
        """Eq 10 utility of moving the container to the server."""
        j = self._container_index[container_id]
        return float(self.current_cost[j]) - float(
            self.cost[self._server_index[server_id], j]
        )

    def container_ranking(self, container_id: int) -> list[int]:
        """Server ids the container prefers, best (lowest cost) first.

        Statically infeasible servers are omitted.  Ties break toward the
        lower server id for determinism.
        """
        j = self._container_index[container_id]
        cached = self._ranking_cache.get(j)
        if cached is not None:
            return cached
        column = self.cost[:, j]
        prev = self._prev
        if prev is not None and np.array_equal(column, prev.cost[:, j]):
            ranking = prev.container_ranking(container_id)
        else:
            order = np.argsort(column, kind="stable")
            ranking = [
                self.server_ids[i] for i in order if np.isfinite(column[i])
            ]
        self._ranking_cache[j] = ranking
        return ranking

    def _server_utilities(self, row: int) -> np.ndarray:
        """The utility vector one server grades every container with."""
        # Unplaced containers have no current cost; grade them by -cost (the
        # raw P(s, c)) so they still sort sensibly among the placed ones.
        with np.errstate(invalid="ignore"):
            utilities = np.where(
                np.isfinite(self.current_cost),
                self.current_cost - self.cost[row, :],
                -self.cost[row, :],
            )
        return np.nan_to_num(utilities, nan=-np.inf)

    def server_ranking(self, server_id: int) -> list[int]:
        """Container ids the server prefers, highest utility first."""
        i = self._server_index[server_id]
        utilities = self._server_utilities(i)
        # Containers that cannot fit (cost inf) rank last and are dropped.
        order = np.argsort(-utilities, kind="stable")
        return [
            self.container_ids[j]
            for j in order
            if np.isfinite(self.cost[i, j])
        ]

    #: Rank value marking a statically infeasible (server, container) pair in
    #: :meth:`server_rank_array` — always at-or-beyond a server's
    #: rejected-top threshold, so the matching loop skips such proposals just
    #: as it would a missing rank.
    INFEASIBLE_RANK_OFFSET = 1

    def server_rank_array(self, server_id: int) -> np.ndarray:
        """Argsort-backed rank vector of one server, lazily materialised.

        ``result[j]`` is the rank (0 = most preferred) the server gives
        container ``container_ids[j]``, consistent with
        :meth:`server_ranking`; statically infeasible containers get the
        sentinel ``len(container_ids) + INFEASIBLE_RANK_OFFSET`` instead of a
        rank.  Computed once per server on first access — Algorithm 2 only
        ever touches the servers that are actually proposed to, so eager
        materialisation of every server's ranking is wasted work on large
        fabrics.
        """
        i = self._server_index[server_id]
        cached = self._rank_arrays.get(i)
        if cached is not None:
            return cached
        prev = self._prev
        if (
            prev is not None
            and self._prev_current_equal
            and np.array_equal(self.cost[i], prev.cost[i])
        ):
            # Identical utilities and feasibility → identical ranks; borrow
            # the donor's (read-only) array instead of re-argsorting.
            ranks = prev.server_rank_array(server_id)
            self._rank_arrays[i] = ranks
            return ranks
        n = len(self.container_ids)
        order = np.argsort(-self._server_utilities(i), kind="stable")
        feasible_in_order = order[np.isfinite(self.cost[i, order])]
        ranks = np.full(n, n + self.INFEASIBLE_RANK_OFFSET, dtype=np.int64)
        ranks[feasible_in_order] = np.arange(feasible_in_order.size)
        ranks.setflags(write=False)
        self._rank_arrays[i] = ranks
        return ranks

    def server_rank_of(self, server_id: int) -> dict[int, int]:
        """``{container_id: rank}`` (0 = most preferred) for one server."""
        ranks = self.server_rank_array(server_id)
        n = len(self.container_ids)
        return {
            c: int(ranks[j])
            for j, c in enumerate(self.container_ids)
            if ranks[j] < n
        }


def build_preference_matrix(
    taa: TAAInstance,
    container_ids: list[int] | None = None,
    cache: PairCostCache | None = None,
    previous: PreferenceMatrix | None = None,
) -> PreferenceMatrix:
    """Run the grading pass of Algorithm 1 and assemble the matrix.

    ``container_ids`` restricts the columns (subsequent-wave scheduling only
    grades the new Map containers); by default every container that has at
    least one incident flow is graded.  Containers with no flows are
    placement-indifferent — grading them would add all-zero columns.
    ``cache`` lets the caller share one :class:`PairCostCache` (and its
    all-pairs matrix) across the grading pass and the matching fallback; a
    fresh one is built when omitted.  ``previous`` (the previous sweep's
    matrix over the same axes) donates its cached rankings for rows/columns
    whose inputs did not change — see :meth:`PreferenceMatrix.chain_previous`.
    """
    if _OBS.enabled:
        with _OBS.tracer.timeit("pref.build"):
            matrix = _build_preference_matrix(taa, container_ids, cache)
    else:
        matrix = _build_preference_matrix(taa, container_ids, cache)
    matrix.chain_previous(previous)
    return matrix


def _build_preference_matrix(
    taa: TAAInstance,
    container_ids: list[int] | None,
    cache: PairCostCache | None,
) -> PreferenceMatrix:
    cluster = taa.cluster
    if container_ids is None:
        container_ids = [
            c.container_id
            for c in cluster.containers()
            if taa.flows_of_container(c.container_id)
        ]
    server_ids = cluster.server_ids
    if cache is None:
        cache = PairCostCache(taa)
    server_index = cache.server_index

    m, n = len(server_ids), len(container_ids)
    cost = np.zeros((m, n), dtype=np.float64)
    current = np.full(n, np.inf, dtype=np.float64)
    # Static feasibility is a pure array comparison: demand must fit the
    # server's *total* capacity (matching re-packs everything, so residuals
    # are checked there).
    capacities = np.array(
        [cluster.capacity(s).as_tuple() for s in server_ids], dtype=np.float64
    )
    # Failed servers are blacklisted outright: an inf cost removes them from
    # every container's ranking and gives them the server-side sentinel
    # rank, so Algorithm 2 never proposes to a dead server.
    failed = cluster.failed_servers
    failed_rows = (
        np.array([i for i, s in enumerate(server_ids) if s in failed])
        if failed
        else None
    )

    for j, cid in enumerate(container_ids):
        container = cluster.container(cid)
        # Column of per-server costs, accumulated flow by flow as gathers
        # out of the shared all-pairs matrix.
        column = np.zeros(m, dtype=np.float64)
        for flow in taa.flows_of_container(cid):
            other_cid = (
                flow.dst_container
                if flow.src_container == cid
                else flow.src_container
            )
            other_server = cluster.container(other_cid).server_id
            if other_server is None:
                continue
            column += flow.rate * cache.column(other_server)
        demand = np.asarray(container.demand.as_tuple(), dtype=np.float64)
        column[(capacities < demand).any(axis=1)] = np.inf
        if failed_rows is not None and failed_rows.size:
            column[failed_rows] = np.inf
        cost[:, j] = column
        if container.server_id is not None:
            current[j] = column[server_index[container.server_id]]

    return PreferenceMatrix(
        server_ids=server_ids,
        container_ids=tuple(container_ids),
        cost=cost,
        current_cost=current,
    )
