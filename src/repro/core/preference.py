"""Preference construction for the stable matching (Sections 5.2.1-5.2.2).

Algorithm 1 ends with an ``M x N`` preference matrix ``P``: for every server
``s`` and container-hosting-task ``c``, ``P(s, c)`` grades the assignment of
``c`` onto ``s``.  We materialise the matrix from the cost side:

* ``cost[s, c]`` — the shuffle cost ``C_c(s)`` of hosting container ``c`` on
  server ``s`` (generalised Eq 9): the sum over incident flows of the
  optimal-route cost to the opposite endpoint's current server.
* A **container** ranks servers by ``cost[s, c]`` ascending — identical to
  ranking by utility ``U(A(c) -> s) = C_c(A(c)) - C_c(s)`` descending
  (Eq 10), since the first term is constant per container.
* A **server** ranks containers by that same utility descending: it prefers
  the tenants that gain the most traffic-cost reduction from living there.
  (This is the asymmetry that makes the matching problem non-trivial: the
  container term ``C_c(A(c))`` varies across containers.)

Route costs are evaluated with the capacity constraint relaxed (grading
pass — feasibility is enforced at matching and policy-installation time) and
cached per server pair: with capacities relaxed the optimal route between two
servers is independent of the flow's rate, so one DP per pair serves every
flow between those racks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .taa import TAAInstance

__all__ = ["PreferenceMatrix", "build_preference_matrix", "PairCostCache"]


class PairCostCache:
    """Memoised unit-rate optimal route costs between server pairs.

    Costs are symmetric (reversing an undirected path traverses the same
    switches), so the cache key is the unordered pair.  The cache must be
    rebuilt whenever switch loads change materially — the builder constructs
    a fresh one per optimisation round.
    """

    def __init__(self, taa: TAAInstance) -> None:
        self._taa = taa
        self._cache: dict[tuple[int, int], float] = {}

    def unit_cost(self, a: int, b: int) -> float:
        """Optimal route cost between servers ``a`` and ``b`` at rate 1."""
        if a == b:
            return 0.0
        key = (a, b) if a < b else (b, a)
        cached = self._cache.get(key)
        if cached is None:
            _, cached = self._taa.controller.optimal_path(
                key[0], key[1], rate=1.0, enforce_capacity=False
            )
            self._cache[key] = cached
        return cached

    def __len__(self) -> int:
        return len(self._cache)


@dataclass
class PreferenceMatrix:
    """The graded ``M x N`` matrix and both sides' derived rankings."""

    server_ids: tuple[int, ...]
    container_ids: tuple[int, ...]
    #: ``cost[i, j]`` = C of hosting container ``container_ids[j]`` on server
    #: ``server_ids[i]``; ``inf`` marks statically infeasible pairs (demand
    #: exceeds the server's total capacity).
    cost: np.ndarray
    #: Per container: cost at its current placement (``inf`` when unplaced).
    current_cost: np.ndarray

    def __post_init__(self) -> None:
        self._server_index = {s: i for i, s in enumerate(self.server_ids)}
        self._container_index = {c: j for j, c in enumerate(self.container_ids)}

    # ------------------------------------------------------------- accessors
    def grade(self, server_id: int, container_id: int) -> float:
        """The paper's ``P(s, c)``: higher is better (negated cost)."""
        return -float(
            self.cost[self._server_index[server_id], self._container_index[container_id]]
        )

    def utility(self, server_id: int, container_id: int) -> float:
        """Eq 10 utility of moving the container to the server."""
        j = self._container_index[container_id]
        return float(self.current_cost[j]) - float(
            self.cost[self._server_index[server_id], j]
        )

    def container_ranking(self, container_id: int) -> list[int]:
        """Server ids the container prefers, best (lowest cost) first.

        Statically infeasible servers are omitted.  Ties break toward the
        lower server id for determinism.
        """
        j = self._container_index[container_id]
        column = self.cost[:, j]
        order = np.argsort(column, kind="stable")
        return [
            self.server_ids[i] for i in order if np.isfinite(column[i])
        ]

    def server_ranking(self, server_id: int) -> list[int]:
        """Container ids the server prefers, highest utility first."""
        i = self._server_index[server_id]
        # Unplaced containers have no current cost; grade them by -cost (the
        # raw P(s, c)) so they still sort sensibly among the placed ones.
        with np.errstate(invalid="ignore"):
            utilities = np.where(
                np.isfinite(self.current_cost),
                self.current_cost - self.cost[i, :],
                -self.cost[i, :],
            )
        utilities = np.nan_to_num(utilities, nan=-np.inf)
        # Containers that cannot fit (cost inf) rank last and are dropped.
        order = np.argsort(-utilities, kind="stable")
        return [
            self.container_ids[j]
            for j in order
            if np.isfinite(self.cost[i, j])
        ]

    def server_rank_of(self, server_id: int) -> dict[int, int]:
        """``{container_id: rank}`` (0 = most preferred) for one server."""
        return {c: r for r, c in enumerate(self.server_ranking(server_id))}


def build_preference_matrix(
    taa: TAAInstance,
    container_ids: list[int] | None = None,
) -> PreferenceMatrix:
    """Run the grading pass of Algorithm 1 and assemble the matrix.

    ``container_ids`` restricts the columns (subsequent-wave scheduling only
    grades the new Map containers); by default every container that has at
    least one incident flow is graded.  Containers with no flows are
    placement-indifferent — grading them would add all-zero columns.
    """
    cluster = taa.cluster
    if container_ids is None:
        container_ids = [
            c.container_id
            for c in cluster.containers()
            if taa.flows_of_container(c.container_id)
        ]
    server_ids = cluster.server_ids
    cache = PairCostCache(taa)

    m, n = len(server_ids), len(container_ids)
    cost = np.zeros((m, n), dtype=np.float64)
    current = np.full(n, np.inf, dtype=np.float64)
    server_index = {s: i for i, s in enumerate(server_ids)}

    for j, cid in enumerate(container_ids):
        container = cluster.container(cid)
        # Column of per-server costs, accumulated flow by flow.
        column = np.zeros(m, dtype=np.float64)
        for flow in taa.flows_of_container(cid):
            other_cid = (
                flow.dst_container
                if flow.src_container == cid
                else flow.src_container
            )
            other_server = cluster.container(other_cid).server_id
            if other_server is None:
                continue
            unit = np.array(
                [cache.unit_cost(s, other_server) for s in server_ids]
            )
            column += flow.rate * unit
        # Static feasibility: demand must fit the server's *total* capacity
        # (matching re-packs everything, so residuals are checked there).
        for i, sid in enumerate(server_ids):
            if not container.demand.fits_in(cluster.capacity(sid)):
                column[i] = np.inf
        cost[:, j] = column
        if container.server_id is not None:
            current[j] = column[server_index[container.server_id]]

    return PreferenceMatrix(
        server_ids=server_ids,
        container_ids=tuple(container_ids),
        cost=cost,
        current_cost=current,
    )
