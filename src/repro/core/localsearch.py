"""Utility-driven local search over a TAA instance.

The paper defines per-move *utilities* — the cost reduction of rescheduling
one switch of a flow's policy (Eq 5/7) or one container's hosting server
(Eq 10) — and proves they are additive (Eqs 6/11).  The stable-matching
solver of Section 5.2 consumes these utilities wholesale; this module uses
them *directly* as a hill-climbing local search:

    repeat until no move helps:
        best container move  = argmax U(A(c) -> s)   over c, s  (Eq 10)
        best switch move     = argmax U(p.list[i] -> w)  over flows, i, w (Eq 5)
        apply whichever is better

Local search is the natural alternative a systems builder would try before
reaching for matching theory, so the ``bench_ablation_localsearch`` ablation
compares the two: matching converges in a couple of sweeps; hill climbing
needs many more evaluations for a similar final cost on small instances and
trails on larger ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .policy import NoFeasiblePathError
from .taa import TAAInstance
from .utility import container_reschedule_utility, switch_reschedule_utility

__all__ = ["LocalSearchConfig", "LocalSearchResult", "LocalSearchOptimizer"]


@dataclass(frozen=True)
class LocalSearchConfig:
    """Hill-climbing knobs.

    ``min_utility`` ignores moves whose gain is below the threshold (noise
    floor); ``max_moves`` bounds the climb; ``container_moves`` /
    ``switch_moves`` toggle the two move families so ablations can isolate
    them.
    """

    min_utility: float = 1e-9
    max_moves: int = 10_000
    container_moves: bool = True
    switch_moves: bool = True


@dataclass
class LocalSearchResult:
    """Climb statistics."""

    initial_cost: float
    final_cost: float
    moves_applied: int
    container_moves: int
    switch_moves: int
    utilities_evaluated: int
    move_trace: list[float] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        if self.initial_cost == 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost


class LocalSearchOptimizer:
    """Greedy best-move hill climbing on (placement x policies)."""

    def __init__(
        self, taa: TAAInstance, config: LocalSearchConfig | None = None
    ) -> None:
        self.taa = taa
        self.config = config or LocalSearchConfig()

    # ------------------------------------------------------------ move scans
    def best_container_move(self) -> tuple[float, int, int] | None:
        """Highest-utility container relocation ``(utility, cid, server)``.

        Scans every placed, flow-bearing container against its Eq-8 candidate
        servers.  Returns ``None`` when no move clears ``min_utility``.
        """
        taa = self.taa
        best: tuple[float, int, int] | None = None
        self._evaluations = getattr(self, "_evaluations", 0)
        for container in taa.cluster.containers():
            cid = container.container_id
            flows = taa.flows_of_container(cid)
            if not flows or container.server_id is None:
                continue
            for sid in taa.cluster.candidate_servers(cid):
                if sid == container.server_id:
                    continue
                utility = container_reschedule_utility(
                    taa.controller, taa.cluster, cid, sid, flows
                )
                self._evaluations += 1
                if utility > self.config.min_utility and (
                    best is None or utility > best[0]
                ):
                    best = (utility, cid, sid)
        return best

    def best_switch_move(self) -> tuple[float, int, int, int] | None:
        """Highest-utility switch reschedule ``(utility, flow_id, pos, w)``."""
        taa = self.taa
        best: tuple[float, int, int, int] | None = None
        self._evaluations = getattr(self, "_evaluations", 0)
        for flow in taa.flows:
            policy = taa.controller.policy_of(flow.flow_id)
            if policy is None:
                continue
            for pos in range(policy.length):
                for cand in taa.controller.candidate_switches(
                    policy, pos, flow.rate
                ):
                    utility = switch_reschedule_utility(
                        taa.controller, flow, pos, cand
                    )
                    self._evaluations += 1
                    if utility > self.config.min_utility and (
                        best is None or utility > best[0]
                    ):
                        best = (utility, flow.flow_id, pos, cand)
        return best

    # ---------------------------------------------------------- application
    def _apply_container_move(self, cid: int, sid: int) -> None:
        self.taa.cluster.move(cid, sid)
        # Moving an endpoint invalidates the policies of its flows only.
        for flow in self.taa.flows_of_container(cid):
            src = self.taa.cluster.container(flow.src_container).server_id
            dst = self.taa.cluster.container(flow.dst_container).server_id
            if src is None or dst is None:
                continue
            try:
                self.taa.controller.route_flow(flow, src, dst)
            except NoFeasiblePathError:
                try:
                    self.taa.controller.route_flow(
                        flow, src, dst, enforce_capacity=False
                    )
                except NoFeasiblePathError:
                    # Disconnected pair (partitioned fabric): skip — the
                    # engine parks the flow at launch until recovery.
                    continue

    def _apply_switch_move(self, flow_id: int, position: int, new_switch: int) -> None:
        controller = self.taa.controller
        flow = next(f for f in self.taa.flows if f.flow_id == flow_id)
        policy = controller.policy_of(flow_id)
        assert policy is not None
        # Rebuild the path with the switch swapped in.
        path = list(policy.path)
        seen = -1
        for idx, node in enumerate(path):
            if controller.topology.is_switch(node):
                seen += 1
                if seen == position:
                    path[idx] = new_switch
                    break
        new_policy = controller.make_policy(flow, tuple(path))
        controller.release(flow_id)
        controller.assign(flow, new_policy)

    # -------------------------------------------------------------- climbing
    def optimize(self) -> LocalSearchResult:
        """Climb until no move clears the utility threshold."""
        taa = self.taa
        if taa.cluster.unplaced_containers():
            raise ValueError("local search requires a fully placed instance")
        if not taa.controller.policies():
            taa.install_all_policies()
        self._evaluations = 0
        initial = taa.total_shuffle_cost()
        trace = [initial]
        moves = container_moves = switch_moves = 0

        while moves < self.config.max_moves:
            c_move = (
                self.best_container_move() if self.config.container_moves else None
            )
            w_move = self.best_switch_move() if self.config.switch_moves else None
            if c_move is None and w_move is None:
                break
            c_utility = c_move[0] if c_move else float("-inf")
            w_utility = w_move[0] if w_move else float("-inf")
            if c_utility >= w_utility:
                assert c_move is not None
                self._apply_container_move(c_move[1], c_move[2])
                container_moves += 1
            else:
                assert w_move is not None
                self._apply_switch_move(w_move[1], w_move[2], w_move[3])
                switch_moves += 1
            moves += 1
            trace.append(taa.total_shuffle_cost())

        return LocalSearchResult(
            initial_cost=initial,
            final_cost=taa.total_shuffle_cost(),
            moves_applied=moves,
            container_moves=container_moves,
            switch_moves=switch_moves,
            utilities_evaluated=self._evaluations,
            move_trace=trace,
        )
