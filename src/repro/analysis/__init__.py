"""Analysis helpers: CDFs, summary statistics and report tables."""

from .cdf import EmpiricalCDF
from .charts import bar_chart, series_chart, sparkline
from .critical_path import (
    SEGMENTS,
    JobCriticalPath,
    aggregate_segments,
    attribute_job,
    attribute_run,
    format_critical_path,
)
from .report import (
    canonical_json,
    format_paper_vs_measured,
    format_sweep_table,
    format_table,
    format_violations,
    render_sweep_report,
)
from .stats import describe, improvement, reduction

__all__ = [
    "EmpiricalCDF",
    "SEGMENTS",
    "JobCriticalPath",
    "attribute_job",
    "attribute_run",
    "aggregate_segments",
    "format_critical_path",
    "format_table",
    "format_paper_vs_measured",
    "format_violations",
    "canonical_json",
    "render_sweep_report",
    "format_sweep_table",
    "describe",
    "improvement",
    "reduction",
    "bar_chart",
    "sparkline",
    "series_chart",
]
