"""Analysis helpers: CDFs, summary statistics and report tables."""

from .cdf import EmpiricalCDF
from .charts import bar_chart, series_chart, sparkline
from .critical_path import (
    SEGMENTS,
    JobCriticalPath,
    aggregate_segments,
    attribute_job,
    attribute_run,
    format_critical_path,
)
from .report import format_paper_vs_measured, format_table, format_violations
from .stats import describe, improvement, reduction

__all__ = [
    "EmpiricalCDF",
    "SEGMENTS",
    "JobCriticalPath",
    "attribute_job",
    "attribute_run",
    "aggregate_segments",
    "format_critical_path",
    "format_table",
    "format_paper_vs_measured",
    "format_violations",
    "describe",
    "improvement",
    "reduction",
    "bar_chart",
    "sparkline",
    "series_chart",
]
