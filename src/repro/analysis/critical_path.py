"""Per-job critical-path attribution of job completion time.

Decomposes each job's JCT into an exact partition of simulated-time
segments, so a scheduler gap (Hit vs a baseline) becomes *explainable* —
"Hit wins because its shuffle tail is 40% shorter" — instead of just
measurable.  The decomposition walks the job's critical chain backwards
from the last-finishing reduce, using the enriched
:class:`~repro.simulator.metrics.TaskRecord` /
:class:`~repro.simulator.metrics.FlowRecord` annotations (server, attempt,
speculative flag, compute-start):

``queue_wait``
    submission → admission (FIFO queueing at the resource manager).
``map_serial``
    admission → start of the *critical map* (the last map to finish):
    earlier waves plus any wave-barrier serialisation.
``fault_retry``
    ``map_serial`` re-labelled when the critical map committed as a
    re-execution (``attempt > 0``): the serial wait was then caused by the
    failure-retry chain, not by wave structure.
``map_compute`` / ``speculation``
    the critical map's own run; attributed to ``speculation`` when the
    committing attempt was a speculative backup.
``shuffle``
    all-maps-done → the critical reduce's compute start (the shuffle tail
    that actually gated the job; 0 when transfers finished under the map
    phase's shadow).
``reduce_compute``
    critical reduce's compute start → job finish.

Milestones are monotonised (running max) before differencing, so every
segment is non-negative and the segment sum equals the measured JCT
**exactly** (pure float subtraction of the same endpoints — the acceptance
bound of 1e-9 holds by construction).  Degenerate fault interleavings
(e.g. a reduce that started before a re-executed map finished) therefore
fold the out-of-order span into the neighbouring segment instead of going
negative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulator.metrics import (
        JobRecord,
        MetricsCollector,
        TaskRecord,
    )

__all__ = [
    "SEGMENTS",
    "JobCriticalPath",
    "attribute_job",
    "attribute_run",
    "aggregate_segments",
    "format_critical_path",
]

#: Segment keys in report order; every attribution carries all of them
#: (zeros included) so tables across schedulers align.
SEGMENTS = (
    "queue_wait",
    "map_serial",
    "fault_retry",
    "map_compute",
    "speculation",
    "shuffle",
    "reduce_compute",
)


@dataclass(frozen=True)
class JobCriticalPath:
    """One job's JCT attribution."""

    job_id: int
    jct: float
    segments: dict[str, float]
    #: Task indices of the chain's anchors (-1 when the job had none).
    critical_map: int
    critical_reduce: int

    @property
    def segment_sum(self) -> float:
        return sum(self.segments.values())


def _latest(records: Iterable["TaskRecord"]) -> "TaskRecord | None":
    """The record with the largest finish (ties: largest start, then index)
    — the committing attempt of the phase's last task."""
    best = None
    for r in records:
        if best is None or (r.finish, r.start, r.index) > (
            best.finish,
            best.start,
            best.index,
        ):
            best = r
    return best


def attribute_job(
    job: "JobRecord", tasks: Sequence["TaskRecord"]
) -> JobCriticalPath:
    """Attribute one job's JCT from its task records (see module doc)."""
    maps = [t for t in tasks if t.job_id == job.job_id and t.kind == "map"]
    reduces = [
        t for t in tasks if t.job_id == job.job_id and t.kind == "reduce"
    ]
    critical_map = _latest(maps)
    critical_reduce = _latest(reduces)

    t0 = job.submit_time
    t1 = job.start_time if job.start_time >= 0 else t0
    t_map_start = critical_map.start if critical_map is not None else t1
    t_maps_done = critical_map.finish if critical_map is not None else t1
    if critical_reduce is not None and critical_reduce.compute_start >= 0:
        t_ready = critical_reduce.compute_start
    else:
        t_ready = t_maps_done
    t_end = job.finish_time

    # Monotonise: each milestone may not precede its predecessor (degenerate
    # fault interleavings fold into the neighbouring segment) nor exceed the
    # job's finish.
    milestones = [t0, t1, t_map_start, t_maps_done, t_ready, t_end]
    for i in range(1, len(milestones)):
        milestones[i] = min(max(milestones[i], milestones[i - 1]), t_end)
    t0, t1, t_map_start, t_maps_done, t_ready, t_end = milestones

    segments = dict.fromkeys(SEGMENTS, 0.0)
    segments["queue_wait"] = t1 - t0
    serial_key = (
        "fault_retry"
        if critical_map is not None and critical_map.attempt > 0
        else "map_serial"
    )
    segments[serial_key] = t_map_start - t1
    compute_key = (
        "speculation"
        if critical_map is not None and critical_map.speculative
        else "map_compute"
    )
    segments[compute_key] = t_maps_done - t_map_start
    segments["shuffle"] = t_ready - t_maps_done
    segments["reduce_compute"] = t_end - t_ready
    return JobCriticalPath(
        job_id=job.job_id,
        jct=job.completion_time,
        segments=segments,
        critical_map=critical_map.index if critical_map is not None else -1,
        critical_reduce=(
            critical_reduce.index if critical_reduce is not None else -1
        ),
    )


def attribute_run(metrics: "MetricsCollector") -> list[JobCriticalPath]:
    """Attribution for every finished job of a run, ordered by job id."""
    return [
        attribute_job(job, metrics.tasks)
        for job in sorted(metrics.jobs, key=lambda j: j.job_id)
    ]


def aggregate_segments(
    paths: Sequence[JobCriticalPath],
) -> dict[str, float]:
    """Mean seconds spent per segment across jobs (zeros when empty)."""
    out = dict.fromkeys(SEGMENTS, 0.0)
    if not paths:
        return out
    for path in paths:
        for key, value in path.segments.items():
            out[key] += value
    return {key: value / len(paths) for key, value in out.items()}


def format_critical_path(
    by_scheduler: Mapping[str, Sequence[JobCriticalPath]],
    style: str = "plain",
) -> str:
    """Per-scheduler mean-segment breakdown table.

    One row per scheduler: mean JCT, then the mean time per segment (the
    segment columns sum to the mean JCT).  ``style`` follows
    :func:`repro.analysis.report.format_table`.
    """
    from .report import format_table

    rows = []
    for name, paths in by_scheduler.items():
        agg = aggregate_segments(paths)
        mean_jct = (
            sum(p.jct for p in paths) / len(paths) if paths else 0.0
        )
        rows.append((name, mean_jct, *(agg[k] for k in SEGMENTS)))
    return format_table(
        headers=("scheduler", "mean JCT", *SEGMENTS),
        rows=rows,
        title="critical-path attribution (mean time per segment)",
        style=style,
    )
