"""Empirical CDFs for the Figure-6-style plots."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EmpiricalCDF"]


@dataclass(frozen=True)
class EmpiricalCDF:
    """An empirical distribution function over a sample.

    ``values`` are sorted ascending; ``probabilities[i]`` is the fraction of
    the sample at or below ``values[i]``.
    """

    values: np.ndarray
    probabilities: np.ndarray

    @classmethod
    def from_samples(cls, samples: np.ndarray | list[float]) -> "EmpiricalCDF":
        arr = np.sort(np.asarray(samples, dtype=np.float64))
        if arr.size == 0:
            raise ValueError("cannot build a CDF from an empty sample")
        probs = np.arange(1, arr.size + 1, dtype=np.float64) / arr.size
        return cls(values=arr, probabilities=probs)

    def at(self, x: float) -> float:
        """P(X <= x)."""
        return float(np.searchsorted(self.values, x, side="right") / self.values.size)

    def percentile(self, q: float) -> float:
        """Inverse CDF: smallest value with cumulative probability >= q."""
        if not 0 < q <= 1:
            raise ValueError("q must be in (0, 1]")
        idx = int(np.searchsorted(self.probabilities, q, side="left"))
        idx = min(idx, self.values.size - 1)
        return float(self.values[idx])

    @property
    def median(self) -> float:
        return self.percentile(0.5)

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    def series(self, points: int = 50) -> list[tuple[float, float]]:
        """Down-sampled (value, probability) pairs for table/plot output."""
        if points >= self.values.size:
            return list(zip(self.values.tolist(), self.probabilities.tolist()))
        idx = np.linspace(0, self.values.size - 1, points).astype(int)
        return list(
            zip(self.values[idx].tolist(), self.probabilities[idx].tolist())
        )
