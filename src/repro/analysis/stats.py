"""Aggregate statistics and improvement ratios used by the experiment
harnesses."""

from __future__ import annotations

import numpy as np

__all__ = ["improvement", "reduction", "describe"]


def improvement(baseline: float, candidate: float) -> float:
    """Fractional improvement of ``candidate`` over ``baseline`` for a
    lower-is-better metric: ``1 - candidate / baseline``.

    Zero baseline yields 0 (no meaningful ratio).
    """
    if baseline == 0:
        return 0.0
    return 1.0 - candidate / baseline


def reduction(baseline: float, candidate: float) -> float:
    """Alias of :func:`improvement` named for cost metrics."""
    return improvement(baseline, candidate)


def describe(samples: np.ndarray | list[float]) -> dict[str, float]:
    """Five-number-ish summary used in experiment printouts."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        return {"n": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0, "max": 0.0}
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "max": float(arr.max()),
    }
