"""Terminal charts for experiment reports.

The benchmarks print their regenerated figures as tables; for series data
(CDFs, sensitivity sweeps) a quick visual check beats reading numbers.
These helpers render pure-ASCII horizontal bar charts and braille-free
sparklines — no plotting dependency, safe in any log.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["bar_chart", "sparkline", "series_chart"]

_SPARK_LEVELS = " .:-=+*#%@"


def bar_chart(
    data: Mapping[str, float],
    width: int = 40,
    title: str | None = None,
    value_fmt: str = "{:.3f}",
) -> str:
    """Horizontal bar chart of label -> value (non-negative values).

    Bars scale to the maximum value; zero-max charts render empty bars.
    """
    if not data:
        raise ValueError("bar_chart needs at least one entry")
    if any(v < 0 for v in data.values()):
        raise ValueError("bar_chart values must be non-negative")
    peak = max(data.values())
    label_width = max(len(k) for k in data)
    lines = [title] if title else []
    for label, value in data.items():
        filled = round(width * value / peak) if peak > 0 else 0
        bar = "#" * filled
        lines.append(
            f"{label.rjust(label_width)} | {bar.ljust(width)} {value_fmt.format(value)}"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line intensity strip of a numeric series."""
    if not values:
        raise ValueError("sparkline needs at least one value")
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK_LEVELS[len(_SPARK_LEVELS) // 2] * len(values)
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[round((v - lo) / (hi - lo) * top)] for v in values
    )


def series_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 40,
    title: str | None = None,
) -> str:
    """Multi-series (x, y) comparison as labelled sparklines.

    All series are resampled onto their own x-order; the chart communicates
    shape (rising/falling/knees), not exact values — the tables carry those.
    """
    if not series:
        raise ValueError("series_chart needs at least one series")
    lines = [title] if title else []
    label_width = max(len(k) for k in series)
    for label, points in series.items():
        ys = [y for _, y in sorted(points)]
        # Downsample long series to the chart width.
        if len(ys) > width:
            step = len(ys) / width
            ys = [ys[int(i * step)] for i in range(width)]
        lines.append(f"{label.rjust(label_width)} | {sparkline(ys)}")
    return "\n".join(lines)
