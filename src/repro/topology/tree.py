"""Canonical multi-tier tree topology (the paper's default fabric).

The paper's testbed network is "a tree topology of depth 3 and fanout 8"
built in Mininet (Section 7.1), and its motivating examples (Figures 2 and 3)
use a small tree **with redundant switches at each level** so that a shuffle
flow has alternative routes (``w_1`` overloaded → reroute via ``w_3``).

:func:`build_tree` therefore generalises the plain Mininet tree with a
``redundancy`` knob: every switch *position* in the tree is populated with
``redundancy`` parallel switches, each fully connected to the switches of the
parent position (and, for access positions, to the servers of its rack).
``redundancy=1`` reproduces the plain tree; ``redundancy>=2`` creates the
multi-path hierarchy in which network-policy optimisation (Algorithm 1) has
real choices to make.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import Link, Server, Switch, Tier, Topology

__all__ = ["TreeConfig", "build_tree"]


@dataclass(frozen=True)
class TreeConfig:
    """Parameters of the hierarchical tree.

    ``depth`` counts switch levels (depth 2 = access + core; depth 3 adds an
    aggregation level).  ``fanout`` is the branching factor at every level, so
    the tree hosts ``fanout ** depth`` servers.  ``redundancy`` is the number
    of parallel switches per tree position.  Capacities/bandwidths default to
    values that scale with the tier, mirroring real fabrics where core
    switches are provisioned larger.
    """

    depth: int = 2
    fanout: int = 8
    redundancy: int = 1
    access_capacity: float = 100.0
    aggregation_capacity: float = 200.0
    core_capacity: float = 400.0
    server_link_bandwidth: float = 10.0
    fabric_link_bandwidth: float = 40.0
    switch_latency: float = 1.0
    server_resources: tuple[float, ...] = (2.0,)

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("tree depth must be >= 1")
        if self.fanout < 1:
            raise ValueError("tree fanout must be >= 1")
        if self.redundancy < 1:
            raise ValueError("tree redundancy must be >= 1")

    @property
    def num_servers(self) -> int:
        return self.fanout**self.depth

    def tier_for_level(self, level: int) -> Tier:
        """Map tree level (1 = access, ``depth`` = root) to a switch tier."""
        if level == 1:
            return Tier.ACCESS
        if level == self.depth:
            return Tier.CORE if self.depth > 1 else Tier.ACCESS
        return Tier.AGGREGATION

    def capacity_for_tier(self, tier: Tier) -> float:
        return {
            Tier.ACCESS: self.access_capacity,
            Tier.AGGREGATION: self.aggregation_capacity,
            Tier.CORE: self.core_capacity,
        }[tier]


def build_tree(config: TreeConfig | None = None, **kwargs: object) -> Topology:
    """Build a hierarchical tree :class:`~repro.topology.base.Topology`.

    Either pass a :class:`TreeConfig` or keyword overrides for its fields::

        topo = build_tree(depth=3, fanout=4, redundancy=2)

    Node-id layout: servers first (``0 .. num_servers-1``), then switches level
    by level from access upward; within a level, positions in order and the
    ``redundancy`` replicas of a position contiguously.
    """
    if config is None:
        config = TreeConfig(**kwargs)  # type: ignore[arg-type]
    elif kwargs:
        raise TypeError("pass either a TreeConfig or keyword overrides, not both")

    servers = [
        Server(node_id=i, name=f"s{i}", resource_capacity=config.server_resources)
        for i in range(config.num_servers)
    ]

    switches: list[Switch] = []
    links: list[Link] = []
    next_id = config.num_servers

    # positions_per_level[level] = number of switch positions at that level.
    # Level l (1-based from access) has fanout ** (depth - l) positions.
    level_switch_ids: list[list[list[int]]] = []  # [level][position] -> replica ids
    for level in range(1, config.depth + 1):
        tier = config.tier_for_level(level)
        positions = config.fanout ** (config.depth - level)
        ids_for_level: list[list[int]] = []
        for pos in range(positions):
            replicas: list[int] = []
            for rep in range(config.redundancy):
                switch = Switch(
                    node_id=next_id,
                    name=f"w{level}.{pos}.{rep}",
                    tier=tier,
                    capacity=config.capacity_for_tier(tier),
                )
                switches.append(switch)
                replicas.append(next_id)
                next_id += 1
            ids_for_level.append(replicas)
        level_switch_ids.append(ids_for_level)

    # Server -> access replicas of its rack position.
    for server in servers:
        rack = server.node_id // config.fanout
        for access_id in level_switch_ids[0][rack]:
            links.append(
                Link(
                    u=server.node_id,
                    v=access_id,
                    bandwidth=config.server_link_bandwidth,
                    latency=config.switch_latency,
                )
            )

    # Level l position p -> level l+1 position p // fanout, all replica pairs.
    for level_idx in range(config.depth - 1):
        for pos, replicas in enumerate(level_switch_ids[level_idx]):
            parent_pos = pos // config.fanout
            for child_id in replicas:
                for parent_id in level_switch_ids[level_idx + 1][parent_pos]:
                    links.append(
                        Link(
                            u=child_id,
                            v=parent_id,
                            bandwidth=config.fabric_link_bandwidth,
                            latency=config.switch_latency,
                        )
                    )

    name = (
        f"tree(d={config.depth},f={config.fanout},r={config.redundancy})"
    )
    topo = Topology(servers=servers, switches=switches, links=links, name=name)
    topo.validate()
    return topo
