"""BCube topology (Guo et al., SIGCOMM 2009).

The third alternative fabric of Figure 8(b).  BCube is server-centric:
``BCube(n, 0)`` is ``n`` servers on one switch; ``BCube(n, k)`` is built from
``n`` copies of ``BCube(n, k-1)`` plus ``n^k`` level-``k`` switches.  A server
with address ``(a_k, ..., a_0)`` (each digit in ``[0, n)``) connects to one
switch at every level ``l``: the level-``l`` switch indexed by the address
with digit ``a_l`` removed.  Servers therefore have degree ``k+1`` and may
relay traffic; paths through the graph legitimately pass through intermediate
servers, and the hop/switch accounting in the rest of the library handles
that transparently.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import Link, Server, Switch, Tier, Topology

__all__ = ["BCubeConfig", "build_bcube"]


@dataclass(frozen=True)
class BCubeConfig:
    """Parameters of ``BCube(n, k)``: ``n^(k+1)`` servers, ``(k+1) * n^k``
    switches."""

    n: int = 4
    k: int = 1
    switch_capacity: float = 100.0
    link_bandwidth: float = 10.0
    switch_latency: float = 1.0
    server_resources: tuple[float, ...] = (2.0,)

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError("BCube n must be >= 2")
        if self.k < 0:
            raise ValueError("BCube k must be >= 0")

    @property
    def num_servers(self) -> int:
        return self.n ** (self.k + 1)

    @property
    def switches_per_level(self) -> int:
        return self.n**self.k


def _tier_for_level(level: int, top_level: int) -> Tier:
    if level == 0:
        return Tier.ACCESS
    if level == top_level:
        return Tier.CORE
    return Tier.AGGREGATION


def build_bcube(config: BCubeConfig | None = None, **kwargs: object) -> Topology:
    """Build a ``BCube(n, k)`` :class:`~repro.topology.base.Topology`."""
    if config is None:
        config = BCubeConfig(**kwargs)  # type: ignore[arg-type]
    elif kwargs:
        raise TypeError("pass either a BCubeConfig or keyword overrides, not both")

    n, k = config.n, config.k
    servers = [
        Server(node_id=i, name=f"s{i}", resource_capacity=config.server_resources)
        for i in range(config.num_servers)
    ]
    switches: list[Switch] = []
    links: list[Link] = []
    next_id = config.num_servers

    # switch_ids[level][index] with index in [0, n^k).
    switch_ids: list[list[int]] = []
    for level in range(k + 1):
        row: list[int] = []
        tier = _tier_for_level(level, k) if k > 0 else Tier.ACCESS
        for idx in range(config.switches_per_level):
            switches.append(
                Switch(
                    node_id=next_id,
                    name=f"b{level}.{idx}",
                    tier=tier,
                    capacity=config.switch_capacity,
                )
            )
            row.append(next_id)
            next_id += 1
        switch_ids.append(row)

    # Server address digits: server id s has digit_l = (s // n^l) % n.
    # Removing digit l and collapsing yields the level-l switch index.
    for server in servers:
        sid = server.node_id
        for level in range(k + 1):
            low = sid % (n**level)
            high = sid // (n ** (level + 1))
            switch_index = high * (n**level) + low
            links.append(
                Link(
                    u=sid,
                    v=switch_ids[level][switch_index],
                    bandwidth=config.link_bandwidth,
                    latency=config.switch_latency,
                )
            )

    topo = Topology(
        servers=servers,
        switches=switches,
        links=links,
        name=f"bcube(n={n},k={k})",
    )
    topo.validate()
    return topo
